"""A2 (ablation) — the 'eventually forever' tail threshold.

Design choice probed: the finite approximation of "there exists a suffix
such that ..." accepts a run only if every live location produces at
least ``min_tail_outputs`` outputs after the last violating event
(DESIGN.md substitution table; default 3).  This ablation shows why 1 is
too lenient — an Omega sequence that flip-flops between two leaders
forever is *accepted* at threshold 1 (the very last block masquerades as
stabilization) and correctly *rejected* from threshold 2 upward — while
genuine generator traces pass at every threshold.
"""

# _helpers comes first: it puts src/ on sys.path so the script
# runs directly (python benchmarks/bench_*.py) without PYTHONPATH.
from _helpers import (
    BenchSpec,
    bench_main,
    emit_bench_artifact,
    print_series,
    run_detector_trace,
)

from repro.core.afd import eventually_forever
from repro.core.validity import live_locations
from repro.detectors.omega import Omega, omega_output
from repro.system.fault_pattern import FaultPattern


LOCATIONS = (0, 1)


def flip_flop_trace(blocks=10):
    t = []
    for _ in range(blocks):
        t += [omega_output(0, 0), omega_output(1, 0)]
        t += [omega_output(0, 1), omega_output(1, 1)]
    return t


def stabilizing_trace():
    return run_detector_trace(
        Omega(LOCATIONS), {}, 80, LOCATIONS
    )


def accepted_with_threshold(t, threshold):
    live = live_locations(t, LOCATIONS)
    for candidate in sorted(live):
        verdict = eventually_forever(
            t,
            live,
            lambda a, l=candidate: a.payload[0] == l,
            min_tail_outputs=threshold,
        )
        if verdict:
            return True
    return False


def _row(threshold):
    """One threshold's verdicts; both traces regenerate deterministically
    worker-side (Action objects stay out of the pickle stream)."""
    flip = flip_flop_trace()
    good = stabilizing_trace()
    return (
        threshold,
        accepted_with_threshold(flip, threshold),
        accepted_with_threshold(good, threshold),
    )


def sweep(jobs=1):
    from repro.runner import parallel_map

    return parallel_map(_row, (1, 2, 3, 5), jobs=jobs)


BENCH = BenchSpec(
    bench_id="a02",
    title="A2: 'eventually forever' tail-threshold sensitivity",
    kernel=sweep,
    header=("threshold", "flip-flop accepted", "genuine accepted"),
)


def test_a02_tail_threshold_ablation(benchmark):
    rows = benchmark(sweep)
    print_series(BENCH.title, rows, header=BENCH.header)
    emit_bench_artifact(BENCH, rows)
    by_threshold = {t: (flip, good) for (t, flip, good) in rows}
    assert by_threshold[1][0], "threshold 1 is fooled by the last block"
    assert not by_threshold[3][0], "the default rejects the flip-flop"
    assert all(good for (_t, _flip, good) in rows), (
        "genuine stabilizing traces pass at every threshold"
    )


if __name__ == "__main__":
    raise SystemExit(bench_main(BENCH))
