"""E9 — Section 9.2 / Theorem 44: the environment E_C (Algorithm 4) is
well formed, under many schedules and crash plans.

Series: (policy seed, crash plan) -> well-formedness verdicts.
"""

from repro.ioa.scheduler import RandomPolicy, Scheduler
from repro.problems.consensus import ConsensusProblem
from repro.system.environment import ConsensusEnvironment
from repro.system.fault_pattern import FaultPattern

from _helpers import print_series

LOCATIONS = (0, 1, 2, 3)


def sweep():
    problem = ConsensusProblem(LOCATIONS, f=3)
    rows = []
    for seed in range(4):
        for crashes in [{}, {1: 2}, {0: 0, 3: 5}]:
            env = ConsensusEnvironment(LOCATIONS)
            execution = Scheduler(RandomPolicy(seed=seed)).run(
                env,
                max_steps=60,
                injections=FaultPattern(crashes, LOCATIONS).injections(),
            )
            trace = [
                a
                for a in execution.actions
                if a.name in ("propose", "crash")
            ]
            verdict = problem.check_environment_well_formedness(trace)
            proposals = sum(1 for a in trace if a.name == "propose")
            rows.append((seed, crashes, proposals, bool(verdict)))
    return rows


def test_e09_environment_well_formedness(benchmark):
    rows = benchmark(sweep)
    print_series(
        "E9: E_C well-formedness (Theorem 44)",
        rows,
        header=("seed", "crash plan", "proposals", "well-formed"),
    )
    assert all(ok for (*_r, ok) in rows)
