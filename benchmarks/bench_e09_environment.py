"""E9 — Section 9.2 / Theorem 44: the environment E_C (Algorithm 4) is
well formed, under many schedules and crash plans.

Series: (policy seed, crash plan) -> well-formedness verdicts.
"""

# _helpers comes first: it puts src/ on sys.path so the script
# runs directly (python benchmarks/bench_*.py) without PYTHONPATH.
from _helpers import BenchSpec, bench_main, emit_bench_artifact, print_series

from repro.ioa.scheduler import RandomPolicy, Scheduler
from repro.problems.consensus import ConsensusProblem
from repro.system.environment import ConsensusEnvironment
from repro.system.fault_pattern import FaultPattern


LOCATIONS = (0, 1, 2, 3)


def _row(item):
    """One (scheduler seed, crash plan) well-formedness run."""
    seed, crashes = item
    problem = ConsensusProblem(LOCATIONS, f=3)
    env = ConsensusEnvironment(LOCATIONS)
    execution = Scheduler(RandomPolicy(seed=seed)).run(
        env,
        max_steps=60,
        injections=FaultPattern(crashes, LOCATIONS).injections(),
    )
    trace = [
        a
        for a in execution.actions
        if a.name in ("propose", "crash")
    ]
    verdict = problem.check_environment_well_formedness(trace)
    proposals = sum(1 for a in trace if a.name == "propose")
    return (seed, crashes, proposals, bool(verdict))


def sweep(quick=False, jobs=1):
    from repro.runner import parallel_map

    units = [
        (seed, crashes)
        for seed in range(2 if quick else 4)
        for crashes in [{}, {1: 2}, {0: 0, 3: 5}]
    ]
    return parallel_map(_row, units, jobs=jobs)


BENCH = BenchSpec(
    bench_id="e09",
    title="E9: E_C well-formedness (Theorem 44)",
    kernel=sweep,
    header=("seed", "crash plan", "proposals", "well-formed"),
)


def test_e09_environment_well_formedness(benchmark):
    rows = benchmark(sweep)
    print_series(BENCH.title, rows, header=BENCH.header)
    emit_bench_artifact(BENCH, rows)
    assert all(ok for (*_r, ok) in rows)


if __name__ == "__main__":
    raise SystemExit(bench_main(BENCH))
