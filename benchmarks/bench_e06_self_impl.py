"""E6 — Algorithm 3 / Theorem 13 / Corollary 14: A^self solves a
renaming of D, for every zoo AFD, across random fault patterns.

Series: detector -> patterns tried, implications held.
"""

# _helpers comes first: it puts src/ on sys.path so the script
# runs directly (python benchmarks/bench_*.py) without PYTHONPATH.
from _helpers import BenchSpec, bench_main, emit_bench_artifact, print_series

from repro.core.self_implementation import self_implementation_algorithm
from repro.detectors.registry import ZOO, make_detector
from repro.ioa.composition import Composition
from repro.ioa.scheduler import Scheduler
from repro.system.crash import CrashAutomaton
from repro.system.fault_pattern import FaultPattern


LOCATIONS = (0, 1, 2)


def run_one(afd, pattern, steps=400):
    algorithm, _renaming = self_implementation_algorithm(afd)
    system = Composition(
        [afd.automaton()]
        + list(algorithm.automata())
        + [CrashAutomaton(LOCATIONS)],
        name="self",
    )
    execution = Scheduler().run(
        system, max_steps=steps, injections=pattern.injections()
    )
    events = list(execution.actions)
    renamed = afd.renamed()
    premise = afd.check_limit(afd.project_events(events))
    conclusion = renamed.check_limit(renamed.project_events(events))
    return bool(premise), bool(conclusion)


def _patterns(quick):
    patterns = [
        FaultPattern({}, LOCATIONS),
        FaultPattern({2: 5}, LOCATIONS),
        FaultPattern.random(LOCATIONS, 2, horizon=60, seed=42),
    ]
    return patterns[:1] if quick else patterns


def _row(item):
    """One detector's implication check across the pattern catalogue."""
    name, quick = item
    afd = make_detector(name, LOCATIONS)
    patterns = _patterns(quick)
    held = 0
    for pattern in patterns:
        premise, conclusion = run_one(
            afd, pattern, steps=200 if quick else 400
        )
        if (not premise) or conclusion:
            held += 1
    return (name, len(patterns), held)


def sweep(quick=False, jobs=1):
    from repro.runner import parallel_map

    return parallel_map(
        _row, [(name, quick) for name in sorted(ZOO)], jobs=jobs
    )


BENCH = BenchSpec(
    bench_id="e06",
    title="E6: self-implementability across the zoo",
    kernel=sweep,
    header=("detector", "patterns", "implications held"),
)


def test_e06_self_implementability(benchmark):
    rows = benchmark(sweep)
    print_series(BENCH.title, rows, header=BENCH.header)
    emit_bench_artifact(BENCH, rows)
    assert all(held == total for (_n, total, held) in rows)


if __name__ == "__main__":
    raise SystemExit(bench_main(BENCH))
