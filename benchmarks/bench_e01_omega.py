"""E1 — Algorithm 1 / Section 3.3: FD-Omega's fair traces lie in T_Omega
and satisfy the three AFD closure properties.

Series: trace length vs. (membership, closure) verdicts across fault
plans; the benchmark times the full generate-and-check kernel.
"""

# _helpers comes first: it puts src/ on sys.path so the script
# runs directly (python benchmarks/bench_*.py) without PYTHONPATH.
from _helpers import (
    BenchSpec,
    bench_main,
    emit_bench_artifact,
    print_series,
    run_detector_trace,
)

from repro.core.afd import check_afd_closure_properties
from repro.detectors.omega import Omega
from repro.runner import parallel_map


LOCATIONS = (0, 1, 2, 3)
PLANS = [{}, {3: 5}, {0: 10}, {0: 8, 2: 20}, {1: 0, 2: 0, 3: 0}]


def _row(item):
    """One crash plan's generate-and-check, rebuilt from plain data."""
    crashes, steps = item
    omega = Omega(LOCATIONS)
    trace = run_detector_trace(omega, crashes, steps, LOCATIONS)
    member = bool(omega.check_limit(trace))
    closed = bool(
        check_afd_closure_properties(
            omega, trace, num_samplings=3, num_reorderings=3, seed=1
        )
    )
    return (crashes, len(trace), member, closed)


def generate_and_check(steps=150, quick=False, jobs=1):
    if quick:
        steps = 60
    return parallel_map(_row, [(c, steps) for c in PLANS], jobs=jobs)


BENCH = BenchSpec(
    bench_id="e01",
    title="E1: FD-Omega traces vs T_Omega",
    kernel=generate_and_check,
    header=("crash plan", "events", "in T_Omega", "closures hold"),
)


def test_e01_omega_membership_and_closures(benchmark):
    rows = benchmark(generate_and_check)
    print_series(BENCH.title, rows, header=BENCH.header)
    emit_bench_artifact(BENCH, rows)
    assert all(member and closed for (_p, _n, member, closed) in rows)


if __name__ == "__main__":
    raise SystemExit(bench_main(BENCH))
