"""E1 — Algorithm 1 / Section 3.3: FD-Omega's fair traces lie in T_Omega
and satisfy the three AFD closure properties.

Series: trace length vs. (membership, closure) verdicts across fault
plans; the benchmark times the full generate-and-check kernel.
"""

from repro.core.afd import check_afd_closure_properties
from repro.detectors.omega import Omega

from _helpers import print_series, run_detector_trace

LOCATIONS = (0, 1, 2, 3)
PLANS = [{}, {3: 5}, {0: 10}, {0: 8, 2: 20}, {1: 0, 2: 0, 3: 0}]


def generate_and_check(steps=150):
    omega = Omega(LOCATIONS)
    rows = []
    for crashes in PLANS:
        trace = run_detector_trace(omega, crashes, steps, LOCATIONS)
        member = bool(omega.check_limit(trace))
        closed = bool(
            check_afd_closure_properties(
                omega, trace, num_samplings=3, num_reorderings=3, seed=1
            )
        )
        rows.append((crashes, len(trace), member, closed))
    return rows


def test_e01_omega_membership_and_closures(benchmark):
    rows = benchmark(generate_and_check)
    print_series(
        "E1: FD-Omega traces vs T_Omega",
        rows,
        header=("crash plan", "events", "in T_Omega", "closures hold"),
    )
    assert all(member and closed for (_p, _n, member, closed) in rows)
