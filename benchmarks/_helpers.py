"""Shared helpers for the experiment benchmarks (DESIGN.md, Section 4).

Each ``bench_eXX_*.py`` module reproduces one experiment from the
per-experiment index: it asserts the paper's qualitative claim and prints
the measured series, while pytest-benchmark times the harness kernel.
"""

from __future__ import annotations

import sys

from repro.ioa.scheduler import Scheduler
from repro.system.fault_pattern import FaultPattern


def run_detector_trace(detector, crashes, steps, locations):
    """Generate one fair detector trace under a crash plan."""
    execution = Scheduler().run(
        detector.automaton(),
        max_steps=steps,
        injections=FaultPattern(crashes, locations).injections(),
    )
    return list(execution.actions)


def print_series(title: str, rows, header=None) -> None:
    """Print an experiment's series the way the index promises."""
    print(f"\n[{title}]", file=sys.stderr)
    if header:
        print("  " + " | ".join(str(h) for h in header), file=sys.stderr)
    for row in rows:
        print("  " + " | ".join(str(c) for c in row), file=sys.stderr)
