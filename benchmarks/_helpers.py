"""Shared helpers for the experiment benchmarks (DESIGN.md, Section 4).

Each ``bench_eXX_*.py`` module reproduces one experiment from the
per-experiment index: it asserts the paper's qualitative claim, prints
the measured series, and **persists** the series as a ``BENCH_<ID>.json``
artifact in the repository root (schema: :mod:`repro.obs.schema`).

Every module declares a :class:`BenchSpec` and can be run three ways:

* ``pytest benchmarks/ --benchmark-only`` — the historical harness;
  pytest-benchmark times the kernel, the test asserts the claim and
  emits the artifact;
* ``python benchmarks/bench_eXX_*.py [--quick] [--jobs N]`` —
  standalone, via :func:`bench_main`: runs the kernel once, wall-times
  it, prints the series and emits the artifact (``--quick`` asks the
  kernel for its scaled-down parameterization — useful for CI smoke
  runs; ``--jobs N`` fans the kernel's independent units across ``N``
  worker processes via :mod:`repro.runner`, with results identical to
  the serial run);
* ``python benchmarks/run_sweep.py [--quick] [--jobs N]`` — the whole
  suite, optionally with whole benchmarks fanned across processes.
"""

from __future__ import annotations

import inspect
import json
import os
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Sequence

# Make the bench scripts runnable without PYTHONPATH=src.
_REPO_ROOT = Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.ioa.scheduler import Scheduler
from repro.obs.schema import make_bench_artifact
from repro.system.fault_pattern import FaultPattern


@dataclass
class BenchSpec:
    """One benchmark's identity and kernel.

    ``kernel`` returns the series rows; if its signature has a ``quick``
    parameter, ``--quick`` runs pass ``quick=True`` and the kernel is
    expected to shrink its sweep accordingly.  If it has a ``jobs``
    parameter, the kernel fans its independent units across that many
    worker processes (``repro.runner.parallel_map`` /
    ``repro.runner.BatchRunner``) — by the engine's determinism
    contract, the rows are identical at any job count.
    """

    bench_id: str
    title: str
    kernel: Callable[..., Sequence[Sequence[Any]]]
    header: Optional[Sequence[str]] = None

    def run_kernel(self, quick: bool = False, jobs: int = 1):
        params = inspect.signature(self.kernel).parameters
        kwargs = {}
        if "quick" in params:
            kwargs["quick"] = quick
        if "jobs" in params:
            kwargs["jobs"] = jobs
        return self.kernel(**kwargs)

    @property
    def artifact_path(self) -> Path:
        return _REPO_ROOT / f"BENCH_{self.bench_id.upper()}.json"

    @property
    def profile_path(self) -> Path:
        return _REPO_ROOT / f"PROFILE_{self.bench_id.upper()}.json"


def run_detector_trace(detector, crashes, steps, locations):
    """Generate one fair detector trace under a crash plan."""
    execution = Scheduler().run(
        detector.automaton(),
        max_steps=steps,
        injections=FaultPattern(crashes, locations).injections(),
    )
    return list(execution.actions)


def print_series(title: str, rows, header=None) -> None:
    """Print an experiment's series the way the index promises."""
    print(f"\n[{title}]", file=sys.stderr)
    if header:
        print("  " + " | ".join(str(h) for h in header), file=sys.stderr)
    for row in rows:
        print("  " + " | ".join(str(c) for c in row), file=sys.stderr)


def emit_bench_artifact(
    spec: BenchSpec,
    rows,
    timings: Optional[Dict[str, float]] = None,
    quick: bool = False,
    metrics: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write the ``BENCH_<ID>.json`` artifact for one measured series."""
    doc = make_bench_artifact(
        bench_id=spec.bench_id,
        title=spec.title,
        rows=rows,
        header=spec.header,
        timings=timings,
        metrics=metrics,
        quick=quick,
    )
    path = spec.artifact_path
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(doc, fp, indent=2)
        fp.write("\n")
    return path


def profiled_kernel_run(spec: BenchSpec, quick: bool = False, jobs: int = 1):
    """Run a kernel with a process-wide profiler installed.

    Returns ``(rows, profile_summary)``.  The kernels build their own
    schedulers internally, so the profiler rides the
    :func:`repro.ioa.scheduler.set_default_profiler` seam; its cache
    window starts at the profiler's construction, so the summary's
    ``cache`` block is the kernel's own memo activity (hit rates on the
    composition/tree memos), not the process's lifetime tally.
    Profiling books costs without changing schedules — the returned rows
    are byte-identical to an unprofiled run.
    """
    from repro.ioa.scheduler import set_default_profiler
    from repro.obs.prof import StepProfiler

    profiler = StepProfiler()
    previous = set_default_profiler(profiler)
    try:
        rows = spec.run_kernel(quick=quick, jobs=jobs)
    finally:
        set_default_profiler(previous)
    return rows, profiler.summary()


def write_profile(spec: BenchSpec, summary: Dict[str, Any]) -> Path:
    """Persist one kernel's ``repro.profile/1`` summary document."""
    path = spec.profile_path
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(summary, fp, indent=2, sort_keys=True)
        fp.write("\n")
    return path


def print_profile(bench_id: str, summary: Dict[str, Any]) -> None:
    """One console line per phase plus the cache hit rates."""
    for name, phase in summary.get("phases", {}).items():
        print(
            f"[{bench_id}]   phase {name:<9} {phase['calls']:>9} calls  "
            f"{phase['wall_s']:.4f}s",
            file=sys.stderr,
        )
    for name, stats in summary.get("cache", {}).items():
        print(
            f"[{bench_id}]   cache {name:<22} hit rate "
            f"{stats['hit_rate']:.1%} ({stats['hits']}/{stats['hits'] + stats['misses']})",
            file=sys.stderr,
        )


def record_bench_in_ledger(
    ledger_path: str,
    artifact_path: Path,
    profile: Optional[Dict[str, Any]] = None,
) -> None:
    """Append one bench artifact's content-addressed ledger entry."""
    from repro.obs.ledger import RunLedger

    with open(artifact_path, "r", encoding="utf-8") as fp:
        doc = json.load(fp)
    RunLedger(ledger_path).record_bench(
        doc, path=str(artifact_path), profile=profile
    )


def pop_option(args, name: str) -> Optional[str]:
    """Extract ``--name VALUE`` / ``--name=VALUE`` (mutates ``args``)."""
    for k, arg in enumerate(list(args)):
        if arg == name:
            if k + 1 >= len(args):
                raise ValueError(f"{name} needs a value")
            value = args[k + 1]
            del args[k : k + 2]
            return value
        if arg.startswith(name + "="):
            del args[k]
            return arg.split("=", 1)[1]
    return None


def pop_jobs(args) -> Optional[int]:
    """Extract ``--jobs N`` / ``--jobs=N`` from ``args`` (mutates it).

    Returns the parsed value, ``None`` if absent.  ``--jobs 0`` means
    "all usable cores" (``repro.runner.default_jobs``).  Raises
    ``ValueError`` on a malformed value.
    """
    jobs = None
    for k, arg in enumerate(list(args)):
        if arg == "--jobs":
            if k + 1 >= len(args):
                raise ValueError("--jobs needs a value")
            jobs = int(args[k + 1])
            del args[k : k + 2]
            break
        if arg.startswith("--jobs="):
            jobs = int(arg.split("=", 1)[1])
            del args[k]
            break
    if jobs is not None and jobs <= 0:
        from repro.runner import default_jobs

        jobs = default_jobs()
    return jobs


def bench_main(spec: BenchSpec, argv: Optional[Sequence[str]] = None) -> int:
    """Standalone CLI for one benchmark: run, print, persist.

    ``--profile`` additionally books the kernel's step phases and cache
    hit rates (:mod:`repro.obs.prof`) into ``PROFILE_<ID>.json``;
    ``--ledger PATH`` appends a content-addressed record of the emitted
    artifact to the run ledger at PATH (:mod:`repro.obs.ledger`);
    ``--compiled`` routes every run the kernel makes through the
    compiled core (:mod:`repro.compiled`, via
    ``set_compiled_default(True)``) — by the byte-identity contract the
    measured series are unchanged, only the wall time moves.  None of
    the flags changes the measured series.
    """
    args = list(sys.argv[1:] if argv is None else argv)
    try:
        jobs = pop_jobs(args) or 1
        ledger_path = pop_option(args, "--ledger")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    quick = "--quick" in args
    profile = "--profile" in args
    compiled = "--compiled" in args
    unknown = [
        a for a in args if a not in ("--quick", "--profile", "--compiled")
    ]
    if unknown:
        print(
            f"usage: python benchmarks/bench_{spec.bench_id}_*.py "
            "[--quick] [--jobs N] [--profile] [--compiled] [--ledger PATH]",
            file=sys.stderr,
        )
        return 2
    from repro.compiled.config import set_compiled_default

    summary = None
    previous_default = set_compiled_default(True) if compiled else None
    previous_env = os.environ.get("REPRO_COMPILED")
    if compiled:
        # Worker processes (``--jobs N``) read the env var at import.
        os.environ["REPRO_COMPILED"] = "1"
    start = time.perf_counter()
    try:
        if profile:
            rows, summary = profiled_kernel_run(spec, quick=quick, jobs=jobs)
        else:
            rows = spec.run_kernel(quick=quick, jobs=jobs)
    finally:
        if compiled:
            set_compiled_default(previous_default)
            if previous_env is None:
                os.environ.pop("REPRO_COMPILED", None)
            else:
                os.environ["REPRO_COMPILED"] = previous_env
    wall = time.perf_counter() - start
    print_series(spec.title, rows, header=spec.header)
    path = emit_bench_artifact(
        spec,
        rows,
        timings={"kernel_wall_s": wall},
        quick=quick,
        metrics={"jobs": jobs, "compiled": compiled},
    )
    print(
        f"[{spec.bench_id}] kernel {wall:.3f}s (jobs={jobs}"
        f"{', compiled' if compiled else ''}) -> {path}",
        file=sys.stderr,
    )
    if summary is not None:
        profile_path = write_profile(spec, summary)
        print_profile(spec.bench_id, summary)
        print(f"[{spec.bench_id}] profile -> {profile_path}", file=sys.stderr)
    if ledger_path is not None:
        record_bench_in_ledger(ledger_path, path, profile=summary)
        print(f"[{spec.bench_id}] ledger -> {ledger_path}", file=sys.stderr)
    return 0
