"""One-command benchmark sweep: run every ``bench_*`` kernel and
persist its ``BENCH_<ID>.json`` artifact (docs/EXPERIMENTS.md).

Usage::

    python benchmarks/run_sweep.py [--quick] [--only e10,a05] [--jobs N]
                                   [--profile] [--compiled] [--ledger PATH]

``--quick`` asks each kernel for its scaled-down parameterization (the
same flag the standalone ``python benchmarks/bench_*.py --quick`` CLIs
accept); kernels without a ``quick`` parameter run at full size.
``--only`` restricts the sweep to a comma-separated list of bench ids.
``--jobs N`` fans whole benchmarks across ``N`` worker processes via
:func:`repro.runner.parallel_map` (``--jobs 0`` = all usable cores).
Kernels are deterministic, so the artifacts carry the same series at
any job count; artifact files are always written by this parent
process, in bench order.

``--profile`` books each kernel's step phases and cache hit rates into
``PROFILE_<ID>.json`` (workers profile on their side of the fork; the
parent writes the files).  ``--compiled`` routes every scheduler/tree
run through the compiled core (:mod:`repro.compiled`) — byte-identical
series, different wall times; the perf-guard CI job sweeps both paths
and diffs them.  ``--ledger PATH`` appends one content-addressed record
per emitted artifact to the run ledger at PATH.  No flag changes any
series.

Exit status is the number of failed benchmarks (0 on full success).
"""

from __future__ import annotations

import importlib
import sys
import time
import traceback
from pathlib import Path

_BENCH_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(_BENCH_DIR))

from _helpers import (  # noqa: E402
    BenchSpec,
    emit_bench_artifact,
    pop_jobs,
    pop_option,
    print_profile,
    print_series,
    profiled_kernel_run,
    record_bench_in_ledger,
    write_profile,
)


def discover():
    """Import every bench_* module and collect its BENCH spec."""
    specs = []
    for path in sorted(_BENCH_DIR.glob("bench_*.py")):
        module = importlib.import_module(path.stem)
        spec = getattr(module, "BENCH", None)
        if isinstance(spec, BenchSpec):
            specs.append((path.stem, spec))
    return specs


def _run_one(item):
    """Worker entry: run one benchmark kernel, serially, in isolation.

    Takes ``(module_stem, quick, profile)`` — plain picklable data —
    and re-imports the bench module on its side of the fork.  Returns
    ``(stem, rows, wall_s, profile_summary, error)``; the parent owns
    all printing and artifact/profile writes so output and files stay
    ordered.  Profiling happens worker-side (the profiler's cache
    window is per-process), and the summary dict is plain JSON-ready
    data, so it pickles back cleanly.
    """
    stem, quick, profile, compiled = item
    module = importlib.import_module(stem)
    spec = module.BENCH
    from repro.compiled.config import set_compiled_default

    previous = set_compiled_default(True) if compiled else None
    summary = None
    start = time.perf_counter()
    try:
        if profile:
            rows, summary = profiled_kernel_run(spec, quick=quick, jobs=1)
        else:
            rows = spec.run_kernel(quick=quick, jobs=1)
    except Exception:
        return (
            stem,
            None,
            time.perf_counter() - start,
            None,
            traceback.format_exc(),
        )
    finally:
        if compiled:
            set_compiled_default(previous)
    return stem, rows, time.perf_counter() - start, summary, None


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    try:
        jobs = pop_jobs(args) or 1
        ledger_path = pop_option(args, "--ledger")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    quick = "--quick" in args
    profile = "--profile" in args
    compiled = "--compiled" in args
    only = None
    for arg in args:
        if arg.startswith("--only"):
            value = arg.split("=", 1)[1] if "=" in arg else ""
            if not value:
                idx = args.index(arg)
                value = args[idx + 1] if idx + 1 < len(args) else ""
            only = {b.strip().lower() for b in value.split(",") if b.strip()}

    specs = discover()
    if only is not None:
        specs = [(stem, s) for (stem, s) in specs if s.bench_id.lower() in only]
    if not specs:
        print("no benchmarks selected", file=sys.stderr)
        return 1

    from repro.runner import parallel_map

    sweep_start = time.perf_counter()
    outcomes = parallel_map(
        _run_one,
        [(stem, quick, profile, compiled) for (stem, _s) in specs],
        jobs=jobs,
    )
    sweep_wall = time.perf_counter() - sweep_start

    by_stem = dict(zip([stem for (stem, _s) in specs], outcomes))
    failures = 0
    for stem, spec in specs:
        _stem, rows, wall, summary, error = by_stem[stem]
        if error is not None:
            failures += 1
            print(f"[{spec.bench_id}] FAILED", file=sys.stderr)
            print(error, file=sys.stderr)
            continue
        print_series(spec.title, rows, header=spec.header)
        path = emit_bench_artifact(
            spec,
            rows,
            timings={"kernel_wall_s": wall},
            quick=quick,
            metrics={"jobs": jobs, "compiled": compiled},
        )
        print(
            f"[{spec.bench_id}] kernel {wall:.3f}s -> {path}",
            file=sys.stderr,
        )
        if summary is not None:
            profile_path = write_profile(spec, summary)
            print_profile(spec.bench_id, summary)
            print(
                f"[{spec.bench_id}] profile -> {profile_path}",
                file=sys.stderr,
            )
        if ledger_path is not None:
            record_bench_in_ledger(ledger_path, path, profile=summary)
    print(
        f"\nsweep: {len(specs) - failures}/{len(specs)} benchmarks ok "
        f"in {sweep_wall:.1f}s (jobs={jobs})",
        file=sys.stderr,
    )
    return failures


if __name__ == "__main__":
    raise SystemExit(main())
