"""One-command benchmark sweep: run every ``bench_*`` kernel and
persist its ``BENCH_<ID>.json`` artifact (docs/EXPERIMENTS.md).

Usage::

    python benchmarks/run_sweep.py [--quick] [--only e10,a05] [--jobs N]
                                   [--profile] [--compiled] [--ledger PATH]
                                   [--cache DIR]

``--quick`` asks each kernel for its scaled-down parameterization (the
same flag the standalone ``python benchmarks/bench_*.py --quick`` CLIs
accept); kernels without a ``quick`` parameter run at full size.
``--only`` restricts the sweep to a comma-separated list of bench ids.
``--jobs N`` fans whole benchmarks across ``N`` worker processes via
:func:`repro.runner.parallel_map` (``--jobs 0`` = all usable cores).
Kernels are deterministic, so the artifacts carry the same series at
any job count; artifact files are always written by this parent
process, in bench order.

``--profile`` books each kernel's step phases and cache hit rates into
``PROFILE_<ID>.json`` (workers profile on their side of the fork; the
parent writes the files).  ``--compiled`` routes every scheduler/tree
run through the compiled core (:mod:`repro.compiled`) — byte-identical
series, different wall times; the perf-guard CI job sweeps both paths
and diffs them.  ``--ledger PATH`` appends one content-addressed record
per emitted artifact to the run ledger at PATH.  No flag changes any
series.

``--cache DIR`` makes the sweep incremental through a content-addressed
:class:`repro.cache.ResultStore` at DIR: each kernel's measured rows
are stored under the digest of ``(bench_id, quick, compiled)`` (plus
the store's version/engine stamps), and a later sweep into the same
store serves unchanged kernels from disk without executing them — a
warm full sweep regenerates all 23 series byte-identically with zero
kernel executions.  ``--profile`` forces execution (there is no kernel
to profile on a hit), so the two flags together bypass the cache reads.
The summary line ``sweep-cache: hits=H misses=M kernels_executed=M``
is machine-checkable (CI job ``cache-smoke``).

Exit status is the number of failed benchmarks (0 on full success).
"""

from __future__ import annotations

import importlib
import sys
import time
import traceback
from pathlib import Path

_BENCH_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(_BENCH_DIR))

from _helpers import (  # noqa: E402
    BenchSpec,
    emit_bench_artifact,
    pop_jobs,
    pop_option,
    print_profile,
    print_series,
    profiled_kernel_run,
    record_bench_in_ledger,
    write_profile,
)


def discover():
    """Import every bench_* module and collect its BENCH spec."""
    specs = []
    for path in sorted(_BENCH_DIR.glob("bench_*.py")):
        module = importlib.import_module(path.stem)
        spec = getattr(module, "BENCH", None)
        if isinstance(spec, BenchSpec):
            specs.append((path.stem, spec))
    return specs


def _run_one(item):
    """Worker entry: run one benchmark kernel, serially, in isolation.

    Takes ``(module_stem, quick, profile)`` — plain picklable data —
    and re-imports the bench module on its side of the fork.  Returns
    ``(stem, rows, wall_s, profile_summary, error)``; the parent owns
    all printing and artifact/profile writes so output and files stay
    ordered.  Profiling happens worker-side (the profiler's cache
    window is per-process), and the summary dict is plain JSON-ready
    data, so it pickles back cleanly.
    """
    stem, quick, profile, compiled = item
    module = importlib.import_module(stem)
    spec = module.BENCH
    from repro.compiled.config import set_compiled_default

    previous = set_compiled_default(True) if compiled else None
    summary = None
    start = time.perf_counter()
    try:
        if profile:
            rows, summary = profiled_kernel_run(spec, quick=quick, jobs=1)
        else:
            rows = spec.run_kernel(quick=quick, jobs=1)
    except Exception:
        return (
            stem,
            None,
            time.perf_counter() - start,
            None,
            traceback.format_exc(),
        )
    finally:
        if compiled:
            set_compiled_default(previous)
    return stem, rows, time.perf_counter() - start, summary, None


def _bench_cache_identity(bench_id, quick, compiled):
    """The content-addressed identity of one kernel's measured rows.

    ``compiled`` is part of the identity even though the engines are
    byte-identical twins: serving interpreted rows to a ``--compiled``
    sweep (or vice versa) would mask exactly the drift the perf-guard
    CI job exists to catch.
    """
    return {
        "kind": "bench-rows",
        "bench_id": bench_id,
        "quick": bool(quick),
        "compiled": bool(compiled),
    }


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    try:
        jobs = pop_jobs(args) or 1
        ledger_path = pop_option(args, "--ledger")
        cache_dir = pop_option(args, "--cache")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    quick = "--quick" in args
    profile = "--profile" in args
    compiled = "--compiled" in args
    only = None
    for arg in args:
        if arg.startswith("--only"):
            value = arg.split("=", 1)[1] if "=" in arg else ""
            if not value:
                idx = args.index(arg)
                value = args[idx + 1] if idx + 1 < len(args) else ""
            only = {b.strip().lower() for b in value.split(",") if b.strip()}

    specs = discover()
    if only is not None:
        specs = [(stem, s) for (stem, s) in specs if s.bench_id.lower() in only]
    if not specs:
        print("no benchmarks selected", file=sys.stderr)
        return 1

    from repro.runner import parallel_map

    store = None
    cached_rows = {}
    if cache_dir is not None:
        from repro.cache import ResultStore
        from repro.obs.ledger import digest

        store = ResultStore(cache_dir)
        if profile:
            # There is no kernel to profile on a hit; execute everything
            # (results are still published back for later warm sweeps).
            print(
                "sweep-cache: --profile forces execution; cache reads "
                "skipped this sweep",
                file=sys.stderr,
            )
        else:
            for stem, spec in specs:
                key = digest(
                    _bench_cache_identity(spec.bench_id, quick, compiled)
                )
                payload = store.get_object(key)
                if payload is not None:
                    cached_rows[stem] = payload

    to_run = [
        (stem, quick, profile, compiled)
        for (stem, _s) in specs
        if stem not in cached_rows
    ]
    sweep_start = time.perf_counter()
    outcomes = parallel_map(_run_one, to_run, jobs=jobs)
    sweep_wall = time.perf_counter() - sweep_start

    by_stem = dict(zip([stem for (stem, *_rest) in to_run], outcomes))
    for stem, payload in cached_rows.items():
        by_stem[stem] = (
            stem,
            payload["rows"],
            payload["kernel_wall_s"],
            None,
            None,
        )
    failures = 0
    for stem, spec in specs:
        _stem, rows, wall, summary, error = by_stem[stem]
        hit = stem in cached_rows
        if error is not None:
            failures += 1
            print(f"[{spec.bench_id}] FAILED", file=sys.stderr)
            print(error, file=sys.stderr)
            continue
        print_series(spec.title, rows, header=spec.header)
        metrics = {"jobs": jobs, "compiled": compiled}
        if store is not None:
            metrics["cached"] = hit
        path = emit_bench_artifact(
            spec,
            rows,
            timings={"kernel_wall_s": wall},
            quick=quick,
            metrics=metrics,
        )
        if hit:
            # The carried wall is the *cold* kernel's — the measured
            # cost of producing these rows, not of this sweep.
            print(
                f"[{spec.bench_id}] cache hit (cold kernel {wall:.3f}s) "
                f"-> {path}",
                file=sys.stderr,
            )
        else:
            print(
                f"[{spec.bench_id}] kernel {wall:.3f}s -> {path}",
                file=sys.stderr,
            )
            if store is not None:
                store.put_object(
                    _bench_cache_identity(spec.bench_id, quick, compiled),
                    {"rows": rows, "kernel_wall_s": wall},
                )
        if summary is not None:
            profile_path = write_profile(spec, summary)
            print_profile(spec.bench_id, summary)
            print(
                f"[{spec.bench_id}] profile -> {profile_path}",
                file=sys.stderr,
            )
        if ledger_path is not None:
            record_bench_in_ledger(ledger_path, path, profile=summary)
    if store is not None:
        print(
            f"sweep-cache: hits={len(cached_rows)} misses={len(to_run)} "
            f"kernels_executed={len(to_run)} -> {cache_dir}",
            file=sys.stderr,
        )
    print(
        f"\nsweep: {len(specs) - failures}/{len(specs)} benchmarks ok "
        f"in {sweep_wall:.1f}s (jobs={jobs})",
        file=sys.stderr,
    )
    return failures


if __name__ == "__main__":
    raise SystemExit(main())
