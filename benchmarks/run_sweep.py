"""One-command benchmark sweep: run every ``bench_*`` kernel and
persist its ``BENCH_<ID>.json`` artifact (docs/EXPERIMENTS.md).

Usage::

    python benchmarks/run_sweep.py [--quick] [--only e10,a05]

``--quick`` asks each kernel for its scaled-down parameterization (the
same flag the standalone ``python benchmarks/bench_*.py --quick`` CLIs
accept); kernels without a ``quick`` parameter run at full size.
``--only`` restricts the sweep to a comma-separated list of bench ids.

Exit status is the number of failed benchmarks (0 on full success).
"""

from __future__ import annotations

import importlib
import sys
import time
import traceback
from pathlib import Path

_BENCH_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(_BENCH_DIR))

from _helpers import BenchSpec, emit_bench_artifact, print_series  # noqa: E402


def discover():
    """Import every bench_* module and collect its BENCH spec."""
    specs = []
    for path in sorted(_BENCH_DIR.glob("bench_*.py")):
        module = importlib.import_module(path.stem)
        spec = getattr(module, "BENCH", None)
        if isinstance(spec, BenchSpec):
            specs.append(spec)
    return specs


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    quick = "--quick" in args
    only = None
    for arg in args:
        if arg.startswith("--only"):
            value = arg.split("=", 1)[1] if "=" in arg else ""
            if not value:
                idx = args.index(arg)
                value = args[idx + 1] if idx + 1 < len(args) else ""
            only = {b.strip().lower() for b in value.split(",") if b.strip()}

    specs = discover()
    if only is not None:
        specs = [s for s in specs if s.bench_id.lower() in only]
    if not specs:
        print("no benchmarks selected", file=sys.stderr)
        return 1

    failures = 0
    for spec in specs:
        start = time.perf_counter()
        try:
            rows = spec.run_kernel(quick=quick)
        except Exception:
            failures += 1
            print(f"[{spec.bench_id}] FAILED", file=sys.stderr)
            traceback.print_exc()
            continue
        wall = time.perf_counter() - start
        print_series(spec.title, rows, header=spec.header)
        path = emit_bench_artifact(
            spec, rows, timings={"kernel_wall_s": wall}, quick=quick
        )
        print(
            f"[{spec.bench_id}] kernel {wall:.3f}s -> {path}",
            file=sys.stderr,
        )
    print(
        f"\nsweep: {len(specs) - failures}/{len(specs)} benchmarks ok",
        file=sys.stderr,
    )
    return failures


if __name__ == "__main__":
    raise SystemExit(main())
