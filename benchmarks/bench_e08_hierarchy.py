"""E8 — Theorem 18 / Corollary 19: the detector hierarchy, validated
edge-by-edge, and the induced problem order (stronger detectors solve
whatever weaker ones solve — witnessed by running every registered
reduction and by solving consensus both with P directly and through the
P -> ◇P pipeline).

Series: every registered edge x fault pattern -> held?
"""

# _helpers comes first: it puts src/ on sys.path so the script
# runs directly (python benchmarks/bench_*.py) without PYTHONPATH.
from _helpers import BenchSpec, bench_main, emit_bench_artifact, print_series

from repro.analysis.hierarchy import (
    build_hierarchy_graph,
    is_stronger,
    validate_hierarchy,
)
from repro.system.fault_pattern import FaultPattern


LOCATIONS = (0, 1, 2)

REACH_PAIRS = [
    ("P", "antiOmega"),
    ("P", "Omega^2"),
    ("EvP", "antiOmega"),
    ("antiOmega", "P"),
    ("Sigma", "Omega"),
]


def validate(quick=False):
    patterns = [
        FaultPattern({}, LOCATIONS),
        FaultPattern({1: 7}, LOCATIONS),
    ]
    if quick:
        patterns = patterns[:1]
    return validate_hierarchy(
        LOCATIONS, patterns, max_steps=300 if quick else 600
    )


def sweep(quick=False):
    """Reachability verdicts plus the empirical edge-validation census."""
    validation = validate(quick=quick)
    rows = [(s, t, is_stronger(s, t)) for (s, t) in REACH_PAIRS]
    rows.append(
        ("edges held", f"{validation.edges_held}/{validation.edges_checked}",
         validation.all_held)
    )
    return rows


BENCH = BenchSpec(
    bench_id="e08",
    title="E8: hierarchy reachability and empirical edge validation",
    kernel=sweep,
    header=("source", "target", "source ⪰ target / held"),
)


def test_e08_hierarchy_validation(benchmark):
    validation = benchmark(validate)
    graph = build_hierarchy_graph()
    reach_rows = [(s, t, is_stronger(s, t)) for (s, t) in REACH_PAIRS]
    print_series(
        "E8: hierarchy reachability (Theorem 15 closure)",
        reach_rows,
        header=("source", "target", "source ⪰ target"),
    )
    print_series(
        "E8: empirical edge validation",
        [
            (
                f"{validation.edges_held}/{validation.edges_checked}",
                "edges held",
            )
        ],
    )
    emit_bench_artifact(
        BENCH,
        reach_rows
        + [
            ("edges held",
             f"{validation.edges_held}/{validation.edges_checked}",
             validation.all_held)
        ],
    )
    assert validation.all_held, validation.failures
    # The order induced on problems is strict where separations exist:
    # reachability must NOT be symmetric for these pairs.
    assert is_stronger("P", "antiOmega")
    assert not is_stronger("antiOmega", "P")
    assert graph.has_edge("P", "Sigma")


if __name__ == "__main__":
    raise SystemExit(bench_main(BENCH))
