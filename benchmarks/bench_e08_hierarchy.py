"""E8 — Theorem 18 / Corollary 19: the detector hierarchy, validated
edge-by-edge, and the induced problem order (stronger detectors solve
whatever weaker ones solve — witnessed by running every registered
reduction and by solving consensus both with P directly and through the
P -> ◇P pipeline).

Series: every registered edge x fault pattern -> held?
"""

from repro.analysis.hierarchy import (
    build_hierarchy_graph,
    is_stronger,
    validate_hierarchy,
)
from repro.system.fault_pattern import FaultPattern

from _helpers import print_series

LOCATIONS = (0, 1, 2)


def validate():
    patterns = [
        FaultPattern({}, LOCATIONS),
        FaultPattern({1: 7}, LOCATIONS),
    ]
    return validate_hierarchy(LOCATIONS, patterns, max_steps=600)


def test_e08_hierarchy_validation(benchmark):
    validation = benchmark(validate)
    graph = build_hierarchy_graph()
    reach_rows = [
        (s, t, is_stronger(s, t))
        for (s, t) in [
            ("P", "antiOmega"),
            ("P", "Omega^2"),
            ("EvP", "antiOmega"),
            ("antiOmega", "P"),
            ("Sigma", "Omega"),
        ]
    ]
    print_series(
        "E8: hierarchy reachability (Theorem 15 closure)",
        reach_rows,
        header=("source", "target", "source ⪰ target"),
    )
    print_series(
        "E8: empirical edge validation",
        [
            (
                f"{validation.edges_held}/{validation.edges_checked}",
                "edges held",
            )
        ],
    )
    assert validation.all_held, validation.failures
    # The order induced on problems is strict where separations exist:
    # reachability must NOT be symmetric for these pairs.
    assert is_stronger("P", "antiOmega")
    assert not is_stronger("antiOmega", "P")
    assert graph.has_edge("P", "Sigma")
