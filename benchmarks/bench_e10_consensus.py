"""E10 — Section 9 / Proposition 46: consensus with Omega (f < n/2),
with ◇S (Chandra–Toueg, f < n/2), and with P (f < n) decides correctly
under crashes.

Series: decision latency (events until everyone settled) and message
count vs (n, crashes), per algorithm/detector pair.  The expected
*shape*: latency grows with n; P's rotating coordinator pays ~n rounds
while Omega's Paxos and ◇S's first live round settle in a constant
number of phases.

This is the flagship ``repro.runner`` benchmark: the grid is a list of
:class:`~repro.runner.ExperimentSpec` values and a
:class:`~repro.runner.BatchRunner` executes them — serially or fanned
across worker processes (``--jobs N``) with identical results.
"""

# _helpers comes first: it puts src/ on sys.path so the script
# runs directly (python benchmarks/bench_*.py) without PYTHONPATH.
from _helpers import BenchSpec, bench_main, emit_bench_artifact, print_series

from repro.algorithms.consensus_ct import ct_consensus_algorithm
from repro.algorithms.consensus_omega import omega_consensus_algorithm
from repro.algorithms.consensus_perfect import perfect_consensus_algorithm
from repro.runner import BatchRunner, ExperimentSpec


STACKS = (
    ("Omega", omega_consensus_algorithm, "omega", lambda n: (n - 1) // 2),
    ("EvS", ct_consensus_algorithm, "evs", lambda n: (n - 1) // 2),
    ("P", perfect_consensus_algorithm, "p", lambda n: n - 1),
)


def build_specs(quick=False):
    """The experiment grid as picklable specs, one per run."""
    specs = []
    for n in (3,) if quick else (3, 5, 7):
        locations = tuple(range(n))
        proposals = {i: i % 2 for i in locations}
        for label, algorithm_factory, detector, f_of_n in STACKS:
            for crashes in ({}, {0: 10}):
                specs.append(
                    ExperimentSpec(
                        algorithm=algorithm_factory,
                        detector=detector,
                        locations=locations,
                        proposals=proposals,
                        crashes=crashes,
                        f=f_of_n(n),
                        max_steps=60_000,
                        label=f"{label}|n{n}|{'crash' if crashes else 'calm'}",
                    )
                )
    return specs


def sweep(quick=False, jobs=1):
    specs = build_specs(quick=quick)
    batch = BatchRunner(jobs=jobs).run(specs, raise_on_error=True)
    rows = []
    for spec, result in zip(specs, batch):
        assert result.all_live_decided and result.solved
        label, n_tag, crash_tag = spec.label.split("|")
        rows.append(
            (
                label,
                len(spec.locations),
                "yes" if crash_tag == "crash" else "no",
                result.steps,
                result.messages_sent,
            )
        )
    return rows


BENCH = BenchSpec(
    bench_id="e10",
    title="E10: consensus latency/messages vs (detector, n, leader crash)",
    kernel=sweep,
    header=("detector", "n", "crash?", "events", "messages"),
)


def test_e10_consensus_latency(benchmark):
    rows = benchmark.pedantic(sweep, rounds=2, iterations=1)
    print_series(BENCH.title, rows, header=BENCH.header)
    emit_bench_artifact(BENCH, rows)
    # Shape assertions: latency grows with n for both stacks.
    for label in ("Omega", "P"):
        series = [r for r in rows if r[0] == label and r[2] == "no"]
        latencies = [events for (_l, _n, _c, events, _m) in series]
        assert latencies == sorted(latencies)
    # Message complexity grows with n as well.
    omega_msgs = [m for (l, _n, c, _e, m) in rows if l == "Omega" and c == "no"]
    assert omega_msgs == sorted(omega_msgs)


if __name__ == "__main__":
    raise SystemExit(bench_main(BENCH))
