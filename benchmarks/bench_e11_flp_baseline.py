"""E11 — the FLP baseline [11]: without failure-detector events, an
adversarial scheduler keeps consensus undecided for as long as it
pleases; the *same* system with the detector's events flowing decides
promptly.

Series: FD starved vs FD enabled -> decisions after a fixed step budget.
"""

# _helpers comes first: it puts src/ on sys.path so the script
# runs directly (python benchmarks/bench_*.py) without PYTHONPATH.
from _helpers import BenchSpec, bench_main, emit_bench_artifact, print_series

from repro.algorithms.consensus_perfect import perfect_consensus_algorithm
from repro.analysis.stats import collect_run_statistics
from repro.detectors.perfect import PerfectAutomaton
from repro.ioa.composition import Composition
from repro.ioa.scheduler import AdversarialPolicy, Scheduler
from repro.system.channel import make_channels
from repro.system.crash import CrashAutomaton
from repro.system.environment import ScriptedConsensusEnvironment
from repro.system.fault_pattern import FaultPattern


LOCATIONS = (0, 1, 2)


def build_system():
    algorithm = perfect_consensus_algorithm(LOCATIONS)
    return Composition(
        list(algorithm.automata())
        + make_channels(LOCATIONS)
        + [
            PerfectAutomaton(LOCATIONS),
            ScriptedConsensusEnvironment({0: 1, 1: 0, 2: 0}),
            CrashAutomaton(LOCATIONS),
        ],
        name="flp",
    )


def starved_policy():
    def no_fd(state, options, step):
        for task, enabled in options:
            if not task.startswith("FD-P"):
                return min(enabled)
        return min(options[0][1])

    return AdversarialPolicy(no_fd)


def _row(item):
    """One schedule (starved or fair); the policy closure is rebuilt
    worker-side from the label since closures don't pickle."""
    label, budget = item
    scheduler = (
        Scheduler(starved_policy()) if label == "FD starved" else Scheduler()
    )
    pattern = FaultPattern({0: 2}, LOCATIONS)
    execution = scheduler.run(
        build_system(), max_steps=budget,
        injections=pattern.injections(),
    )
    stats = collect_run_statistics(execution)
    return (label, len(execution), stats.decisions)


def compare(budget=2500, quick=False, jobs=1):
    from repro.runner import parallel_map

    if quick:
        budget = 800
    units = [("FD starved", budget), ("FD enabled", budget)]
    return parallel_map(_row, units, jobs=jobs)


BENCH = BenchSpec(
    bench_id="e11",
    title="E11: FLP baseline — same system, with and without FD events",
    kernel=compare,
    header=("schedule", "events run", "decisions"),
)


def test_e11_flp_baseline(benchmark):
    rows = benchmark(compare)
    print_series(BENCH.title, rows, header=BENCH.header)
    emit_bench_artifact(BENCH, rows)
    starved = next(r for r in rows if r[0] == "FD starved")
    enabled = next(r for r in rows if r[0] == "FD enabled")
    assert starved[2] == 0, "starving the detector must stall consensus"
    assert enabled[2] == 2, "with the detector, both live locations decide"


if __name__ == "__main__":
    raise SystemExit(bench_main(BENCH))
