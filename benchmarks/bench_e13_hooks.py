"""E13 — Figure 2 / Lemma 55 / Section 9.5: the root is bivalent
(Proposition 51) and hooks exist in R^{t_D}.

Series: per t_D, valence census and hook count.
"""

from repro.algorithms.consensus_tree import (
    TreeConsensusProcess,
    tree_consensus_algorithm,
)
from repro.detectors.perfect import perfect_output
from repro.ioa.composition import Composition
from repro.system.channel import make_channels
from repro.system.environment import ConsensusEnvironment
from repro.system.fault_pattern import crash_action
from repro.tree.hooks import find_hooks
from repro.tree.tagged_tree import TaggedTreeGraph
from repro.tree.valence import (
    ValenceAnalysis,
    decision_extractor_for_processes,
)

from _helpers import print_series

LOCATIONS = (0, 1)


def build():
    algorithm = tree_consensus_algorithm(LOCATIONS)
    composition = Composition(
        list(algorithm.automata())
        + make_channels(LOCATIONS)
        + [ConsensusEnvironment(LOCATIONS)],
        name="tree-system",
    )
    return algorithm, composition


def td_catalogue():
    crash_free = [
        perfect_output(i, ()) for _ in range(8) for i in LOCATIONS
    ]
    one_crash = [perfect_output(0, ()), perfect_output(1, ())]
    one_crash += [crash_action(1)] + [perfect_output(0, (1,))] * 6
    early_crash = [crash_action(0)] + [perfect_output(1, (0,))] * 7
    return [
        ("crash-free", crash_free),
        ("crash 1 after round 1", one_crash),
        ("crash 0 immediately", early_crash),
    ]


def analyze_all():
    algorithm, composition = build()
    rows = []
    for label, td in td_catalogue():
        graph = TaggedTreeGraph(composition, td, max_vertices=500_000)
        valence = ValenceAnalysis(
            graph,
            decision_extractor_for_processes(
                composition,
                algorithm.automata(),
                TreeConsensusProcess.decision,
            ),
        )
        counts = valence.counts()
        hooks = find_hooks(graph, valence)
        rows.append(
            (
                label,
                graph.num_vertices,
                valence.root_valence().describe(),
                counts["bivalent"],
                counts["univalent"],
                len(hooks),
            )
        )
    return rows


def test_e13_hooks_exist(benchmark):
    rows = benchmark.pedantic(analyze_all, rounds=2, iterations=1)
    print_series(
        "E13: valence census and hooks per t_D",
        rows,
        header=("t_D", "vertices", "root", "bivalent", "univalent", "hooks"),
    )
    for (_label, _v, root, bivalent, _u, hooks) in rows:
        assert root == "bivalent"  # Proposition 51
        assert bivalent > 0
        assert hooks > 0  # Lemma 55
