"""E13 — Figure 2 / Lemma 55 / Section 9.5: the root is bivalent
(Proposition 51) and hooks exist in R^{t_D}.

Series: per t_D, valence census and hook count.
"""

# _helpers comes first: it puts src/ on sys.path so the script
# runs directly (python benchmarks/bench_*.py) without PYTHONPATH.
from _helpers import BenchSpec, bench_main, emit_bench_artifact, print_series

from repro.algorithms.consensus_tree import (
    TreeConsensusProcess,
    tree_consensus_algorithm,
)
from repro.detectors.perfect import perfect_output
from repro.ioa.composition import Composition
from repro.system.channel import make_channels
from repro.system.environment import ConsensusEnvironment
from repro.system.fault_pattern import crash_action
from repro.tree.hooks import find_hooks
from repro.tree.tagged_tree import TaggedTreeGraph
from repro.tree.valence import (
    ValenceAnalysis,
    decision_extractor_for_processes,
)


LOCATIONS = (0, 1)


def build():
    algorithm = tree_consensus_algorithm(LOCATIONS)
    composition = Composition(
        list(algorithm.automata())
        + make_channels(LOCATIONS)
        + [ConsensusEnvironment(LOCATIONS)],
        name="tree-system",
    )
    return algorithm, composition


def td_catalogue(rounds=8):
    crash_free = [
        perfect_output(i, ()) for _ in range(rounds) for i in LOCATIONS
    ]
    one_crash = [perfect_output(0, ()), perfect_output(1, ())]
    one_crash += [crash_action(1)] + [perfect_output(0, (1,))] * (rounds - 2)
    early_crash = [crash_action(0)] + [perfect_output(1, (0,))] * (rounds - 1)
    return [
        ("crash-free", crash_free),
        ("crash 1 after round 1", one_crash),
        ("crash 0 immediately", early_crash),
    ]


def _row(item):
    """Valence census + hook count for catalogue entry #index.

    The composition and t_D are rebuilt worker-side; only the index and
    the quick flag cross the process boundary.
    """
    index, quick = item
    algorithm, composition = build()
    label, td = td_catalogue(rounds=6 if quick else 8)[index]
    graph = TaggedTreeGraph(composition, td, max_vertices=500_000)
    valence = ValenceAnalysis(
        graph,
        decision_extractor_for_processes(
            composition,
            algorithm.automata(),
            TreeConsensusProcess.decision,
        ),
    )
    counts = valence.counts()
    hooks = find_hooks(graph, valence)
    return (
        label,
        graph.num_vertices,
        valence.root_valence().describe(),
        counts["bivalent"],
        counts["univalent"],
        len(hooks),
    )


def analyze_all(quick=False, jobs=1):
    from repro.runner import parallel_map

    count = len(td_catalogue(rounds=6 if quick else 8))
    if quick:
        count = min(count, 2)
    return parallel_map(
        _row, [(k, quick) for k in range(count)], jobs=jobs
    )


BENCH = BenchSpec(
    bench_id="e13",
    title="E13: valence census and hooks per t_D",
    kernel=analyze_all,
    header=("t_D", "vertices", "root", "bivalent", "univalent", "hooks"),
)


def test_e13_hooks_exist(benchmark):
    rows = benchmark.pedantic(analyze_all, rounds=2, iterations=1)
    print_series(BENCH.title, rows, header=BENCH.header)
    emit_bench_artifact(BENCH, rows)
    for (_label, _v, root, bivalent, _u, hooks) in rows:
        assert root == "bivalent"  # Proposition 51
        assert bivalent > 0
        assert hooks > 0  # Lemma 55


if __name__ == "__main__":
    raise SystemExit(bench_main(BENCH))
