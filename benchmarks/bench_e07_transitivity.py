"""E7 — Theorem 15: the ⪰ relation is transitive.  Stacked reductions
(P -> ◇P -> Omega, run as one system) produce Omega-conforming outputs
from FD-P inputs.

Series: fault pattern -> premise / conclusion verdicts for the stack.
"""

# _helpers comes first: it puts src/ on sys.path so the script
# runs directly (python benchmarks/bench_*.py) without PYTHONPATH.
from _helpers import BenchSpec, bench_main, emit_bench_artifact, print_series

from repro.core.ordering import evaluate_reduction
from repro.detectors.registry import known_reductions
from repro.system.fault_pattern import FaultPattern


LOCATIONS = (0, 1, 2)


def reduction(name):
    return next(r for r in known_reductions() if r.name == name)


def _row(crashes):
    """One crash plan through the stacked P -> EvP -> Omega reduction.

    The reduction stack is instantiated on the worker side: automata are
    stateful and unpicklable, but the crash plan is plain data.
    """
    first = reduction("P>=EvP")
    second = reduction("EvP>=Omega")
    p, _evp, stage1 = first.instantiate(LOCATIONS)
    _evp2, omega, stage2 = second.instantiate(LOCATIONS)
    outcome = evaluate_reduction(
        p,
        omega,
        stage1,
        FaultPattern(crashes, LOCATIONS),
        max_steps=900,
        extra_components=list(stage2.automata()),
    )
    return (
        crashes,
        bool(outcome.premise),
        bool(outcome.conclusion),
        outcome.holds,
    )


def stacked_runs(quick=False, jobs=1):
    from repro.runner import parallel_map

    plans = [{}, {2: 5}, {0: 12}, {0: 3, 1: 20}]
    return parallel_map(_row, plans[:2] if quick else plans, jobs=jobs)


BENCH = BenchSpec(
    bench_id="e07",
    title="E7: stacked reduction P ⪰ ◇P ⪰ Omega",
    kernel=stacked_runs,
    header=("crash plan", "P premise", "Omega conclusion", "holds"),
)


def test_e07_transitivity(benchmark):
    rows = benchmark(stacked_runs)
    print_series(BENCH.title, rows, header=BENCH.header)
    emit_bench_artifact(BENCH, rows)
    assert all(premise and conclusion for (_c, premise, conclusion, _h) in rows)


if __name__ == "__main__":
    raise SystemExit(bench_main(BENCH))
