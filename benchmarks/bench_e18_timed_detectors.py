"""E18 — timed detector conformance vs timeout and drop rate.

The implementation→axioms loop, measured: each timed implementation
(:mod:`repro.timed`) runs on the virtual-time network over a grid of
suspicion timeouts x channel drop rates (bounded delay, jitter 2, one
planned crash), and every trace is judged by the target AFD's validity
oracle.  Each cell reports its conformance rate.

Expected shape — each detector class flips exactly where its timing
assumption crosses its bound:

* ``ping-pong`` (target P) flips on the *timeout* axis: below the
  round-trip bound (``2 * max_total - 1`` ticks) a live-but-slow peer
  is irrevocably suspected (strong accuracy fails, localized to the
  exact output); at or above it the trace is conformant.
* ``heartbeat`` (target ◇P) tolerates a too-small timeout — the
  adaptive bump converges — but flips on the *drop* axis: at drop 1.0
  heartbeats never arrive and live peers stay falsely suspected
  forever (eventual accuracy fails).
* ``leader-lease`` (target Ω) inherits the heartbeat flip: at drop 1.0
  trusted sets never agree and no common live leader stabilizes.

The kernel also runs a serial localization self-test: the sub-bound
ping-pong run must report an *exact* first-violation index (a safety
violation pinned to one output event, not a run-end liveness index).
"""

# _helpers comes first: it puts src/ on sys.path so the script
# runs directly (python benchmarks/bench_*.py) without PYTHONPATH.
from _helpers import BenchSpec, bench_main, emit_bench_artifact, print_series

from repro.faults import FaultPlan
from repro.runner import BatchRunner, ExperimentSpec, run_spec, sweep

LOCATIONS = (0, 1, 2)
CRASHES = {2: 160}  # completeness is exercised in every cell
JITTER = 2  # delay in [1, 3] ticks; ping-pong's safe timeout = 5

IMPLEMENTATIONS = ("heartbeat", "ping-pong", "leader-lease")


def build_specs(quick=False):
    """The conformance grid as picklable specs, one per cell x seed."""
    timeouts = (2, 8) if quick else (2, 5, 8)
    drops = (0.0, 1.0) if quick else (0.0, 0.3, 1.0)
    seeds = 1 if quick else 2
    max_steps = 600 if quick else 1000
    specs = []
    for impl in IMPLEMENTATIONS:
        base = ExperimentSpec(
            detector=impl,
            locations=LOCATIONS,
            problem="timed-detector",
            crashes=CRASHES,
            seed=0,
            max_steps=max_steps,
            timed={"delay": {"jitter": JITTER}},
            label=impl,
        )
        specs.extend(
            sweep(
                base,
                seeds=seeds,
                timed_params=[
                    {"timeout": t, "lease": t + 4} for t in timeouts
                ],
                fault_plans=[
                    FaultPlan.uniform(drop_p=d) if d else None
                    for d in drops
                ],
            )
        )
    return specs


def _cell_of(spec):
    """(implementation, timeout, drop_p) of one grid spec."""
    drop = spec.fault_plan.default.drop_p if spec.fault_plan else 0.0
    return (spec.detector, spec.resolve_timed().timeout, drop)


def _localization_validation():
    """Serial oracle self-test riding the benchmark (see module doc)."""
    spec = ExperimentSpec(
        detector="ping-pong",
        locations=LOCATIONS,
        problem="timed-detector",
        crashes=CRASHES,
        seed=0,
        max_steps=600,
        timed={"timeout": 2, "delay": {"jitter": JITTER}},
    )
    result = run_spec(spec)
    verdict = result.conformance
    assert not verdict["ok"], "sub-bound ping-pong run escaped the oracle"
    assert verdict["violation_index"] < result.steps, (
        "premature suspicion must localize to an exact output event, "
        f"not a run-end liveness index: {verdict}"
    )


def conformance_sweep(quick=False, jobs=1):
    specs = build_specs(quick=quick)
    batch = BatchRunner(jobs=jobs).run(specs, raise_on_error=True)
    cells = {}
    for spec, result in zip(specs, batch):
        cells.setdefault(_cell_of(spec), []).append(result)
    rows = []
    for (impl, timeout, drop), results in sorted(cells.items()):
        conformant = sum(1 for r in results if r.fd_ok)
        rows.append(
            (
                impl,
                timeout,
                drop,
                len(results),
                conformant,
                round(conformant / len(results), 3),
                round(
                    sum(r.messages_sent for r in results) / len(results), 1
                ),
            )
        )
    _localization_validation()
    return rows


def _rates(rows):
    return {(impl, t, d): rate for impl, t, d, _n, _c, rate, _m in rows}


BENCH = BenchSpec(
    bench_id="e18",
    title="E18: timed detector conformance rate vs timeout x drop rate",
    kernel=conformance_sweep,
    header=(
        "implementation",
        "timeout",
        "drop_p",
        "runs",
        "conformant",
        "rate",
        "mean_messages",
    ),
)


def test_e18_timed_detectors(benchmark):
    rows = benchmark.pedantic(conformance_sweep, rounds=1, iterations=1)
    print_series(BENCH.title, rows, header=BENCH.header)
    emit_bench_artifact(BENCH, rows)
    rates = _rates(rows)
    timeouts = sorted({t for _i, t, _d in rates})
    lo, hi = timeouts[0], timeouts[-1]
    # Each detector class has a grid point where the verdict flips as
    # its timing assumption crosses its bound (acceptance criterion).
    assert rates[("ping-pong", lo, 0.0)] == 0.0  # below the RTT bound
    assert rates[("ping-pong", hi, 0.0)] == 1.0  # above it
    assert rates[("heartbeat", lo, 0.0)] == 1.0  # adaptive bump converges
    assert rates[("heartbeat", hi, 0.0)] == 1.0
    assert rates[("heartbeat", hi, 1.0)] == 0.0  # total loss: ◇P fails
    assert rates[("leader-lease", hi, 0.0)] == 1.0
    assert rates[("leader-lease", hi, 1.0)] == 0.0  # no common leader
    # Nobody beats their own fault-free cell.
    for impl, t, d in rates:
        assert rates[(impl, t, d)] <= rates.get((impl, t, 0.0), 1.0)


if __name__ == "__main__":
    raise SystemExit(bench_main(BENCH))
