"""A3 (ablation) — FloodMin's round budget.

Design choice probed: FloodMin runs ``floor(f/k) + 1`` rounds (the
classic synchronous bound).  This ablation sweeps the round budget and
the crash schedule and reports the worst (largest) number of distinct
decisions observed: at the classic budget and above the count stays
within k; starving the algorithm of rounds lets more values survive
(visibly so for k=1, where 1 round under a mid-broadcast coordinator
crash splits the decision).
"""

# _helpers comes first: it puts src/ on sys.path so the script
# runs directly (python benchmarks/bench_*.py) without PYTHONPATH.
from _helpers import BenchSpec, bench_main, emit_bench_artifact, print_series

from repro.algorithms.kset_floodmin import (
    FloodMinProcess,
    floodmin_algorithm,
)
from repro.detectors.perfect import PerfectAutomaton
from repro.system.environment import ScriptedConsensusEnvironment
from repro.system.fault_pattern import FaultPattern
from repro.system.network import SystemBuilder


LOCATIONS = (0, 1, 2, 3)
K = 1
F = 2


def distinct_decisions(rounds, crashes):
    algorithm = floodmin_algorithm(
        LOCATIONS, k=K, f=F, rounds=rounds
    )
    system = (
        SystemBuilder(LOCATIONS)
        .with_algorithm(algorithm)
        .with_failure_detector(PerfectAutomaton(LOCATIONS))
        .with_environment(
            ScriptedConsensusEnvironment({i: i for i in LOCATIONS})
        )
        .build()
    )

    def settled(state, _step):
        crashed = system.crashed(state)
        return all(
            i in crashed
            or FloodMinProcess.decision(system.process_state(state, i))
            is not None
            for i in LOCATIONS
        )

    execution = system.run(
        max_steps=20_000,
        fault_pattern=FaultPattern(crashes, LOCATIONS),
        stop_when=settled,
    )
    decisions = {
        FloodMinProcess.decision(
            system.process_state(execution.final_state, i)
        )
        for i in LOCATIONS
        if i not in system.crashed(execution.final_state)
    }
    decisions.discard(None)
    return len(decisions)


def _count(item):
    rounds, crashes = item
    return distinct_decisions(rounds, crashes)


def sweep(quick=False, jobs=1):
    from repro.runner import parallel_map

    crash_plans = []
    # Chained crashes: 0 crashes mid-round-1, 1 crashes mid-round-2.
    for first in range(4, 8 if quick else 16, 2):
        for gap in (6,) if quick else (6, 12, 18):
            crash_plans.append({0: first, 1: first + gap})
    budgets = (1, 3) if quick else (1, 2, 3, 4)
    units = [
        (rounds, crashes) for rounds in budgets for crashes in crash_plans
    ]
    counts = parallel_map(_count, units, jobs=jobs)
    rows = []
    for k, rounds in enumerate(budgets):
        per_budget = counts[k * len(crash_plans):(k + 1) * len(crash_plans)]
        worst = max(per_budget)
        rows.append((rounds, worst, worst <= K))
    return rows


BENCH = BenchSpec(
    bench_id="a03",
    title=(
        "A3: FloodMin distinct decisions vs round budget "
        f"(k={K}, f={F}, n={len(LOCATIONS)})"
    ),
    kernel=sweep,
    header=("rounds", "worst distinct decisions", "within k"),
)


def test_a03_floodmin_round_budget(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(BENCH.title, rows, header=BENCH.header)
    emit_bench_artifact(BENCH, rows)
    by_rounds = {r: worst for (r, worst, _ok) in rows}
    # The classic budget (f//k + 1 = 3) and anything above stay within k.
    assert by_rounds[3] <= K
    assert by_rounds[4] <= K
    # Starved budgets do strictly worse somewhere in the sweep.
    assert by_rounds[1] > K


if __name__ == "__main__":
    raise SystemExit(bench_main(BENCH))
