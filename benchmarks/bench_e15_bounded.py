"""E15 — Theorem 21 / Lemmas 23–24: bounded-problem constructions.

* bounded length: the consensus witness U never exceeds n outputs;
* crash independence: stripping crash events leaves replayable runs;
* Lemma 23 on a full distributed consensus system: settle, drain to
  empty channels (modulo the detector), probe — zero further outputs;
* Lemma 24: crash-stripped replays of the witness system succeed.

Series: scenario -> verdicts.
"""

# _helpers comes first: it puts src/ on sys.path so the script
# runs directly (python benchmarks/bench_*.py) without PYTHONPATH.
from _helpers import BenchSpec, bench_main, emit_bench_artifact, print_series

from repro.algorithms.consensus_perfect import (
    PerfectConsensusProcess,
    perfect_consensus_algorithm,
)
from repro.detectors.perfect import PerfectAutomaton
from repro.ioa.composition import Composition
from repro.ioa.scheduler import Injection, Scheduler
from repro.problems.bounded import (
    BoundedProblemAnalysis,
    check_crash_independence,
    find_quiescent_execution,
)
from repro.problems.consensus import CentralizedConsensusSolver
from repro.system.channel import make_channels
from repro.system.crash import CrashAutomaton
from repro.system.environment import (
    ScriptedConsensusEnvironment,
    propose_action,
)
from repro.system.fault_pattern import FaultPattern, crash_action


LOCATIONS = (0, 1, 2)


def witness_runs():
    proposals = [
        Injection(k, propose_action(i, v))
        for k, (i, v) in enumerate([(0, 1), (1, 0), (2, 1)])
    ]
    return [
        (60, proposals),
        (60, proposals + [Injection(3, crash_action(2))]),
        (60, proposals + [Injection(0, crash_action(0))]),
    ]


def _bounded_rows():
    """Bounded length + crash independence of the witness U."""
    u = CentralizedConsensusSolver(LOCATIONS)
    analysis = BoundedProblemAnalysis(
        u, lambda a: a.name == "decide", bound=len(LOCATIONS)
    )
    return [("U bounded-length + crash-independent",
             bool(analysis.verify(witness_runs())))]


def _lemma23_rows():
    """Lemma 23 on the distributed consensus system."""
    algorithm = perfect_consensus_algorithm(LOCATIONS)
    channels = make_channels(LOCATIONS)
    system = Composition(
        list(algorithm.automata())
        + channels
        + [
            PerfectAutomaton(LOCATIONS),
            ScriptedConsensusEnvironment({0: 1, 1: 0, 2: 1}),
            CrashAutomaton(LOCATIONS),
        ],
        name="SPD",
    )

    def both_live_decided(state, _step):
        return all(
            PerfectConsensusProcess.decision(
                system.component_state(state, algorithm[i])
            )
            is not None
            for i in (0, 1)
        )

    report = find_quiescent_execution(
        system,
        is_output=lambda a: a.name == "decide",
        injections=FaultPattern({2: 9}, LOCATIONS).injections(),
        max_steps=6000,
        probe_steps=400,
        allowed_task=lambda t: not t.startswith("FD-P"),
        channels_empty=lambda state: all(
            not system.component_state(state, c) for c in channels
        ),
        settle_when=both_live_decided,
    )
    return [
        ("Lemma 23: quiescent execution, no further outputs",
         report.lemma23_holds),
        ("  outputs before quiescence", report.outputs_before),
        ("  outputs in probe extension", report.outputs_in_probe),
    ]


def _lemma24_rows():
    """Lemma 24: crash-stripped replay of the witness system."""
    su = Composition(
        [CentralizedConsensusSolver(LOCATIONS), CrashAutomaton(LOCATIONS)],
        name="SU",
    )
    execution = Scheduler().run(
        su, max_steps=100, injections=witness_runs()[1][1]
    )
    return [("Lemma 24: crash-free replay applicable",
             bool(check_crash_independence(su, execution)))]


_SECTIONS = {
    "bounded": _bounded_rows,
    "lemma23": _lemma23_rows,
    "lemma24": _lemma24_rows,
}


def _section(name):
    return _SECTIONS[name]()


def full_construction(jobs=1):
    from repro.runner import parallel_map

    sections = parallel_map(
        _section, ["bounded", "lemma23", "lemma24"], jobs=jobs
    )
    return [row for rows in sections for row in rows]


BENCH = BenchSpec(
    bench_id="e15",
    title="E15: Theorem 21 ingredient constructions",
    kernel=full_construction,
    header=("scenario", "verdict"),
)


def test_e15_bounded_problem_constructions(benchmark):
    rows = benchmark.pedantic(full_construction, rounds=2, iterations=1)
    print_series(BENCH.title, rows)
    emit_bench_artifact(BENCH, rows)
    verdicts = [v for (_label, v) in rows if isinstance(v, bool)]
    assert all(verdicts)


if __name__ == "__main__":
    raise SystemExit(bench_main(BENCH))
