"""E5 — Figure 1 / Section 4: full-system assembly and throughput.

Assembles processes + reliable FIFO channels + crash automaton +
detector + environment and runs fair executions; series: events/second
style scheduler throughput vs n, plus structural checks (FIFO per
channel, crash disables processes).
"""

# _helpers comes first: it puts src/ on sys.path so the script
# runs directly (python benchmarks/bench_*.py) without PYTHONPATH.
from _helpers import BenchSpec, bench_main, emit_bench_artifact, print_series

from repro.algorithms.consensus_perfect import perfect_consensus_algorithm
from repro.detectors.perfect import PerfectAutomaton
from repro.system.environment import ScriptedConsensusEnvironment
from repro.system.fault_pattern import FaultPattern
from repro.system.network import SystemBuilder



def build_and_run(n, steps=1200):
    locations = tuple(range(n))
    system = (
        SystemBuilder(locations)
        .with_algorithm(perfect_consensus_algorithm(locations))
        .with_failure_detector(PerfectAutomaton(locations))
        .with_environment(
            ScriptedConsensusEnvironment({i: i % 2 for i in locations})
        )
        .build()
    )
    pattern = FaultPattern({0: 9}, locations)
    execution = system.run(max_steps=steps, fault_pattern=pattern)
    return system, execution


def _row(item):
    """Build and run one n-location system; check FIFO + crash silence."""
    n, steps = item
    system, execution = build_and_run(n, steps=steps)
    receives_ordered = True
    # FIFO sanity: receives from each channel appear in send order.
    for channel in system.channels:
        sent = [
            a.payload[0]
            for a in execution.actions
            if a.name == "send"
            and a.location == channel.source
            and a.payload[1] == channel.destination
        ]
        received = [
            a.payload[0]
            for a in execution.actions
            if a.name == "receive"
            and a.location == channel.destination
            and a.payload[1] == channel.source
        ]
        if received != sent[: len(received)]:
            receives_ordered = False
    crashed_quiet = all(
        a.location != 0 or a.name in ("crash", "receive")
        for k, a in enumerate(execution.actions)
        if k > _crash_index(execution.actions)
    )
    return (n, len(execution), receives_ordered, crashed_quiet)


def sweep(quick=False, jobs=1):
    from repro.runner import parallel_map

    steps = 600 if quick else 1200
    units = [(n, steps) for n in ((2, 3) if quick else (2, 3, 4, 5))]
    return parallel_map(_row, units, jobs=jobs)


def _crash_index(actions):
    for k, a in enumerate(actions):
        if a.name == "crash":
            return k
    return len(actions)


BENCH = BenchSpec(
    bench_id="e05",
    title="E5: Figure-1 system runs",
    kernel=sweep,
    header=("n", "events", "FIFO order holds", "crashed loc silent"),
)


def test_e05_system_assembly(benchmark):
    rows = benchmark(sweep)
    print_series(BENCH.title, rows, header=BENCH.header)
    emit_bench_artifact(BENCH, rows)
    assert all(fifo and quiet for (_n, _e, fifo, quiet) in rows)


if __name__ == "__main__":
    raise SystemExit(bench_main(BENCH))
