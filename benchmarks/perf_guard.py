"""CI perf guard: the enabled cache must be invisible in every series.

The composition's dispatch maps and per-component enabled cache
(:mod:`repro.ioa.composition`) are pure accelerations; the brute-force
predicate-scan path they replace is kept alive as the semantics oracle.
This guard runs every benchmark kernel twice in quick mode — once with
the caches on (the default) and once with them globally disabled via
:func:`repro.ioa.composition.set_enabled_cache_default` — and fails if
any kernel's series differs between the two runs.

Usage::

    python benchmarks/perf_guard.py [--only e10,e11] [--full]

``--only`` restricts the guard to a comma-separated list of bench ids;
``--full`` runs the kernels at full size instead of ``--quick`` scale.
Kernels are run in-process with ``jobs=1`` and no artifacts are written:
the committed ``BENCH_*.json`` files are untouched.

Exit status is the number of diverging benchmarks (0 on full agreement).
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

_BENCH_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(_BENCH_DIR))

from _helpers import print_series  # noqa: E402  (also wires up src/)
from run_sweep import discover  # noqa: E402

from repro.ioa.composition import set_enabled_cache_default  # noqa: E402


def _pop_only(args):
    only = None
    for k, arg in enumerate(list(args)):
        if arg == "--only":
            if k + 1 >= len(args):
                raise ValueError("--only needs a value")
            only = {x.strip().lower() for x in args[k + 1].split(",")}
            del args[k : k + 2]
            break
        if arg.startswith("--only="):
            only = {
                x.strip().lower() for x in arg.split("=", 1)[1].split(",")
            }
            del args[k]
            break
    return only


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    try:
        only = _pop_only(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    quick = "--full" not in args
    unknown = [a for a in args if a != "--full"]
    if unknown:
        print(
            "usage: python benchmarks/perf_guard.py [--only ids] [--full]",
            file=sys.stderr,
        )
        return 2

    diverged = []
    for _stem, spec in discover():
        if only is not None and spec.bench_id.lower() not in only:
            continue
        start = time.perf_counter()
        cached_rows = spec.run_kernel(quick=quick)
        cached_wall = time.perf_counter() - start
        previous = set_enabled_cache_default(False)
        try:
            start = time.perf_counter()
            uncached_rows = spec.run_kernel(quick=quick)
            uncached_wall = time.perf_counter() - start
        finally:
            set_enabled_cache_default(previous)
        same = list(map(list, cached_rows)) == list(map(list, uncached_rows))
        verdict = "series identical" if same else "SERIES DIFFER"
        print(
            f"[{spec.bench_id}] cached {cached_wall:.3f}s / "
            f"uncached {uncached_wall:.3f}s "
            f"({uncached_wall / max(cached_wall, 1e-9):.2f}x) — {verdict}",
            file=sys.stderr,
        )
        if not same:
            diverged.append(spec.bench_id)
            print_series(f"{spec.bench_id} cached", cached_rows, spec.header)
            print_series(
                f"{spec.bench_id} uncached", uncached_rows, spec.header
            )

    if diverged:
        print(
            f"perf guard FAILED: cache changed the series of {diverged}",
            file=sys.stderr,
        )
    else:
        print(
            "perf guard passed: caching is invisible in every series",
            file=sys.stderr,
        )
    return len(diverged)


if __name__ == "__main__":
    sys.exit(main())
