"""CI perf guard: the enabled cache and the compiled core must be
invisible in every series, and the chaos subsystem must be free when
unused.

The composition's dispatch maps and per-component enabled cache
(:mod:`repro.ioa.composition`) are pure accelerations; the brute-force
predicate-scan path they replace is kept alive as the semantics oracle.
This guard runs every benchmark kernel twice in quick mode — once with
the caches on (the default) and once with them globally disabled via
:func:`repro.ioa.composition.set_enabled_cache_default` — and fails if
any kernel's series differs between the two runs.

The compiled core (:mod:`repro.compiled`) makes the same promise from
the other side: interned states and flat transition tables that replay
the interpreted scheduler byte for byte.  The guard therefore runs each
kernel a third time with ``set_compiled_default(True)`` and diffs that
series against the interpreted one through the same
:func:`repro.obs.compare.compare_series` comparator — zero drift
required.

A second check guards the zero-fault path of :mod:`repro.faults`: a
system built with no fault plan (or a provably inert one) must use the
plain reliable channel automata — not chaos channels with zero
probabilities — and produce the byte-identical execution, so attaching
the chaos subsystem to the codebase costs nothing until a plan is
actually armed.  Timings are printed for the record; the hard check is
structural.

Usage::

    python benchmarks/perf_guard.py [--only e10,e11] [--full]

``--only`` restricts the guard to a comma-separated list of bench ids;
``--full`` runs the kernels at full size instead of ``--quick`` scale.
Kernels are run in-process with ``jobs=1`` and no artifacts are written:
the committed ``BENCH_*.json`` files are untouched.

Exit status is the number of diverging checks (0 on full agreement).
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

_BENCH_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(_BENCH_DIR))

from _helpers import print_series  # noqa: E402  (also wires up src/)
from run_sweep import discover  # noqa: E402

from repro.compiled.config import set_compiled_default  # noqa: E402
from repro.ioa.composition import set_enabled_cache_default  # noqa: E402
from repro.obs.compare import compare_series  # noqa: E402


def _pop_only(args):
    only = None
    for k, arg in enumerate(list(args)):
        if arg == "--only":
            if k + 1 >= len(args):
                raise ValueError("--only needs a value")
            only = {x.strip().lower() for x in args[k + 1].split(",")}
            del args[k : k + 2]
            break
        if arg.startswith("--only="):
            only = {
                x.strip().lower() for x in arg.split("=", 1)[1].split(",")
            }
            del args[k]
            break
    return only


def zero_fault_overhead_guard() -> bool:
    """No plan (or an inert plan) must cost nothing: reliable channel
    automata, no crash controller, identical execution bytes."""
    from repro.algorithms.consensus_omega import omega_consensus_algorithm
    from repro.detectors.omega import Omega
    from repro.faults.channels import ChaosChannel
    from repro.faults.plan import FaultPlan
    from repro.system.environment import ScriptedConsensusEnvironment
    from repro.system.network import SystemBuilder

    locations = (0, 1, 2)

    def build(plan):
        builder = (
            SystemBuilder(locations)
            .with_algorithm(omega_consensus_algorithm(locations))
            .with_failure_detector(Omega(locations).automaton())
            .with_environment(
                ScriptedConsensusEnvironment({0: 1, 1: 0, 2: 1})
            )
        )
        if plan is not None:
            builder.with_fault_plan(plan)
        return builder.build()

    ok = True
    runs = {}
    for tag, plan in (("no-plan", None), ("inert-plan", FaultPlan.inert())):
        system = build(plan)
        if any(isinstance(c, ChaosChannel) for c in system.channels):
            print(
                f"[chaos] {tag}: built ChaosChannel automata — the "
                "zero-fault path is paying for chaos",
                file=sys.stderr,
            )
            ok = False
        start = time.perf_counter()
        execution = system.run(max_steps=2_000)
        wall = time.perf_counter() - start
        if system.crash_controller is not None:
            print(
                f"[chaos] {tag}: a crash controller was attached",
                file=sys.stderr,
            )
            ok = False
        runs[tag] = (list(execution.actions), wall)
    if runs["no-plan"][0] != runs["inert-plan"][0]:
        print(
            "[chaos] inert plan changed the execution", file=sys.stderr
        )
        ok = False
    no_wall, inert_wall = runs["no-plan"][1], runs["inert-plan"][1]
    verdict = "zero-fault path clean" if ok else "ZERO-FAULT PATH DIRTY"
    print(
        f"[chaos] no-plan {no_wall:.3f}s / inert-plan {inert_wall:.3f}s "
        f"({inert_wall / max(no_wall, 1e-9):.2f}x) — {verdict}",
        file=sys.stderr,
    )
    return ok


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    try:
        only = _pop_only(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    quick = "--full" not in args
    unknown = [a for a in args if a != "--full"]
    if unknown:
        print(
            "usage: python benchmarks/perf_guard.py [--only ids] [--full]",
            file=sys.stderr,
        )
        return 2

    diverged = []
    for _stem, spec in discover():
        if only is not None and spec.bench_id.lower() not in only:
            continue
        start = time.perf_counter()
        cached_rows = spec.run_kernel(quick=quick)
        cached_wall = time.perf_counter() - start
        previous = set_enabled_cache_default(False)
        try:
            start = time.perf_counter()
            uncached_rows = spec.run_kernel(quick=quick)
            uncached_wall = time.perf_counter() - start
        finally:
            set_enabled_cache_default(previous)
        previous_compiled = set_compiled_default(True)
        try:
            start = time.perf_counter()
            compiled_rows = spec.run_kernel(quick=quick)
            compiled_wall = time.perf_counter() - start
        finally:
            set_compiled_default(previous_compiled)
        checks = (
            ("uncached", uncached_rows, uncached_wall),
            ("compiled", compiled_rows, compiled_wall),
        )
        for tag, other_rows, other_wall in checks:
            drift = compare_series(
                spec.bench_id, cached_rows, other_rows, header=spec.header
            )
            verdict = (
                "series identical" if not drift.drifted else "SERIES DIFFER"
            )
            print(
                f"[{spec.bench_id}] interpreted {cached_wall:.3f}s / "
                f"{tag} {other_wall:.3f}s "
                f"({other_wall / max(cached_wall, 1e-9):.2f}x) — {verdict}",
                file=sys.stderr,
            )
            if drift.drifted:
                diverged.append(f"{spec.bench_id}:{tag}")
                # The comparator names the first differing cell, so the
                # console shows the exact measurement that moved before
                # the full series dump.
                where = drift.divergence or {}
                print(
                    f"[{spec.bench_id}] first divergence at row "
                    f"{where.get('row')}, column {where.get('column')} "
                    f"({where.get('column_name', '?')}): "
                    f"{where.get('a')} vs {where.get('b')}",
                    file=sys.stderr,
                )
                print_series(
                    f"{spec.bench_id} interpreted", cached_rows, spec.header
                )
                print_series(
                    f"{spec.bench_id} {tag}", other_rows, spec.header
                )

    if not zero_fault_overhead_guard():
        diverged.append("chaos-zero-fault")

    if diverged:
        print(
            f"perf guard FAILED: diverging checks {diverged}",
            file=sys.stderr,
        )
    else:
        print(
            "perf guard passed: caching and the compiled core are "
            "invisible in every series and the zero-fault path is free",
            file=sys.stderr,
        )
    return len(diverged)


if __name__ == "__main__":
    sys.exit(main())
