"""A5 (extension) — uniform reliable broadcast: a long-lived contrast to
the bounded problems.

URB is solvable with *no* failure detector when f < n/2 (majority-echo),
and its outputs grow with the number of broadcasts — so it has no output
bound b and the Theorem 21 machinery does not apply to it.  Series:
deliveries and messages vs number of broadcasts (linear growth), plus the
per-broadcast specification verdicts under a crash.
"""

# _helpers comes first: it puts src/ on sys.path so the script
# runs directly (python benchmarks/bench_*.py) without PYTHONPATH.
from _helpers import BenchSpec, bench_main, emit_bench_artifact, print_series

from repro.algorithms.urb import urb_algorithm
from repro.ioa.composition import Composition
from repro.ioa.scheduler import Injection, Scheduler
from repro.problems.uniform_broadcast import (
    UniformBroadcastProblem,
    urb_bcast_action,
)
from repro.system.channel import make_channels
from repro.system.crash import CrashAutomaton
from repro.system.fault_pattern import FaultPattern


LOCATIONS = (0, 1, 2)


def run(num_broadcasts, crashes):
    algorithm = urb_algorithm(LOCATIONS)
    system = Composition(
        list(algorithm.automata())
        + make_channels(LOCATIONS)
        + [CrashAutomaton(LOCATIONS)],
        name="urb",
    )
    injections = [
        Injection(3 * k, urb_bcast_action(k % 3, f"m{k}"))
        for k in range(num_broadcasts)
    ] + FaultPattern(crashes, LOCATIONS).injections()
    execution = Scheduler().run(
        system, max_steps=20_000, injections=injections
    )
    events = list(execution.actions)
    problem = UniformBroadcastProblem(LOCATIONS, f=1)
    verdict = problem.check_conditional(problem.project_events(events))
    deliveries = sum(1 for a in events if a.name == "urb-deliver")
    sends = sum(1 for a in events if a.name == "send")
    return bool(verdict), deliveries, sends


def _row(item):
    num, crashes, label = item
    ok, deliveries, sends = run(num, crashes)
    return (num, label, deliveries, sends, ok)


def sweep(quick=False, jobs=1):
    from repro.runner import parallel_map

    units = [
        (num, {}, "no") for num in ((1, 2, 4) if quick else (1, 2, 4, 8))
    ]
    units.append((4, {2: 9}, "crash 2"))
    return parallel_map(_row, units, jobs=jobs)


BENCH = BenchSpec(
    bench_id="a05",
    title="A5: URB deliveries/messages vs broadcasts (f < n/2, no FD)",
    kernel=sweep,
    header=("broadcasts", "crash", "deliveries", "sends", "spec"),
)


def test_a05_urb(benchmark):
    rows = benchmark.pedantic(sweep, rounds=2, iterations=1)
    print_series(BENCH.title, rows, header=BENCH.header)
    emit_bench_artifact(BENCH, rows)
    assert all(ok for (*_r, ok) in rows)
    crash_free = [r for r in rows if r[1] == "no"]
    deliveries = [d for (_n, _c, d, _s, _ok) in crash_free]
    # Unbounded growth: deliveries scale linearly with broadcasts.
    assert deliveries == [3, 6, 12, 24]


if __name__ == "__main__":
    raise SystemExit(bench_main(BENCH))
