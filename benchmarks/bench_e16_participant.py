"""E16 — Section 10.1: the query-based participant detector is
representative for consensus — both reduction directions run — whereas
Theorem 21 denies this to every AFD.

Series: both directions x scenario -> verdicts.
"""

# _helpers comes first: it puts src/ on sys.path so the script
# runs directly (python benchmarks/bench_*.py) without PYTHONPATH.
from _helpers import BenchSpec, bench_main, emit_bench_artifact, print_series

from repro.algorithms.consensus_perfect import perfect_consensus_algorithm
from repro.algorithms.participant_consensus import (
    consensus_from_participant_algorithm,
    participant_from_consensus_algorithm,
)
from repro.detectors.participant import (
    ParticipantDetectorAutomaton,
    query_action,
)
from repro.detectors.perfect import PerfectAutomaton
from repro.ioa.composition import Composition
from repro.ioa.scheduler import Injection, Scheduler
from repro.problems.consensus import ConsensusProblem
from repro.system.channel import make_channels
from repro.system.crash import CrashAutomaton
from repro.system.environment import ScriptedConsensusEnvironment
from repro.system.fault_pattern import FaultPattern


LOCATIONS = (0, 1, 2)


def direction_1(proposals):
    """Consensus using the participant detector."""
    algorithm = consensus_from_participant_algorithm(LOCATIONS)
    system = Composition(
        list(algorithm.automata())
        + make_channels(LOCATIONS)
        + [
            ParticipantDetectorAutomaton(LOCATIONS),
            ScriptedConsensusEnvironment(proposals),
            CrashAutomaton(LOCATIONS),
        ],
        name="d1",
    )
    execution = Scheduler().run(system, max_steps=2500)
    problem = ConsensusProblem(LOCATIONS, f=0)
    trace = problem.project_events(list(execution.actions))
    return bool(problem.check_conditional(trace))


def direction_2(query_order):
    """The participant detector from a consensus black box."""
    wrapper = participant_from_consensus_algorithm(LOCATIONS)
    consensus = perfect_consensus_algorithm(LOCATIONS, values=LOCATIONS)
    system = Composition(
        list(wrapper.automata())
        + list(consensus.automata())
        + make_channels(LOCATIONS)
        + [PerfectAutomaton(LOCATIONS), CrashAutomaton(LOCATIONS)],
        name="d2",
    )
    injections = [
        Injection(k, query_action(i)) for k, i in enumerate(query_order)
    ]
    execution = Scheduler().run(
        system, max_steps=4000, injections=injections
    )
    events = list(execution.actions)
    responses = [a for a in events if a.name == "fd-response"]
    return (
        len(responses) == len(LOCATIONS)
        and ParticipantDetectorAutomaton.satisfies_participation(events)
    )


def _row(item):
    """One direction/scenario pair, dispatched from plain data."""
    direction, arg = item
    if direction == "d1":
        return (f"consensus from participant {arg}", direction_1(arg))
    return (f"participant from consensus, queries {arg}", direction_2(arg))


def both_directions(quick=False, jobs=1):
    from repro.runner import parallel_map

    proposal_sets = ({0: 1, 1: 0, 2: 0}, {0: 0, 1: 1, 2: 1})
    orders = ((0, 1, 2), (2, 0, 1))
    if quick:
        proposal_sets = proposal_sets[:1]
        orders = orders[:1]
    units = [("d1", proposals) for proposals in proposal_sets]
    units += [("d2", order) for order in orders]
    return parallel_map(_row, units, jobs=jobs)


BENCH = BenchSpec(
    bench_id="e16",
    title="E16: participant detector is representative for consensus",
    kernel=both_directions,
    header=("direction/scenario", "holds"),
)


def test_e16_participant_representative(benchmark):
    rows = benchmark.pedantic(both_directions, rounds=2, iterations=1)
    print_series(BENCH.title, rows, header=BENCH.header)
    emit_bench_artifact(BENCH, rows)
    assert all(ok for (_label, ok) in rows)


if __name__ == "__main__":
    raise SystemExit(bench_main(BENCH))
