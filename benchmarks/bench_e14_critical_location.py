"""E14 — Figure 3 / Lemmas 56–58 / Theorem 59: every hook's critical
location exists and is live in t_D, across a sweep of FD sequences with
different faulty sets.

Series: per t_D, hooks found, Theorem 59 verdicts and the critical
locations observed (always disjoint from the faulty set).
"""

# _helpers comes first: it puts src/ on sys.path so the script
# runs directly (python benchmarks/bench_*.py) without PYTHONPATH.
from _helpers import BenchSpec, bench_main, emit_bench_artifact, print_series

from repro.algorithms.consensus_tree import (
    TreeConsensusProcess,
    tree_consensus_algorithm,
)
from repro.core.validity import faulty_locations
from repro.detectors.perfect import perfect_output
from repro.ioa.composition import Composition
from repro.system.channel import make_channels
from repro.system.environment import ConsensusEnvironment
from repro.system.fault_pattern import crash_action
from repro.tree.hooks import HookSearch
from repro.tree.tagged_tree import TaggedTreeGraph
from repro.tree.valence import (
    ValenceAnalysis,
    decision_extractor_for_processes,
)


LOCATIONS = (0, 1)


def td_catalogue(quick=False):
    for victim in LOCATIONS:
        survivor = 1 - victim
        # Crash after k joint rounds, for several k.
        for pre_rounds in (0,) if quick else (0, 1, 2):
            td = [
                perfect_output(i, ())
                for _ in range(pre_rounds)
                for i in LOCATIONS
            ]
            td += [crash_action(victim)]
            td += [perfect_output(survivor, (victim,))] * 7
            yield f"crash {victim} after {pre_rounds} rounds", td
    yield "crash-free", [
        perfect_output(i, ()) for _ in range(8) for i in LOCATIONS
    ]


def _row(item):
    """Hook search over catalogue entry #index (rebuilt worker-side)."""
    index, quick = item
    algorithm = tree_consensus_algorithm(LOCATIONS)
    composition = Composition(
        list(algorithm.automata())
        + make_channels(LOCATIONS)
        + [ConsensusEnvironment(LOCATIONS)],
        name="tree-system",
    )
    label, td = list(td_catalogue(quick=quick))[index]
    graph = TaggedTreeGraph(composition, td, max_vertices=500_000)
    valence = ValenceAnalysis(
        graph,
        decision_extractor_for_processes(
            composition,
            algorithm.automata(),
            TreeConsensusProcess.decision,
        ),
    )
    report = HookSearch(graph, valence, LOCATIONS).report()
    faulty = set(faulty_locations(td))
    return (
        label,
        report.num_hooks,
        report.theorem59_holds,
        sorted(report.critical_locations),
        sorted(faulty),
    )


def sweep(quick=False, jobs=1):
    from repro.runner import parallel_map

    count = sum(1 for _ in td_catalogue(quick=quick))
    return parallel_map(
        _row, [(k, quick) for k in range(count)], jobs=jobs
    )


BENCH = BenchSpec(
    bench_id="e14",
    title="E14: Theorem 59 across t_D sweep",
    kernel=sweep,
    header=("t_D", "hooks", "thm59", "critical locs", "faulty locs"),
)


def test_e14_critical_locations_live(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(BENCH.title, rows, header=BENCH.header)
    emit_bench_artifact(BENCH, rows)
    for (_label, hooks, theorem59, critical, faulty) in rows:
        assert hooks > 0
        assert theorem59
        assert not (set(critical) & set(faulty)), (
            "a faulty location can never be critical (Lemma 58)"
        )


if __name__ == "__main__":
    raise SystemExit(bench_main(BENCH))
