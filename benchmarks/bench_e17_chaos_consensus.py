"""E17 — consensus under seeded channel chaos (the fault-injection grid).

The paper's solvability results assume reliable FIFO channels; E17
measures what the implementations actually do when that hypothesis is
voided.  The grid sweeps drop rate x detector over seeded
:class:`~repro.faults.plan.FaultPlan` chaos: per cell it reports how
many runs still solved consensus ("solved" counts the conditional
verdict — a run whose detector stayed conformant while consensus
failed counts as *caught*, not excused), how many decided everywhere,
and the mean settle/message cost.

Expected shape: at drop 0.0 the chaos path is byte-identical to the
reliable one and everything solves; as the drop rate rises, solved
counts fall monotonically-ish while surviving runs pay more events.

The kernel also runs a serial oracle-validation pass: a duplicating
chaos run must be flagged by the no-duplication oracle (and only it),
and an inert-plan run must pass every channel-integrity oracle — so a
regression in the checkers fails the benchmark, not just the unit
suite.
"""

# _helpers comes first: it puts src/ on sys.path so the script
# runs directly (python benchmarks/bench_*.py) without PYTHONPATH.
from _helpers import BenchSpec, bench_main, emit_bench_artifact, print_series

from repro.algorithms.consensus_omega import omega_consensus_algorithm
from repro.algorithms.consensus_perfect import perfect_consensus_algorithm
from repro.detectors.omega import Omega
from repro.faults import (
    FaultPlan,
    channel_integrity_oracles,
    run_oracles,
)
from repro.runner import BatchRunner, ExperimentSpec
from repro.system.channel import messages_in_transit
from repro.system.environment import ScriptedConsensusEnvironment
from repro.system.fault_pattern import FaultPattern
from repro.system.network import SystemBuilder

LOCATIONS = (0, 1, 2)
PROPOSALS = {0: 1, 1: 0, 2: 1}

STACKS = (
    ("Omega", omega_consensus_algorithm, "omega"),
    ("P", perfect_consensus_algorithm, "p"),
)


def build_specs(quick=False):
    """The chaos grid as picklable specs, one per (stack, rate, seed)."""
    rates = (0.0, 0.2) if quick else (0.0, 0.05, 0.15, 0.30)
    seeds = (0, 1) if quick else (0, 1, 2)
    specs = []
    for label, algorithm_factory, detector in STACKS:
        for rate in rates:
            # Unbound plan: each seed draws its own fault schedule from
            # derive_seed(seed, "fault-plan"), so the cell averages over
            # schedules, not over one frozen loss pattern.
            plan = (
                FaultPlan.uniform(drop_p=rate) if rate else None
            )
            for seed in seeds:
                specs.append(
                    ExperimentSpec(
                        algorithm=algorithm_factory,
                        detector=detector,
                        locations=LOCATIONS,
                        proposals=PROPOSALS,
                        f=1,
                        seed=seed,
                        max_steps=20_000,
                        fault_plan=plan,
                        label=f"{label}|p{rate}|s{seed}",
                    )
                )
    return specs


def _oracle_validation():
    """Serial checker self-test riding the benchmark (see module doc)."""

    def run_with(plan):
        system = (
            SystemBuilder(LOCATIONS)
            .with_algorithm(omega_consensus_algorithm(LOCATIONS))
            .with_failure_detector(Omega(LOCATIONS).automaton())
            .with_environment(ScriptedConsensusEnvironment(PROPOSALS))
            .with_fault_plan(plan)
            .build()
        )
        execution = system.run(
            max_steps=4_000, fault_pattern=FaultPattern({}, LOCATIONS)
        )
        transit = messages_in_transit(
            system.channels, system.composition, execution.final_state
        )
        return run_oracles(
            list(execution.actions),
            channel_integrity_oracles(final_in_transit=transit),
        )

    clean = run_with(FaultPlan.inert().bound(0))
    assert clean.ok, f"inert plan tripped an oracle: {clean.to_dict()}"
    chaotic = run_with(FaultPlan.uniform(duplicate_p=0.5, seed=1))
    assert not chaotic.verdict("no-duplication").ok, (
        "duplicating run escaped the no-duplication oracle"
    )
    assert chaotic.verdict("no-loss").ok, (
        f"duplication misread as loss: {chaotic.to_dict()}"
    )


def sweep(quick=False, jobs=1):
    specs = build_specs(quick=quick)
    batch = BatchRunner(jobs=jobs).run(specs, raise_on_error=True)
    cells = {}
    for spec, result in zip(specs, batch):
        stack, rate_tag, _seed_tag = spec.label.split("|")
        cells.setdefault((stack, float(rate_tag[1:])), []).append(result)
    rows = []
    for (stack, rate), results in sorted(cells.items()):
        rows.append(
            (
                stack,
                rate,
                len(results),
                sum(1 for r in results if r.solved),
                sum(1 for r in results if r.all_live_decided),
                round(sum(r.steps for r in results) / len(results), 1),
                round(
                    sum(r.messages_sent for r in results) / len(results), 1
                ),
            )
        )
    _oracle_validation()
    return rows


BENCH = BenchSpec(
    bench_id="e17",
    title="E17: consensus solved-rate/latency vs channel drop rate",
    kernel=sweep,
    header=(
        "detector",
        "drop_p",
        "runs",
        "solved",
        "decided",
        "mean_events",
        "mean_messages",
    ),
)


def test_e17_chaos_consensus(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(BENCH.title, rows, header=BENCH.header)
    emit_bench_artifact(BENCH, rows)
    # At drop 0.0 chaos is provably off: everything solves and decides.
    for stack, rate, runs, solved, decided, _e, _m in rows:
        if rate == 0.0:
            assert solved == runs == decided, (stack, rate)
    # Nobody beats their own fault-free cell.
    for stack, _factory, _det in STACKS:
        series = {r: s for (st, r, _n, s, _d, _e, _m) in rows if st == stack}
        assert all(v <= series[0.0] for v in series.values())


if __name__ == "__main__":
    raise SystemExit(bench_main(BENCH))
