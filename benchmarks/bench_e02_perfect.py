"""E2 — Algorithm 2 / Section 3.3: FD-P's fair traces lie in T_P; the
renamed automaton's traces lie in T_◇P; both satisfy the AFD closures.

Series: per crash plan, membership in T_P and (relabelled) in T_◇P.
"""

# _helpers comes first: it puts src/ on sys.path so the script
# runs directly (python benchmarks/bench_*.py) without PYTHONPATH.
from _helpers import (
    BenchSpec,
    bench_main,
    emit_bench_artifact,
    print_series,
    run_detector_trace,
)

from repro.core.afd import check_afd_closure_properties
from repro.detectors.eventually_perfect import EventuallyPerfect
from repro.detectors.perfect import Perfect
from repro.runner import parallel_map


LOCATIONS = (0, 1, 2, 3)
PLANS = [{}, {3: 4}, {0: 6, 1: 18}]


def _row(item):
    """One crash plan's membership + closure + renaming checks."""
    crashes, steps = item
    perfect = Perfect(LOCATIONS)
    evp = EventuallyPerfect(LOCATIONS)
    trace = run_detector_trace(perfect, crashes, steps, LOCATIONS)
    in_p = bool(perfect.check_limit(trace))
    closed = bool(
        check_afd_closure_properties(
            perfect, trace, num_samplings=3, num_reorderings=3, seed=2
        )
    )
    # The paper obtains ◇P's generator by renaming FD-P outputs.
    relabelled = [
        a if a.name == "crash" else a.with_name("fd-evp")
        for a in trace
    ]
    in_evp = bool(evp.check_limit(relabelled))
    return (crashes, len(trace), in_p, closed, in_evp)


def generate_and_check(steps=150, quick=False, jobs=1):
    if quick:
        steps = 60
    return parallel_map(_row, [(c, steps) for c in PLANS], jobs=jobs)


BENCH = BenchSpec(
    bench_id="e02",
    title="E2: FD-P traces vs T_P and T_EvP",
    kernel=generate_and_check,
    header=("crash plan", "events", "in T_P", "closures", "in T_EvP"),
)


def test_e02_perfect_and_renamed(benchmark):
    rows = benchmark(generate_and_check)
    print_series(BENCH.title, rows, header=BENCH.header)
    emit_bench_artifact(BENCH, rows)
    assert all(p and closed and evp for (_c, _n, p, closed, evp) in rows)


if __name__ == "__main__":
    raise SystemExit(bench_main(BENCH))
