"""A4 (extension) — the bounded-problem algorithm suite.

Section 7.3 lists consensus, k-set agreement, leader election, NBAC and
TRB as bounded problems; the library implements an algorithm for each
(over P and/or a consensus black box).  This bench runs all of them under
a fixed crash plan and checks each against its specification.
"""

# _helpers comes first: it puts src/ on sys.path so the script
# runs directly (python benchmarks/bench_*.py) without PYTHONPATH.
from _helpers import BenchSpec, bench_main, emit_bench_artifact, print_series

from repro.algorithms.atomic_commit import nbac_algorithm
from repro.algorithms.consensus_perfect import perfect_consensus_algorithm
from repro.algorithms.kset_floodmin import (
    FloodMinProcess,
    floodmin_algorithm,
)
from repro.algorithms.leader_election import leader_election_algorithm
from repro.algorithms.trb_flooding import trb_flooding_algorithm
from repro.detectors.perfect import PerfectAutomaton
from repro.ioa.composition import Composition
from repro.ioa.scheduler import Injection, Scheduler
from repro.problems.atomic_commit import (
    YES,
    AtomicCommitProblem,
    vote_action,
)
from repro.problems.kset_agreement import KSetAgreementProblem
from repro.problems.leader_election import LeaderElectionProblem
from repro.problems.reliable_broadcast import (
    ReliableBroadcastProblem,
    bcast_action,
)
from repro.system.channel import make_channels
from repro.system.crash import CrashAutomaton
from repro.system.environment import ScriptedConsensusEnvironment
from repro.system.fault_pattern import FaultPattern
from repro.system.network import SystemBuilder


LOCATIONS = (0, 1, 2)
CRASHES = {2: 7}


def run_kset():
    algorithm = floodmin_algorithm(LOCATIONS, k=2, f=2)
    system = (
        SystemBuilder(LOCATIONS)
        .with_algorithm(algorithm)
        .with_failure_detector(PerfectAutomaton(LOCATIONS))
        .with_environment(
            ScriptedConsensusEnvironment({i: i for i in LOCATIONS})
        )
        .build()
    )

    def settled(state, _step):
        crashed = system.crashed(state)
        return all(
            i in crashed
            or FloodMinProcess.decision(system.process_state(state, i))
            is not None
            for i in LOCATIONS
        )

    execution = system.run(
        max_steps=15_000,
        fault_pattern=FaultPattern(CRASHES, LOCATIONS),
        stop_when=settled,
    )
    problem = KSetAgreementProblem(LOCATIONS, f=2, k=2)
    return bool(
        problem.check_conditional(
            problem.project_events(list(execution.actions))
        )
    )


def run_trb():
    algorithm = trb_flooding_algorithm(LOCATIONS, sender=0, f=2)
    system = Composition(
        list(algorithm.automata())
        + make_channels(LOCATIONS)
        + [PerfectAutomaton(LOCATIONS), CrashAutomaton(LOCATIONS)],
        name="trb",
    )
    execution = Scheduler().run(
        system,
        max_steps=8000,
        injections=[Injection(0, bcast_action(0, "payload"))]
        + FaultPattern(CRASHES, LOCATIONS).injections(),
    )
    problem = ReliableBroadcastProblem(LOCATIONS, sender=0, f=2)
    return bool(
        problem.check_conditional(
            problem.project_events(list(execution.actions))
        )
    )


def run_leader_election():
    drivers = leader_election_algorithm(LOCATIONS)
    consensus = perfect_consensus_algorithm(LOCATIONS, values=LOCATIONS)
    system = Composition(
        list(drivers.automata())
        + list(consensus.automata())
        + make_channels(LOCATIONS)
        + [PerfectAutomaton(LOCATIONS), CrashAutomaton(LOCATIONS)],
        name="election",
    )
    execution = Scheduler().run(
        system,
        max_steps=8000,
        injections=FaultPattern(CRASHES, LOCATIONS).injections(),
    )
    problem = LeaderElectionProblem(LOCATIONS, f=1)
    return bool(
        problem.check_conditional(
            problem.project_events(list(execution.actions))
        )
    )


def run_nbac():
    drivers = nbac_algorithm(LOCATIONS)
    consensus = perfect_consensus_algorithm(LOCATIONS)
    system = Composition(
        list(drivers.automata())
        + list(consensus.automata())
        + make_channels(LOCATIONS)
        + [PerfectAutomaton(LOCATIONS), CrashAutomaton(LOCATIONS)],
        name="nbac",
    )
    execution = Scheduler().run(
        system,
        max_steps=8000,
        injections=[
            Injection(k, vote_action(i, YES))
            for k, i in enumerate(LOCATIONS)
        ]
        + FaultPattern(CRASHES, LOCATIONS).injections(),
    )
    problem = AtomicCommitProblem(LOCATIONS, f=1)
    return bool(
        problem.check_conditional(
            problem.project_events(list(execution.actions))
        )
    )


_PROBLEMS = [
    ("2-set agreement (FloodMin over P)", run_kset),
    ("TRB (flooding over P)", run_trb),
    ("leader election (consensus black box)", run_leader_election),
    ("NBAC (vote round + consensus)", run_nbac),
]


def _row(index):
    label, runner = _PROBLEMS[index]
    return (label, runner())


def suite(jobs=1):
    from repro.runner import parallel_map

    return parallel_map(_row, list(range(len(_PROBLEMS))), jobs=jobs)


BENCH = BenchSpec(
    bench_id="a04",
    title=f"A4: bounded-problem algorithm suite (crash plan {CRASHES})",
    kernel=suite,
    header=("problem / algorithm", "specification holds"),
)


def test_a04_bounded_problem_suite(benchmark):
    rows = benchmark.pedantic(suite, rounds=1, iterations=1)
    print_series(BENCH.title, rows, header=BENCH.header)
    emit_bench_artifact(BENCH, rows)
    assert all(ok for (_label, ok) in rows)


if __name__ == "__main__":
    raise SystemExit(bench_main(BENCH))
