"""E3 — Section 3.3's wider zoo: Sigma, anti-Omega, Omega^k, Psi^k (plus
S and ◇S from [5]) are AFDs — validity plus both closures, on generated
traces across fault plans.

Series: detector x crash plan -> verdicts.
"""

# _helpers comes first: it puts src/ on sys.path so the script
# runs directly (python benchmarks/bench_*.py) without PYTHONPATH.
from _helpers import (
    BenchSpec,
    bench_main,
    emit_bench_artifact,
    print_series,
    run_detector_trace,
)

from repro.core.afd import check_afd_closure_properties
from repro.detectors.registry import ZOO, resolve_detector
from repro.runner import parallel_map


LOCATIONS = (0, 1, 2)
PLANS = [{}, {2: 5}, {0: 4, 1: 16}]
NAMES = sorted(ZOO)


def _row(item):
    """One (detector name, crash plan) closure check."""
    name, crashes, steps = item
    detector = resolve_detector(name, LOCATIONS)
    trace = run_detector_trace(detector, crashes, steps, LOCATIONS)
    verdict = check_afd_closure_properties(
        detector, trace, num_samplings=2, num_reorderings=2, seed=3
    )
    return (name, crashes, len(trace), bool(verdict))


def sweep(quick=False, jobs=1):
    steps = 60 if quick else 130
    units = [
        (name, crashes, steps)
        for name in NAMES
        for crashes in (PLANS[:1] if quick else PLANS)
    ]
    return parallel_map(_row, units, jobs=jobs)


BENCH = BenchSpec(
    bench_id="e03",
    title="E3: AFD closure sweep over the zoo",
    kernel=sweep,
    header=("detector", "crash plan", "events", "AFD properties"),
)


def test_e03_zoo_closures(benchmark):
    rows = benchmark(sweep)
    print_series(BENCH.title, rows, header=BENCH.header)
    emit_bench_artifact(BENCH, rows)
    assert all(ok for (*_x, ok) in rows)
    assert len({name for (name, *_r) in rows}) == len(NAMES)


if __name__ == "__main__":
    raise SystemExit(bench_main(BENCH))
