"""E3 — Section 3.3's wider zoo: Sigma, anti-Omega, Omega^k, Psi^k (plus
S and ◇S from [5]) are AFDs — validity plus both closures, on generated
traces across fault plans.

Series: detector x crash plan -> verdicts.
"""

from repro.core.afd import check_afd_closure_properties
from repro.detectors.registry import ZOO, make_detector

from _helpers import print_series, run_detector_trace

LOCATIONS = (0, 1, 2)
PLANS = [{}, {2: 5}, {0: 4, 1: 16}]
NAMES = sorted(ZOO)


def sweep():
    rows = []
    for name in NAMES:
        detector = make_detector(name, LOCATIONS)
        for crashes in PLANS:
            trace = run_detector_trace(detector, crashes, 130, LOCATIONS)
            verdict = check_afd_closure_properties(
                detector, trace, num_samplings=2, num_reorderings=2, seed=3
            )
            rows.append((name, crashes, len(trace), bool(verdict)))
    return rows


def test_e03_zoo_closures(benchmark):
    rows = benchmark(sweep)
    print_series(
        "E3: AFD closure sweep over the zoo",
        rows,
        header=("detector", "crash plan", "events", "AFD properties"),
    )
    assert all(ok for (*_x, ok) in rows)
    assert len({name for (name, *_r) in rows}) == len(NAMES)
