"""E12 — Section 8 / Theorem 41: tagged-tree construction cost, and
prefix-equality of trees whose FD sequences share a prefix.

Series: |t_D| -> quotient vertices, build time; plus the Theorem 41
bounded-view comparison.
"""

# _helpers comes first: it puts src/ on sys.path so the script
# runs directly (python benchmarks/bench_*.py) without PYTHONPATH.
from _helpers import BenchSpec, bench_main, emit_bench_artifact, print_series

from repro.algorithms.consensus_tree import tree_consensus_algorithm
from repro.detectors.perfect import perfect_output
from repro.ioa.composition import Composition
from repro.system.channel import make_channels
from repro.system.environment import ConsensusEnvironment
from repro.system.fault_pattern import crash_action
from repro.tree.tagged_tree import TaggedTreeGraph


LOCATIONS = (0, 1)


def build_composition():
    algorithm = tree_consensus_algorithm(LOCATIONS)
    return Composition(
        list(algorithm.automata())
        + make_channels(LOCATIONS)
        + [ConsensusEnvironment(LOCATIONS)],
        name="tree-system",
    )


def crash_free(rounds):
    return [
        perfect_output(i, ())
        for _ in range(rounds)
        for i in LOCATIONS
    ]


def _row(rounds):
    """Build one tagged tree (composition rebuilt worker-side)."""
    composition = build_composition()
    td = crash_free(rounds)
    graph = TaggedTreeGraph(composition, td, max_vertices=500_000)
    return (len(td), graph.num_vertices)


def sweep(quick=False, jobs=1):
    from repro.runner import parallel_map

    return parallel_map(
        _row, (4, 6) if quick else (4, 6, 8, 10), jobs=jobs
    )


BENCH = BenchSpec(
    bench_id="e12",
    title="E12: tagged-tree quotient size vs |t_D|",
    kernel=sweep,
    header=("|t_D|", "quotient vertices"),
)


def test_e12_tree_growth(benchmark):
    rows = benchmark.pedantic(sweep, rounds=2, iterations=1)
    print_series(BENCH.title, rows, header=BENCH.header)
    emit_bench_artifact(BENCH, rows)
    sizes = [v for (_l, v) in rows]
    assert sizes == sorted(sizes), "longer t_D => no smaller tree"


def test_e12_theorem41_prefix_equality(benchmark):
    composition = build_composition()
    t1 = crash_free(6)
    t2 = t1[:2] + [crash_action(1)] + [perfect_output(0, (1,))] * 6

    def views():
        g1 = TaggedTreeGraph(composition, t1, max_vertices=500_000)
        g2 = TaggedTreeGraph(composition, t2, max_vertices=500_000)
        return g1.bounded_view(2), g2.bounded_view(2), g1.bounded_view(3), g2.bounded_view(3)

    v1, v2, w1, w2 = benchmark(views)
    print_series(
        "E12: Theorem 41 bounded views",
        [
            ("shared prefix length", 2),
            ("views equal at depth 2", v1 == v2),
            ("views differ at depth 3 (post-prefix)", w1 != w2),
        ],
    )
    assert v1 == v2
    assert w1 != w2


if __name__ == "__main__":
    raise SystemExit(bench_main(BENCH))
