"""A1 (ablation) — scheduling policy: consensus latency under the
deterministic round-robin scheduler vs seeded random fair schedulers.

Design choice probed: the library's experiments default to round-robin
for reproducibility; this ablation confirms results are not an artifact
of that choice — random fair schedules decide too, with moderately
higher and more variable latency.
"""

from statistics import mean

from repro.algorithms.consensus_omega import omega_consensus_algorithm
from repro.analysis.checkers import run_consensus_experiment
from repro.detectors.omega import Omega
from repro.ioa.scheduler import RandomPolicy
from repro.system.fault_pattern import FaultPattern

from _helpers import print_series

LOCATIONS = (0, 1, 2)


def sweep():
    proposals = {0: 1, 1: 0, 2: 0}
    pattern = FaultPattern({0: 10}, LOCATIONS)
    rows = []
    base = run_consensus_experiment(
        omega_consensus_algorithm(LOCATIONS),
        Omega(LOCATIONS),
        proposals=proposals,
        fault_pattern=pattern,
        f=1,
        max_steps=30_000,
    )
    assert base.solved
    rows.append(("round-robin", base.steps, True))
    random_latencies = []
    for seed in range(6):
        result = run_consensus_experiment(
            omega_consensus_algorithm(LOCATIONS),
            Omega(LOCATIONS),
            proposals=proposals,
            fault_pattern=pattern,
            f=1,
            max_steps=30_000,
            policy=RandomPolicy(seed=seed),
        )
        rows.append((f"random(seed={seed})", result.steps, result.solved))
        random_latencies.append(result.steps)
    rows.append(
        ("random mean", round(mean(random_latencies), 1), True)
    )
    return rows


def test_a01_scheduler_ablation(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        "A1: consensus latency by scheduling policy",
        rows,
        header=("policy", "events to settle", "solved"),
    )
    assert all(solved for (_p, _e, solved) in rows)
