"""A1 (ablation) — scheduling policy: consensus latency under the
deterministic round-robin scheduler vs seeded random fair schedulers.

Design choice probed: the library's experiments default to round-robin
for reproducibility; this ablation confirms results are not an artifact
of that choice — random fair schedules decide too, with moderately
higher and more variable latency.
"""

# _helpers comes first: it puts src/ on sys.path so the script
# runs directly (python benchmarks/bench_*.py) without PYTHONPATH.
from _helpers import BenchSpec, bench_main, emit_bench_artifact, print_series

from statistics import mean

from repro.algorithms.consensus_omega import omega_consensus_algorithm
from repro.analysis.checkers import run_consensus_experiment
from repro.detectors.omega import Omega
from repro.ioa.scheduler import RandomPolicy
from repro.system.fault_pattern import FaultPattern


LOCATIONS = (0, 1, 2)


def sweep(quick=False):
    proposals = {0: 1, 1: 0, 2: 0}
    pattern = FaultPattern({0: 10}, LOCATIONS)
    rows = []
    base = run_consensus_experiment(
        omega_consensus_algorithm(LOCATIONS),
        Omega(LOCATIONS),
        proposals=proposals,
        fault_pattern=pattern,
        f=1,
        max_steps=30_000,
    )
    assert base.solved
    rows.append(("round-robin", base.steps, True))
    random_latencies = []
    for seed in range(2 if quick else 6):
        result = run_consensus_experiment(
            omega_consensus_algorithm(LOCATIONS),
            Omega(LOCATIONS),
            proposals=proposals,
            fault_pattern=pattern,
            f=1,
            max_steps=30_000,
            policy=RandomPolicy(seed=seed),
        )
        rows.append((f"random(seed={seed})", result.steps, result.solved))
        random_latencies.append(result.steps)
    rows.append(
        ("random mean", round(mean(random_latencies), 1), True)
    )
    return rows


BENCH = BenchSpec(
    bench_id="a01",
    title="A1: consensus latency by scheduling policy",
    kernel=sweep,
    header=("policy", "events to settle", "solved"),
)


def test_a01_scheduler_ablation(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(BENCH.title, rows, header=BENCH.header)
    emit_bench_artifact(BENCH, rows)
    assert all(solved for (_p, _e, solved) in rows)


if __name__ == "__main__":
    raise SystemExit(bench_main(BENCH))
