"""A1 (ablation) — scheduling policy: consensus latency under the
deterministic round-robin scheduler vs seeded random fair schedulers.

Design choice probed: the library's experiments default to round-robin
for reproducibility; this ablation confirms results are not an artifact
of that choice — random fair schedules decide too, with moderately
higher and more variable latency.

The seeded schedules are expressed as ``ExperimentSpec(policy="random",
seed=...)`` values and run through a :class:`~repro.runner.BatchRunner`,
so ``--jobs N`` fans them across processes with identical latencies.
"""

# _helpers comes first: it puts src/ on sys.path so the script
# runs directly (python benchmarks/bench_*.py) without PYTHONPATH.
from _helpers import BenchSpec, bench_main, emit_bench_artifact, print_series

import dataclasses
from statistics import mean

from repro.algorithms.consensus_omega import omega_consensus_algorithm
from repro.runner import BatchRunner, ExperimentSpec


LOCATIONS = (0, 1, 2)


def build_specs(quick=False):
    base = ExperimentSpec(
        algorithm=omega_consensus_algorithm,
        detector="omega",
        locations=LOCATIONS,
        proposals={0: 1, 1: 0, 2: 0},
        crashes={0: 10},
        f=1,
        max_steps=30_000,
        label="round-robin",
    )
    specs = [base]
    for seed in range(2 if quick else 6):
        specs.append(
            dataclasses.replace(
                base,
                policy="random",
                seed=seed,
                label=f"random(seed={seed})",
            )
        )
    return specs


def sweep(quick=False, jobs=1):
    specs = build_specs(quick=quick)
    batch = BatchRunner(jobs=jobs).run(specs, raise_on_error=True)
    rows = [(r.label, r.steps, r.solved) for r in batch]
    assert rows[0][2], "round-robin baseline must solve"
    random_latencies = [r.steps for r in list(batch)[1:]]
    rows.append(("random mean", round(mean(random_latencies), 1), True))
    return rows


BENCH = BenchSpec(
    bench_id="a01",
    title="A1: consensus latency by scheduling policy",
    kernel=sweep,
    header=("policy", "events to settle", "solved"),
)


def test_a01_scheduler_ablation(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(BENCH.title, rows, header=BENCH.header)
    emit_bench_artifact(BENCH, rows)
    assert all(solved for (_p, _e, solved) in rows)


if __name__ == "__main__":
    raise SystemExit(bench_main(BENCH))
