"""E4 — Section 3.4: Marabout is not an AFD.  For every candidate
automaton in a family of guessers, the adversary constructs a fault
pattern whose trace violates the Marabout specification.

Series: candidate -> refutation kind.
"""

# _helpers comes first: it puts src/ on sys.path so the script
# runs directly (python benchmarks/bench_*.py) without PYTHONPATH.
from _helpers import BenchSpec, bench_main, emit_bench_artifact, print_series

from repro.detectors.base import CrashsetDetectorAutomaton, sorted_tuple
from repro.detectors.marabout import (
    MARABOUT_OUTPUT,
    MaraboutSpec,
    refute_marabout_automaton,
)


LOCATIONS = (0, 1, 2)


def candidate_family():
    """Deterministic candidates a hopeful implementer might try."""
    yield "echo-crashset", CrashsetDetectorAutomaton(
        LOCATIONS,
        MARABOUT_OUTPUT,
        lambda loc, crashset: (sorted_tuple(crashset),),
        name="echo-crashset",
    )
    for guess in ([0], [2], [1, 2], list(LOCATIONS)):
        yield f"always-{guess}", CrashsetDetectorAutomaton(
            LOCATIONS,
            MARABOUT_OUTPUT,
            lambda loc, crashset, g=tuple(sorted(guess)): (g,),
            name=f"always-{guess}",
        )


def _row(index):
    """Refute candidate #index (rebuilt in-process: lambdas don't pickle)."""
    name, candidate = list(candidate_family())[index]
    spec = MaraboutSpec(LOCATIONS)
    refutation = refute_marabout_automaton(candidate, LOCATIONS)
    violated = not spec.accepts(refutation.trace)
    return (name, refutation.fault_pattern_note, violated)


def refute_all(jobs=1):
    from repro.runner import parallel_map

    count = sum(1 for _ in candidate_family())
    return parallel_map(_row, list(range(count)), jobs=jobs)


BENCH = BenchSpec(
    bench_id="e04",
    title="E4: Marabout refutations",
    kernel=refute_all,
    header=("candidate", "adversary's fault pattern", "spec violated"),
)


def test_e04_marabout_refuted(benchmark):
    rows = benchmark(refute_all)
    print_series(BENCH.title, rows, header=BENCH.header)
    emit_bench_artifact(BENCH, rows)
    assert all(violated for (_n, _f, violated) in rows)


if __name__ == "__main__":
    raise SystemExit(bench_main(BENCH))
