"""E4 — Section 3.4: Marabout is not an AFD.  For every candidate
automaton in a family of guessers, the adversary constructs a fault
pattern whose trace violates the Marabout specification.

Series: candidate -> refutation kind.
"""

from repro.detectors.base import CrashsetDetectorAutomaton, sorted_tuple
from repro.detectors.marabout import (
    MARABOUT_OUTPUT,
    MaraboutSpec,
    refute_marabout_automaton,
)

from _helpers import print_series

LOCATIONS = (0, 1, 2)


def candidate_family():
    """Deterministic candidates a hopeful implementer might try."""
    yield "echo-crashset", CrashsetDetectorAutomaton(
        LOCATIONS,
        MARABOUT_OUTPUT,
        lambda loc, crashset: (sorted_tuple(crashset),),
        name="echo-crashset",
    )
    for guess in ([0], [2], [1, 2], list(LOCATIONS)):
        yield f"always-{guess}", CrashsetDetectorAutomaton(
            LOCATIONS,
            MARABOUT_OUTPUT,
            lambda loc, crashset, g=tuple(sorted(guess)): (g,),
            name=f"always-{guess}",
        )


def refute_all():
    spec = MaraboutSpec(LOCATIONS)
    rows = []
    for name, candidate in candidate_family():
        refutation = refute_marabout_automaton(candidate, LOCATIONS)
        violated = not spec.accepts(refutation.trace)
        rows.append((name, refutation.fault_pattern_note, violated))
    return rows


def test_e04_marabout_refuted(benchmark):
    rows = benchmark(refute_all)
    print_series(
        "E4: Marabout refutations",
        rows,
        header=("candidate", "adversary's fault pattern", "spec violated"),
    )
    assert all(violated for (_n, _f, violated) in rows)
