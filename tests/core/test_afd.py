"""Tests for the AFD base machinery (Section 3.2)."""

import pytest

from repro.core.afd import (
    CheckResult,
    check_afd_closure_properties,
    eventually_forever,
)
from repro.detectors.omega import Omega, omega_output
from repro.detectors.perfect import Perfect, perfect_output
from repro.system.fault_pattern import crash_action
from tests.conftest import run_detector
from repro.system.fault_pattern import FaultPattern

LOCS = (0, 1, 2)


class TestCheckResult:
    def test_truthiness(self):
        assert CheckResult.success()
        assert not CheckResult.failure("nope")

    def test_merge(self):
        good = CheckResult.success()
        bad = CheckResult.failure("a")
        merged = good.merge(bad)
        assert not merged
        assert merged.reasons == ["a"]


class TestEventuallyForever:
    def test_no_violation(self):
        t = [omega_output(i, 1) for _ in range(3) for i in (0, 1)]
        assert eventually_forever(t, frozenset({0, 1}), lambda a: True)

    def test_violation_followed_by_stabilization(self):
        t = [
            omega_output(0, 9),  # violation
            omega_output(0, 1),
            omega_output(1, 1),
        ]
        ok = lambda a: a.payload[0] == 1
        assert eventually_forever(
            t, frozenset({0, 1}), ok, min_tail_outputs=1
        )

    def test_violation_at_end_fails(self):
        t = [omega_output(0, 1), omega_output(1, 9)]
        ok = lambda a: a.payload[0] == 1
        result = eventually_forever(
            t, frozenset({0, 1}), ok, min_tail_outputs=1
        )
        assert not result

    def test_crash_events_never_violate(self):
        t = [crash_action(2), omega_output(0, 1), omega_output(1, 1)]
        ok = lambda a: a.payload[0] == 1
        assert eventually_forever(
            t, frozenset({0, 1}), ok, min_tail_outputs=1
        )

    def test_min_tail_outputs(self):
        t = [
            omega_output(0, 9),
            omega_output(0, 1),
            omega_output(1, 1),
        ]
        ok = lambda a: a.payload[0] == 1
        assert not eventually_forever(
            t, frozenset({0, 1}), ok, min_tail_outputs=2
        )

    def test_default_requires_three_tail_outputs(self):
        """One trailing conforming output is not stabilization evidence
        under the default threshold."""
        t = [omega_output(0, 9), omega_output(0, 1), omega_output(1, 1)]
        ok = lambda a: a.payload[0] == 1
        assert not eventually_forever(t, frozenset({0, 1}), ok)
        stable = [omega_output(0, 9)] + [
            omega_output(i, 1) for _ in range(3) for i in (0, 1)
        ]
        assert eventually_forever(stable, frozenset({0, 1}), ok)


class TestAFDVocabulary:
    def test_is_output(self):
        omega = Omega(LOCS)
        assert omega.is_output(omega_output(0, 1))
        assert not omega.is_output(perfect_output(0, ()))
        assert not omega.is_output(omega_output(9, 1))

    def test_is_event(self):
        omega = Omega(LOCS)
        assert omega.is_event(crash_action(0))
        assert omega.is_event(omega_output(1, 2))
        assert not omega.is_event(perfect_output(0, ()))

    def test_project_events(self):
        omega = Omega(LOCS)
        t = [omega_output(0, 1), perfect_output(0, ()), crash_action(1)]
        assert omega.project_events(t) == [
            omega_output(0, 1),
            crash_action(1),
        ]


class TestSafetyChecks:
    def test_malformed_output_rejected(self):
        omega = Omega(LOCS)
        bad = omega_output(0, 99)  # leader not in Pi
        result = omega.check_safety([bad])
        assert not result
        assert "malformed" in result.reasons[0]

    def test_foreign_event_rejected(self):
        omega = Omega(LOCS)
        result = omega.check_safety([perfect_output(0, ())])
        assert not result

    def test_output_after_crash_rejected(self):
        omega = Omega(LOCS)
        result = omega.check_safety(
            [crash_action(0), omega_output(0, 1)]
        )
        assert not result


class TestRenamedAFD:
    def test_renamed_checker_delegates(self):
        omega = Omega(LOCS)
        renamed = omega.renamed()
        t = run_detector(
            omega.automaton(), FaultPattern({2: 4}, LOCS), 90
        )
        renamed_t = renamed.renaming_map.apply_sequence(t)
        assert renamed.check_limit(renamed_t)
        # And the renamed checker rejects unrenamed events.
        assert not renamed.check_limit(t)

    def test_renamed_automaton_generates_renamed_trace(self):
        omega = Omega(LOCS)
        renamed = omega.renamed()
        t = run_detector(
            renamed.automaton(), FaultPattern({1: 5}, LOCS), 90
        )
        outputs = [a for a in t if not a.name == "crash"]
        assert outputs
        assert all(a.name == "fd-omega'" for a in outputs)
        assert renamed.check_limit(t)

    def test_renamed_name(self):
        assert Omega(LOCS).renamed().name == "Omega'"


class TestClosureProperties:
    def test_omega_closures_on_generated_trace(self):
        omega = Omega(LOCS)
        t = run_detector(
            omega.automaton(), FaultPattern({2: 6}, LOCS), 120
        )
        assert check_afd_closure_properties(omega, t, seed=11)

    def test_perfect_closures_on_generated_trace(self):
        perfect = Perfect(LOCS)
        t = run_detector(
            perfect.automaton(), FaultPattern({0: 9}, LOCS), 120
        )
        assert check_afd_closure_properties(perfect, t, seed=11)

    def test_rejected_base_trace_reported(self):
        omega = Omega(LOCS)
        bad = [crash_action(0), omega_output(0, 1)]
        result = check_afd_closure_properties(omega, bad)
        assert not result
        assert "base trace rejected" in result.reasons[0]
