"""Tests for samplings (Section 3.2)."""

from repro.core.sampling import (
    enumerate_samplings,
    is_sampling_of,
    random_sampling,
)
from repro.detectors.omega import omega_output
from repro.system.fault_pattern import crash_action

O0 = omega_output(0, 0)
O1 = omega_output(1, 0)
O2 = omega_output(2, 0)
C2 = crash_action(2)


def trace():
    return [O0, O2, O1, O2, C2, O0, O1]


class TestIsSamplingOf:
    def test_identity_is_sampling(self):
        t = trace()
        assert is_sampling_of(t, t)

    def test_dropping_faulty_suffix(self):
        t = trace()
        # Drop the second output at faulty location 2.
        candidate = [O0, O2, O1, C2, O0, O1]
        assert is_sampling_of(candidate, t)

    def test_dropping_all_faulty_outputs(self):
        assert is_sampling_of([O0, O1, C2, O0, O1], trace())

    def test_must_keep_live_outputs(self):
        # Dropping an output at live location 0 is not a sampling.
        assert not is_sampling_of([O2, O1, O2, C2, O0, O1], trace())

    def test_must_keep_first_crash(self):
        assert not is_sampling_of([O0, O2, O1, O2, O0, O1], trace())

    def test_faulty_outputs_must_form_prefix(self):
        # Keeping the second output at 2 but not the first breaks the
        # prefix requirement... the subsequence test already fails for a
        # reordered pick, so construct equal events: both outputs at 2 are
        # identical here, so any single copy is a prefix; use distinct
        # payloads instead.
        t = [omega_output(2, 0), omega_output(2, 1), crash_action(2),
             omega_output(0, 0)]
        keep_second_only = [omega_output(2, 1), crash_action(2),
                            omega_output(0, 0)]
        assert not is_sampling_of(keep_second_only, t)

    def test_not_a_subsequence(self):
        assert not is_sampling_of([O1, O0], [O0, O1])

    def test_duplicate_crash_events_removable(self):
        t = [C2, C2, O0]
        assert is_sampling_of([C2, O0], t)


class TestRandomSampling:
    def test_result_is_sampling(self):
        t = trace()
        for seed in range(20):
            assert is_sampling_of(random_sampling(t, seed=seed), t)

    def test_reproducible(self):
        t = trace()
        assert random_sampling(t, seed=5) == random_sampling(t, seed=5)

    def test_crash_free_traces_unchanged(self):
        t = [O0, O1, O0]
        for seed in range(5):
            assert random_sampling(t, seed=seed) == t


class TestEnumerateSamplings:
    def test_all_enumerated_are_samplings(self):
        t = trace()
        samplings = list(enumerate_samplings(t))
        assert samplings
        for s in samplings:
            assert is_sampling_of(s, t)

    def test_identity_included(self):
        t = trace()
        assert any(s == t for s in enumerate_samplings(t))

    def test_count_for_simple_case(self):
        # One faulty location with 2 outputs, no duplicate crashes:
        # prefix lengths 0, 1, 2 -> exactly 3 samplings.
        t = [omega_output(2, 0), omega_output(2, 1), C2]
        assert len(list(enumerate_samplings(t))) == 3

    def test_max_results(self):
        t = trace()
        assert len(list(enumerate_samplings(t, max_results=2))) == 2
