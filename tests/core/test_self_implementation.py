"""Tests for Algorithm 3 (Section 6): every AFD is self-implementable.

These tests re-trace the proof structure on concrete executions: the
queue discipline (Lemma 2 / Corollary 3), live-location completeness
(Lemma 4 / Corollary 5), and the end-to-end Theorem 13 statement for
several zoo detectors under several fault patterns.
"""

import pytest

from repro.ioa.composition import Composition
from repro.ioa.scheduler import Scheduler
from repro.core.self_implementation import (
    SelfImplementationProcess,
    self_implementation_algorithm,
)
from repro.detectors.eventually_perfect import EventuallyPerfect
from repro.detectors.omega import Omega, omega_output
from repro.detectors.perfect import Perfect
from repro.detectors.quorum import Sigma
from repro.system.crash import CrashAutomaton
from repro.system.fault_pattern import FaultPattern, crash_action

LOCS = (0, 1, 2)


def run_self_implementation(afd, fault_pattern, steps=400):
    algorithm, renaming = self_implementation_algorithm(afd)
    system = Composition(
        [afd.automaton()]
        + list(algorithm.automata())
        + [CrashAutomaton(afd.locations)],
        name="self-impl",
    )
    execution = Scheduler().run(
        system, max_steps=steps, injections=fault_pattern.injections()
    )
    events = list(execution.actions)
    return events, renaming


class TestQueueDiscipline:
    """Lemma 2 and Corollary 3 at the level of a single process."""

    def setup_method(self):
        self.afd = Omega(LOCS)
        self.renaming = self.afd.renaming()
        self.proc = SelfImplementationProcess(0, self.afd, self.renaming)

    def test_inputs_enqueue(self):
        state = self.proc.initial_state()
        state = self.proc.apply(state, omega_output(0, 1))
        _failed, fdq = state
        assert fdq == (omega_output(0, 1),)

    def test_output_is_renamed_head(self):
        state = self.proc.apply(
            self.proc.initial_state(), omega_output(0, 1)
        )
        enabled = list(self.proc.enabled_locally(state))
        assert enabled == [self.renaming.apply(omega_output(0, 1))]

    def test_output_dequeues(self):
        state = self.proc.apply(
            self.proc.initial_state(), omega_output(0, 1)
        )
        state = self.proc.apply(
            state, self.renaming.apply(omega_output(0, 1))
        )
        _failed, fdq = state
        assert fdq == ()

    def test_fifo_order(self):
        state = self.proc.initial_state()
        state = self.proc.apply(state, omega_output(0, 1))
        state = self.proc.apply(state, omega_output(0, 2))
        enabled = list(self.proc.enabled_locally(state))
        assert enabled == [self.renaming.apply(omega_output(0, 1))]

    def test_crash_disables_outputs(self):
        state = self.proc.apply(
            self.proc.initial_state(), omega_output(0, 1)
        )
        state = self.proc.apply(state, crash_action(0))
        assert list(self.proc.enabled_locally(state)) == []

    def test_only_own_location_inputs(self):
        state = self.proc.apply(
            self.proc.initial_state(), omega_output(1, 1)
        )
        _failed, fdq = state
        assert fdq == ()  # not an input at location 0


@pytest.mark.parametrize(
    "afd_factory",
    [Omega, Perfect, EventuallyPerfect, Sigma],
    ids=["Omega", "P", "EvP", "Sigma"],
)
@pytest.mark.parametrize(
    "crashes",
    [{}, {2: 5}, {0: 10, 1: 30}],
    ids=["crash-free", "one-crash", "two-crashes"],
)
class TestTheorem13:
    def test_aself_solves_renaming(self, afd_factory, crashes):
        """If the D events conform to T_D, the emitted events conform to
        T_D' (for the renaming D')."""
        afd = afd_factory(LOCS)
        pattern = FaultPattern(crashes, LOCS)
        events, renaming = run_self_implementation(afd, pattern)
        renamed_afd = afd.renamed()
        source = afd.project_events(events)
        target = renamed_afd.project_events(events)
        assert afd.check_limit(source), "premise must hold in this setup"
        result = renamed_afd.check_limit(target)
        assert result, result.reasons


class TestProofStructure:
    """Per-location structural facts from the Section 6 proof."""

    def test_outputs_form_prefix_of_inputs(self, ):
        """Corollary 3: at each location, the emitted (inverted) outputs
        form a prefix of the inputs received there."""
        afd = Omega(LOCS)
        pattern = FaultPattern({1: 8}, LOCS)
        events, renaming = run_self_implementation(afd, pattern)
        for i in LOCS:
            inputs = [
                a for a in events if afd.is_output(a) and a.location == i
            ]
            outputs = [
                renaming.invert(a)
                for a in events
                if a.name == "fd-omega'" and a.location == i
            ]
            assert outputs == inputs[: len(outputs)]

    def test_live_locations_emit_everything(self):
        """Corollary 5 (finite form): at live locations the number of
        emitted outputs tracks the inputs (within one queued element)."""
        afd = Omega(LOCS)
        pattern = FaultPattern({1: 8}, LOCS)
        events, renaming = run_self_implementation(afd, pattern, steps=600)
        for i in pattern.live:
            inputs = [
                a for a in events if afd.is_output(a) and a.location == i
            ]
            outputs = [
                a
                for a in events
                if a.name == "fd-omega'" and a.location == i
            ]
            assert len(inputs) - len(outputs) <= 1
