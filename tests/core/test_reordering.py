"""Tests for constrained reorderings (Section 3.2)."""

from repro.core.reordering import (
    constrained_predecessors,
    delay_location,
    enumerate_constrained_reorderings,
    is_constrained_reordering_of,
    random_constrained_reordering,
)
from repro.detectors.omega import omega_output
from repro.system.fault_pattern import crash_action

O0 = omega_output(0, 0)
O1 = omega_output(1, 0)
O2 = omega_output(2, 0)
C2 = crash_action(2)


class TestConstraints:
    def test_same_location_constrained(self):
        t = [O0, omega_output(0, 1)]
        preds = constrained_predecessors(t)
        assert preds[1] == {0}

    def test_different_locations_unconstrained(self):
        preds = constrained_predecessors([O0, O1])
        assert preds[1] == set()

    def test_crash_constrains_everything_after(self):
        preds = constrained_predecessors([C2, O0, O1])
        assert preds[1] == {0}
        assert preds[2] == {0}

    def test_events_before_crash_not_constrained_to_it(self):
        # An output before a crash at a different location may move after.
        preds = constrained_predecessors([O0, C2])
        assert preds[1] == set()


class TestIsConstrainedReordering:
    def test_identity(self):
        t = [O0, O1, C2]
        assert is_constrained_reordering_of(t, t)

    def test_cross_location_swap_allowed(self):
        assert is_constrained_reordering_of([O1, O0], [O0, O1])

    def test_same_location_swap_forbidden(self):
        a, b = omega_output(0, 0), omega_output(0, 1)
        assert not is_constrained_reordering_of([b, a], [a, b])

    def test_crash_order_preserved(self):
        # crash then output: cannot put the output first.
        assert not is_constrained_reordering_of([O0, C2], [C2, O0])

    def test_output_may_move_after_later_crash(self):
        # O0 before C2 in t; moving it after is allowed.
        assert is_constrained_reordering_of([C2, O0], [O0, C2])

    def test_not_a_permutation(self):
        assert not is_constrained_reordering_of([O0], [O0, O1])
        assert not is_constrained_reordering_of([O0, O0], [O0, O1])

    def test_duplicate_events_handled(self):
        t = [O0, O1, O0]
        assert is_constrained_reordering_of([O1, O0, O0], t)
        assert is_constrained_reordering_of([O0, O0, O1], t)


class TestRandomReordering:
    def test_results_are_constrained_reorderings(self):
        t = [O0, O2, O1, C2, O0, O1]
        for seed in range(20):
            candidate = random_constrained_reordering(t, seed=seed)
            assert is_constrained_reordering_of(candidate, t)

    def test_reproducible(self):
        t = [O0, O1, O2, C2]
        assert random_constrained_reordering(
            t, seed=9
        ) == random_constrained_reordering(t, seed=9)

    def test_varies_with_seed(self):
        t = [O0, O1, O2] * 3
        results = {
            tuple(random_constrained_reordering(t, seed=s))
            for s in range(10)
        }
        assert len(results) > 1


class TestEnumeration:
    def test_enumerates_exactly_topological_orders(self):
        # Two independent events: 2 orders.
        assert len(list(enumerate_constrained_reorderings([O0, O1]))) == 2
        # Same-location pair: only 1.
        a, b = omega_output(0, 0), omega_output(0, 1)
        assert len(list(enumerate_constrained_reorderings([a, b]))) == 1

    def test_all_enumerated_valid(self):
        t = [O0, O1, C2, O0]
        for candidate in enumerate_constrained_reorderings(t):
            assert is_constrained_reordering_of(candidate, t)

    def test_max_results(self):
        t = [O0, O1, O2]
        assert len(
            list(enumerate_constrained_reorderings(t, max_results=3))
        ) == 3


class TestDelayLocation:
    def test_delay_produces_constrained_reordering(self):
        t = [O0, O1, O0, O2, O1]
        delayed = delay_location(t, 0, by=2)
        assert is_constrained_reordering_of(delayed, t)

    def test_delay_moves_events_later(self):
        t = [O0, O1, O2]
        delayed = delay_location(t, 0, by=5)
        assert delayed.index(O0) > t.index(O0)
