"""Tests for valid sequences (Section 3.2)."""

from repro.detectors.omega import omega_output
from repro.core.validity import (
    check_no_outputs_after_crash,
    faulty_locations,
    first_crash_index,
    is_valid_finite,
    live_locations,
    outputs_at,
    split_crash_and_outputs,
    stabilized_suffix,
)
from repro.system.fault_pattern import crash_action

import pytest

LOCS = (0, 1, 2)


def valid_trace():
    return [
        omega_output(0, 0),
        omega_output(1, 0),
        omega_output(2, 0),
        crash_action(2),
        omega_output(0, 0),
        omega_output(1, 0),
    ]


class TestLivenessSets:
    def test_faulty(self):
        assert faulty_locations(valid_trace()) == {2}

    def test_live(self):
        assert live_locations(valid_trace(), LOCS) == {0, 1}

    def test_crash_free(self):
        t = [omega_output(0, 0)]
        assert faulty_locations(t) == frozenset()
        assert live_locations(t, LOCS) == {0, 1, 2}

    def test_first_crash_index(self):
        assert first_crash_index(valid_trace(), 2) == 3
        assert first_crash_index(valid_trace(), 0) is None

    def test_outputs_at(self):
        assert len(outputs_at(valid_trace(), 0)) == 2
        assert len(outputs_at(valid_trace(), 2)) == 1


class TestValidityCondition1:
    def test_accepts_valid(self):
        assert check_no_outputs_after_crash(valid_trace())

    def test_rejects_output_after_crash(self):
        t = valid_trace() + [omega_output(2, 0)]
        report = check_no_outputs_after_crash(t)
        assert not report
        assert "crash_2" in report.reasons[0]

    def test_output_at_other_location_fine(self):
        t = [crash_action(2), omega_output(0, 0)]
        assert check_no_outputs_after_crash(t)


class TestValidityCondition2:
    def test_live_needs_outputs(self):
        t = [omega_output(0, 0)]
        report = is_valid_finite(t, LOCS, min_live_outputs=1)
        assert not report  # locations 1, 2 have no outputs
        assert any("live location" in r for r in report.reasons)

    def test_threshold(self):
        t = valid_trace()
        assert is_valid_finite(t, LOCS, min_live_outputs=2)
        assert not is_valid_finite(t, LOCS, min_live_outputs=3)

    def test_faulty_location_not_required_to_output(self):
        t = [crash_action(2), omega_output(0, 0), omega_output(1, 0)]
        assert is_valid_finite(t, LOCS, min_live_outputs=1)


class TestHelpers:
    def test_stabilized_suffix(self):
        t = list(range(10))
        assert stabilized_suffix(t, 0.5) == list(range(5, 10))
        assert stabilized_suffix(t, 1.0) == t
        with pytest.raises(ValueError):
            stabilized_suffix(t, 0)

    def test_split(self):
        crashes, outputs = split_crash_and_outputs(valid_trace())
        assert len(crashes) == 1
        assert len(outputs) == 5
