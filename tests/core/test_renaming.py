"""Tests for renamings (Section 5.3)."""

import pytest

from repro.core.renaming import Renaming
from repro.detectors.omega import omega_output
from repro.system.fault_pattern import crash_action


class TestRenamingConstruction:
    def test_crash_must_be_fixed(self):
        with pytest.raises(ValueError):
            Renaming({"crash": "crash'"})

    def test_injectivity_required(self):
        with pytest.raises(ValueError):
            Renaming({"a": "x", "b": "x"})

    def test_freshness_required(self):
        with pytest.raises(ValueError):
            Renaming({"a": "b", "b": "c"})

    def test_with_suffix(self):
        r = Renaming.with_suffix(["fd-omega"], "'")
        assert r.apply(omega_output(0, 1)).name == "fd-omega'"


class TestRenamingApplication:
    def setup_method(self):
        self.r = Renaming({"fd-omega": "fd-omega'"})

    def test_apply_preserves_location_and_payload(self):
        """Conditions 2a, 2d."""
        a = omega_output(3, 1)
        renamed = self.r.apply(a)
        assert renamed.location == 3
        assert renamed.payload == (1,)
        assert renamed.name == "fd-omega'"

    def test_crash_fixed(self):
        """Condition 2b."""
        c = crash_action(1)
        assert self.r.apply(c) == c
        assert self.r.invert(c) == c

    def test_invert_roundtrip(self):
        a = omega_output(0, 2)
        assert self.r.invert(self.r.apply(a)) == a

    def test_uncovered_action_raises(self):
        with pytest.raises(KeyError):
            self.r.apply(omega_output(0, 1).with_name("fd-p"))
        with pytest.raises(KeyError):
            self.r.invert(omega_output(0, 1))  # not in the range

    def test_covers(self):
        assert self.r.covers(omega_output(0, 1))
        assert self.r.covers(crash_action(0))
        assert not self.r.covers(omega_output(0, 1).with_name("zzz"))
        assert self.r.covers_renamed(
            omega_output(0, 1).with_name("fd-omega'")
        )

    def test_sequence_homomorphism(self):
        """Condition 2e: same length, elementwise application."""
        t = [omega_output(0, 1), crash_action(2), omega_output(1, 1)]
        renamed = self.r.apply_sequence(t)
        assert len(renamed) == len(t)
        assert renamed[1] == crash_action(2)
        assert renamed[0].name == "fd-omega'"
        assert self.r.invert_sequence(renamed) == t
