"""Tests for solvability relations and reductions (Sections 5, 7.1)."""

import pytest

from repro.core.ordering import ReductionOutcome, evaluate_reduction
from repro.core.afd import CheckResult
from repro.detectors.registry import known_reductions, make_detector
from repro.system.fault_pattern import FaultPattern

LOCS = (0, 1, 2)

PATTERNS = [
    FaultPattern({}, LOCS),
    FaultPattern({2: 5}, LOCS),
    FaultPattern({0: 12}, LOCS),
]


class TestReductionOutcome:
    def test_holds_semantics(self):
        ok = CheckResult.success()
        bad = CheckResult.failure("x")
        assert ReductionOutcome(ok, ok).holds
        assert ReductionOutcome(bad, bad).holds  # vacuous
        assert ReductionOutcome(bad, ok).holds
        assert not ReductionOutcome(ok, bad).holds

    def test_vacuous_flag(self):
        bad = CheckResult.failure("x")
        ok = CheckResult.success()
        assert ReductionOutcome(bad, ok).vacuous
        assert not ReductionOutcome(ok, ok).vacuous


def reduction_by_name(name):
    for r in known_reductions():
        if r.name == name:
            return r
    raise KeyError(name)


@pytest.mark.parametrize("pattern", PATTERNS, ids=["crash-free", "c2", "c0"])
@pytest.mark.parametrize(
    "name",
    [r.name for r in known_reductions()],
)
class TestKnownReductions:
    def test_reduction_holds_nonvacuously(self, name, pattern):
        reduction = reduction_by_name(name)
        source, target, algorithm = reduction.instantiate(LOCS)
        outcome = evaluate_reduction(
            source,
            target,
            algorithm,
            pattern,
            max_steps=2000 if reduction.needs_channels else 700,
            include_channels=reduction.needs_channels,
        )
        assert outcome.premise.ok, (
            f"premise failed: {outcome.premise.reasons}"
        )
        assert outcome.conclusion.ok, (
            f"{name} failed under {dict(pattern.crashes)}: "
            f"{outcome.conclusion.reasons}"
        )


class TestTransitivity:
    """Theorem 15: stacked reductions compose (P >= EvP >= Omega run as
    one system yields Omega-conforming outputs from P)."""

    @pytest.mark.parametrize(
        "pattern", PATTERNS, ids=["crash-free", "c2", "c0"]
    )
    def test_stacked_reduction(self, pattern):
        first = reduction_by_name("P>=EvP")
        second = reduction_by_name("EvP>=Omega")
        p, evp, algorithm1 = first.instantiate(LOCS)
        _evp2, omega, algorithm2 = second.instantiate(LOCS)
        outcome = evaluate_reduction(
            p,
            omega,
            algorithm1,
            pattern,
            max_steps=900,
            extra_components=list(algorithm2.automata()),
        )
        assert outcome.premise.ok
        assert outcome.conclusion.ok, outcome.conclusion.reasons
