"""Tests for the weakest/representative bookkeeping (Section 7.2)."""

from repro.core.representative import (
    DirectionEvidence,
    RepresentativeVerdict,
    is_weakest_candidate,
)


class TestDirectionEvidence:
    def test_initially_empty(self):
        ev = DirectionEvidence()
        assert not ev.all_held  # no evidence is not evidence

    def test_all_held(self):
        ev = DirectionEvidence()
        ev.record(holds=True, vacuous=False)
        ev.record(holds=True, vacuous=True)
        assert ev.all_held
        assert ev.vacuous == 1

    def test_failure_recorded(self):
        ev = DirectionEvidence()
        ev.record(holds=True, vacuous=False)
        ev.record(holds=False, vacuous=False, note="pattern c0 failed")
        assert not ev.all_held
        assert ev.failures == ["pattern c0 failed"]


class TestRepresentativeVerdict:
    def test_representative_needs_both_directions(self):
        verdict = RepresentativeVerdict("D", "consensus")
        verdict.solves.record(holds=True, vacuous=False)
        assert not verdict.representative_on_evidence  # extract missing
        verdict.extracts.record(holds=True, vacuous=False)
        assert verdict.representative_on_evidence

    def test_weakest_needs_only_solving(self):
        verdict = RepresentativeVerdict("Omega", "consensus")
        verdict.solves.record(holds=True, vacuous=False)
        assert verdict.weakest_candidate_on_evidence
        assert not verdict.representative_on_evidence

    def test_lemma_20_shape(self):
        """Representative implies weakest-candidate (Lemma 20's finite
        shadow): whenever both directions hold, the solving direction
        certainly holds."""
        verdict = RepresentativeVerdict("participant", "consensus")
        verdict.solves.record(holds=True, vacuous=False)
        verdict.extracts.record(holds=True, vacuous=False)
        assert verdict.representative_on_evidence
        assert verdict.weakest_candidate_on_evidence


class TestIsWeakestCandidate:
    def test_all_solvers_stronger(self):
        from repro.detectors.omega import Omega

        omega = Omega((0, 1, 2))
        assert is_weakest_candidate(
            omega,
            solved_by=["P", "EvP", "Omega"],
            stronger_than={"P": True, "EvP": True, "Omega": True},
        )

    def test_missing_strength_witness_fails(self):
        from repro.detectors.omega import Omega

        omega = Omega((0, 1, 2))
        assert not is_weakest_candidate(
            omega,
            solved_by=["P", "Sigma"],
            stronger_than={"P": True},  # Sigma >= Omega not witnessed
        )
