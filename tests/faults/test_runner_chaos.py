"""Chaos through the experiment engine: spec plumbing, sweep axis,
serial/parallel byte-determinism, and crash-rule integration.
"""

from __future__ import annotations

import pytest

from repro.algorithms.consensus_omega import omega_consensus_algorithm
from repro.analysis.checkers import run_consensus_experiment
from repro.detectors.omega import Omega
from repro.faults.plan import ChannelFaults, CrashRule, FaultPlan
from repro.runner.batch import BatchRunner
from repro.runner.seeds import derive_seed
from repro.runner.spec import ExperimentSpec
from repro.runner.sweep import sweep
from repro.system.fault_pattern import FaultPattern

LOCS = (0, 1, 2)


def base_spec(**overrides):
    kwargs = dict(
        algorithm=omega_consensus_algorithm,
        detector="omega",
        locations=LOCS,
        proposals={0: 1, 1: 0, 2: 1},
        f=1,
        seed=11,
        max_steps=20_000,
    )
    kwargs.update(overrides)
    return ExperimentSpec(**kwargs)


# -- Spec plumbing -----------------------------------------------------------


def test_fault_plan_rejected_for_detector_trace_problem():
    with pytest.raises(ValueError, match="consensus"):
        ExperimentSpec(
            detector="omega",
            locations=LOCS,
            problem="detector-trace",
            fault_plan=FaultPlan.uniform(drop_p=0.1),
        )


def test_unbound_plan_is_bound_to_run_seed_derivation():
    spec = base_spec(fault_plan=FaultPlan.uniform(drop_p=0.1))
    resolved = spec.resolve_fault_plan()
    assert resolved.is_bound
    assert resolved.seed == derive_seed(spec.seed, "fault-plan")
    # A bound plan passes through untouched.
    pinned = FaultPlan.uniform(drop_p=0.1, seed=99)
    assert base_spec(fault_plan=pinned).resolve_fault_plan() is pinned
    assert base_spec().resolve_fault_plan() is None


def test_meta_carries_fault_plan_summary():
    spec = base_spec(
        fault_plan=FaultPlan.uniform(drop_p=0.25, seed=4)
    )
    meta = spec.meta()
    assert meta["fault_plan"]["seed"] == 4
    assert meta["fault_plan"]["default"] == {"drop_p": 0.25}
    assert "fault_plan" not in base_spec().meta()


# -- The sweep axis ----------------------------------------------------------


def test_sweep_without_fault_plans_keeps_pre_chaos_seed_formula():
    base = base_spec()
    variants = sweep(base, seeds=3, fault_patterns=[{}, {0: 5}])
    expected = [
        derive_seed(base.seed, 0, pi, si)
        for pi in range(2)
        for si in range(3)
    ]
    assert [v.seed for v in variants] == expected
    assert all(v.fault_plan is None for v in variants)
    assert all("|ch" not in v.label for v in variants)


def test_sweep_fault_plans_axis_expands_and_labels():
    base = base_spec()
    plans = [None, FaultPlan.uniform(drop_p=0.1)]
    variants = sweep(base, seeds=2, fault_plans=plans)
    assert len(variants) == 4
    assert [v.fault_plan for v in variants] == [
        None, None, plans[1], plans[1]
    ]
    assert [v.seed for v in variants] == [
        derive_seed(base.seed, 0, 0, "fpl", fi, si)
        for fi in range(2)
        for si in range(2)
    ]
    assert ["|ch0" in v.label for v in variants] == [
        True, True, False, False
    ]
    assert ["|ch1" in v.label for v in variants] == [
        False, False, True, True
    ]
    assert len({v.seed for v in variants}) == 4


def test_sweep_seeds_vary_unbound_plan_schedules():
    base = base_spec(fault_plan=FaultPlan.uniform(drop_p=0.5))
    variants = sweep(base, seeds=3)
    bound = [v.resolve_fault_plan().seed for v in variants]
    assert len(set(bound)) == 3  # a seed sweep sweeps fault schedules


# -- Byte-determinism serial vs parallel -------------------------------------


def test_chaos_batch_is_identical_serial_vs_parallel():
    base = base_spec(instrument=True)
    specs = sweep(
        base,
        seeds=2,
        fault_plans=[
            FaultPlan.uniform(duplicate_p=0.3, reorder_p=0.3),
            FaultPlan.uniform(drop_p=0.15),
        ],
    )
    serial = BatchRunner(jobs=1).run(specs)
    parallel = BatchRunner(jobs=2).run(specs)
    for a, b in zip(serial, parallel):
        assert a.label == b.label
        assert a.seed == b.seed
        assert a.solved == b.solved
        assert a.steps == b.steps
        assert a.messages_sent == b.messages_sent
        assert a.decisions == b.decisions
        assert a.trace == b.trace  # canonical JSONL, byte for byte


# -- Crash rules end to end --------------------------------------------------


def test_leader_crash_rule_fires_and_is_reported():
    plan = FaultPlan(
        seed=3, crash_rules=(CrashRule("on-first-fd-output"),)
    )
    result = run_consensus_experiment(
        omega_consensus_algorithm(LOCS),
        Omega(LOCS),
        proposals={0: 1, 1: 0, 2: 1},
        fault_pattern=FaultPattern({}, LOCS),
        f=1,
        max_steps=20_000,
        fault_plan=plan,
    )
    assert len(result.injected_crashes) == 1
    step, target, rule = result.injected_crashes[0]
    assert rule.trigger == "on-first-fd-output"
    # The crashed location is the first elected leader, and the run's
    # trace actually contains its crash event.
    crash_events = [
        a for a in result.execution.actions if a.name == "crash"
    ]
    assert [a.location for a in crash_events] == [target]
    # Omega (with the crashed leader excluded from live) may still be
    # conformant; the run must at least be judged, not wedged.
    assert result.steps > 0


def test_at_step_rule_matches_fault_pattern_semantics():
    plan = FaultPlan(
        seed=0,
        crash_rules=(CrashRule("at-step", location=2, param=6),),
    )
    via_rule = run_consensus_experiment(
        omega_consensus_algorithm(LOCS),
        Omega(LOCS),
        proposals={0: 1, 1: 0, 2: 1},
        fault_pattern=FaultPattern({}, LOCS),
        f=1,
        max_steps=20_000,
        fault_plan=plan,
    )
    assert via_rule.injected_crashes
    assert via_rule.injected_crashes[0][1] == 2
    crashed = [
        a.location for a in via_rule.execution.actions if a.name == "crash"
    ]
    assert crashed == [2]
    assert via_rule.solved


def test_spec_run_with_chaos_plan_round_trips_through_engine():
    spec = base_spec(
        fault_plan=FaultPlan.uniform(duplicate_p=0.4, reorder_p=0.2),
        seed=7,
    )
    r1 = spec.run()
    r2 = spec.run()
    assert r1.ok and r2.ok
    assert (r1.solved, r1.steps, r1.messages_sent) == (
        r2.solved,
        r2.steps,
        r2.messages_sent,
    )
