"""Boundary semantics of consensus under channel chaos, as assertions.

Two facts from the paper's model, demonstrated empirically rather than
narrated: (1) the consensus algorithms tolerate *finite* channel
misbehaviour — duplication and reordering do not break agreement,
validity or termination, because the protocols are idempotent in
received messages; (2) under sustained total loss the run does NOT
count as a counterexample to "D solves consensus": the oracle verdict
is "detected non-live" (consensus check fails, so ``solved`` is False
with the detector itself conformant — the hypothesis of the
implication holds and the conclusion observably fails, which is
exactly what a voided channel-reliability assumption must produce).
"""

from __future__ import annotations

import pytest

from repro.algorithms.consensus_omega import omega_consensus_algorithm
from repro.algorithms.consensus_perfect import perfect_consensus_algorithm
from repro.analysis.checkers import run_consensus_experiment
from repro.detectors.omega import Omega
from repro.detectors.perfect import Perfect
from repro.faults.oracles import (
    ConsensusAgreementOracle,
    ConsensusValidityOracle,
    run_oracles,
)
from repro.faults.plan import FaultPlan
from repro.system.fault_pattern import FaultPattern

LOCS = (0, 1, 2)
PROPOSALS = {0: 1, 1: 0, 2: 1}


def run_with_plan(detector, plan, max_steps=20_000):
    if detector == "p":
        algorithm = perfect_consensus_algorithm(LOCS)
        afd = Perfect(LOCS)
    else:
        algorithm = omega_consensus_algorithm(LOCS)
        afd = Omega(LOCS)
    return run_consensus_experiment(
        algorithm,
        afd,
        proposals=PROPOSALS,
        fault_pattern=FaultPattern({}, LOCS),
        f=1,
        max_steps=max_steps,
        fault_plan=plan,
    )


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_consensus_over_p_survives_duplication_and_reordering(seed):
    plan = FaultPlan.uniform(duplicate_p=0.4, reorder_p=0.4, seed=seed)
    result = run_with_plan("p", plan)
    assert result.solved
    assert result.fd_check.ok
    assert result.consensus_check.ok, result.consensus_check
    assert result.all_live_decided
    decided = {v for v in result.decisions.values()}
    assert len(decided) == 1 and decided <= set(PROPOSALS.values())
    # The run's own event trace passes the safety oracles too.
    report = run_oracles(
        list(result.execution.actions),
        (ConsensusAgreementOracle(), ConsensusValidityOracle()),
    )
    assert report.ok, report.to_dict()


@pytest.mark.parametrize("seed", [1, 2])
def test_consensus_over_omega_survives_duplication_and_reordering(seed):
    plan = FaultPlan.uniform(duplicate_p=0.3, reorder_p=0.3, seed=seed)
    result = run_with_plan("omega", plan)
    assert result.solved
    assert result.all_live_decided


@pytest.mark.parametrize("detector", ["omega", "p"])
def test_sustained_loss_is_detected_as_non_live(detector):
    plan = FaultPlan.uniform(drop_p=1.0, seed=5)
    result = run_with_plan(detector, plan, max_steps=2_000)
    # The detector keeps its own contract (its outputs don't ride the
    # lossy channels) ...
    assert result.fd_check.ok
    # ... so the failed consensus check is attributed to the run, not
    # excused: solved must be False, through the liveness clause.
    assert not result.consensus_check.ok
    assert not result.solved
    assert not result.all_live_decided
    # Safety never breaks — nobody decides a wrong value, they just
    # don't decide.
    decided = [v for v in result.decisions.values() if v is not None]
    assert all(v in set(PROPOSALS.values()) for v in decided)


def test_loss_rate_degrades_monotonically_in_expectation():
    """Aggregate, not per-run: over a small seed pool, total loss never
    solves more runs than no loss (per-seed anything can happen)."""
    solved_at = {}
    for rate in (0.0, 1.0):
        solved_at[rate] = sum(
            run_with_plan(
                "p",
                FaultPlan.uniform(drop_p=rate, seed=s),
                max_steps=4_000,
            ).solved
            for s in (1, 2, 3)
        )
    assert solved_at[0.0] == 3
    assert solved_at[1.0] == 0
