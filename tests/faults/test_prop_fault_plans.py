"""Property tests for FaultPlan and the zero-fault identity.

The load-bearing property: a chaos system whose plan draws only
zero-probability faults produces a trace *byte-identical* to the same
system over reliable channels — the chaos machinery is a strict
superset, not a parallel implementation that merely agrees on averages.
The remaining properties pin the plan's value semantics: pickling,
hashing, seed binding and derivation are all stable and deterministic.
"""

from __future__ import annotations

import json
import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.consensus_omega import omega_consensus_algorithm
from repro.detectors.registry import resolve_detector
from repro.faults.channels import make_faulty_channels
from repro.faults.plan import ChannelFaults, FaultPlan
from repro.ioa.composition import Composition
from repro.runner.seeds import derive_seed
from repro.system.channel import make_channels
from repro.system.crash import CrashAutomaton
from repro.system.environment import ScriptedConsensusEnvironment
from repro.system.network import System

from .strategies import fault_plans

LOCATIONS = (0, 1, 2)


def build_system(proposals, channels):
    """Mirror SystemBuilder.build() but with the given channel automata,
    so reliable and (inert) chaos channels can be compared head-to-head
    without the builder's channels_inert shortcut kicking in."""
    algorithm = omega_consensus_algorithm(LOCATIONS)
    afd = resolve_detector("omega", LOCATIONS)
    fd = afd.automaton()
    env = ScriptedConsensusEnvironment(proposals)
    crash = CrashAutomaton(LOCATIONS)
    components = list(algorithm.automata()) + list(channels)
    components += [crash, fd, env]
    return System(
        composition=Composition(components, name="system"),
        locations=LOCATIONS,
        algorithm=algorithm,
        channels=list(channels),
        crash=crash,
        failure_detector=fd,
        environment=env,
    )


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    proposals=st.tuples(*[st.integers(0, 1) for _ in LOCATIONS]),
)
def test_inert_chaos_channels_are_byte_identical_to_reliable(
    seed, proposals
):
    proposals = dict(zip(LOCATIONS, proposals))
    plan = FaultPlan(seed=seed)  # bound, all-zero faults
    reliable = build_system(proposals, make_channels(LOCATIONS))
    chaotic = build_system(
        proposals, make_faulty_channels(LOCATIONS, plan)
    )
    ex_r = reliable.run(max_steps=400)
    ex_c = chaotic.run(max_steps=400)
    assert list(ex_r.actions) == list(ex_c.actions)
    lines_r = [json.dumps(repr(a), sort_keys=True) for a in ex_r.actions]
    lines_c = [json.dumps(repr(a), sort_keys=True) for a in ex_c.actions]
    assert lines_r == lines_c  # identical down to the serialized bytes


@settings(max_examples=50, deadline=None)
@given(plan=fault_plans())
def test_fault_plan_pickle_round_trip(plan):
    clone = pickle.loads(pickle.dumps(plan))
    assert clone == plan
    assert hash(clone) == hash(plan)
    assert clone.summary() == plan.summary()


@settings(max_examples=50, deadline=None)
@given(plan=fault_plans(bound=True), s=st.integers(0, 10), d=st.integers(0, 10))
def test_channel_seed_is_derive_seed_of_coordinates(plan, s, d):
    assert plan.channel_seed(s, d) == derive_seed(plan.seed, "chan", s, d)
    # Stable: same call, same answer; distinct channels, distinct seeds.
    assert plan.channel_seed(s, d) == plan.channel_seed(s, d)
    if s != d:
        assert plan.channel_seed(s, d) != plan.channel_seed(d, s)


@settings(max_examples=50, deadline=None)
@given(plan=fault_plans(bound=False), seed=st.integers(0, 2**31))
def test_bound_fills_seed_and_changes_nothing_else(plan, seed):
    bound = plan.bound(seed)
    assert bound.is_bound and bound.seed == seed
    assert bound.default == plan.default
    assert bound.per_channel == plan.per_channel
    assert bound.crash_rules == plan.crash_rules
    # Binding a bound plan is a no-op, not a re-bind.
    assert bound.bound(seed + 1) is bound


@settings(max_examples=50, deadline=None)
@given(plan=fault_plans(bound=True))
def test_derive_is_deterministic_and_injective_in_components(plan):
    assert plan.derive("x") == plan.derive("x")
    assert plan.derive("x").seed != plan.derive("y").seed
    assert plan.derive("x").seed == derive_seed(plan.seed, "x")


@settings(max_examples=50, deadline=None)
@given(plan=fault_plans(zero_probability=True, allow_crash_rules=False))
def test_zero_probability_plans_are_channel_inert(plan):
    assert plan.channels_inert
    assert plan.is_inert


def test_per_channel_normalization_is_order_independent():
    a = ChannelFaults(drop_p=0.5)
    b = ChannelFaults(duplicate_p=0.5)
    p1 = FaultPlan(seed=1, per_channel={(0, 1): a, (1, 0): b})
    p2 = FaultPlan(seed=1, per_channel=[((1, 0), b), ((0, 1), a)])
    assert p1 == p2
    assert hash(p1) == hash(p2)
    assert p1.for_channel(0, 1) == a
    assert p1.for_channel(1, 0) == b
    assert p1.for_channel(2, 0) == p1.default
