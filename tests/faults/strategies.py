"""Hypothesis strategies for the chaos subsystem.

``fault_plans()`` draws :class:`~repro.faults.plan.FaultPlan` values —
bound or unbound, with probabilistic and scheduled channel faults and
optional crash rules — for round-trip and determinism properties.
``chaos_systems()`` draws small complete chaos experiments (locations,
proposals, detector name, plan, seed) ready to run through
``run_consensus_experiment``.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.faults.plan import ChannelFaults, CrashRule, FaultPlan

#: Probabilities drawn from a small grid: the properties under test are
#: about determinism and oracle pairing, not about the continuum, and a
#: grid keeps shrunk counterexamples readable.
PROBABILITIES = st.sampled_from([0.0, 0.1, 0.25, 0.5, 1.0])

SEND_INDICES = st.lists(
    st.integers(min_value=0, max_value=12), max_size=3, unique=True
).map(tuple)


@st.composite
def channel_faults(draw, zero_probability: bool = False):
    """One ChannelFaults configuration; ``zero_probability=True`` limits
    the draw to provably inert configurations."""
    if zero_probability:
        return ChannelFaults()
    delay_p = draw(PROBABILITIES)
    return ChannelFaults(
        drop_p=draw(PROBABILITIES),
        duplicate_p=draw(PROBABILITIES),
        reorder_p=draw(PROBABILITIES),
        delay_p=delay_p,
        max_delay=draw(st.integers(min_value=1, max_value=3))
        if delay_p
        else 0,
        drop_sends=draw(SEND_INDICES),
        duplicate_sends=draw(SEND_INDICES),
        reorder_sends=draw(SEND_INDICES),
    )


@st.composite
def crash_rules(draw, locations=(0, 1, 2)):
    trigger = draw(st.sampled_from(("at-step", "on-first-fd-output")))
    delay = draw(st.integers(min_value=1, max_value=3))
    if trigger == "at-step":
        return CrashRule(
            trigger,
            location=draw(st.sampled_from(locations)),
            param=draw(st.integers(min_value=0, max_value=30)),
            delay=delay,
        )
    return CrashRule(trigger, delay=delay)


@st.composite
def fault_plans(
    draw,
    zero_probability: bool = False,
    allow_crash_rules: bool = True,
    bound: bool | None = None,
    locations=(0, 1, 2),
):
    """A FaultPlan; knobs restrict the draw for targeted properties."""
    if bound is None:
        bound = draw(st.booleans())
    seed = draw(st.integers(min_value=0, max_value=2**31)) if bound else None
    default = draw(channel_faults(zero_probability=zero_probability))
    per_channel = {}
    if draw(st.booleans()):
        src, dst = draw(
            st.sampled_from(
                [(i, j) for i in locations for j in locations if i != j]
            )
        )
        per_channel[(src, dst)] = draw(
            channel_faults(zero_probability=zero_probability)
        )
    rules = ()
    if allow_crash_rules and draw(st.booleans()):
        rules = (draw(crash_rules(locations)),)
    return FaultPlan(
        seed=seed,
        default=default,
        per_channel=per_channel,
        crash_rules=rules,
    )


@st.composite
def chaos_systems(draw):
    """A complete small chaos experiment: locations, proposals, detector
    name, plan, base seed — the arguments of a consensus chaos run."""
    locations = (0, 1, 2)
    return {
        "locations": locations,
        "proposals": {
            i: draw(st.integers(min_value=0, max_value=1))
            for i in locations
        },
        "detector": draw(st.sampled_from(("omega", "p"))),
        "plan": draw(
            fault_plans(allow_crash_rules=False, locations=locations)
        ),
        "seed": draw(st.integers(min_value=0, max_value=2**31)),
    }
