"""Regression tests: statistics and transit views under channel faults.

Before the chaos subsystem landed, ``collect_run_statistics`` and
``messages_in_transit`` both leaned on the reliable-channel invariant
"every receive consumes exactly one prior send" (and on a channel state
*being* its message queue).  These tests pin the repaired behaviour:
duplicate and dropped messages are tallied, not mis-counted, and
transit views are plain message tuples for faulty channels too.
"""

from __future__ import annotations

from repro.algorithms.consensus_omega import omega_consensus_algorithm
from repro.analysis.checkers import run_consensus_experiment
from repro.analysis.stats import collect_run_statistics
from repro.detectors.omega import Omega
from repro.faults.plan import ChannelFaults, FaultPlan
from repro.ioa.executions import Execution
from repro.system.channel import (
    messages_in_transit,
    receive_action,
    send_action,
)
from repro.system.fault_pattern import FaultPattern
from repro.system.network import SystemBuilder

LOCS = (0, 1, 2)


def as_execution(actions):
    """Wrap a hand-built action list (states are irrelevant to stats)."""
    return Execution(
        states=tuple(range(len(actions) + 1)), actions=tuple(actions)
    )


def test_statistics_count_duplicate_receives():
    ex = as_execution(
        [
            send_action(0, "m", 1),
            receive_action(1, "m", 0),
            receive_action(1, "m", 0),  # duplicated delivery
        ]
    )
    stats = collect_run_statistics(ex)
    assert (stats.sends, stats.receives) == (1, 2)
    assert stats.duplicate_receives == 1
    assert stats.undelivered_sends == 0
    assert stats.delivered_sends == 1


def test_statistics_count_undelivered_sends():
    ex = as_execution(
        [
            send_action(0, "kept", 1),
            send_action(0, "lost", 1),
            receive_action(1, "kept", 0),
        ]
    )
    stats = collect_run_statistics(ex)
    assert stats.undelivered_sends == 1
    assert stats.duplicate_receives == 0
    assert stats.delivered_sends == 1


def test_statistics_keep_channels_separate():
    # The same message text on two different channels must not cancel.
    ex = as_execution(
        [
            send_action(0, "m", 1),
            receive_action(2, "m", 0),  # wrong channel: 0->2, never sent
        ]
    )
    stats = collect_run_statistics(ex)
    assert stats.duplicate_receives == 1  # the 0->2 receive is unmatched
    assert stats.undelivered_sends == 1  # the 0->1 send is unmatched


def test_statistics_dict_exposes_fault_counters():
    ex = as_execution([send_action(0, "m", 1)])
    d = collect_run_statistics(ex).to_dict()
    assert d["undelivered_sends"] == 1
    assert d["duplicate_receives"] == 0


def test_messages_in_transit_is_plain_tuples_for_chaos_channels():
    plan = FaultPlan.uniform(delay_p=1.0, max_delay=2, seed=3)
    system = (
        SystemBuilder(LOCS)
        .with_algorithm(omega_consensus_algorithm(LOCS))
        .with_failure_detector(Omega(LOCS).automaton())
        .with_fault_plan(plan)
        .build()
    )
    state = system.composition.initial_state()
    transit = messages_in_transit(system.channels, system.composition, state)
    assert set(transit) == {
        (i, j) for i in LOCS for j in LOCS if i != j
    }
    assert all(v == () for v in transit.values())
    # The raw chaos state is a non-empty structure even when no message
    # is queued — quiescence must therefore be judged via transit_view.
    assert system.channels_empty(state)
    chan = system.channels[0]
    raw = system.composition.component_state(state, chan)
    state2 = system.composition.apply(
        state, send_action(chan.source, "m", chan.destination)
    )
    assert not system.channels_empty(state2)
    transit2 = messages_in_transit(
        system.channels, system.composition, state2
    )
    assert transit2[(chan.source, chan.destination)] == ("m",)
    assert raw is not None


def test_run_statistics_balance_on_a_real_duplicating_run():
    plan = FaultPlan(
        seed=9, default=ChannelFaults(duplicate_p=0.5, drop_p=0.2)
    )
    result = run_consensus_experiment(
        omega_consensus_algorithm(LOCS),
        Omega(LOCS),
        proposals={0: 1, 1: 0, 2: 1},
        fault_pattern=FaultPattern({}, LOCS),
        f=1,
        max_steps=20_000,
        fault_plan=plan,
    )
    stats = collect_run_statistics(result.execution)
    # The books balance exactly: every receive is either a matched send
    # or a counted duplicate; every send is delivered or counted lost.
    assert stats.receives == (
        stats.sends - stats.undelivered_sends + stats.duplicate_receives
    )
    assert stats.sends == result.messages_sent
