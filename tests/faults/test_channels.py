"""Direct-drive tests of the faulty channel automata.

Each test pushes a known message sequence through one channel, drains
it, and compares what came out against the channel's *own published
fault decisions* (``will_drop``/``will_duplicate``/``will_reorder``/
``delay_of`` are pure functions of seed and send index) — then checks
that the matching oracle, and only the matching oracle, flags the run.
"""

from __future__ import annotations

import pytest

from repro.faults.channels import (
    ChaosChannel,
    DelayingChannel,
    DuplicatingChannel,
    LossyChannel,
    ReorderingChannel,
    TICK,
)
from repro.faults.oracles import (
    FifoOracle,
    NoDuplicationOracle,
    NoLossOracle,
)
from repro.faults.plan import ChannelFaults, FaultPlan
from repro.system.channel import RECEIVE, send_action

SRC, DST = 0, 1
N_SENDS = 24


def drive(channel, n=N_SENDS):
    """Send n unique messages, then drain; return the full action trace
    (sends + receives, ticks excluded — they are internal) and the
    delivered message order."""
    state = channel.initial_state()
    trace = []
    for k in range(n):
        action = send_action(SRC, f"m{k}", DST)
        state = channel.apply(state, action)
        trace.append(action)
    delivered = []
    while True:
        enabled = list(channel.enabled_locally(state))
        if not enabled:
            break
        action = enabled[0]
        state = channel.apply(state, action)
        if action.name == RECEIVE:
            delivered.append(action.payload[0])
            trace.append(action)
    assert not channel.transit_view(state), "drain left messages behind"
    return trace, delivered


def test_lossy_channel_drops_exactly_its_decisions():
    channel = LossyChannel(SRC, DST, drop_p=0.3, seed=77)
    trace, delivered = drive(channel)
    expected = [
        f"m{k}" for k in range(N_SENDS) if not channel.will_drop(k)
    ]
    assert delivered == expected
    dropped = [k for k in range(N_SENDS) if channel.will_drop(k)]
    assert dropped, "seed 77 at p=0.3 must drop something over 24 sends"
    verdict = NoLossOracle().check(trace)
    assert not verdict.ok
    assert verdict.violation_index == dropped[0]
    assert NoDuplicationOracle().check(trace).ok
    assert FifoOracle().check(trace).ok


def test_duplicating_channel_duplicates_exactly_its_decisions():
    channel = DuplicatingChannel(SRC, DST, duplicate_p=0.3, seed=78)
    trace, delivered = drive(channel)
    expected = []
    for k in range(N_SENDS):
        expected.append(f"m{k}")
        if channel.will_duplicate(k):
            expected.append(f"m{k}")
    assert delivered == expected
    assert any(channel.will_duplicate(k) for k in range(N_SENDS))
    assert not NoDuplicationOracle().check(trace).ok
    assert NoLossOracle().check(trace).ok
    assert FifoOracle().check(trace).ok  # duplicates are adjacent


def test_reordering_channel_trips_only_fifo():
    channel = ReorderingChannel(SRC, DST, reorder_p=0.5, seed=79)
    trace, delivered = drive(channel)
    assert sorted(delivered) == sorted(f"m{k}" for k in range(N_SENDS))
    assert delivered != [f"m{k}" for k in range(N_SENDS)], (
        "seed 79 at p=0.5 must reorder something over 24 sends"
    )
    assert not FifoOracle().check(trace).ok
    assert NoLossOracle().check(trace).ok
    assert NoDuplicationOracle().check(trace).ok


def test_delaying_channel_violates_nothing():
    channel = DelayingChannel(SRC, DST, delay_p=1.0, max_delay=3, seed=80)
    state = channel.initial_state()
    for k in range(6):
        state = channel.apply(state, send_action(SRC, f"m{k}", DST))
    trace = [send_action(SRC, f"m{k}", DST) for k in range(6)]
    delivered = []
    ticks = 0
    while True:
        enabled = list(channel.enabled_locally(state))
        if not enabled:
            break
        action = enabled[0]
        state = channel.apply(state, action)
        if action.name == TICK:
            ticks += 1
        else:
            delivered.append(action.payload[0])
            trace.append(action)
    assert delivered == [f"m{k}" for k in range(6)]  # order preserved
    assert ticks > 0, "delay_p=1.0 must actually delay"
    assert NoLossOracle().check(trace).ok
    assert NoDuplicationOracle().check(trace).ok
    assert FifoOracle().check(trace).ok


def test_explicit_send_schedules_override_probabilities():
    channel = ChaosChannel(
        SRC,
        DST,
        ChannelFaults(drop_sends=(2,), duplicate_sends=(4,)),
        seed=0,
    )
    trace, delivered = drive(channel, n=6)
    assert delivered == ["m0", "m1", "m3", "m4", "m4", "m5"]
    verdict = NoLossOracle().check(trace)
    assert not verdict.ok and verdict.violation_index == 2


def test_reorder_on_empty_queue_is_a_no_op():
    # A reorder decision with nothing queued cannot manifest: delivery
    # is untouched and FIFO stays silent.
    channel = ChaosChannel(
        SRC, DST, ChannelFaults(reorder_sends=(0,)), seed=0
    )
    trace, delivered = drive(channel, n=3)
    assert delivered == ["m0", "m1", "m2"]
    assert FifoOracle().check(trace).ok


def test_chaos_channel_keeps_reliable_channel_name_and_endpoints():
    channel = ChaosChannel(SRC, DST, ChannelFaults(), seed=1)
    assert channel.name == f"chan[{SRC}->{DST}]"
    assert (channel.source, channel.destination) == (SRC, DST)


def test_receive_of_delayed_head_is_rejected():
    channel = DelayingChannel(SRC, DST, delay_p=1.0, max_delay=2, seed=3)
    state = channel.initial_state()
    state = channel.apply(state, send_action(SRC, "m0", DST))
    from repro.system.channel import receive_action

    assert not channel.enabled(state, receive_action(DST, "m0", SRC))
    with pytest.raises(ValueError):
        channel.apply(state, receive_action(DST, "m0", SRC))


def test_make_faulty_channels_requires_bound_plan():
    from repro.faults.channels import make_faulty_channels

    with pytest.raises(ValueError, match="unbound"):
        make_faulty_channels((0, 1), FaultPlan.uniform(drop_p=0.1))
    channels = make_faulty_channels(
        (0, 1), FaultPlan.uniform(drop_p=0.1, seed=9)
    )
    assert {(c.source, c.destination) for c in channels} == {(0, 1), (1, 0)}
    seeds = {c.seed for c in channels}
    assert len(seeds) == 2, "per-channel decision seeds must differ"
