"""Mutation testing for the conformance oracles.

For every oracle in :mod:`repro.faults.oracles` this suite constructs a
run that violates *exactly that oracle's property* and asserts (a) the
oracle fires with the correct first-violation index, and (b) every other
oracle stays silent.  A green run here means the oracles are
load-bearing: each one can actually catch its violation, and none fires
on another's.

The traces are hand-built around one clean base run over locations
(0, 1) whose every property holds; each case is a minimal mutation of
that base.
"""

from __future__ import annotations

import pytest

from repro.detectors.omega import Omega, omega_output
from repro.faults.oracles import (
    AfdValidityOracle,
    ConsensusAgreementOracle,
    ConsensusTerminationOracle,
    ConsensusValidityOracle,
    CrashValidityOracle,
    FifoOracle,
    NoDuplicationOracle,
    NoLossOracle,
    run_oracles,
)
from repro.system.channel import receive_action, send_action
from repro.system.environment import decide_action, propose_action
from repro.system.fault_pattern import crash_action

LOCATIONS = (0, 1)


def oracle_bundle(allowed_crashes=()):
    """Every oracle, configured for the (0, 1) system of these traces."""
    return (
        NoLossOracle(),
        NoDuplicationOracle(),
        FifoOracle(),
        CrashValidityOracle(allowed=allowed_crashes),
        AfdValidityOracle(Omega(LOCATIONS)),
        ConsensusAgreementOracle(),
        ConsensusValidityOracle(),
        ConsensusTerminationOracle(LOCATIONS),
    )


def clean_trace():
    """A base run every oracle accepts.

    Leader 1 throughout (so variants that crash location 0 keep Omega
    valid); location 0's fd outputs all precede location 1's (so with
    live = {1} the three outputs at 1 form the stabilization witness
    Omega's limit check needs after the last location-0 output).
    """
    return [
        propose_action(0, 1),          # 0
        propose_action(1, 0),          # 1
        omega_output(0, 1),            # 2
        omega_output(0, 1),            # 3
        omega_output(0, 1),            # 4
        omega_output(1, 1),            # 5
        omega_output(1, 1),            # 6
        omega_output(1, 1),            # 7
        send_action(0, "m1", 1),       # 8
        receive_action(1, "m1", 0),    # 9
        send_action(1, "m2", 0),       # 10
        receive_action(0, "m2", 1),    # 11
        decide_action(0, 1),           # 12
        decide_action(1, 1),           # 13
    ]


def assert_only(trace, oracles, expected_oracle, expected_index):
    """The expected oracle fires at the expected index; the rest pass."""
    report = run_oracles(trace, oracles)
    verdict = report.verdict(expected_oracle)
    assert not verdict.ok, f"{expected_oracle} did not fire: {report.to_dict()}"
    assert verdict.violation_index == expected_index, (
        f"{expected_oracle} fired at {verdict.violation_index}, "
        f"expected {expected_index}: {verdict.reason}"
    )
    silent = [v for v in report.verdicts if v.oracle != expected_oracle]
    noisy = [v for v in silent if not v.ok]
    assert not noisy, (
        f"oracles fired beyond {expected_oracle}: "
        f"{[(v.oracle, v.violation_index, v.reason) for v in noisy]}"
    )


def test_clean_trace_passes_every_oracle():
    report = run_oracles(clean_trace(), oracle_bundle())
    assert report.ok, report.to_dict()
    assert report.failures == ()


def test_no_loss_fires_on_dropped_message():
    trace = clean_trace()
    trace.append(send_action(0, "lost", 1))  # sent, never received
    assert_only(trace, oracle_bundle(), "no-loss", 14)


def test_no_loss_excuses_messages_still_in_transit():
    trace = clean_trace()
    trace.append(send_action(0, "pending", 1))
    excused = NoLossOracle(final_in_transit={(0, 1): ("pending",)})
    assert excused.check(trace).ok
    # The excuse is per-message: it does not cover a genuinely lost one.
    trace.append(send_action(0, "lost", 1))
    verdict = excused.check(trace)
    assert not verdict.ok and verdict.violation_index == 15


def test_no_duplication_fires_on_double_delivery():
    trace = clean_trace()
    trace.insert(10, receive_action(1, "m1", 0))  # second copy of m1
    assert_only(trace, oracle_bundle(), "no-duplication", 10)


def test_no_duplication_fires_on_never_sent_message():
    trace = clean_trace()
    trace.append(receive_action(1, "ghost", 0))
    assert_only(trace, oracle_bundle(), "no-duplication", 14)


def test_fifo_fires_on_reordered_delivery():
    trace = clean_trace()
    # Channel 0->1 sends m1 then m3 but delivers m3 first.
    trace[8:10] = [
        send_action(0, "m1", 1),       # 8
        send_action(0, "m3", 1),       # 9
        receive_action(1, "m3", 0),    # 10
        receive_action(1, "m1", 0),    # 11  <- out of order
    ]
    assert_only(trace, oracle_bundle(), "fifo", 11)


def test_fifo_accepts_in_place_duplicates():
    # A duplicate delivered adjacently is no-duplication's business, not
    # FIFO's: order among distinct sends is preserved.
    trace = [
        send_action(0, "a", 1),
        send_action(0, "b", 1),
        receive_action(1, "a", 0),
        receive_action(1, "a", 0),
        receive_action(1, "b", 0),
    ]
    assert FifoOracle().check(trace).ok
    assert not NoDuplicationOracle().check(trace).ok


def test_crash_validity_fires_on_unplanned_crash():
    trace = clean_trace()
    trace.append(crash_action(0))  # index 14; only location 1 may crash
    assert_only(trace, oracle_bundle(allowed_crashes=(1,)), "crash-validity", 14)


def test_crash_validity_fires_on_zombie_send():
    trace = clean_trace()
    trace.append(crash_action(0))              # 14 (allowed)
    trace.append(send_action(0, "z", 1))       # 15 <- zombie activity
    trace.append(receive_action(1, "z", 0))    # 16 (keeps no-loss silent)
    assert_only(trace, oracle_bundle(allowed_crashes=(0,)), "crash-validity", 15)


def test_crash_validity_permits_delivery_to_crashed_location():
    # receive(m, i)_j is the channel's output: delivering to a crashed
    # destination is legitimate and must not read as zombie activity.
    trace = clean_trace()
    trace.insert(11, crash_action(0))  # crash 0 just before its receive
    report = run_oracles(trace, oracle_bundle(allowed_crashes=(0,)))
    # decide(1)_0 now follows the crash: that (and only that) fires.
    assert [v.oracle for v in report.failures] == ["crash-validity"]
    assert report.verdict("crash-validity").violation_index == 13


def test_afd_validity_fires_on_output_after_crash():
    trace = clean_trace()
    trace.append(crash_action(0))      # 14 (allowed)
    trace.append(omega_output(0, 1))   # 15 <- output at a crashed location
    assert_only(trace, oracle_bundle(allowed_crashes=(0,)), "afd-validity", 15)


def test_afd_validity_reports_liveness_failure_at_trace_end():
    # Location 1 never outputs: a pure liveness failure, no single
    # violating event — the index is len(trace).
    trace = [
        propose_action(0, 1),
        propose_action(1, 1),
        omega_output(0, 1),
        omega_output(0, 1),
        omega_output(0, 1),
        decide_action(0, 1),
        decide_action(1, 1),
    ]
    verdict = AfdValidityOracle(Omega(LOCATIONS)).check(trace)
    assert not verdict.ok
    assert verdict.violation_index == len(trace)


def test_agreement_fires_on_conflicting_decisions():
    trace = clean_trace()
    trace[13] = decide_action(1, 0)  # disagrees with decide(1)_0 at 12
    assert_only(trace, oracle_bundle(), "consensus-agreement", 13)


def test_validity_fires_on_unproposed_decision():
    trace = clean_trace()
    trace[12] = decide_action(0, 2)  # 2 was never proposed
    trace[13] = decide_action(1, 2)  # same value, so agreement is silent
    assert_only(trace, oracle_bundle(), "consensus-validity", 12)


def test_termination_fires_when_a_live_location_never_decides():
    trace = clean_trace()[:13]  # drop decide(1)_1
    assert_only(trace, oracle_bundle(), "consensus-termination", 13)


def test_termination_fires_on_double_decision():
    trace = clean_trace()
    trace.append(decide_action(0, 1))  # 14: location 0 decides again
    assert_only(trace, oracle_bundle(), "consensus-termination", 14)


def test_termination_excuses_crashed_locations():
    trace = clean_trace()[:13]         # location 1 never decides...
    trace.append(crash_action(1))      # ...but crashes
    report = run_oracles(trace, oracle_bundle(allowed_crashes=(1,)))
    assert report.verdict("consensus-termination").ok
