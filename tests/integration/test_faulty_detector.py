"""What happens when the detector lies: the premise of "A solves P using
D" is not decorative.

A mutually-suspicious fake detector (location 0 forever suspects {1,2};
locations 1 and 2 forever suspect {0}) drives the rotating-coordinator
algorithm into *disagreement* — every coordinator is skipped by someone
who keeps its own estimate.  The run's FD events are far outside T_P
(live locations suspected), so the defining implication of Section 5.2
holds vacuously: the library's conditional checker classifies the run
correctly, and the same algorithm under the real FD-P agrees.
"""

from typing import FrozenSet

from repro.algorithms.consensus_perfect import (
    PerfectConsensusProcess,
    perfect_consensus_algorithm,
)
from repro.detectors.base import CrashsetDetectorAutomaton, sorted_tuple
from repro.detectors.perfect import PERFECT_OUTPUT, Perfect
from repro.problems.consensus import ConsensusProblem
from repro.system.environment import ScriptedConsensusEnvironment
from repro.system.fault_pattern import FaultPattern
from repro.system.network import SystemBuilder

LOCS = (0, 1, 2)


class MutuallySuspiciousDetector(CrashsetDetectorAutomaton):
    """A non-P impostor: 0 suspects {1,2}; 1 and 2 suspect {0}."""

    def __init__(self):
        def value(location: int, crashset: FrozenSet[int]):
            if location == 0:
                return (sorted_tuple({1, 2}),)
            return (sorted_tuple({0}),)

        super().__init__(LOCS, PERFECT_OUTPUT, value, name="FD-P")


def slow_network_policy():
    """An adversarial schedule that partitions location 0 in time: every
    channel touching 0 is delayed past every decision, while 1 and 2 keep
    talking normally.  The lying detector makes each of 0's waits
    satisfiable by (false) suspicion, so 0 sprints through its rounds
    keeping its own estimate; 1 and 2 skip 0 by suspicion and converge
    between themselves.  The produced run is a prefix of a fair execution
    — the delayed deliveries happen after everyone has decided, where
    they change nothing."""
    from repro.ioa.scheduler import AdversarialPolicy

    def rank(task: str) -> int:
        if task.startswith("chan[0->") or "->0]" in task:
            return 2  # links touching location 0: delayed
        if task.startswith("FD-"):
            return 1
        return 0  # processes, environment, and the 1<->2 links

    def chooser(state, options, step):
        best_rank = min(rank(task) for task, _enabled in options)
        group = [pair for pair in options if rank(pair[0]) == best_rank]
        task, enabled = group[step % len(group)]  # rotate within the rank
        return min(enabled)

    return AdversarialPolicy(chooser)


def run_with_detector(fd_automaton, policy=None):
    algorithm = perfect_consensus_algorithm(LOCS)
    system = (
        SystemBuilder(LOCS)
        .with_algorithm(algorithm)
        .with_failure_detector(fd_automaton)
        .with_environment(
            ScriptedConsensusEnvironment({0: 0, 1: 1, 2: 1})
        )
        .build()
    )

    def all_decided(state, _step):
        return all(
            PerfectConsensusProcess.decision(system.process_state(state, i))
            is not None
            for i in LOCS
        )

    execution = system.run(
        max_steps=4000, stop_when=all_decided, policy=policy
    )
    decisions = {
        i: PerfectConsensusProcess.decision(
            system.process_state(execution.final_state, i)
        )
        for i in LOCS
    }
    return execution, decisions


class TestLyingDetector:
    def test_disagreement_under_false_suspicion(self):
        execution, decisions = run_with_detector(
            MutuallySuspiciousDetector(), policy=slow_network_policy()
        )
        values = set(decisions.values())
        assert None not in values
        assert len(values) == 2, (
            "every coordinator is skipped before its estimate lands: "
            "location 0 keeps 0 while 1 and 2 keep 1"
        )

    def test_premise_fails_so_implication_vacuous(self):
        execution, _decisions = run_with_detector(
            MutuallySuspiciousDetector(), policy=slow_network_policy()
        )
        events = list(execution.actions)
        perfect = Perfect(LOCS)
        fd_events = perfect.project_events(events)
        # The fake detector's trace is not in T_P: live locations are
        # suspected before any crash.
        assert not perfect.check_safety(fd_events)
        # Consensus guarantees are violated on their own...
        problem = ConsensusProblem(LOCS, f=0)
        problem_events = problem.project_events(events)
        assert not problem.check_guarantees(problem_events)
        # ...but "A solves consensus using P" is a conditional statement,
        # and it survives: garbage in, anything out.
        premise_ok = bool(perfect.check_limit(fd_events))
        conclusion_ok = bool(problem.check_conditional(problem_events))
        assert (not premise_ok) or conclusion_ok

    def test_honest_detector_agrees_on_same_inputs(self):
        execution, decisions = run_with_detector(
            Perfect(LOCS).automaton()
        )
        assert len(set(decisions.values())) == 1
        problem = ConsensusProblem(LOCS, f=0)
        assert problem.check_conditional(
            problem.project_events(list(execution.actions))
        )
