"""End-to-end scenario tests, including the FLP baseline (E11): without
failure-detector information, an adversarial scheduler keeps a consensus
run undecided indefinitely, while any fair schedule with a sufficiently
strong AFD decides."""

import pytest

from repro.algorithms.consensus_omega import (
    OmegaConsensusProcess,
    omega_consensus_algorithm,
)
from repro.algorithms.consensus_perfect import (
    PerfectConsensusProcess,
    perfect_consensus_algorithm,
)
from repro.analysis.checkers import run_consensus_experiment
from repro.analysis.stats import collect_run_statistics
from repro.detectors.omega import Omega
from repro.detectors.perfect import Perfect
from repro.ioa.composition import Composition
from repro.ioa.scheduler import AdversarialPolicy, Scheduler
from repro.system.channel import make_channels
from repro.system.crash import CrashAutomaton
from repro.system.environment import ScriptedConsensusEnvironment
from repro.system.fault_pattern import FaultPattern

LOCS = (0, 1, 2)


class TestFLPBaseline:
    """E11: starve the failure detector and the run cannot finish —
    the consensus algorithm's waits never resolve.  This is the
    observable shadow of the FLP impossibility [11] that AFDs circumvent:
    the detector's events are exactly what breaks the symmetry."""

    def test_starving_the_detector_stalls_consensus(self):
        algorithm = perfect_consensus_algorithm(LOCS)
        env = ScriptedConsensusEnvironment({0: 1, 1: 0, 2: 0})
        fd = Perfect(LOCS).automaton()
        system = Composition(
            list(algorithm.automata())
            + make_channels(LOCS)
            + [fd, env, CrashAutomaton(LOCS)],
            name="starved",
        )

        def no_fd(state, options, step):
            for task, enabled in options:
                if not task.startswith("FD-P"):
                    return min(enabled)
            return min(options[0][1])  # only FD left: forced (unreached)

        pattern = FaultPattern({0: 2}, LOCS)
        execution = Scheduler(AdversarialPolicy(no_fd)).run(
            system, max_steps=3000, injections=pattern.injections()
        )
        # Round-1 coordinator 0 crashed before broadcasting; without
        # suspicion events nobody can advance: no decisions, ever.
        stats = collect_run_statistics(execution)
        assert stats.decisions == 0

    def test_same_run_with_detector_decides(self):
        result = run_consensus_experiment(
            perfect_consensus_algorithm(LOCS),
            Perfect(LOCS),
            proposals={0: 1, 1: 0, 2: 0},
            fault_pattern=FaultPattern({0: 2}, LOCS),
            f=1,
        )
        assert result.all_live_decided
        assert result.solved


class TestScenarioMatrix:
    """A broad scenario sweep mixing detectors, algorithms and crashes."""

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_omega_scaling(self, n):
        locations = tuple(range(n))
        f = (n - 1) // 2
        crashes = {i: 10 + 7 * i for i in range(f)}
        result = run_consensus_experiment(
            omega_consensus_algorithm(locations),
            Omega(locations),
            proposals={i: i % 2 for i in locations},
            fault_pattern=FaultPattern(crashes, locations),
            f=f,
            max_steps=40_000,
        )
        assert result.all_live_decided
        assert result.solved

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_perfect_scaling(self, n):
        locations = tuple(range(n))
        f = n - 1
        crashes = {i: 5 + 11 * i for i in range(n // 2)}
        result = run_consensus_experiment(
            perfect_consensus_algorithm(locations),
            Perfect(locations),
            proposals={i: (i + 1) % 2 for i in locations},
            fault_pattern=FaultPattern(crashes, locations),
            f=f,
            max_steps=40_000,
        )
        assert result.all_live_decided
        assert result.solved

    def test_crash_at_every_early_step(self):
        """Sweep the crash step of the round-1 coordinator across the
        protocol's critical window."""
        for step in range(0, 30, 3):
            result = run_consensus_experiment(
                perfect_consensus_algorithm(LOCS),
                Perfect(LOCS),
                proposals={0: 1, 1: 0, 2: 0},
                fault_pattern=FaultPattern({0: step}, LOCS),
                f=1,
            )
            assert result.all_live_decided, step
            assert result.solved, step
