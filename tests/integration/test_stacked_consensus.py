"""Consensus from weaker detectors through reduction pipelines.

Theorem 18's practical face: any detector that implements Omega solves
consensus by composing its reduction with the Omega-consensus algorithm.
These tests run the full stacks ◇P → Omega → Paxos and
P → ◇P → Omega → Paxos as single systems.
"""

import pytest

from repro.algorithms.consensus_omega import (
    OmegaConsensusProcess,
    omega_consensus_algorithm,
)
from repro.detectors.eventually_perfect import EventuallyPerfectAutomaton
from repro.detectors.perfect import PerfectAutomaton
from repro.detectors.registry import known_reductions
from repro.ioa.composition import Composition
from repro.ioa.scheduler import Scheduler
from repro.problems.consensus import ConsensusProblem
from repro.system.channel import make_channels
from repro.system.crash import CrashAutomaton
from repro.system.environment import ScriptedConsensusEnvironment
from repro.system.fault_pattern import FaultPattern

LOCS = (0, 1, 2)


def reduction(name):
    return next(r for r in known_reductions() if r.name == name)


def run_stack(fd_automaton, relay_stages, crashes, steps=8000):
    algorithm = omega_consensus_algorithm(LOCS)
    components = [fd_automaton]
    for stage in relay_stages:
        components.extend(stage.automata())
    components += list(algorithm.automata())
    components += make_channels(LOCS)
    components += [
        ScriptedConsensusEnvironment({0: 1, 1: 0, 2: 0}),
        CrashAutomaton(LOCS),
    ]
    system = Composition(components, name="stack")
    execution = Scheduler().run(
        system,
        max_steps=steps,
        injections=FaultPattern(crashes, LOCS).injections(),
    )
    problem = ConsensusProblem(LOCS, f=1)
    events = problem.project_events(list(execution.actions))
    decisions = {a.payload[0] for a in events if a.name == "decide"}
    return problem.check_conditional(events), decisions


@pytest.mark.parametrize(
    "crashes", [{}, {0: 12}, {2: 5}], ids=["none", "c0", "c2"]
)
class TestConsensusFromWeakerDetectors:
    def test_consensus_from_evp(self, crashes):
        """◇P ⪰ Omega relay feeding the Paxos algorithm."""
        _evp, _omega, relay = reduction("EvP>=Omega").instantiate(LOCS)
        verdict, decisions = run_stack(
            EventuallyPerfectAutomaton(LOCS), [relay], crashes
        )
        assert verdict, verdict.reasons
        assert len(decisions) == 1

    def test_consensus_from_p_through_evp(self, crashes):
        """The double stack P ⪰ ◇P ⪰ Omega, then Paxos: four layers of
        automata in one composition (Theorem 15 + Theorem 18 together)."""
        _p, _evp, stage1 = reduction("P>=EvP").instantiate(LOCS)
        _evp2, _omega, stage2 = reduction("EvP>=Omega").instantiate(LOCS)
        verdict, decisions = run_stack(
            PerfectAutomaton(LOCS), [stage1, stage2], crashes
        )
        assert verdict, verdict.reasons
        assert len(decisions) == 1
