"""Run every example script end-to-end as a subprocess.

The examples are deliverables, not decoration: each must execute cleanly
from a fresh interpreter (their internal assertions double as checks of
the paper's claims)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent.parent / "examples"
SCRIPTS = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs_cleanly(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} printed nothing"
