"""Integration tests: one test (or class) per headline theorem.

These are the executable counterparts of the paper's results, run on full
systems; the per-module tests cover the pieces.
"""

import pytest

from repro.algorithms.consensus_perfect import (
    PerfectConsensusProcess,
    perfect_consensus_algorithm,
)
from repro.analysis.checkers import run_consensus_experiment
from repro.analysis.hierarchy import validate_hierarchy
from repro.core.ordering import evaluate_reduction
from repro.core.self_implementation import self_implementation_algorithm
from repro.detectors.perfect import Perfect, PerfectAutomaton
from repro.detectors.registry import ZOO, known_reductions, make_detector
from repro.ioa.composition import Composition
from repro.ioa.scheduler import Injection, Scheduler
from repro.problems.bounded import (
    check_crash_independence,
    find_quiescent_execution,
)
from repro.problems.consensus import (
    CentralizedConsensusSolver,
    ConsensusProblem,
)
from repro.system.channel import make_channels
from repro.system.crash import CrashAutomaton
from repro.system.environment import (
    ScriptedConsensusEnvironment,
    propose_action,
)
from repro.system.fault_pattern import FaultPattern, crash_action

LOCS = (0, 1, 2)


class TestCorollary14SelfImplementability:
    """Every AFD is self-implementable: D >= D via Algorithm 3."""

    @pytest.mark.parametrize("name", sorted(ZOO))
    def test_every_zoo_afd_self_implements(self, name):
        afd = make_detector(name, LOCS)
        algorithm, _renaming = self_implementation_algorithm(afd)
        renamed = afd.renamed()
        pattern = FaultPattern({1: 7}, LOCS)
        system = Composition(
            [afd.automaton()]
            + list(algorithm.automata())
            + [CrashAutomaton(LOCS)],
            name=f"self-{name}",
        )
        execution = Scheduler().run(
            system, max_steps=500, injections=pattern.injections()
        )
        events = list(execution.actions)
        assert afd.check_limit(afd.project_events(events))
        result = renamed.check_limit(renamed.project_events(events))
        assert result, (name, result.reasons)


class TestTheorem15Transitivity:
    """Registered reductions compose; reachability in the hierarchy graph
    is sound (validated edge by edge)."""

    def test_hierarchy_edges_validated(self):
        patterns = [FaultPattern({}, LOCS), FaultPattern({2: 4}, LOCS)]
        validation = validate_hierarchy(LOCS, patterns, max_steps=600)
        assert validation.all_held, validation.failures


class TestTheorem18StrongerSolvesMore:
    """P >= EvP, and consensus (a problem EvP-family detectors solve
    eventually) is solvable with P directly; moreover every problem-style
    conclusion reachable from the weaker detector's outputs is reachable
    from the stronger one's by stacking the witness reduction."""

    def test_p_solves_consensus_through_evp_pipeline(self):
        """Lemma 16's construction, literally: compose the P->EvP relay
        with an EvP-consuming consensus algorithm; feed it FD-P."""
        reduction = next(
            r for r in known_reductions() if r.name == "P>=EvP"
        )
        _p, _evp, relay = reduction.instantiate(LOCS)
        # The rotating-coordinator algorithm parameterized to consume the
        # *renamed* (EvP) vocabulary... it requires accuracy, so use the
        # relay's EvP outputs which inherit P's accuracy here.
        algorithm = perfect_consensus_algorithm(
            LOCS, fd_output_name="fd-evp"
        )
        env = ScriptedConsensusEnvironment({0: 1, 1: 0, 2: 0})
        system = Composition(
            list(algorithm.automata())
            + list(relay.automata())
            + make_channels(LOCS)
            + [PerfectAutomaton(LOCS), env, CrashAutomaton(LOCS)],
            name="stacked-consensus",
        )
        pattern = FaultPattern({0: 6}, LOCS)

        execution = Scheduler().run(
            system, max_steps=4000, injections=pattern.injections()
        )
        events = list(execution.actions)
        problem = ConsensusProblem(LOCS, f=1)
        assert problem.check_conditional(problem.project_events(events))
        decisions = {a.payload[0] for a in events if a.name == "decide"}
        assert len(decisions) == 1


class TestTheorem21BoundedProblems:
    """The executable constructions behind Theorem 21 (Lemmas 23-24)."""

    def consensus_injections(self):
        return [
            Injection(0, propose_action(0, 1)),
            Injection(1, propose_action(1, 0)),
            Injection(2, propose_action(2, 1)),
        ]

    def test_lemma23_quiescent_execution_exists(self):
        """A run of the witness system reaches a quiescent state with no
        further problem outputs in any probed extension."""
        u = CentralizedConsensusSolver(LOCS)
        system = Composition([u, CrashAutomaton(LOCS)], name="SU")
        report = find_quiescent_execution(
            system,
            is_output=lambda a: a.name == "decide",
            injections=self.consensus_injections()
            + [Injection(3, crash_action(2))],
        )
        assert report.lemma23_holds
        assert report.outputs_before >= 2

    def test_lemma24_crash_stripping(self):
        """Deleting the crash events from the quiescent execution leaves
        an execution of the system (crash independence of U lifts)."""
        u = CentralizedConsensusSolver(LOCS)
        system = Composition([u, CrashAutomaton(LOCS)], name="SU")
        execution = Scheduler().run(
            system,
            max_steps=100,
            injections=self.consensus_injections()
            + [Injection(3, crash_action(2))],
        )
        assert check_crash_independence(system, execution)

    def test_lemma23_on_distributed_system(self):
        """The same construction on a full message-passing consensus
        system: quiesce (modulo the detector), empty channels, no further
        decide events."""
        algorithm = perfect_consensus_algorithm(LOCS)
        env = ScriptedConsensusEnvironment({0: 1, 1: 0, 2: 1})
        fd = PerfectAutomaton(LOCS)
        channels = make_channels(LOCS)
        system = Composition(
            list(algorithm.automata())
            + channels
            + [fd, env, CrashAutomaton(LOCS)],
            name="SPD",
        )

        def non_fd_task(task: str) -> bool:
            return not task.startswith("FD-P")

        def both_live_decided(state, _step) -> bool:
            return all(
                PerfectConsensusProcess.decision(
                    system.component_state(state, algorithm[i])
                )
                is not None
                for i in (0, 1)
            )

        report = find_quiescent_execution(
            system,
            is_output=lambda a: a.name == "decide",
            injections=FaultPattern({2: 9}, LOCS).injections(),
            max_steps=6000,
            probe_steps=400,
            allowed_task=non_fd_task,
            channels_empty=lambda state: all(
                not system.component_state(state, c) for c in channels
            ),
            settle_when=both_live_decided,
        )
        assert report.lemma23_holds
        assert report.outputs_before == 2  # the two live locations


class TestSection9ConsensusWithAFDs:
    """Proposition 46 on real runs: exactly one decision value."""

    @pytest.mark.parametrize(
        "crashes", [{}, {0: 5}, {1: 14}], ids=["none", "c0", "c1"]
    )
    def test_exactly_one_decision_value(self, crashes):
        result = run_consensus_experiment(
            perfect_consensus_algorithm(LOCS),
            Perfect(LOCS),
            proposals={0: 1, 1: 0, 2: 0},
            fault_pattern=FaultPattern(crashes, LOCS),
            f=1,
        )
        assert result.solved
        values = {
            a.payload[0]
            for a in result.problem_events
            if a.name == "decide"
        }
        assert len(values) == 1
