"""Mutation tests for the flow-aware lint layer (REPRO006-REPRO009).

Same discipline as ``tests/lint/test_rules.py``: every rule gets a
fixture violating exactly it (asserted at the expected line/column) and
a clean twin on which nothing fires.  The REPRO006 property tests run
the *real* spec/ledger sources from disk through the analysis, so the
statically-derived partition is checked against ``dataclasses.fields``
and the live ``spec_fingerprint`` — and a mutation test deletes one
consumption line from the ledger source and demands the rule notices.
"""

import ast
import dataclasses
import textwrap

from repro.lint.dataflow import (
    FINGERPRINT_EXEMPT,
    ProjectIndex,
    check_registry_exhaustiveness,
    fingerprint_partition,
    single_assignments,
    tainted_seed_expr,
    worker_entry_points,
    worker_state_writes,
)
from repro.lint.rules import RULES_BY_CODE, ModuleSource

REPO_SPEC = "src/repro/runner/spec.py"
REPO_LEDGER = "src/repro/obs/ledger.py"
REPO_PLAN = "src/repro/faults/plan.py"
REPO_PARAMS = "src/repro/timed/params.py"


def module(path, source):
    source = textwrap.dedent(source)
    return ModuleSource(path, source, ast.parse(source))


def project(sources):
    return ProjectIndex(
        [module(path, src) for path, src in sorted(sources.items())]
    )


def run_project(code, sources):
    rule = RULES_BY_CODE[code]
    return sorted(rule.check_project(project(sources)))


def run_file(code, source, path="fixture.py"):
    rule = RULES_BY_CODE[code]
    return sorted(rule.check(module(path, source)))


def disk_module(relpath):
    with open(relpath, "r", encoding="utf-8") as fp:
        text = fp.read()
    return ModuleSource(relpath, text, ast.parse(text))


# ---------------------------------------------------------------------------
# REPRO006 — fingerprint completeness
# ---------------------------------------------------------------------------


class TestFingerprintRule:
    def test_undecided_field_flagged_at_declaration(self):
        findings = run_project(
            "REPRO006",
            {
                "pkg/params.py": """
                class TimedParams:
                    timeout: float = 1.0
                    jitter: float = 0.0

                    def summary(self):
                        return {"timeout": self.timeout}
                """
            },
        )
        assert [f.code for f in findings] == ["REPRO006"]
        assert [(f.line, f.col) for f in findings] == [(4, 5)]
        assert "TimedParams.jitter" in findings[0].message
        assert "FINGERPRINT_EXEMPT" in findings[0].message

    def test_clean_twin_all_fields_consumed(self):
        assert run_project(
            "REPRO006",
            {
                "pkg/params.py": """
                class TimedParams:
                    timeout: float = 1.0
                    jitter: float = 0.0

                    def summary(self):
                        return {"timeout": self.timeout, "jitter": self.jitter}
                """
            },
        ) == []

    def test_transitive_consumption_through_helper_method(self):
        assert run_project(
            "REPRO006",
            {
                "pkg/params.py": """
                class TimedParams:
                    timeout: float = 1.0
                    jitter: float = 0.0

                    def _timing(self):
                        return (self.timeout, self.jitter)

                    def summary(self):
                        return {"timing": self._timing()}
                """
            },
        ) == []

    def test_getattr_dynamic_mode_consumes_name_literals(self):
        # The ChannelFaults.summary idiom: getattr over field-name
        # literals consumes every named field.
        assert run_project(
            "REPRO006",
            {
                "pkg/faults.py": """
                class ChannelFaults:
                    drop: float = 0.0
                    dup: float = 0.0

                    def summary(self):
                        return {n: getattr(self, n) for n in ("drop", "dup")}
                """
            },
        ) == []

    def test_cross_module_ledger_sink_consumes(self):
        sources = {
            "pkg/spec.py": """
            class ExperimentSpec:
                seed: int = 0
                label: str = ""

                def meta(self):
                    return {"label": self.label}
            """,
            "pkg/obs/ledger.py": """
            def spec_fingerprint(spec):
                return {"seed": spec.seed, **spec.meta()}
            """,
        }
        with _exempt({"ExperimentSpec": frozenset()}):
            assert run_project("REPRO006", sources) == []

    def test_wrong_path_spec_fingerprint_is_not_a_sink(self):
        # compiled/system.py defines a narrower spec_fingerprint for
        # table sharing; only the obs/ledger.py one is cache identity.
        sources = {
            "pkg/spec.py": """
            class ExperimentSpec:
                seed: int = 0
                label: str = ""

                def meta(self):
                    return {"label": self.label}
            """,
            "pkg/compiled/system.py": """
            def spec_fingerprint(spec):
                return {"seed": spec.seed}
            """,
        }
        with _exempt({"ExperimentSpec": frozenset()}):
            findings = run_project("REPRO006", sources)
        assert [f.code for f in findings] == ["REPRO006"]
        assert "ExperimentSpec.seed" in findings[0].message

    def test_stale_exemption_flagged(self):
        with _exempt({"TimedParams": frozenset({"timeout"})}):
            findings = run_project(
                "REPRO006",
                {
                    "pkg/params.py": """
                    class TimedParams:
                        timeout: float = 1.0

                        def summary(self):
                            return {"timeout": self.timeout}
                    """
                },
            )
        assert [f.code for f in findings] == ["REPRO006"]
        assert "exempted" in findings[0].message
        assert "consumes" in findings[0].message

    def test_unknown_exemption_flagged_at_class(self):
        with _exempt({"TimedParams": frozenset({"ghost"})}):
            findings = run_project(
                "REPRO006",
                {
                    "pkg/params.py": """
                    class TimedParams:
                        timeout: float = 1.0

                        def summary(self):
                            return {"timeout": self.timeout}
                    """
                },
            )
        assert [f.code for f in findings] == ["REPRO006"]
        assert "ghost" in findings[0].message
        assert findings[0].line == 2  # anchored at the class statement

    def test_classvar_is_not_a_field(self):
        assert run_project(
            "REPRO006",
            {
                "pkg/params.py": """
                from typing import ClassVar

                class TimedParams:
                    SCHEMA: ClassVar[str] = "v1"
                    timeout: float = 1.0

                    def summary(self):
                        return {"timeout": self.timeout}
                """
            },
        ) == []


class _exempt:
    """Temporarily replace the module-level exemption table."""

    def __init__(self, table):
        self.table = table

    def __enter__(self):
        self.saved = dict(FINGERPRINT_EXEMPT)
        FINGERPRINT_EXEMPT.clear()
        FINGERPRINT_EXEMPT.update(self.table)

    def __exit__(self, *exc):
        FINGERPRINT_EXEMPT.clear()
        FINGERPRINT_EXEMPT.update(self.saved)


class TestFingerprintAgainstRealSources:
    """The partition derived from the committed sources is exact."""

    def real_partition(self):
        index = ProjectIndex(
            [
                disk_module(REPO_SPEC),
                disk_module(REPO_LEDGER),
                disk_module(REPO_PLAN),
                disk_module(REPO_PARAMS),
            ]
        )
        parts = {p.class_name: p for p in fingerprint_partition(index)}
        return parts

    def test_experiment_spec_partition_matches_dataclass_fields(self):
        from repro.runner.spec import ExperimentSpec

        part = self.real_partition()["ExperimentSpec"]
        declared = {f.name for f in dataclasses.fields(ExperimentSpec)}
        assert set(part.fields) == declared
        assert part.consumed | set(part.exempt) == declared
        assert part.consumed & set(part.exempt) == set()
        assert part.undecided == []
        assert part.stale_exemptions == []
        assert part.unknown_exemptions == []

    def test_consumed_fields_reach_the_live_fingerprint(self):
        # Every statically "consumed" field must show up, by name, as a
        # key of spec_fingerprint on at least one representative spec.
        from repro.api import ExperimentSpec, FaultPlan, spec_fingerprint
        from repro.algorithms import omega_consensus_algorithm

        consensus = ExperimentSpec(
            algorithm=omega_consensus_algorithm,
            detector="omega",
            locations=(0, 1, 2),
            crashes={0: 10},
            f=1,
            fault_plan=FaultPlan(),
            label="prop",
        )
        timed = ExperimentSpec(
            detector="heartbeat",
            locations=(0, 1, 2),
            problem="timed-detector",
            seed=7,
        )
        keys = set(spec_fingerprint(consensus)) | set(spec_fingerprint(timed))
        part = self.real_partition()["ExperimentSpec"]
        missing = part.consumed - keys
        assert missing == set(), missing

    def test_every_sink_class_is_fully_decided(self):
        for name, part in self.real_partition().items():
            assert part.undecided == [], (name, part.undecided)
            assert part.stale_exemptions == [], name
            assert part.unknown_exemptions == [], name

    def test_deleting_a_ledger_consumption_line_fires(self):
        # Mutation test: drop min_live_outputs from the real ledger
        # source; the rule must notice the field lost its decision.
        with open(REPO_LEDGER, "r", encoding="utf-8") as fp:
            text = fp.read()
        needle = '    fp["min_live_outputs"] = spec.min_live_outputs\n'
        assert needle in text
        mutated = text.replace(needle, "")
        rule = RULES_BY_CODE["REPRO006"]
        index = ProjectIndex(
            [
                disk_module(REPO_SPEC),
                ModuleSource(REPO_LEDGER, mutated, ast.parse(mutated)),
                disk_module(REPO_PLAN),
                disk_module(REPO_PARAMS),
            ]
        )
        findings = sorted(rule.check_project(index))
        assert any(
            f.code == "REPRO006" and "min_live_outputs" in f.message
            for f in findings
        ), findings


# ---------------------------------------------------------------------------
# REPRO007 — cross-process worker race hazards
# ---------------------------------------------------------------------------


class TestWorkerRaceRule:
    def test_mutate_call_from_worker_flagged(self):
        findings = run_file(
            "REPRO007",
            """
            RESULTS = []

            def worker(x):
                RESULTS.append(x)
                return x

            def run(xs):
                return parallel_map(worker, xs)
            """,
        )
        assert [f.code for f in findings] == ["REPRO007"]
        assert [(f.line, f.col) for f in findings] == [(5, 5)]
        assert "worker" in findings[0].message

    def test_global_rebind_flagged(self):
        findings = run_file(
            "REPRO007",
            """
            COUNT = 0

            def worker(x):
                global COUNT
                COUNT = COUNT + 1
                return x

            def run(xs):
                return parallel_map(worker, xs)
            """,
        )
        assert [f.code for f in findings] == ["REPRO007"]
        assert [(f.line, f.col) for f in findings] == [(6, 5)]

    def test_subscript_write_flagged(self):
        findings = run_file(
            "REPRO007",
            """
            CACHE = {}

            def worker(x):
                CACHE[x] = 1
                return x

            def run(pool, xs):
                return pool.imap(worker, xs)
            """,
        )
        assert [f.code for f in findings] == ["REPRO007"]
        assert [(f.line, f.col) for f in findings] == [(5, 5)]

    def test_transitive_write_through_helper_flagged(self):
        findings = run_file(
            "REPRO007",
            """
            SEEN = set()

            def note(x):
                SEEN.add(x)

            def worker(x):
                note(x)
                return x

            def run(xs):
                return parallel_map(worker, xs)
            """,
        )
        assert [f.code for f in findings] == ["REPRO007"]
        assert [(f.line, f.col) for f in findings] == [(5, 5)]

    def test_nonlocal_closure_write_flagged(self):
        findings = run_file(
            "REPRO007",
            """
            def worker(total):
                def bump():
                    nonlocal total
                    total = total + 1
                bump()
                return total

            def run(xs):
                return parallel_map(worker, xs)
            """,
        )
        assert [f.code for f in findings] == ["REPRO007"]
        assert [(f.line, f.col) for f in findings] == [(5, 9)]

    def test_partial_wrapped_worker_flagged(self):
        findings = run_file(
            "REPRO007",
            """
            import functools

            TALLY = {}

            def worker(opts, x):
                TALLY[x] = opts
                return x

            def run(xs, opts):
                return parallel_map(functools.partial(worker, opts), xs)
            """,
        )
        assert [f.code for f in findings] == ["REPRO007"]

    def test_clean_twin_local_state_only(self):
        assert run_file(
            "REPRO007",
            """
            def worker(x):
                results = []
                results.append(x)
                return results

            def run(xs):
                return parallel_map(worker, xs)
            """,
        ) == []

    def test_clean_cache_counter_seam(self):
        assert run_file(
            "REPRO007",
            """
            _COUNTS = cache_counter("sweep")

            def worker(x):
                _COUNTS.update(hits=1)
                return x

            def run(xs):
                return parallel_map(worker, xs)
            """,
        ) == []

    def test_builtin_map_is_not_a_fan_out(self):
        # Bare map() runs in-process; module state is shared for real.
        assert run_file(
            "REPRO007",
            """
            RESULTS = []

            def worker(x):
                RESULTS.append(x)
                return x

            def run(xs):
                return list(map(worker, xs))
            """,
        ) == []

    def test_writes_outside_worker_closure_not_flagged(self):
        assert run_file(
            "REPRO007",
            """
            RESULTS = []

            def worker(x):
                return x

            def collect(batch):
                RESULTS.extend(batch)

            def run(xs):
                out = parallel_map(worker, xs)
                collect(out)
                return out
            """,
        ) == []

    def test_entry_point_helpers(self):
        tree = ast.parse(
            textwrap.dedent(
                """
                def worker(x):
                    return x

                def run(pool, xs):
                    pool.imap_unordered(worker, xs)
                """
            )
        )
        assert sorted(worker_entry_points(tree)) == ["worker"]
        assert worker_state_writes(tree) == []


# ---------------------------------------------------------------------------
# REPRO008 — seed-derivation discipline
# ---------------------------------------------------------------------------


class TestSeedDisciplineRule:
    def test_arithmetic_seed_into_random_flagged(self):
        findings = run_file(
            "REPRO008",
            """
            import random

            def draw(seed, i):
                return random.Random(seed + i).random()
            """,
        )
        assert [f.code for f in findings] == ["REPRO008"]
        assert [(f.line, f.col) for f in findings] == [(5, 26)]
        assert "derive_seed" in findings[0].message

    def test_seed_kwarg_mixing_flagged(self):
        findings = run_file(
            "REPRO008",
            """
            def shard(spec, k):
                return run_spec(spec, seed=spec.seed * 31 + k)
            """,
        )
        assert [f.code for f in findings] == ["REPRO008"]
        assert [(f.line, f.col) for f in findings] == [(3, 32)]

    def test_hash_seed_flagged(self):
        findings = run_file(
            "REPRO008",
            """
            import random

            def rng_for(name):
                return random.Random(hash(name))
            """,
        )
        assert [f.code for f in findings] == ["REPRO008"]
        assert "hash()" in findings[0].message

    def test_one_level_taint_through_local_flagged(self):
        findings = run_file(
            "REPRO008",
            """
            import random

            def draw(seed, i):
                mixed = seed + i
                return random.Random(mixed).random()
            """,
        )
        assert [f.code for f in findings] == ["REPRO008"]
        assert [(f.line, f.col) for f in findings] == [(6, 26)]

    def test_clean_twin_derive_seed(self):
        assert run_file(
            "REPRO008",
            """
            import random

            def draw(seed, i):
                rng = random.Random(derive_seed(seed, i))
                other = random.Random(seed)
                return run_spec(None, seed=derive_seed(seed, "shard", i))
            """,
        ) == []

    def test_reassigned_local_is_not_chased(self):
        # Two assignments make the name's meaning flow-dependent; the
        # one-level chase stays honest and silent.
        assert run_file(
            "REPRO008",
            """
            import random

            def draw(seed, i, flip):
                s = derive_seed(seed, i)
                if flip:
                    s = derive_seed(seed, i, "flip")
                return random.Random(s).random()
            """,
        ) == []

    def test_pragma_suppression_via_engine(self):
        source = textwrap.dedent(
            """
            import random

            def draw(seed, i):
                return random.Random(seed + i).random()  # repro-lint: disable=REPRO008
            """
        )
        import os
        import tempfile

        from repro.lint.engine import lint_paths

        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "fixture.py")
            with open(path, "w", encoding="utf-8") as fp:
                fp.write(source)
            result = lint_paths([tmp])
        assert result.findings == []
        assert result.suppressed == 1

    def test_taint_helpers(self):
        expr = ast.parse("seed + 1", mode="eval").body
        assert tainted_seed_expr(expr, {}) == "mixing"
        call = ast.parse("hash(x)", mode="eval").body
        assert tainted_seed_expr(call, {}) == "hash"
        ok = ast.parse("derive_seed(seed, 1)", mode="eval").body
        assert tainted_seed_expr(ok, {}) is None
        scope = ast.parse("a = 1\nb = 2\nb = 3\n")
        assert set(single_assignments(scope)) == {"a"}


# ---------------------------------------------------------------------------
# REPRO009 — registry exhaustiveness
# ---------------------------------------------------------------------------


class _FakeDetector:
    pass


class TestRegistryExhaustiveness:
    def test_live_registries_are_exhaustive(self):
        assert check_registry_exhaustiveness() == []

    def test_missing_subject_and_facade_entries_flagged(self):
        findings = check_registry_exhaustiveness(
            detector_items=[("fake", _FakeDetector)],
            timed_items=[],
            subject_names={"detector:fake"},
            facade_names=set(),
        )
        messages = [f.message for f in findings]
        assert len(findings) == 2
        assert any("compiled:detector:fake" in m for m in messages)
        assert any("repro.api" in m for m in messages)
        assert all(f.code == "REPRO009" for f in findings)

    def test_missing_timed_subject_flagged(self):
        findings = check_registry_exhaustiveness(
            detector_items=[],
            timed_items=[("fake", _FakeDetector)],
            subject_names=set(),
            facade_names={"_FakeDetector"},
        )
        assert len(findings) == 2
        assert any("timed:fake" in f.message for f in findings)
        assert any("compiled:timed:fake" in f.message for f in findings)

    def test_fully_covered_injection_is_clean(self):
        assert (
            check_registry_exhaustiveness(
                detector_items=[("fake", _FakeDetector)],
                timed_items=[],
                subject_names={"detector:fake", "compiled:detector:fake"},
                facade_names={"_FakeDetector"},
            )
            == []
        )

    def test_rule_is_gated_on_registry_modules(self):
        # A project that does not contain the registries (every tmp-dir
        # fixture in the engine tests) must not trigger the live sweep.
        rule = RULES_BY_CODE["REPRO009"]
        index = project({"pkg/other.py": "x = 1\n"})
        assert list(rule.check_project(index)) == []

    def test_findings_anchor_at_class_definitions(self):
        from repro.detectors.omega import Omega

        findings = check_registry_exhaustiveness(
            detector_items=[("omega", Omega)],
            timed_items=[],
            subject_names=set(),
            facade_names=set(),
        )
        assert findings
        for f in findings:
            assert f.path.endswith("detectors/omega.py")
            assert f.line > 1


# ---------------------------------------------------------------------------
# Engine integration: project rules ride the normal pipeline
# ---------------------------------------------------------------------------


class TestEngineIntegration:
    def test_project_findings_flow_through_lint_paths(self, tmp_path):
        (tmp_path / "params.py").write_text(
            textwrap.dedent(
                """
                class TimedParams:
                    timeout: float = 1.0
                    jitter: float = 0.0

                    def summary(self):
                        return {"timeout": self.timeout}
                """
            )
        )
        from repro.lint.engine import lint_paths

        result = lint_paths([str(tmp_path)])
        assert [f.code for f in result.findings] == ["REPRO006"]

    def test_project_findings_respect_pragmas(self, tmp_path):
        (tmp_path / "params.py").write_text(
            textwrap.dedent(
                """
                class TimedParams:
                    timeout: float = 1.0
                    jitter: float = 0.0  # repro-lint: disable=REPRO006

                    def summary(self):
                        return {"timeout": self.timeout}
                """
            )
        )
        from repro.lint.engine import lint_paths

        result = lint_paths([str(tmp_path)])
        assert result.findings == []
        assert result.suppressed == 1

    def test_select_excludes_project_rules(self, tmp_path):
        (tmp_path / "params.py").write_text(
            textwrap.dedent(
                """
                class TimedParams:
                    timeout: float = 1.0
                    jitter: float = 0.0

                    def summary(self):
                        return {"timeout": self.timeout}
                """
            )
        )
        from repro.lint.engine import lint_paths

        result = lint_paths([str(tmp_path)], select=["REPRO001"])
        assert result.findings == []
