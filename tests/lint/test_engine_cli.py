"""The lint engine and CLI: discovery, suppressions, baseline, exits.

Includes the ISSUE acceptance checks: the repository self-lints clean,
and a scratch file seeded with REPRO001/REPRO002 violations fails with
exact ``path:line:col CODE`` findings and exit code 1.
"""

import json
import os

import pytest

from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.cli import main
from repro.lint.engine import (
    collect_files,
    lint_file,
    lint_paths,
    select_rules,
)
from repro.lint.findings import Finding
from repro.lint.rules import ALL_RULES

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..")
)

VIOLATING_SOURCE = """\
import random
import time


def stamp():
    return time.time()


def pick(items):
    return random.choice(items)
"""

CLEAN_SOURCE = """\
import random


def pick(items, seed):
    return random.Random(seed).choice(items)
"""


@pytest.fixture
def violating_file(tmp_path):
    path = tmp_path / "scratch_violation.py"
    path.write_text(VIOLATING_SOURCE)
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text(CLEAN_SOURCE)
    return str(path)


class TestCollectFiles:
    def test_files_pass_through_and_sort(self, tmp_path):
        a = tmp_path / "a.py"
        b = tmp_path / "sub" / "b.py"
        b.parent.mkdir()
        a.write_text("")
        b.write_text("")
        (tmp_path / "notes.txt").write_text("")
        got = collect_files([str(tmp_path)])
        assert got == sorted([str(a), str(b)])

    def test_pycache_skipped(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "x.py").write_text("")
        assert collect_files([str(tmp_path)]) == []


class TestSelectRules:
    def test_default_is_all(self):
        assert select_rules() == list(ALL_RULES)

    def test_select_and_ignore(self):
        only = select_rules(select=["REPRO001"])
        assert [r.code for r in only] == ["REPRO001"]
        rest = select_rules(ignore=["REPRO001"])
        assert "REPRO001" not in [r.code for r in rest]

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            select_rules(select=["BOGUS1"])


class TestLintFile:
    def test_violations_found(self, violating_file):
        findings, suppressed = lint_file(violating_file, ALL_RULES)
        assert [f.code for f in findings] == ["REPRO001", "REPRO002"]
        assert suppressed == 0

    def test_inline_suppression_counted(self, tmp_path):
        path = tmp_path / "s.py"
        path.write_text(
            "import time\n"
            "t = time.time()  # repro-lint: disable=REPRO001\n"
        )
        findings, suppressed = lint_file(str(path), ALL_RULES)
        assert findings == []
        assert suppressed == 1

    def test_file_pragma_suppresses_whole_file(self, tmp_path):
        path = tmp_path / "s.py"
        path.write_text(
            "# repro-lint: disable-file=REPRO002\n"
            "import random\n"
            "a = random.random()\n"
            "b = random.random()\n"
        )
        findings, suppressed = lint_file(str(path), ALL_RULES)
        assert findings == []
        assert suppressed == 2

    def test_syntax_error_reported_not_raised(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        findings, _ = lint_file(str(path), ALL_RULES)
        assert [f.code for f in findings] == ["REPRO900"]
        assert findings[0].line == 1


class TestAcceptance:
    def test_repository_self_lints_clean(self):
        paths = [
            os.path.join(REPO_ROOT, d)
            for d in ("src", "benchmarks", "examples")
            if os.path.isdir(os.path.join(REPO_ROOT, d))
        ]
        result = lint_paths(paths)
        assert result.findings == [], [
            f.format_text() for f in result.findings
        ]
        assert result.exit_code == 0
        assert result.files_checked > 100

    def test_seeded_violation_exits_1_with_exact_findings(
        self, violating_file, capsys
    ):
        code = main([violating_file])
        out = capsys.readouterr().out
        assert code == 1
        shown = violating_file.replace(os.sep, "/")
        assert f"{shown}:6:12 REPRO001" in out
        assert f"{shown}:10:12 REPRO002" in out


class TestCli:
    def test_clean_file_exits_0(self, clean_file, capsys):
        assert main([clean_file]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["no/such/dir"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_unknown_code_is_usage_error(self, clean_file, capsys):
        assert main([clean_file, "--select", "NOPE"]) == 2
        assert "error" in capsys.readouterr().err

    def test_select_narrows(self, violating_file, capsys):
        assert main([violating_file, "--select", "REPRO002"]) == 1
        out = capsys.readouterr().out
        assert "REPRO002" in out
        assert "REPRO001" not in out

    def test_ignore_everything_exits_0(self, violating_file, capsys):
        assert (
            main([violating_file, "--ignore", "REPRO001,REPRO002"]) == 0
        )
        assert "0 finding(s)" in capsys.readouterr().out

    def test_json_format_is_machine_readable(self, violating_file, capsys):
        code = main([violating_file, "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 1
        assert doc["schema"] == "repro.lint/1"
        assert doc["exit_code"] == 1
        assert [f["code"] for f in doc["findings"]] == [
            "REPRO001",
            "REPRO002",
        ]
        assert {"path", "line", "col", "code", "message"} <= set(
            doc["findings"][0]
        )

    def test_write_baseline_then_clean(
        self, violating_file, tmp_path, capsys
    ):
        baseline = str(tmp_path / "baseline.json")
        assert (
            main(
                [violating_file, "--baseline", baseline, "--write-baseline"]
            )
            == 0
        )
        assert "wrote 2 finding(s)" in capsys.readouterr().out
        # Baselined findings no longer fail the run...
        assert main([violating_file, "--baseline", baseline]) == 0
        assert "(2 baselined" in capsys.readouterr().out
        # ...but a NEW violation still does.
        with open(violating_file, "a") as fp:
            fp.write("\n\nx = random.random()\n")
        assert main([violating_file, "--baseline", baseline]) == 1


class TestGithubFormat:
    def test_annotations_carry_location_and_code(
        self, violating_file, capsys
    ):
        code = main([violating_file, "--format", "github"])
        out = capsys.readouterr().out
        assert code == 1
        shown = violating_file.replace(os.sep, "/")
        assert (
            f"::error file={shown},line=6,col=12,title=REPRO001::REPRO001 "
            in out
        )
        assert f"::error file={shown},line=10,col=12,title=REPRO002" in out
        assert "2 finding(s)" in out

    def test_clean_run_emits_no_annotations(self, clean_file, capsys):
        assert main([clean_file, "--format", "github"]) == 0
        out = capsys.readouterr().out
        assert "::error" not in out
        assert "0 finding(s)" in out

    def test_newlines_in_messages_are_escaped(self):
        from repro.lint.engine import LintResult

        result = LintResult(
            findings=[Finding("a.py", 1, 1, "REPRO001", "line one\nline two")]
        )
        rendered = result.render_github()
        assert "line one%0Aline two" in rendered
        assert "\nline two" not in rendered.splitlines()[0]


class TestSelectedRulesLine:
    def test_full_catalog_echoed_to_stderr(self, clean_file, capsys):
        main([clean_file])
        err = capsys.readouterr().err
        assert (
            "repro-lint: selected rules: "
            "REPRO001,REPRO002,REPRO003,REPRO004,REPRO005,"
            "REPRO006,REPRO007,REPRO008,REPRO009" in err
        )

    def test_select_narrows_the_echo(self, clean_file, capsys):
        main([clean_file, "--select", "REPRO006,REPRO009"])
        err = capsys.readouterr().err
        assert "repro-lint: selected rules: REPRO006,REPRO009" in err


class TestContractCache:
    def test_miss_writes_then_hits(self, clean_file, tmp_path, capsys):
        cache = str(tmp_path / "contract.json")
        args = [
            clean_file,
            "--contract",
            "--contract-max-states",
            "16",
            "--contract-cache",
            cache,
        ]
        assert main(args) == 0
        err = capsys.readouterr().err
        assert "contract cache written" in err
        with open(cache) as fp:
            doc = json.load(fp)
        assert doc["schema"] == "repro.lint-contract-cache/1"
        assert doc["findings"] == []
        assert main(args) == 0
        assert "contract cache hit" in capsys.readouterr().err

    def test_stale_key_is_a_miss(self, clean_file, tmp_path, capsys):
        from repro.lint.cli import load_contract_cache, write_contract_cache

        cache = str(tmp_path / "contract.json")
        write_contract_cache(cache, "stale-key", [])
        assert load_contract_cache(cache, "fresh-key") is None
        assert load_contract_cache(cache, "stale-key") == []

    def test_corrupt_cache_is_a_miss(self, tmp_path):
        from repro.lint.cli import load_contract_cache

        cache = str(tmp_path / "contract.json")
        with open(cache, "w") as fp:
            fp.write("not json{")
        assert load_contract_cache(cache, "k") is None

    def test_key_tracks_max_states(self):
        from repro.lint.cli import contract_cache_key

        assert contract_cache_key(16) != contract_cache_key(32)
        assert contract_cache_key(16) == contract_cache_key(16)

    def test_cached_findings_round_trip(self, tmp_path):
        from repro.lint.cli import load_contract_cache, write_contract_cache

        cache = str(tmp_path / "contract.json")
        findings = [Finding("a.py", 3, 1, "REPROC01", "msg")]
        write_contract_cache(cache, "k", findings)
        assert load_contract_cache(cache, "k") == findings


class TestProjectRuleBaselineRoundTrip:
    def test_write_baseline_then_clean_then_new_violation(
        self, tmp_path, capsys
    ):
        # Satellite: the round trip must also hold for project-scoped
        # findings (REPRO006), whose identities are line-free too.
        fixture = tmp_path / "params.py"
        fixture.write_text(
            "class TimedParams:\n"
            "    timeout: float = 1.0\n"
            "    jitter: float = 0.0\n"
            "\n"
            "    def summary(self):\n"
            '        return {"timeout": self.timeout}\n'
        )
        baseline = str(tmp_path / "baseline.json")
        target = str(fixture)
        assert main([target, "--baseline", baseline]) == 1
        capsys.readouterr()
        assert (
            main([target, "--baseline", baseline, "--write-baseline"]) == 0
        )
        assert "wrote 1 finding(s)" in capsys.readouterr().out
        assert main([target, "--baseline", baseline]) == 0
        assert "(1 baselined" in capsys.readouterr().out
        # A new undecided field is a NEW identity and still fails.
        fixture.write_text(
            "class TimedParams:\n"
            "    timeout: float = 1.0\n"
            "    jitter: float = 0.0\n"
            "    skew: float = 0.0\n"
            "\n"
            "    def summary(self):\n"
            '        return {"timeout": self.timeout}\n'
        )
        assert main([target, "--baseline", baseline]) == 1
        out = capsys.readouterr().out
        assert "TimedParams.skew" in out


class TestBaseline:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "b.json")
        findings = [
            Finding("a.py", 3, 1, "REPRO001", "msg one"),
            Finding("a.py", 9, 1, "REPRO001", "msg one"),  # same identity
            Finding("b.py", 1, 1, "REPRO002", "msg two"),
        ]
        assert write_baseline(path, findings) == 2  # deduplicated
        assert load_baseline(path) == {
            ("a.py", "REPRO001", "msg one"),
            ("b.py", "REPRO002", "msg two"),
        }

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "nope.json")) == set()

    def test_identity_survives_line_moves(self, tmp_path, violating_file):
        baseline = str(tmp_path / "b.json")
        result = lint_paths([violating_file])
        write_baseline(baseline, result.findings)
        # Shift every finding down two lines; identities are line-free.
        with open(violating_file) as fp:
            source = fp.read()
        with open(violating_file, "w") as fp:
            fp.write("# moved\n# moved again\n" + source)
        shifted = lint_paths([violating_file], baseline_path=baseline)
        assert shifted.findings == []
        assert len(shifted.baselined) == 2

    def test_committed_baseline_is_empty(self):
        assert load_baseline(
            os.path.join(REPO_ROOT, "lint_baseline.json")
        ) == set()
