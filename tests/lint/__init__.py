"""Tests for the repro.lint static-analysis layer."""
