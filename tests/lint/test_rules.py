"""Mutation tests for the AST rules (REPRO001-REPRO005, REPRO007-REPRO008).

Same discipline as ``tests/faults/test_oracles_catch_violations.py``:
for every rule there is a fixture violating *exactly* that rule — the
test asserts the code fires at the expected line/column and that every
other rule stays silent — and a clean twin on which nothing fires.
"""

import ast
import textwrap

from repro.lint.rules import ALL_RULES, RULES_BY_CODE, ModuleSource, rule_codes


def run_rules(source):
    source = textwrap.dedent(source)
    module = ModuleSource("fixture.py", source, ast.parse(source))
    findings = []
    for rule in ALL_RULES:
        findings.extend(rule.check(module))
    return sorted(findings)


def assert_only(findings, code, positions):
    """Exactly ``positions`` findings, all carrying ``code``."""
    assert [f.code for f in findings] == [code] * len(positions), findings
    assert [(f.line, f.col) for f in findings] == positions, findings


class TestCatalog:
    def test_nine_rules_with_stable_codes(self):
        assert rule_codes() == [
            "REPRO001",
            "REPRO002",
            "REPRO003",
            "REPRO004",
            "REPRO005",
            "REPRO006",
            "REPRO007",
            "REPRO008",
            "REPRO009",
        ]
        assert set(RULES_BY_CODE) == set(rule_codes())

    def test_flow_rules_carry_their_scope(self):
        assert RULES_BY_CODE["REPRO006"].scope == "project"
        assert RULES_BY_CODE["REPRO009"].scope == "project"
        assert RULES_BY_CODE["REPRO007"].scope == "file"
        assert RULES_BY_CODE["REPRO008"].scope == "file"
        for code in ("REPRO001", "REPRO002", "REPRO003", "REPRO004", "REPRO005"):
            assert RULES_BY_CODE[code].scope == "file"


class TestWallClock:
    def test_call_flagged(self):
        findings = run_rules(
            """
            import time
            t = time.time()
            """
        )
        assert_only(findings, "REPRO001", [(3, 5)])

    def test_aliased_reference_flagged(self):
        findings = run_rules(
            """
            from time import time as now
            t = now
            """
        )
        assert_only(findings, "REPRO001", [(3, 5)])

    def test_datetime_now_flagged(self):
        findings = run_rules(
            """
            import datetime
            stamp = datetime.datetime.now()
            """
        )
        assert_only(findings, "REPRO001", [(3, 9)])

    def test_clean_twin_perf_counter(self):
        # perf_counter is timing-only; its output never reaches a
        # canonical trace, so it is deliberately not wall-clock.
        assert run_rules(
            """
            import time
            t0 = time.perf_counter()
            elapsed = time.perf_counter() - t0
            """
        ) == []

    def test_allowlisted_path_is_silent(self):
        source = "import time\n\n\ndef make(now_fn=time.time):\n    return now_fn\n"
        module = ModuleSource(
            "src/repro/obs/schema.py", source, ast.parse(source)
        )
        rule = RULES_BY_CODE["REPRO001"]
        assert list(rule.check(module)) == []
        # The identical source outside the allowlisted file is flagged.
        other = ModuleSource("src/repro/obs/other.py", source, ast.parse(source))
        assert [f.code for f in rule.check(other)] == ["REPRO001"]

    def test_all_three_stamp_modules_allowlisted(self):
        # The three persisted-document stamps (bench artifact, profile
        # summary, ledger entry) share the injectable now_fn seam.
        source = "import time\n\n\ndef make(now_fn=time.time):\n    return now_fn\n"
        rule = RULES_BY_CODE["REPRO001"]
        for path in (
            "src/repro/obs/schema.py",
            "src/repro/obs/prof.py",
            "src/repro/obs/ledger.py",
        ):
            module = ModuleSource(path, source, ast.parse(source))
            assert list(rule.check(module)) == [], path

    def test_allowlist_does_not_cover_other_clock_names(self):
        # Only time.time is sanctioned in the stamp modules; datetime
        # reads there are still findings.
        source = "import datetime\n\nstamp = datetime.datetime.now()\n"
        module = ModuleSource(
            "src/repro/obs/prof.py", source, ast.parse(source)
        )
        rule = RULES_BY_CODE["REPRO001"]
        assert [f.code for f in rule.check(module)] == ["REPRO001"]


class TestUnseededRandom:
    def test_global_rng_call_flagged(self):
        findings = run_rules(
            """
            import random
            pick = random.choice([1, 2])
            """
        )
        assert_only(findings, "REPRO002", [(3, 8)])

    def test_unseeded_random_instance_flagged(self):
        findings = run_rules(
            """
            import random
            rng = random.Random()
            """
        )
        assert_only(findings, "REPRO002", [(3, 7)])

    def test_system_random_flagged(self):
        findings = run_rules(
            """
            import random
            rng = random.SystemRandom(1)
            """
        )
        assert_only(findings, "REPRO002", [(3, 7)])

    def test_clean_twin_seeded(self):
        assert run_rules(
            """
            import random
            rng = random.Random(42)
            rng2 = random.Random(derive_seed(7, "policy"))
            pick = rng.choice([1, 2])
            """
        ) == []

    def test_randbytes_flagged(self):
        findings = run_rules(
            """
            import random
            salt = random.randbytes(8)
            """
        )
        assert_only(findings, "REPRO002", [(3, 8)])

    def test_os_urandom_flagged(self):
        findings = run_rules(
            """
            import os
            salt = os.urandom(16)
            """
        )
        assert_only(findings, "REPRO002", [(3, 8)])

    def test_secrets_flagged(self):
        findings = run_rules(
            """
            import secrets
            token = secrets.token_hex(8)
            """
        )
        assert_only(findings, "REPRO002", [(3, 9)])

    def test_numpy_global_rng_flagged(self):
        findings = run_rules(
            """
            import numpy
            draw = numpy.random.uniform(0, 1)
            """
        )
        assert_only(findings, "REPRO002", [(3, 8)])

    def test_numpy_aliased_global_seed_flagged(self):
        # np.random.seed mutates hidden module-global state; even the
        # "seeding" spelling is a finding — use default_rng(seed).
        findings = run_rules(
            """
            import numpy as np
            np.random.seed(42)
            """
        )
        assert_only(findings, "REPRO002", [(3, 1)])

    def test_seedless_default_rng_flagged(self):
        findings = run_rules(
            """
            import numpy as np
            rng = np.random.default_rng()
            """
        )
        assert_only(findings, "REPRO002", [(3, 7)])

    def test_clean_twin_seeded_numpy(self):
        assert run_rules(
            """
            import numpy as np
            rng = np.random.default_rng(42)
            rng2 = np.random.default_rng(seed=derive_seed(7, "noise"))
            legacy = np.random.RandomState(7)
            """
        ) == []


class TestUnorderedIteration:
    def test_set_into_json_flagged(self):
        findings = run_rules(
            """
            import json
            def f(x):
                return json.dumps(set(x))
            """
        )
        assert_only(findings, "REPRO003", [(4, 23)])

    def test_keys_loop_into_sink_flagged(self):
        findings = run_rules(
            """
            import json
            def g(d, fp):
                for k in d.keys():
                    json.dump(k, fp)
            """
        )
        assert_only(findings, "REPRO003", [(4, 14)])

    def test_clean_twin_sorted(self):
        assert run_rules(
            """
            import json
            def f(x, d, fp):
                out = json.dumps(sorted(set(x)))
                for k in sorted(d.keys()):
                    json.dump(k, fp)
                return out
            """
        ) == []

    def test_unordered_away_from_sinks_is_fine(self):
        assert run_rules(
            """
            def f(xs):
                seen = set(xs)
                return {x for x in xs if x in seen}
            """
        ) == []


class TestDeprecatedKwarg:
    def test_scheduler_observer_flagged(self):
        findings = run_rules(
            """
            def h(s, obs):
                return Scheduler(s, observer=obs)
            """
        )
        assert_only(findings, "REPRO004", [(3, 34)])

    def test_with_observer_method_flagged(self):
        findings = run_rules(
            """
            def h(b, obs):
                return b.with_observer(obs)
            """
        )
        assert_only(findings, "REPRO004", [(3, 12)])

    def test_clean_twin_instrument(self):
        assert run_rules(
            """
            def h(s, b, obs):
                sched = Scheduler(s, instrument=obs)
                return b.with_instrumentation(obs)
            """
        ) == []

    def test_current_api_keywords_not_flagged(self):
        # These callees legitimately take observer=/metrics= today.
        assert run_rules(
            """
            def h(obs, reg, execution, system):
                i = Instrumentation(observer=obs, metrics=reg)
                system.run(observer=obs)
                return build_run_report(execution, metrics=reg)
            """
        ) == []


class TestMutableDefault:
    def test_automaton_init_list_default_flagged(self):
        findings = run_rules(
            """
            class MyAutomaton(Automaton):
                def __init__(self, peers=[]):
                    self.peers = peers
            """
        )
        assert_only(findings, "REPRO005", [(3, 30)])

    def test_kwonly_dict_default_flagged(self):
        findings = run_rules(
            """
            class MyAFD(AFD):
                def __init__(self, *, table={}):
                    self.table = table
            """
        )
        assert_only(findings, "REPRO005", [(3, 33)])

    def test_clean_twin_immutable_defaults(self):
        assert run_rules(
            """
            class MyAutomaton(Automaton):
                def __init__(self, peers=(), table=None):
                    self.peers = peers
                    self.table = dict(table or {})
            """
        ) == []

    def test_non_automaton_class_not_flagged(self):
        # The rule is scoped to automaton constructors, where factory
        # reuse across workers makes sharing lethal.
        assert run_rules(
            """
            class Helper:
                def __init__(self, xs=[]):
                    self.xs = xs
            """
        ) == []
