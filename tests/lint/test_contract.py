"""Mutation tests for the semantic contract checks (REPROC01-REPROC06).

For every contract condition there is a fixture automaton violating
exactly it — the test asserts that check (and only that check) fires —
plus the acceptance fixture: one automaton that is malformed in two
independent ways and must be rejected with BOTH violations named.
"""

from repro.ioa.actions import Action
from repro.ioa.automaton import FunctionalAutomaton
from repro.ioa.signature import FiniteActionSet, Signature
from repro.lint.contract import (
    ContractSubject,
    check_automaton_contract,
    check_picklable,
    default_contract_subjects,
    default_spec_subjects,
    run_contract_checks,
)

IN = Action("poke", 0)
OUT = Action("emit", 0)
OUT2 = Action("emit2", 0)


def codes_of(report):
    return sorted({f.code for f in report.findings})


def well_formed_machine():
    """A tiny automaton satisfying every contract condition."""
    return FunctionalAutomaton(
        name="ok",
        signature=Signature(
            inputs=FiniteActionSet([IN]),
            outputs=FiniteActionSet([OUT]),
        ),
        initial=0,
        transition=lambda s, a: min(s + 1, 2),
        enabled_fn=lambda s: [OUT] if s < 2 else [],
    )


class TestCleanAutomaton:
    def test_no_findings(self):
        report = check_automaton_contract(well_formed_machine(), name="ok")
        assert report.ok, [f.format_text() for f in report.findings]
        assert report.subjects_checked == 1
        assert report.truncated_subjects == []


class TestSignatureDisjointness:
    def test_overlap_rejected_as_c01_only(self):
        bad = FunctionalAutomaton(
            name="overlap",
            signature=Signature(
                inputs=FiniteActionSet([IN]),
                outputs=FiniteActionSet([IN, OUT]),  # IN in both sets
            ),
            initial=0,
            transition=lambda s, a: min(s + 1, 2),
            enabled_fn=lambda s: [OUT] if s < 2 else [],
        )
        report = check_automaton_contract(bad, name="overlap")
        assert codes_of(report) == ["REPROC01"]
        (finding,) = [f for f in report.findings if f.code == "REPROC01"]
        assert "disjoint" in finding.message
        assert "[overlap]" in finding.message


class TestInputEnabledness:
    def test_disabled_input_rejected_as_c02_only(self):
        class DisablesInput(FunctionalAutomaton):
            def enabled(self, state, action):
                if action == IN:
                    return state == 0  # inputs must be enabled everywhere
                return super().enabled(state, action)

        bad = DisablesInput(
            name="deaf",
            signature=Signature(
                inputs=FiniteActionSet([IN]),
                outputs=FiniteActionSet([OUT]),
            ),
            initial=0,
            transition=lambda s, a: min(s + 1, 2),
            enabled_fn=lambda s: [OUT] if s < 2 else [],
        )
        report = check_automaton_contract(bad, name="deaf")
        assert codes_of(report) == ["REPROC02"]
        assert "disabled in" in report.findings[0].message

    def test_apply_raising_on_input_rejected_as_c02(self):
        def transition(s, a):
            if a == IN and s > 0:
                raise ValueError("unhandled input")
            return min(s + 1, 2)

        bad = FunctionalAutomaton(
            name="brittle",
            signature=Signature(
                inputs=FiniteActionSet([IN]),
                outputs=FiniteActionSet([OUT]),
            ),
            initial=0,
            transition=transition,
            enabled_fn=lambda s: [OUT] if s < 2 else [],
        )
        report = check_automaton_contract(bad, name="brittle")
        assert "REPROC02" in codes_of(report)


class TestTaskPartition:
    def test_ghost_task_rejected_as_c03_only(self):
        bad = FunctionalAutomaton(
            name="ghost",
            signature=Signature(
                inputs=FiniteActionSet([IN]),
                outputs=FiniteActionSet([OUT]),
            ),
            initial=0,
            transition=lambda s, a: min(s + 1, 2),
            enabled_fn=lambda s: [OUT] if s < 2 else [],
            task_names=("main", "ghost"),
            task_assignment=lambda a: "main",
        )
        report = check_automaton_contract(bad, name="ghost")
        assert codes_of(report) == ["REPROC03"]
        assert "'ghost'" in report.findings[0].message

    def test_undeclared_task_rejected_as_c03_only(self):
        bad = FunctionalAutomaton(
            name="rogue",
            signature=Signature(outputs=FiniteActionSet([OUT])),
            initial=0,
            transition=lambda s, a: min(s + 1, 2),
            enabled_fn=lambda s: [OUT] if s < 2 else [],
            task_names=("main",),
            task_assignment=lambda a: "rogue",  # escapes tasks()
        )
        report = check_automaton_contract(bad, name="rogue")
        assert codes_of(report) == ["REPROC03"]
        assert "'rogue'" in report.findings[0].message

    def test_obligation_free_automaton_is_fine(self):
        # tasks() == () with task_of -> None is the crash-automaton
        # pattern and must not be flagged.
        ok = FunctionalAutomaton(
            name="free",
            signature=Signature(outputs=FiniteActionSet([OUT])),
            initial=0,
            transition=lambda s, a: min(s + 1, 2),
            enabled_fn=lambda s: [OUT] if s < 2 else [],
            task_names=(),
            task_assignment=lambda a: None,
        )
        report = check_automaton_contract(
            ok, name="free", require_task_determinism=False
        )
        assert report.ok, [f.format_text() for f in report.findings]


class TestApplyPurity:
    def test_mutating_apply_rejected_as_c04(self):
        class Cell:
            """Hashable but mutable state — the exact trap C04 exists for."""

            def __init__(self, items=None):
                self.items = list(items or [])

            def __eq__(self, other):
                return isinstance(other, Cell) and self.items == other.items

            def __hash__(self):
                return 17  # constant: legal, if degenerate

            def __repr__(self):
                return f"Cell({self.items})"

        def transition(s, a):
            if len(s.items) < 2:
                s.items.append(a.name)  # mutates the input state
            return s

        bad = FunctionalAutomaton(
            name="mutator",
            signature=Signature(outputs=FiniteActionSet([OUT])),
            initial=Cell(),
            transition=transition,
            enabled_fn=lambda s: [OUT] if len(s.items) < 2 else [],
        )
        report = check_automaton_contract(
            bad, name="mutator", require_task_determinism=False
        )
        assert "REPROC04" in codes_of(report)
        assert any("mutated" in f.message for f in report.findings)


class TestTaskDeterminism:
    def test_two_enabled_actions_in_one_task_rejected_as_c05_only(self):
        bad = FunctionalAutomaton(
            name="nd",
            signature=Signature(outputs=FiniteActionSet([OUT, OUT2])),
            initial=0,
            transition=lambda s, a: min(s + 1, 3),
            enabled_fn=lambda s: [OUT, OUT2] if s < 3 else [],
        )
        report = check_automaton_contract(bad, name="nd")
        assert codes_of(report) == ["REPROC05"]
        # The finding names the exact offending state (BFS finds 0 first).
        assert "state 0" in report.findings[0].message

    def test_same_automaton_passes_when_not_required(self):
        relaxed = FunctionalAutomaton(
            name="nd",
            signature=Signature(outputs=FiniteActionSet([OUT, OUT2])),
            initial=0,
            transition=lambda s, a: min(s + 1, 3),
            enabled_fn=lambda s: [OUT, OUT2] if s < 3 else [],
        )
        report = check_automaton_contract(
            relaxed, name="nd", require_task_determinism=False
        )
        assert report.ok


class TestPicklability:
    def test_picklable_spec_passes(self):
        assert check_picklable((1, "two", frozenset({3})), "tuple") == []

    def test_unpicklable_object_rejected_as_c06(self):
        findings = check_picklable(lambda: None, "lambda")
        assert [f.code for f in findings] == ["REPROC06"]
        assert "pickle round-trip failed" in findings[0].message


class TestAcceptanceFixture:
    def test_doubly_malformed_automaton_names_both_violations(self):
        """The ISSUE acceptance criterion: overlapping input/output
        signature AND a task covering no action -> BOTH named."""
        bad = FunctionalAutomaton(
            name="doubly-bad",
            signature=Signature(
                inputs=FiniteActionSet([IN]),
                outputs=FiniteActionSet([IN, OUT]),  # overlap: C01
            ),
            initial=0,
            transition=lambda s, a: min(s + 1, 2),
            enabled_fn=lambda s: [OUT] if s < 2 else [],
            task_names=("main", "ghost"),  # ghost covers nothing: C03
            task_assignment=lambda a: "main",
        )
        report = check_automaton_contract(bad, name="doubly-bad")
        assert codes_of(report) == ["REPROC01", "REPROC03"]
        messages = " | ".join(f.message for f in report.findings)
        assert "disjoint" in messages
        assert "'ghost'" in messages


class TestRepositorySubjects:
    def test_default_subjects_cover_the_zoo_and_system_automata(self):
        names = [s.name for s in default_contract_subjects()]
        assert any(n.startswith("detector:") for n in names)
        assert any("ChannelAutomaton" in n for n in names)
        assert any("CrashAutomaton" in n for n in names)
        assert any(n.startswith("algorithm:") for n in names)
        assert len(names) == len(set(names))

    def test_default_spec_subjects_are_picklable(self):
        for name, obj in default_spec_subjects():
            assert check_picklable(obj, name) == [], name

    def test_whole_repository_passes_the_contract(self):
        report = run_contract_checks()
        assert report.ok, [f.format_text() for f in report.findings]
        assert report.subjects_checked >= 25

    def test_subject_dataclass_roundtrip(self):
        subject = ContractSubject(name="x", automaton=well_formed_machine())
        report = check_automaton_contract(
            subject.automaton,
            name=subject.name,
            extra_inputs=subject.extra_inputs,
            max_states=subject.max_states,
            require_task_determinism=subject.require_task_determinism,
        )
        assert report.ok
