"""repro.api: the stable facade and the lazy top-level re-exports."""

from __future__ import annotations

import pytest

import repro
import repro.api


class TestFacade:
    def test_every_name_resolves(self):
        for name in repro.api.__all__:
            assert getattr(repro.api, name) is not None, name

    def test_all_sorted_within_sections(self):
        # __all__ is the supported surface; it must at least be unique.
        assert len(set(repro.api.__all__)) == len(repro.api.__all__)

    def test_top_level_lazy_reexports(self):
        for name in repro.api.__all__:
            assert getattr(repro, name) is getattr(repro.api, name), name

    def test_top_level_dir_includes_facade(self):
        listing = dir(repro)
        assert "ExperimentSpec" in listing
        assert "BatchRunner" in listing
        assert "resolve_detector" in listing

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.does_not_exist

    def test_one_stop_experiment(self):
        spec = repro.ExperimentSpec(
            algorithm=repro.omega_consensus_algorithm,
            detector="omega",
            locations=(0, 1, 2),
            crashes={0: 10},
            f=1,
            max_steps=30_000,
        )
        batch = repro.BatchRunner(jobs=1).run(
            repro.sweep(spec, fault_patterns=[{}, {0: 5}]),
            raise_on_error=True,
        )
        assert all(r.solved for r in batch)


class TestDetectorNames:
    def test_detector_names_cover_zoo(self):
        names = repro.detector_names()
        assert "Omega" in names and "omega-k" in names

    def test_aliases_resolve(self):
        locs = (0, 1, 2)
        assert repro.resolve_detector("omega", locs).__class__.__name__ == "Omega"
        assert repro.resolve_detector("eventually-perfect", locs).__class__.__name__ == "EventuallyPerfect"
        assert repro.resolve_detector("Omega^2", locs).__class__.__name__ == "OmegaK"

    def test_unknown_name_error_lists_names(self):
        with pytest.raises(ValueError) as exc:
            repro.resolve_detector("marabout-9000", (0, 1))
        message = str(exc.value)
        assert "marabout-9000" in message
        assert "omega-k" in message
