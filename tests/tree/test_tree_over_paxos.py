"""The Section 8–9 analysis is algorithm-agnostic: run it over the
Paxos-style Omega-consensus algorithm and the same structure emerges —
bivalent root, hooks, live critical locations.

A pleasing corollary: with a stable Omega sequence (leader 0 forever),
every hook's critical location is the leader — the decision pivots
exactly where Omega concentrated the detector's information.
"""

import pytest

from repro.algorithms.consensus_omega import (
    OmegaConsensusProcess,
    omega_consensus_algorithm,
)
from repro.detectors.omega import omega_output
from repro.ioa.composition import Composition
from repro.system.channel import make_channels
from repro.system.environment import ConsensusEnvironment
from repro.tree.hooks import HookSearch
from repro.tree.tagged_tree import TaggedTreeGraph
from repro.tree.valence import (
    ValenceAnalysis,
    decision_extractor_for_processes,
)

LOCS = (0, 1)


@pytest.fixture(scope="module")
def paxos_tree():
    algorithm = omega_consensus_algorithm(LOCS)
    composition = Composition(
        list(algorithm.automata())
        + make_channels(LOCS)
        + [ConsensusEnvironment(LOCS)],
        name="paxos-tree",
    )
    td = [omega_output(i, 0) for _ in range(5) for i in LOCS]
    graph = TaggedTreeGraph(composition, td, max_vertices=400_000)
    valence = ValenceAnalysis(
        graph,
        decision_extractor_for_processes(
            composition,
            algorithm.automata(),
            OmegaConsensusProcess.decision,
        ),
    )
    return graph, valence


class TestPaxosTree:
    def test_finite_and_complete(self, paxos_tree):
        graph, valence = paxos_tree
        assert graph.num_vertices < 400_000
        assert not valence.undetermined_vertices()

    def test_root_bivalent(self, paxos_tree):
        _graph, valence = paxos_tree
        assert valence.root_valence().bivalent

    def test_theorem_59_holds(self, paxos_tree):
        graph, valence = paxos_tree
        report = HookSearch(graph, valence, LOCS).report(max_hooks=50)
        assert report.num_hooks > 0
        assert report.theorem59_holds

    def test_critical_location_is_the_omega_leader(self, paxos_tree):
        """With leader 0 stable in t_D, the decision can only pivot at
        the leader: only its actions (starting a ballot, receiving
        its quorum) flip the outcome."""
        graph, valence = paxos_tree
        report = HookSearch(graph, valence, LOCS).report()
        assert report.critical_locations == {0}
