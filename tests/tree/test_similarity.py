"""Tests for the similar-modulo-i relation (Section 8.3, Lemma 39)."""

import pytest

from repro.algorithms.consensus_tree import tree_consensus_algorithm
from repro.ioa.composition import Composition
from repro.system.channel import make_channels
from repro.system.environment import ConsensusEnvironment
from repro.tree.similarity import SimilarityChecker, verify_lemma39
from repro.tree.tagged_tree import TaggedTreeGraph
from tests.tree.conftest import LOCS, one_crash_td


@pytest.fixture(scope="module")
def setup():
    algorithm = tree_consensus_algorithm(LOCS)
    channels = make_channels(LOCS)
    env = ConsensusEnvironment(LOCS)
    composition = Composition(
        list(algorithm.automata()) + channels + [env], name="simtree"
    )
    graph = TaggedTreeGraph(
        composition, one_crash_td(victim=1), max_vertices=300_000
    )
    checker = SimilarityChecker(
        graph,
        processes=algorithm.automata(),
        channels=channels,
        environment=env,
    )
    return graph, checker


class TestRelationBasics:
    def test_reflexive_on_crashed_vertices(self, setup):
        graph, checker = setup
        crashed = [
            v for v in graph.vertices() if checker.crashed_at(v, 1)
        ]
        assert crashed, "the t_D crashes location 1, so such vertices exist"
        for v in crashed[:50]:
            assert checker.similar_modulo(1, v, v)

    def test_requires_crash(self, setup):
        graph, checker = setup
        root = graph.root
        assert not checker.crashed_at(root, 1)
        assert not checker.similar_modulo(1, root, root)

    def test_fd_tags_must_agree(self, setup):
        graph, checker = setup
        crashed = [
            v for v in graph.vertices() if checker.crashed_at(v, 1)
        ]
        by_index = {}
        for v in crashed:
            by_index.setdefault(v.fd_index, v)
        indices = sorted(by_index)
        if len(indices) >= 2:
            v1 = by_index[indices[0]]
            v2 = by_index[indices[1]]
            assert not checker.similar_modulo(1, v1, v2)

    def test_relation_not_symmetric_in_general(self, setup):
        """Condition 4 (queue-prefix) is directional; verify the checker
        implements it asymmetrically by finding vertices where channel
        queues from the crashed location differ."""
        graph, checker = setup
        crashed = [
            v for v in graph.vertices() if checker.crashed_at(v, 1)
        ]
        found_one_way = False
        for v1 in crashed[:200]:
            for v2 in crashed[:200]:
                forward = checker.similar_modulo(1, v1, v2)
                backward = checker.similar_modulo(1, v2, v1)
                if forward != backward:
                    found_one_way = True
                    break
            if found_one_way:
                break
        # Not guaranteed for every t_D, but for this one the crashed
        # location had a pending message, so asymmetric pairs exist.
        assert found_one_way


class TestLemma39:
    def test_children_preserve_similarity(self, setup):
        _graph, checker = setup
        report = verify_lemma39(checker, i=1, max_pairs=800)
        assert report.pairs_checked > 0
        assert report.holds, report.violations[:3]
