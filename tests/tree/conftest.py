"""Shared builders for tree-analysis tests (Sections 8–9)."""

import pytest

from repro.algorithms.consensus_tree import (
    TreeConsensusProcess,
    tree_consensus_algorithm,
)
from repro.detectors.perfect import perfect_output
from repro.ioa.composition import Composition
from repro.system.channel import make_channels
from repro.system.environment import ConsensusEnvironment
from repro.system.fault_pattern import crash_action
from repro.tree.tagged_tree import TaggedTreeGraph
from repro.tree.valence import (
    ValenceAnalysis,
    decision_extractor_for_processes,
)

LOCS = (0, 1)


def build_tree_system(locations=LOCS):
    """The Section 8 system S: algorithm + channels + environment.

    Crash events and FD outputs are driven by t_D, so neither the crash
    automaton nor a detector automaton is included.
    """
    algorithm = tree_consensus_algorithm(locations)
    composition = Composition(
        list(algorithm.automata())
        + make_channels(locations)
        + [ConsensusEnvironment(locations)],
        name="tree-system",
    )
    return algorithm, composition


def crash_free_td(rounds=8, locations=LOCS):
    """A T_P sequence: everybody live, nobody ever suspected."""
    return [
        perfect_output(i, ()) for _ in range(rounds) for i in locations
    ]


def one_crash_td(victim=1, locations=LOCS, pre_rounds=1, post_rounds=6):
    """A T_P sequence crashing ``victim``: accurate suspicion afterwards."""
    live = [i for i in locations if i != victim]
    t = [perfect_output(i, ()) for _ in range(pre_rounds) for i in locations]
    t.append(crash_action(victim))
    t += [
        perfect_output(i, (victim,))
        for _ in range(post_rounds)
        for i in live
    ]
    return t


@pytest.fixture(scope="module")
def tree_setup():
    algorithm, composition = build_tree_system()
    graph = TaggedTreeGraph(composition, crash_free_td(), max_vertices=50_000)
    valence = ValenceAnalysis(
        graph,
        decision_extractor_for_processes(
            composition, algorithm.automata(), TreeConsensusProcess.decision
        ),
    )
    return algorithm, composition, graph, valence
