"""Tests for valence (Section 9.5)."""

from repro.tree.labels import FD_LABEL
from repro.tree.tagged_tree import TaggedTreeGraph
from repro.tree.valence import (
    Valence,
    ValenceAnalysis,
    decision_extractor_for_processes,
)
from repro.algorithms.consensus_tree import TreeConsensusProcess
from tests.tree.conftest import build_tree_system, one_crash_td


class TestValenceDataclass:
    def test_bivalent(self):
        v = Valence(frozenset({0, 1}))
        assert v.bivalent and not v.univalent
        assert v.value is None
        assert v.describe() == "bivalent"

    def test_univalent(self):
        v = Valence(frozenset({1}))
        assert v.univalent
        assert v.value == 1
        assert v.describe() == "1-valent"

    def test_undetermined(self):
        v = Valence(frozenset())
        assert v.undetermined
        assert v.describe() == "undetermined"


class TestRootBivalence:
    def test_proposition_51(self, tree_setup):
        """The root is bivalent: all-0 proposals reach a 0 decision,
        all-1 proposals reach a 1 decision."""
        *_rest, valence = tree_setup
        assert valence.root_valence().bivalent

    def test_no_undetermined_vertices(self, tree_setup):
        """Every vertex reaches a decision: t_D is long enough, so the
        analysis is complete (Proposition 48's finite counterpart)."""
        *_rest, valence = tree_setup
        assert not valence.undetermined_vertices()

    def test_counts_sum_to_vertices(self, tree_setup):
        *_rest, graph, valence = tree_setup
        counts = valence.counts()
        assert sum(counts.values()) == graph.num_vertices


class TestValencePropagation:
    def test_lemma_52_univalence_is_sticky(self, tree_setup):
        """Descendants of a v-valent vertex are v-valent."""
        *_rest, graph, valence = tree_setup
        checked = 0
        for vertex in valence.univalent_vertices():
            v = valence.valence(vertex).value
            for successor in graph.successors(vertex):
                succ = valence.valence(successor)
                assert succ.univalent and succ.value == v
                checked += 1
        assert checked > 0

    def test_bivalent_vertices_have_no_decision(self, tree_setup):
        """Proposition 50: a bivalent vertex's execution has no decision
        value (no process has decided in its configuration)."""
        algorithm, composition, graph, valence = tree_setup
        extractor = decision_extractor_for_processes(
            composition,
            algorithm.automata(),
            TreeConsensusProcess.decision,
        )
        for vertex in valence.bivalent_vertices():
            assert extractor(vertex.config) == []

    def test_proposals_drive_valence(self, tree_setup):
        """After both locations propose 1, the vertex is 1-valent."""
        *_rest, graph, valence = tree_setup
        vertex, _ = graph.walk(["envC:env[0]:env1", "envC:env[1]:env1"])
        v = valence.valence(vertex)
        assert v.univalent and v.value == 1

    def test_opposite_proposals_univalent_when_crash_free(self, tree_setup):
        """In a crash-free t_D the perfect detector never suspects, so
        the round-1 coordinator's value always prevails: split proposals
        yield a 0-valent vertex (coordinator 0 proposed 0)."""
        *_rest, graph, valence = tree_setup
        vertex, _ = graph.walk(["envC:env[0]:env0", "envC:env[1]:env1"])
        v = valence.valence(vertex)
        assert v.univalent and v.value == 0

    def test_opposite_proposals_bivalent_when_coordinator_may_crash(self):
        """With crash_0 in t_D, the decision hinges on whether process
        0's round-1 estimate escapes before the crash edge is consumed:
        the split-proposal vertex is genuinely bivalent (the FLP-style
        schedule dependence that hooks formalize)."""
        algorithm, composition = build_tree_system()
        graph = TaggedTreeGraph(
            composition, one_crash_td(victim=0), max_vertices=300_000
        )
        valence = ValenceAnalysis(
            graph,
            decision_extractor_for_processes(
                composition,
                algorithm.automata(),
                TreeConsensusProcess.decision,
            ),
        )
        vertex, _ = graph.walk(["envC:env[0]:env0", "envC:env[1]:env1"])
        assert valence.valence(vertex).bivalent


class TestValenceWithCrashes:
    def test_crash_in_td_analysis_completes(self):
        algorithm, composition = build_tree_system()
        graph = TaggedTreeGraph(
            composition, one_crash_td(victim=1), max_vertices=100_000
        )
        valence = ValenceAnalysis(
            graph,
            decision_extractor_for_processes(
                composition,
                algorithm.automata(),
                TreeConsensusProcess.decision,
            ),
        )
        assert valence.root_valence().bivalent
        assert not valence.undetermined_vertices()
