"""Tests for hooks and critical locations (Section 9.6, Theorem 59)."""

import pytest

from repro.algorithms.consensus_tree import TreeConsensusProcess
from repro.tree.hooks import HookSearch, find_hooks
from repro.tree.tagged_tree import TaggedTreeGraph
from repro.tree.valence import (
    ValenceAnalysis,
    decision_extractor_for_processes,
)
from tests.tree.conftest import (
    LOCS,
    build_tree_system,
    crash_free_td,
    one_crash_td,
)


def analyze(td):
    algorithm, composition = build_tree_system()
    graph = TaggedTreeGraph(composition, td, max_vertices=200_000)
    valence = ValenceAnalysis(
        graph,
        decision_extractor_for_processes(
            composition, algorithm.automata(), TreeConsensusProcess.decision
        ),
    )
    return graph, valence


class TestHookExistence:
    """Lemma 55: R^{t_D} contains a hook."""

    def test_hooks_exist_crash_free(self, tree_setup):
        *_rest, graph, valence = tree_setup
        hooks = find_hooks(graph, valence, max_hooks=5)
        assert hooks

    def test_hooks_exist_with_crash(self):
        graph, valence = analyze(one_crash_td(victim=1))
        assert find_hooks(graph, valence, max_hooks=5)

    def test_hook_definition_satisfied(self, tree_setup):
        *_rest, graph, valence = tree_setup
        for hook in find_hooks(graph, valence, max_hooks=10):
            assert valence.valence(hook.node).bivalent
            assert hook.l_child_valence.univalent
            assert hook.rl_child_valence.univalent
            assert (
                hook.l_child_valence.value
                == 1 - hook.rl_child_valence.value
            )

    def test_max_hooks_respected(self, tree_setup):
        *_rest, graph, valence = tree_setup
        assert len(find_hooks(graph, valence, max_hooks=3)) == 3


class TestTheorem59Properties:
    def test_lemma_56_nonbottom_tags(self, tree_setup):
        *_rest, graph, valence = tree_setup
        for hook in find_hooks(graph, valence, max_hooks=25):
            assert hook.satisfies_lemma56()

    def test_lemma_57_same_location(self, tree_setup):
        *_rest, graph, valence = tree_setup
        for hook in find_hooks(graph, valence, max_hooks=25):
            assert hook.satisfies_lemma57()
            assert hook.critical_location is not None

    def test_lemma_58_critical_location_live_crash_free(self, tree_setup):
        *_rest, graph, valence = tree_setup
        report = HookSearch(graph, valence, LOCS).report(max_hooks=25)
        assert report.theorem59_holds
        assert report.critical_locations <= set(LOCS)

    @pytest.mark.parametrize("victim", [0, 1])
    def test_lemma_58_with_crash_in_td(self, victim):
        """The faulty location can never be critical: crash it in t_D and
        every hook's critical location is the other one."""
        graph, valence = analyze(one_crash_td(victim=victim))
        report = HookSearch(graph, valence, LOCS).report()
        assert report.num_hooks > 0
        assert report.theorem59_holds
        live = {i for i in LOCS if i != victim}
        assert report.critical_locations <= live
