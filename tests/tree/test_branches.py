"""Tests for fair branches (Lemma 36, Proposition 48)."""

import pytest

from repro.system.fault_pattern import is_crash
from repro.tree.branches import (
    branch_is_settled,
    fair_branch_execution,
    round_robin_labels,
)


class TestRoundRobinLabels:
    def test_every_label_per_cycle(self, tree_setup):
        *_rest, graph, _valence = tree_setup
        labels = round_robin_labels(graph, 3)
        for label in graph.labels:
            assert labels.count(label) == 3


class TestLemma36:
    def test_fair_branch_consumes_td(self, tree_setup):
        """exe(b)|_{I-hat ∪ O_D} = t_D on the stabilized fair branch."""
        *_rest, graph, _valence = tree_setup
        execution, vertex, _cycles = fair_branch_execution(graph)
        consumed = [
            a
            for a in execution.actions
            if is_crash(a) or a.name.startswith("fd-")
        ]
        assert tuple(consumed) == graph.fd_sequence
        assert vertex.fd_index == len(graph.fd_sequence)

    def test_fair_branch_is_an_execution(self, tree_setup):
        _alg, composition, graph, _valence = tree_setup
        execution, _vertex, _cycles = fair_branch_execution(graph)
        assert execution.is_execution_of(composition)

    def test_branch_settles(self, tree_setup):
        *_rest, graph, _valence = tree_setup
        _execution, vertex, cycles = fair_branch_execution(graph)
        assert branch_is_settled(graph, vertex)
        assert cycles < 200  # stabilized well before the bound

    def test_settled_vertex_only_bottom_edges(self, tree_setup):
        *_rest, graph, _valence = tree_setup
        _execution, vertex, _cycles = fair_branch_execution(graph)
        for label in graph.labels:
            action, target = graph.child(vertex, label)
            assert action is None
            assert target == vertex


class TestProposition48:
    def test_exactly_one_decision_value(self, tree_setup):
        """Each fair branch of the consensus system decides exactly one
        value."""
        *_rest, graph, _valence = tree_setup
        execution, _vertex, _cycles = fair_branch_execution(graph)
        decisions = {
            a.payload[0]
            for a in execution.actions
            if a.name == "decide"
        }
        assert len(decisions) == 1

    def test_fair_branch_valence_matches_decision(self, tree_setup):
        """The settled vertex is univalent on the branch's decision."""
        *_rest, graph, valence = tree_setup
        execution, vertex, _cycles = fair_branch_execution(graph)
        decision = next(
            a.payload[0]
            for a in execution.actions
            if a.name == "decide"
        )
        v = valence.valence(vertex)
        assert v.univalent and v.value == decision
