"""Tests for the untagged task tree (Section 8.1)."""

import pytest

from repro.tree.task_tree import TaskTree


class TestTaskTree:
    def setup_method(self):
        self.tree = TaskTree(("FD", "Proc0", "Proc1"))

    def test_distinct_labels_required(self):
        with pytest.raises(ValueError):
            TaskTree(("a", "a"))

    def test_root_and_children(self):
        root = self.tree.root()
        assert root == ()
        children = self.tree.children(root)
        assert len(children) == 3
        assert ("FD",) in children

    def test_child_and_parent(self):
        node = self.tree.child(self.tree.root(), "FD")
        assert self.tree.parent(node) == self.tree.root()
        with pytest.raises(KeyError):
            self.tree.child(node, "nope")
        with pytest.raises(ValueError):
            self.tree.parent(self.tree.root())

    def test_depth(self):
        node = self.tree.walk(["FD", "Proc0"])
        assert self.tree.depth(node) == 2

    def test_descendant(self):
        anc = ("FD",)
        desc = ("FD", "Proc0", "Proc1")
        assert self.tree.is_descendant(desc, anc)
        assert self.tree.is_descendant(anc, anc)
        assert not self.tree.is_descendant(anc, desc)

    def test_counting(self):
        assert self.tree.count_at_depth(0) == 1
        assert self.tree.count_at_depth(2) == 9
        assert len(list(self.tree.nodes_at_depth(2))) == 9

    def test_subtree_size(self):
        # 1 + 3 + 9 = 13
        assert self.tree.subtree_size(2) == 13
        single = TaskTree(("only",))
        assert single.subtree_size(4) == 5

    def test_walk(self):
        assert self.tree.walk(["Proc1", "FD"]) == ("Proc1", "FD")
