"""Tests for the tagged tree R^{t_D} (Section 8.2–8.3)."""

import pytest

from repro.detectors.perfect import perfect_output
from repro.tree.labels import FD_LABEL, tree_labels
from repro.tree.tagged_tree import TaggedTreeGraph, TreeVertex
from tests.tree.conftest import (
    LOCS,
    build_tree_system,
    crash_free_td,
    one_crash_td,
)


class TestConstruction:
    def test_labels_are_fd_plus_tasks(self, tree_setup):
        _alg, composition, graph, _valence = tree_setup
        labels = tree_labels(composition)
        assert labels[0] == FD_LABEL
        assert set(labels[1:]) == set(composition.tasks())
        assert graph.labels == labels

    def test_root_tags(self, tree_setup):
        _alg, composition, graph, _valence = tree_setup
        assert graph.root.config == composition.initial_state()
        assert graph.root.fd_index == 0
        assert graph.fd_suffix(graph.root) == graph.fd_sequence

    def test_finite_quotient(self, tree_setup):
        *_rest, graph, _valence = tree_setup
        assert 0 < graph.num_vertices < 50_000

    def test_vertex_bound_enforced(self):
        _algorithm, composition = build_tree_system()
        with pytest.raises(RuntimeError, match="exceeded"):
            TaggedTreeGraph(composition, crash_free_td(), max_vertices=10)


class TestEdges:
    def test_fd_edge_consumes_sequence(self, tree_setup):
        *_rest, graph, _valence = tree_setup
        action, child = graph.child(graph.root, FD_LABEL)
        assert action == graph.fd_sequence[0]
        assert child.fd_index == 1

    def test_fd_edge_bottom_when_exhausted(self):
        _algorithm, composition = build_tree_system()
        graph = TaggedTreeGraph(composition, [], max_vertices=50_000)
        action, child = graph.child(graph.root, FD_LABEL)
        assert action is None
        assert child == graph.root  # Proposition 30: same tags

    def test_disabled_task_edge_is_bottom(self, tree_setup):
        *_rest, graph, _valence = tree_setup
        # No messages in transit initially: channel tasks are disabled.
        action, child = graph.child(graph.root, "chan[0->1]:main")
        assert action is None
        assert child == graph.root

    def test_env_edges_enabled_at_root(self, tree_setup):
        _alg, _comp, graph, _valence = tree_setup
        action, child = graph.child(graph.root, "envC:env[0]:env1")
        assert action is not None
        assert action.name == "propose"
        assert action.payload == (1,)
        assert child != graph.root

    def test_walk_matches_edges(self, tree_setup):
        *_rest, graph, _valence = tree_setup
        vertex, actions = graph.walk([FD_LABEL, FD_LABEL, "envC:env[0]:env0"])
        assert vertex.fd_index == 2
        assert actions[2].name == "propose"

    def test_successors_exclude_bottom(self, tree_setup):
        *_rest, graph, _valence = tree_setup
        for successor in graph.successors(graph.root):
            assert successor in graph.edges


class TestLemma33:
    """Equal tags => equal child tags (the quotient is well defined)."""

    def test_quotient_consistency(self, tree_setup):
        *_rest, graph, _valence = tree_setup
        # Reaching the same vertex along different walks yields the same
        # outgoing edges (they are stored once per vertex by construction;
        # verify a concrete diamond: env0 then FD vs FD then env0).
        v1, _ = graph.walk(["envC:env[0]:env0", FD_LABEL])
        v2, _ = graph.walk([FD_LABEL, "envC:env[0]:env0"])
        assert v1 == v2
        assert graph.edges[v1] == graph.edges[v2]


class TestTheorem41:
    """Trees of FD sequences sharing a prefix agree up to that depth."""

    def test_bounded_views_agree(self):
        _algorithm, composition = build_tree_system()
        t1 = crash_free_td(rounds=6)
        t2 = list(t1[:2]) + one_crash_td(victim=1, pre_rounds=0)
        g1 = TaggedTreeGraph(composition, t1, max_vertices=100_000)
        g2 = TaggedTreeGraph(composition, t2, max_vertices=100_000)
        # Common prefix has length 2: views at depth 2 must be equal.
        assert g1.bounded_view(2) == g2.bounded_view(2)

    def test_views_diverge_after_prefix(self):
        _algorithm, composition = build_tree_system()
        t1 = crash_free_td(rounds=6)
        t2 = list(t1[:2]) + one_crash_td(victim=1, pre_rounds=0)
        g1 = TaggedTreeGraph(composition, t1, max_vertices=100_000)
        g2 = TaggedTreeGraph(composition, t2, max_vertices=100_000)
        assert g1.bounded_view(3) != g2.bounded_view(3)
