"""Tests for exe(N) and the walk/execution correspondence
(Propositions 29–32, Section 8.3)."""

import pytest

from repro.tree.labels import FD_LABEL
from repro.system.fault_pattern import is_crash


def fd_events(graph, execution):
    """exe(N) projected on I-hat ∪ O_D (crash + detector events)."""
    return [
        a
        for a in execution.actions
        if is_crash(a) or a.name.startswith("fd-")
    ]


WALKS = [
    [FD_LABEL] * 3,
    ["envC:env[0]:env1", FD_LABEL, "treecons[0]:main"],
    [
        "envC:env[0]:env0",
        "envC:env[1]:env1",
        "treecons[0]:main",
        FD_LABEL,
        "treecons[0]:main",
        "chan[0->1]:main",
        FD_LABEL,
    ],
    # A walk with bottom edges (channel task disabled at the root).
    ["chan[0->1]:main", "chan[1->0]:main", FD_LABEL],
]


class TestProposition29:
    @pytest.mark.parametrize("path", WALKS, ids=["fd3", "mix3", "mix7", "bottoms"])
    def test_exe_is_an_execution_of_the_system(self, tree_setup, path):
        _alg, composition, graph, _valence = tree_setup
        execution, _vertex = graph.execution_for_walk(path)
        assert execution.is_execution_of(composition)

    @pytest.mark.parametrize("path", WALKS, ids=["fd3", "mix3", "mix7", "bottoms"])
    def test_exe_events_plus_tag_equal_td(self, tree_setup, path):
        """exe(N)|_{I-hat ∪ O_D} · t_N = t_D."""
        _alg, _comp, graph, _valence = tree_setup
        execution, vertex = graph.execution_for_walk(path)
        consumed = fd_events(graph, execution)
        assert tuple(consumed) + graph.fd_suffix(vertex) == graph.fd_sequence

    def test_exe_ends_in_config_tag(self, tree_setup):
        _alg, _comp, graph, _valence = tree_setup
        execution, vertex = graph.execution_for_walk(WALKS[1])
        assert execution.final_state == vertex.config


class TestProposition30And31:
    def test_bottom_edge_leaves_execution_unchanged(self, tree_setup):
        _alg, _comp, graph, _valence = tree_setup
        base, _ = graph.execution_for_walk([FD_LABEL])
        extended, _ = graph.execution_for_walk(
            [FD_LABEL, "chan[0->1]:main"]  # disabled: bottom edge
        )
        assert extended == base

    def test_nonbottom_edge_extends_by_one_step(self, tree_setup):
        _alg, _comp, graph, _valence = tree_setup
        base, _ = graph.execution_for_walk([FD_LABEL])
        extended, vertex = graph.execution_for_walk(
            [FD_LABEL, "envC:env[0]:env1"]
        )
        assert len(extended) == len(base) + 1
        assert extended.prefix(len(base)) == base
        assert extended.final_state == vertex.config


class TestProposition32:
    def test_ancestor_execution_is_prefix(self, tree_setup):
        """exe(N) is a prefix of exe(N-hat) for descendants N-hat."""
        _alg, _comp, graph, _valence = tree_setup
        long_path = WALKS[2]
        full, _ = graph.execution_for_walk(long_path)
        for cut in range(len(long_path)):
            partial, _ = graph.execution_for_walk(long_path[:cut])
            assert partial == full.prefix(len(partial))
