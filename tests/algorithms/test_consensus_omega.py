"""Tests for Paxos-style consensus over Omega (f < n/2) — Section 9."""

import pytest

from repro.algorithms.consensus_omega import (
    OmegaConsensusProcess,
    omega_consensus_algorithm,
)
from repro.analysis.checkers import run_consensus_experiment
from repro.detectors.omega import Omega
from repro.ioa.scheduler import RandomPolicy
from repro.system.fault_pattern import FaultPattern

LOCS = (0, 1, 2)


def run(proposals, crashes, f=1, locations=LOCS, policy=None, steps=8000):
    return run_consensus_experiment(
        omega_consensus_algorithm(locations),
        Omega(locations),
        proposals=proposals,
        fault_pattern=FaultPattern(crashes, locations),
        f=f,
        max_steps=steps,
        policy=policy,
    )


class TestCrashFree:
    def test_decides_and_agrees(self):
        result = run({0: 1, 1: 0, 2: 0}, {})
        assert result.all_live_decided
        assert len(set(result.decisions.values())) == 1
        assert result.solved

    def test_decision_is_a_proposal(self):
        result = run({0: 1, 1: 1, 2: 0}, {})
        assert set(result.decisions.values()) <= {0, 1}
        assert result.consensus_check.ok


class TestWithCrashes:
    @pytest.mark.parametrize(
        "crashes",
        [{0: 5}, {1: 10}, {2: 40}],
        ids=["leader-crash", "c1", "late-c2"],
    )
    def test_minority_crash_tolerated(self, crashes):
        result = run({0: 0, 1: 1, 2: 1}, crashes)
        assert result.all_live_decided
        assert result.solved, (
            result.fd_check.reasons,
            result.consensus_check.reasons,
        )

    def test_leader_crash_forces_new_ballot(self):
        """Crashing the initial Omega leader mid-protocol: the new leader
        must take over with a higher ballot and finish."""
        result = run({0: 0, 1: 1, 2: 1}, {0: 15})
        assert result.all_live_decided
        assert result.consensus_check.ok

    def test_five_locations_two_crashes(self):
        locations = (0, 1, 2, 3, 4)
        result = run(
            {0: 1, 1: 0, 2: 1, 3: 0, 4: 1},
            {0: 8, 1: 30},
            f=2,
            locations=locations,
            steps=20000,
        )
        assert result.all_live_decided
        assert result.consensus_check.ok


class TestSchedulingRobustness:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_schedules(self, seed):
        result = run(
            {0: 1, 1: 0, 2: 0},
            {0: 12},
            policy=RandomPolicy(seed=seed),
            steps=20000,
        )
        assert result.all_live_decided
        assert result.solved


class TestPaxosMechanics:
    def test_majority(self):
        assert OmegaConsensusProcess(0, LOCS).majority == 2
        assert OmegaConsensusProcess(0, (0, 1, 2, 3, 4)).majority == 3

    def test_no_attempt_without_leadership(self):
        from repro.system.environment import propose_action

        proc = OmegaConsensusProcess(0, LOCS)
        state = proc.apply(proc.initial_state(), propose_action(0, 1))
        _failed, core = state
        assert core.attempt is None

    def test_attempt_starts_on_leadership_and_value(self):
        from repro.detectors.omega import omega_output
        from repro.system.environment import propose_action

        proc = OmegaConsensusProcess(0, LOCS)
        state = proc.apply(proc.initial_state(), propose_action(0, 1))
        state = proc.apply(state, omega_output(0, 0))
        _failed, core = state
        assert core.attempt == (1, 0)
        assert core.phase == 1
        assert len(core.outbox) == 2  # phase-1a to the two peers

    def test_non_leader_does_not_start(self):
        from repro.detectors.omega import omega_output
        from repro.system.environment import propose_action

        proc = OmegaConsensusProcess(1, LOCS)
        state = proc.apply(proc.initial_state(), propose_action(1, 0))
        state = proc.apply(state, omega_output(1, 0))  # leader is 0
        _failed, core = state
        assert core.attempt is None
