"""End-to-end tests for the Section 10.1 reductions: the query-based
participant detector is representative for consensus."""

import pytest

from repro.algorithms.consensus_perfect import perfect_consensus_algorithm
from repro.algorithms.participant_consensus import (
    ConsensusFromParticipantProcess,
    ParticipantFromConsensusProcess,
    consensus_from_participant_algorithm,
    participant_from_consensus_algorithm,
)
from repro.detectors.participant import (
    ParticipantDetectorAutomaton,
    query_action,
)
from repro.detectors.perfect import PerfectAutomaton
from repro.ioa.composition import Composition
from repro.ioa.scheduler import Injection, Scheduler
from repro.problems.consensus import ConsensusProblem
from repro.system.channel import make_channels
from repro.system.crash import CrashAutomaton
from repro.system.environment import ScriptedConsensusEnvironment
from repro.system.fault_pattern import FaultPattern

LOCS = (0, 1, 2)


class TestConsensusFromParticipant:
    """Direction 1: solve consensus using the participant detector."""

    def run_system(self, proposals, fault_pattern, steps=2500):
        algorithm = consensus_from_participant_algorithm(LOCS)
        system = Composition(
            list(algorithm.automata())
            + make_channels(LOCS)
            + [
                ParticipantDetectorAutomaton(LOCS),
                ScriptedConsensusEnvironment(proposals),
                CrashAutomaton(LOCS),
            ],
            name="cons-from-participant",
        )
        execution = Scheduler().run(
            system, max_steps=steps, injections=fault_pattern.injections()
        )
        return list(execution.actions)

    def test_crash_free_consensus(self):
        events = self.run_system({0: 1, 1: 0, 2: 0}, FaultPattern({}, LOCS))
        problem = ConsensusProblem(LOCS, f=0)
        t = problem.project_events(events)
        assert problem.check_conditional(t), t

    def test_decision_is_chosen_participants_value(self):
        events = self.run_system({0: 1, 1: 0, 2: 0}, FaultPattern({}, LOCS))
        responses = [a for a in events if a.name == "fd-response"]
        decisions = {a.payload[0] for a in events if a.name == "decide"}
        assert responses
        chosen = responses[0].payload[0]
        proposals = {0: 1, 1: 0, 2: 0}
        assert decisions == {proposals[chosen]}

    def test_queries_follow_broadcast(self):
        """The algorithm's safety hinges on querying only after the
        proposal broadcast: check the event order."""
        events = self.run_system({0: 1, 1: 0, 2: 1}, FaultPattern({}, LOCS))
        for i in LOCS:
            query_idx = next(
                k
                for k, a in enumerate(events)
                if a.name == "fd-query" and a.location == i
            )
            sends = [
                k
                for k, a in enumerate(events)
                if a.name == "send" and a.location == i
            ]
            assert len(sends) == 2
            assert all(s < query_idx for s in sends)


class TestParticipantFromConsensus:
    """Direction 2: implement the participant detector from consensus."""

    def run_system(self, queried, fault_pattern, steps=4000):
        wrapper = participant_from_consensus_algorithm(LOCS)
        consensus = perfect_consensus_algorithm(LOCS, values=LOCS)
        components = (
            list(wrapper.automata())
            + list(consensus.automata())
            + make_channels(LOCS)
            + [PerfectAutomaton(LOCS), CrashAutomaton(LOCS)]
        )
        system = Composition(components, name="participant-from-cons")
        injections = [
            Injection(k, query_action(i)) for k, i in enumerate(queried)
        ] + fault_pattern.injections()
        execution = Scheduler().run(
            system, max_steps=steps, injections=injections
        )
        return list(execution.actions)

    def test_participation_guarantee(self):
        events = self.run_system((0, 1, 2), FaultPattern({}, LOCS))
        responses = [a for a in events if a.name == "fd-response"]
        assert len(responses) == 3
        assert ParticipantDetectorAutomaton.satisfies_participation(events)

    def test_chosen_id_actually_queried(self):
        events = self.run_system((2, 0, 1), FaultPattern({}, LOCS))
        responses = [a for a in events if a.name == "fd-response"]
        named = {a.payload[0] for a in responses}
        assert len(named) == 1
        queried_before = set()
        name = named.pop()
        for a in events:
            if a.name == "fd-query":
                queried_before.add(a.location)
            if a.name == "fd-response":
                assert name in queried_before
                break
