"""Tests for uniform reliable broadcast (spec + majority-echo algorithm)."""

import pytest

from repro.algorithms.urb import UrbProcess, urb_algorithm
from repro.ioa.composition import Composition
from repro.ioa.scheduler import Injection, Scheduler
from repro.problems.uniform_broadcast import (
    UniformBroadcastProblem,
    urb_bcast_action,
    urb_deliver_action,
)
from repro.system.channel import make_channels, receive_action
from repro.system.crash import CrashAutomaton
from repro.system.fault_pattern import FaultPattern, crash_action

LOCS = (0, 1, 2)


class TestUrbSpec:
    def setup_method(self):
        self.p = UniformBroadcastProblem(LOCS, f=1)

    def test_good_trace(self):
        t = [urb_bcast_action(0, "m")] + [
            urb_deliver_action(i, "m", 0) for i in LOCS
        ]
        assert self.p.check_conditional(t)

    def test_integrity_no_phantom(self):
        t = [urb_deliver_action(1, "ghost", 0)]
        assert not self.p.check_guarantees(t)

    def test_integrity_no_duplicates(self):
        t = [urb_bcast_action(0, "m"), urb_deliver_action(1, "m", 0),
             urb_deliver_action(1, "m", 0)]
        assert not self.p.check_guarantees(t)

    def test_validity(self):
        t = [urb_bcast_action(0, "m"),
             urb_deliver_action(1, "m", 0),
             urb_deliver_action(2, "m", 0)]
        result = self.p.check_guarantees(t)
        assert not result
        assert "validity" in result.reasons[0]

    def test_uniform_agreement_counts_crashed_deliverers(self):
        # Location 0 delivers then crashes; 1 never delivers: violation.
        t = [
            urb_bcast_action(0, "m"),
            urb_deliver_action(0, "m", 0),
            crash_action(0),
            urb_deliver_action(2, "m", 0),
        ]
        result = self.p.check_guarantees(t)
        assert not result
        assert "uniform agreement" in result.reasons[0]

    def test_crash_validity(self):
        t = [urb_bcast_action(0, "m"), crash_action(1),
             urb_deliver_action(1, "m", 0)]
        assert not self.p.check_guarantees(t)

    def test_assumptions(self):
        assert not self.p.check_assumptions(
            [urb_bcast_action(0, "m"), urb_bcast_action(0, "m")]
        )
        assert not self.p.check_assumptions(
            [crash_action(0), crash_action(1)]
        )


class TestUrbProcessMechanics:
    def setup_method(self):
        self.proc = UrbProcess(0, LOCS)

    def test_bcast_relays_and_self_echoes(self):
        state = self.proc.apply(
            self.proc.initial_state(), urb_bcast_action(0, "m")
        )
        _failed, core = state
        assert (0, "m") in core.relayed
        assert (0, "m", 0) in core.echoes
        assert len(core.outbox) == 2

    def test_first_hearing_relays_once(self):
        state = self.proc.apply(
            self.proc.initial_state(),
            receive_action(0, ("urb-echo", 1, "x"), 1),
        )
        _failed, core = state
        assert len(core.outbox) == 2
        # Hearing it again from another echoer adds no new sends.
        state = self.proc.apply(
            state, receive_action(0, ("urb-echo", 1, "x"), 2)
        )
        _failed, core = state
        assert len(core.outbox) == 2
        assert (1, "x", 2) in core.echoes

    def test_delivery_needs_majority(self):
        state = self.proc.apply(
            self.proc.initial_state(), urb_bcast_action(0, "m")
        )
        # Drain outbox: no delivery yet (1 echo of 2 needed).
        _failed, core = state
        while core.outbox:
            state = self.proc.apply(state, core.outbox[0])
            _failed, core = state
        assert list(self.proc.enabled_locally(state)) == []
        state = self.proc.apply(
            state, receive_action(0, ("urb-echo", 0, "m"), 1)
        )
        enabled = list(self.proc.enabled_locally(state))
        assert enabled == [urb_deliver_action(0, "m", 0)]

    def test_majority_value(self):
        assert UrbProcess(0, LOCS).majority == 2
        assert UrbProcess(0, (0, 1, 2, 3, 4)).majority == 3


class TestUrbEndToEnd:
    def run_urb(self, broadcasts, crashes, steps=8000):
        algorithm = urb_algorithm(LOCS)
        system = Composition(
            list(algorithm.automata())
            + make_channels(LOCS)
            + [CrashAutomaton(LOCS)],
            name="urb",
        )
        injections = [
            Injection(step, urb_bcast_action(src, msg))
            for (step, src, msg) in broadcasts
        ] + FaultPattern(crashes, LOCS).injections()
        execution = Scheduler().run(
            system, max_steps=steps, injections=injections
        )
        problem = UniformBroadcastProblem(LOCS, f=1)
        events = problem.project_events(list(execution.actions))
        return problem.check_conditional(events), events

    def test_single_broadcast(self):
        verdict, events = self.run_urb([(0, 0, "hello")], {})
        assert verdict, verdict.reasons
        deliveries = [a for a in events if a.name == "urb-deliver"]
        assert len(deliveries) == 3

    def test_multiple_broadcasters(self):
        verdict, events = self.run_urb(
            [(0, 0, "a"), (1, 1, "b"), (2, 2, "c")], {}
        )
        assert verdict, verdict.reasons
        deliveries = [a for a in events if a.name == "urb-deliver"]
        assert len(deliveries) == 9

    @pytest.mark.parametrize("crash_step", [3, 10, 30])
    def test_broadcaster_crash_sweep(self, crash_step):
        """The broadcaster crashes mid-protocol: either nobody delivers or
        everyone live does (uniformity)."""
        verdict, _events = self.run_urb(
            [(0, 0, "m")], {0: crash_step}
        )
        assert verdict, (crash_step, verdict.reasons)

    def test_not_a_bounded_problem(self):
        """URB outputs grow with the number of broadcasts: no output
        bound b exists (contrast with Section 7.3's bounded problems)."""
        counts = []
        for num in (1, 2, 4):
            _verdict, events = self.run_urb(
                [(k, k % 3, f"m{k}") for k in range(num)], {}
            )
            counts.append(
                sum(1 for a in events if a.name == "urb-deliver")
            )
        assert counts == [3, 6, 12]  # strictly growing: unbounded
