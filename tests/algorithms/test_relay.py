"""Tests for the generic detector relay (reduction engine)."""

import pytest

from repro.algorithms.relay import TransformRelayProcess, relay_algorithm
from repro.detectors.eventually_perfect import EventuallyPerfect
from repro.detectors.omega import Omega, omega_output
from repro.detectors.perfect import Perfect, perfect_output
from repro.ioa.actions import Action
from repro.system.fault_pattern import crash_action

LOCS = (0, 1, 2)


def leader_transform(action: Action) -> Action:
    suspects = set(action.payload[0])
    leader = min(i for i in LOCS if i not in suspects)
    return Action("fd-omega", action.location, (leader,))


class TestTransformRelayProcess:
    def setup_method(self):
        self.relay = TransformRelayProcess(
            0, Perfect(LOCS), Omega(LOCS), leader_transform
        )

    def test_input_enqueues_transformed(self):
        state = self.relay.apply(
            self.relay.initial_state(), perfect_output(0, (1,))
        )
        _failed, queue = state
        assert queue == (omega_output(0, 0),)

    def test_emission_dequeues(self):
        state = self.relay.apply(
            self.relay.initial_state(), perfect_output(0, (1,))
        )
        enabled = list(self.relay.enabled_locally(state))
        assert enabled == [omega_output(0, 0)]
        state = self.relay.apply(state, enabled[0])
        _failed, queue = state
        assert queue == ()

    def test_other_location_inputs_ignored(self):
        state = self.relay.apply(
            self.relay.initial_state(), perfect_output(1, (2,))
        )
        _failed, queue = state
        assert queue == ()

    def test_fifo_preserved(self):
        state = self.relay.initial_state()
        state = self.relay.apply(state, perfect_output(0, ()))
        state = self.relay.apply(state, perfect_output(0, (1,)))
        enabled = list(self.relay.enabled_locally(state))
        # First input (suspecting nobody) maps to leader 0.
        assert enabled == [omega_output(0, 0)]

    def test_crash_disables_emission(self):
        state = self.relay.apply(
            self.relay.initial_state(), perfect_output(0, ())
        )
        state = self.relay.apply(state, crash_action(0))
        assert list(self.relay.enabled_locally(state)) == []

    def test_cross_location_transform_rejected(self):
        bad = TransformRelayProcess(
            0,
            Perfect(LOCS),
            Omega(LOCS),
            lambda a: Action("fd-omega", 1, (0,)),
        )
        with pytest.raises(ValueError, match="across locations"):
            bad.apply(bad.initial_state(), perfect_output(0, ()))

    def test_none_transform_drops(self):
        dropping = TransformRelayProcess(
            0, Perfect(LOCS), Omega(LOCS), lambda a: None
        )
        state = dropping.apply(
            dropping.initial_state(), perfect_output(0, ())
        )
        _failed, queue = state
        assert queue == ()


class TestRelayAlgorithm:
    def test_one_relay_per_location(self):
        alg = relay_algorithm(
            Perfect(LOCS), Omega(LOCS), lambda i: leader_transform
        )
        assert alg.locations == LOCS
        for i in LOCS:
            assert alg[i].location == i
