"""Tests for the Chandra–Toueg completeness-boosting algorithm."""

import pytest

from repro.algorithms.completeness_boost import (
    BoostCompletenessProcess,
    completeness_boost_algorithm,
)
from repro.core.ordering import evaluate_reduction
from repro.detectors.perfect import Perfect
from repro.detectors.strong import Strong
from repro.detectors.weak import Quasi, Weak, weak_output
from repro.system.channel import receive_action
from repro.system.fault_pattern import FaultPattern, crash_action

LOCS = (0, 1, 2)


class TestProcessMechanics:
    def setup_method(self):
        self.proc = BoostCompletenessProcess(0, Weak(LOCS), Strong(LOCS))

    def test_source_input_merges_and_raises_flags(self):
        state = self.proc.apply(
            self.proc.initial_state(), weak_output(0, (2,))
        )
        _failed, core = state
        assert core.suspects == {2}
        assert core.want_emit and core.want_gossip

    def test_gossip_receive_merges_and_clears_sender(self):
        state = self.proc.apply(
            self.proc.initial_state(),
            receive_action(0, ("fd-gossip", (1, 2)), 1),
        )
        _failed, core = state
        # Sender 1 gave evidence of life; 2 stays suspected.
        assert core.suspects == {2}

    def test_emission_carries_merged_set(self):
        state = self.proc.apply(
            self.proc.initial_state(), weak_output(0, (2,))
        )
        enabled = list(self.proc.enabled_locally(state))
        assert len(enabled) == 1
        assert enabled[0].name == "fd-s"
        assert enabled[0].payload == ((2,),)

    def test_duties_alternate(self):
        """Emission and gossip reload must both recur even when source
        inputs keep re-raising both flags."""
        state = self.proc.apply(
            self.proc.initial_state(), weak_output(0, ())
        )
        performed = []
        for _ in range(8):
            enabled = list(self.proc.enabled_locally(state))
            if not enabled:
                break
            action = enabled[0]
            performed.append(action.name)
            state = self.proc.apply(state, action)
            # Re-raise the flags, as a continually-firing FD would.
            state = self.proc.apply(state, weak_output(0, ()))
        assert "fd-s" in performed
        assert "send" in performed

    def test_crash_silences(self):
        state = self.proc.apply(
            self.proc.initial_state(), weak_output(0, (1,))
        )
        state = self.proc.apply(state, crash_action(0))
        assert list(self.proc.enabled_locally(state)) == []


@pytest.mark.parametrize(
    "source_factory,target_factory",
    [(Weak, Strong), (Quasi, Perfect)],
    ids=["W->S", "Q->P"],
)
@pytest.mark.parametrize(
    "crashes",
    [{}, {2: 5}, {0: 10}, {0: 4, 1: 20}],
    ids=["none", "c2", "c0", "c0c1"],
)
class TestBoostReduction:
    def test_boost_upholds_implication(
        self, source_factory, target_factory, crashes
    ):
        source = source_factory(LOCS)
        target = target_factory(LOCS)
        algorithm = completeness_boost_algorithm(source, target)
        outcome = evaluate_reduction(
            source,
            target,
            algorithm,
            FaultPattern(crashes, LOCS),
            max_steps=1800,
            include_channels=True,
        )
        assert outcome.premise.ok, outcome.premise.reasons
        assert outcome.conclusion.ok, outcome.conclusion.reasons


class TestBoostIsNecessary:
    def test_plain_relabel_fails_strong_completeness(self):
        """Without the gossip, W's single-reporter traces do NOT satisfy
        S: the boost is doing real work."""
        from repro.ioa.scheduler import Scheduler

        weak = Weak(LOCS)
        execution = Scheduler().run(
            weak.automaton(),
            max_steps=150,
            injections=FaultPattern({2: 5}, LOCS).injections(),
        )
        relabelled = [
            a if a.name == "crash" else a.with_name("fd-s")
            for a in execution.actions
        ]
        assert not Strong(LOCS).check_limit(relabelled)
