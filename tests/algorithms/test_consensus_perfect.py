"""Tests for rotating-coordinator consensus over P (f < n)."""

import pytest

from repro.algorithms.consensus_perfect import (
    PerfectConsensusProcess,
    perfect_consensus_algorithm,
)
from repro.analysis.checkers import run_consensus_experiment
from repro.detectors.perfect import Perfect
from repro.ioa.scheduler import RandomPolicy
from repro.system.fault_pattern import FaultPattern

LOCS = (0, 1, 2)


def run(proposals, crashes, f=2, locations=LOCS, policy=None, steps=6000):
    return run_consensus_experiment(
        perfect_consensus_algorithm(locations),
        Perfect(locations),
        proposals=proposals,
        fault_pattern=FaultPattern(crashes, locations),
        f=f,
        max_steps=steps,
        policy=policy,
    )


class TestCrashFree:
    def test_unanimous_proposals(self):
        result = run({0: 1, 1: 1, 2: 1}, {})
        assert result.all_live_decided
        assert set(result.decisions.values()) == {1}
        assert result.solved

    def test_mixed_proposals_agree(self):
        result = run({0: 1, 1: 0, 2: 0}, {})
        assert result.all_live_decided
        assert len(set(result.decisions.values())) == 1
        assert result.consensus_check.ok, result.consensus_check.reasons


class TestWithCrashes:
    @pytest.mark.parametrize(
        "crashes",
        [{0: 5}, {1: 12}, {2: 3}, {0: 4, 1: 25}],
        ids=["c0", "c1", "c2", "c0c1"],
    )
    def test_survivors_decide_and_agree(self, crashes):
        result = run({0: 1, 1: 0, 2: 1}, crashes)
        assert result.all_live_decided
        assert result.solved, (
            result.fd_check.reasons,
            result.consensus_check.reasons,
        )

    def test_coordinator_crash_mid_round(self):
        """Crash the round-1 coordinator early: suspicion must unblock
        the waiters (strong completeness at work)."""
        result = run({0: 0, 1: 1, 2: 1}, {0: 2})
        assert result.all_live_decided
        assert set(result.decisions.values()) <= {0, 1}
        assert result.consensus_check.ok

    def test_up_to_n_minus_1_crashes(self):
        result = run({0: 1, 1: 0, 2: 1}, {0: 3, 1: 8})
        assert result.decisions[2] is not None
        assert result.consensus_check.ok


class TestSchedulingRobustness:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_schedules(self, seed):
        result = run(
            {0: 1, 1: 0, 2: 0},
            {1: 9},
            policy=RandomPolicy(seed=seed),
            steps=12000,
        )
        assert result.all_live_decided
        assert result.solved


class TestLargerSystems:
    def test_five_locations(self):
        locations = (0, 1, 2, 3, 4)
        result = run(
            {0: 1, 1: 0, 2: 1, 3: 0, 4: 1},
            {0: 6, 3: 20},
            f=4,
            locations=locations,
        )
        assert result.all_live_decided
        assert result.consensus_check.ok


class TestProcessMechanics:
    def test_decision_extraction(self):
        proc = PerfectConsensusProcess(0, LOCS)
        state = proc.initial_state()
        assert PerfectConsensusProcess.decision(state) is None

    def test_quiescence_after_decision(self):
        """The process has no enabled actions once decided (needed by the
        bounded-problem and tree analyses)."""
        result = run({0: 1, 1: 1, 2: 1}, {})
        final = result.execution.final_state
        # Re-run a few more steps: no decide events appear again.
        assert result.decisions == {0: 1, 1: 1, 2: 1}

    def test_coordinator_rotation(self):
        proc = PerfectConsensusProcess(1, LOCS)
        assert proc.coordinator(1) == 0
        assert proc.coordinator(2) == 1
        assert proc.coordinator(3) == 2
