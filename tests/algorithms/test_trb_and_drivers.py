"""Tests for TRB flooding, leader election, and NBAC."""

import pytest

from repro.algorithms.atomic_commit import NbacProcess, nbac_algorithm
from repro.algorithms.consensus_perfect import perfect_consensus_algorithm
from repro.algorithms.leader_election import (
    LeaderElectionDriver,
    leader_election_algorithm,
)
from repro.algorithms.trb_flooding import (
    TrbFloodingProcess,
    trb_flooding_algorithm,
)
from repro.detectors.perfect import PerfectAutomaton
from repro.ioa.composition import Composition
from repro.ioa.scheduler import Injection, Scheduler
from repro.problems.atomic_commit import (
    NO,
    YES,
    AtomicCommitProblem,
    vote_action,
)
from repro.problems.leader_election import LeaderElectionProblem
from repro.problems.reliable_broadcast import (
    SILENT,
    ReliableBroadcastProblem,
    bcast_action,
)
from repro.system.channel import make_channels
from repro.system.crash import CrashAutomaton
from repro.system.fault_pattern import FaultPattern

LOCS = (0, 1, 2)


class TestTrbFlooding:
    def run_trb(self, crashes, bcast_step=0, message="m", steps=8000):
        algorithm = trb_flooding_algorithm(LOCS, sender=0, f=2)
        system = Composition(
            list(algorithm.automata())
            + make_channels(LOCS)
            + [PerfectAutomaton(LOCS), CrashAutomaton(LOCS)],
            name="trb",
        )
        injections = [Injection(bcast_step, bcast_action(0, message))]
        injections += FaultPattern(crashes, LOCS).injections()
        execution = Scheduler().run(
            system, max_steps=steps, injections=injections
        )
        problem = ReliableBroadcastProblem(LOCS, sender=0, f=2)
        events = problem.project_events(list(execution.actions))
        deliveries = {
            a.location: a.payload[0] for a in events if a.name == "deliver"
        }
        return problem.check_conditional(events), deliveries

    def test_sender_validation(self):
        with pytest.raises(ValueError):
            TrbFloodingProcess(0, LOCS, sender=9, f=1)

    def test_crash_free_broadcast(self):
        verdict, deliveries = self.run_trb({})
        assert verdict, verdict.reasons
        assert deliveries == {0: "m", 1: "m", 2: "m"}

    @pytest.mark.parametrize("crash_step", [2, 8, 20, 40])
    def test_sender_crash_sweep(self, crash_step):
        """Crash the sender at various points: everyone delivers the same
        thing — the message or SILENT."""
        verdict, deliveries = self.run_trb({0: crash_step})
        assert verdict, (crash_step, verdict.reasons)
        values = {v for i, v in deliveries.items() if i != 0}
        assert len(values) == 1
        assert values <= {"m", SILENT}

    def test_sender_crash_before_bcast_delivers_silent(self):
        verdict, deliveries = self.run_trb({0: 0}, bcast_step=50)
        assert verdict
        assert deliveries.get(1) == SILENT
        assert deliveries.get(2) == SILENT

    def test_relay_crash(self):
        verdict, deliveries = self.run_trb({1: 10})
        assert verdict
        assert deliveries[0] == "m" and deliveries[2] == "m"


class TestLeaderElection:
    def run_election(self, crashes, steps=8000):
        drivers = leader_election_algorithm(LOCS)
        consensus = perfect_consensus_algorithm(LOCS, values=LOCS)
        system = Composition(
            list(drivers.automata())
            + list(consensus.automata())
            + make_channels(LOCS)
            + [PerfectAutomaton(LOCS), CrashAutomaton(LOCS)],
            name="election",
        )
        execution = Scheduler().run(
            system,
            max_steps=steps,
            injections=FaultPattern(crashes, LOCS).injections(),
        )
        problem = LeaderElectionProblem(LOCS, f=1)
        events = problem.project_events(list(execution.actions))
        leaders = {
            a.location: a.payload[0] for a in events if a.name == "leader"
        }
        return problem.check_conditional(events), leaders

    def test_crash_free_unanimous(self):
        verdict, leaders = self.run_election({})
        assert verdict, verdict.reasons
        assert set(leaders) == set(LOCS)
        assert len(set(leaders.values())) == 1

    def test_with_crash(self):
        verdict, leaders = self.run_election({2: 8})
        assert verdict, verdict.reasons
        assert set(leaders.values()) <= set(LOCS)
        assert len(set(leaders.values())) == 1

    def test_elected_leader_is_a_location(self):
        _verdict, leaders = self.run_election({0: 5})
        assert all(l in LOCS for l in leaders.values())


class TestNbac:
    def run_nbac(self, votes, crashes, steps=8000):
        drivers = nbac_algorithm(LOCS)
        consensus = perfect_consensus_algorithm(LOCS)
        system = Composition(
            list(drivers.automata())
            + list(consensus.automata())
            + make_channels(LOCS)
            + [PerfectAutomaton(LOCS), CrashAutomaton(LOCS)],
            name="nbac",
        )
        injections = [
            Injection(k, vote_action(i, v))
            for k, (i, v) in enumerate(sorted(votes.items()))
        ]
        injections += FaultPattern(crashes, LOCS).injections()
        execution = Scheduler().run(
            system, max_steps=steps, injections=injections
        )
        problem = AtomicCommitProblem(LOCS, f=1)
        events = problem.project_events(list(execution.actions))
        verdicts = {
            a.location: a.name
            for a in events
            if a.name in ("commit", "abort")
        }
        return problem.check_conditional(events), verdicts

    def test_all_yes_commits(self):
        verdict, verdicts = self.run_nbac(
            {0: YES, 1: YES, 2: YES}, {}
        )
        assert verdict, verdict.reasons
        assert set(verdicts.values()) == {"commit"}

    def test_one_no_aborts(self):
        verdict, verdicts = self.run_nbac({0: YES, 1: NO, 2: YES}, {})
        assert verdict, verdict.reasons
        assert set(verdicts.values()) == {"abort"}

    def test_crash_before_vote_aborts(self):
        """Location 2 crashes before voting: its vote never arrives and
        the survivors must abort (abort-validity is satisfied by the
        crash)."""
        verdict, verdicts = self.run_nbac({0: YES, 1: YES}, {2: 0})
        assert verdict, verdict.reasons
        assert set(verdicts.values()) == {"abort"}

    def test_verdicts_agree(self):
        for crashes in ({}, {1: 4}):
            verdict, verdicts = self.run_nbac(
                {0: YES, 1: YES, 2: YES}, crashes
            )
            assert verdict, verdict.reasons
            assert len(set(verdicts.values())) == 1
