"""Tests for FloodMin k-set agreement over P."""

import pytest

from repro.algorithms.kset_floodmin import (
    FloodMinProcess,
    floodmin_algorithm,
)
from repro.detectors.perfect import PerfectAutomaton
from repro.problems.kset_agreement import KSetAgreementProblem
from repro.system.environment import ScriptedConsensusEnvironment
from repro.system.fault_pattern import FaultPattern
from repro.system.network import SystemBuilder


def run_floodmin(locations, k, f, crashes, proposals=None, steps=15000):
    if proposals is None:
        proposals = {i: i for i in locations}
    algorithm = floodmin_algorithm(locations, k=k, f=f)
    system = (
        SystemBuilder(locations)
        .with_algorithm(algorithm)
        .with_failure_detector(PerfectAutomaton(locations))
        .with_environment(ScriptedConsensusEnvironment(proposals))
        .build()
    )
    pattern = FaultPattern(crashes, locations)

    def settled(state, _step):
        crashed = system.crashed(state)
        return all(
            i in crashed
            or FloodMinProcess.decision(system.process_state(state, i))
            is not None
            for i in locations
        )

    execution = system.run(
        max_steps=steps, fault_pattern=pattern, stop_when=settled
    )
    problem = KSetAgreementProblem(locations, f=f, k=k)
    events = problem.project_events(list(execution.actions))
    decisions = {
        i: FloodMinProcess.decision(
            system.process_state(execution.final_state, i)
        )
        for i in locations
        if i not in system.crashed(execution.final_state)
    }
    return problem.check_conditional(events), decisions


class TestParameters:
    def test_k_and_f_validation(self):
        with pytest.raises(ValueError):
            FloodMinProcess(0, (0, 1, 2), k=0, f=1)
        with pytest.raises(ValueError):
            FloodMinProcess(0, (0, 1, 2), k=1, f=3)

    def test_round_count(self):
        assert FloodMinProcess(0, (0, 1, 2, 3), k=2, f=2).num_rounds == 2
        assert FloodMinProcess(0, (0, 1, 2), k=1, f=2).num_rounds == 3
        assert (
            FloodMinProcess(0, (0, 1, 2), k=1, f=2, rounds=5).num_rounds == 5
        )


class TestKSetRuns:
    @pytest.mark.parametrize(
        "crashes",
        [{}, {0: 6}, {0: 6, 1: 25}],
        ids=["none", "c0", "c0c1"],
    )
    def test_k2_f2_n4(self, crashes):
        verdict, decisions = run_floodmin((0, 1, 2, 3), 2, 2, crashes)
        assert verdict, verdict.reasons
        assert decisions  # the survivors decided
        assert len(set(decisions.values())) <= 2

    def test_k1_is_consensus(self):
        verdict, decisions = run_floodmin((0, 1, 2), 1, 2, {0: 4})
        assert verdict, verdict.reasons
        assert len(set(decisions.values())) == 1

    def test_decides_minimum_when_crash_free(self):
        verdict, decisions = run_floodmin(
            (0, 1, 2), 1, 2, {}, proposals={0: 2, 1: 1, 2: 0}
        )
        assert verdict
        assert set(decisions.values()) == {0}

    def test_crash_step_sweep(self):
        """The adversary crashes the smallest-value holder at various
        points; at most k values ever survive."""
        for step in range(0, 24, 4):
            verdict, decisions = run_floodmin(
                (0, 1, 2, 3), 2, 2, {0: step}
            )
            assert verdict, (step, verdict.reasons)
            assert len(set(decisions.values())) <= 2, step
