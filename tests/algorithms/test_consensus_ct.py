"""Tests for the Chandra–Toueg ◇S consensus algorithm (f < n/2)."""

import pytest

from repro.algorithms.consensus_ct import (
    CtConsensusProcess,
    ct_consensus_algorithm,
)
from repro.analysis.checkers import run_consensus_experiment
from repro.detectors.strong import (
    EventuallyStrong,
    eventually_strong_output,
)
from repro.ioa.scheduler import RandomPolicy
from repro.system.environment import propose_action
from repro.system.fault_pattern import FaultPattern

LOCS = (0, 1, 2)


def run(proposals, crashes, locations=LOCS, policy=None, steps=30000):
    return run_consensus_experiment(
        ct_consensus_algorithm(locations),
        EventuallyStrong(locations),
        proposals=proposals,
        fault_pattern=FaultPattern(crashes, locations),
        f=(len(locations) - 1) // 2,
        max_steps=steps,
        policy=policy,
    )


class TestRuns:
    def test_crash_free(self):
        result = run({0: 1, 1: 0, 2: 0}, {})
        assert result.all_live_decided
        assert result.solved
        assert len(set(result.decisions.values())) == 1

    @pytest.mark.parametrize(
        "crashes", [{0: 10}, {1: 4}, {2: 25}], ids=["c0", "c1", "c2"]
    )
    def test_single_crash(self, crashes):
        result = run({0: 0, 1: 1, 2: 1}, crashes)
        assert result.all_live_decided
        assert result.solved, (
            result.fd_check.reasons,
            result.consensus_check.reasons,
        )

    def test_five_locations_two_crashes(self):
        locations = (0, 1, 2, 3, 4)
        result = run(
            {i: i % 2 for i in locations},
            {0: 8, 3: 30},
            locations=locations,
            steps=60000,
        )
        assert result.all_live_decided
        assert result.solved

    @pytest.mark.parametrize("seed", range(4))
    def test_random_schedules(self, seed):
        result = run(
            {0: 1, 1: 0, 2: 1},
            {0: 12},
            policy=RandomPolicy(seed=seed),
            steps=60000,
        )
        assert result.all_live_decided
        assert result.solved


class TestMechanics:
    def test_coordinator_rotation_wraps(self):
        proc = CtConsensusProcess(0, LOCS)
        assert proc.coordinator(1) == 0
        assert proc.coordinator(3) == 2
        assert proc.coordinator(4) == 0  # wraps, unlike the P algorithm

    def test_proposal_enters_round_1(self):
        proc = CtConsensusProcess(1, LOCS)
        state = proc.apply(proc.initial_state(), propose_action(1, 0))
        _failed, core = state
        assert core.round == 1
        assert core.estimate == 0
        # Phase 1: the estimate goes to coordinator 0.
        assert len(core.outbox) == 1
        assert core.outbox[0].payload[1] == 0  # destination

    def test_coordinator_counts_own_estimate(self):
        proc = CtConsensusProcess(0, LOCS)
        state = proc.apply(proc.initial_state(), propose_action(0, 1))
        _failed, core = state
        assert (1, 0, 1, 0) in core.estimates
        assert core.outbox == ()  # nothing to send to itself

    def test_suspicion_triggers_nack_advance(self):
        proc = CtConsensusProcess(1, LOCS)
        state = proc.apply(proc.initial_state(), propose_action(1, 0))
        # Drain the phase-1 send, then suspect coordinator 0.
        _failed, core = state
        state = proc.apply(state, core.outbox[0])
        state = proc.apply(state, eventually_strong_output(1, (0,)))
        enabled = list(proc.enabled_locally(state))
        assert enabled and enabled[0].name == "ct-advance"
        state = proc.apply(state, enabled[0])
        _failed, core = state
        assert core.round == 2
        # A nack for round 1 and the round-2 estimate are queued.
        assert any(
            a.payload[0] == ("ct-ack", 1, False) for a in core.outbox
        )

    def test_quiescent_after_decision(self):
        result = run({0: 1, 1: 1, 2: 1}, {})
        final = result.execution.final_state
        assert result.decisions == {0: 1, 1: 1, 2: 1}
