"""Tests for the P-emulated synchronous-round engine."""

import pytest

from repro.algorithms.kset_floodmin import FloodMinProcess
from repro.algorithms.rounds import ADVANCE, NOT_READY, START
from repro.detectors.perfect import perfect_output
from repro.system.channel import receive_action
from repro.system.environment import propose_action
from repro.system.fault_pattern import crash_action

LOCS = (0, 1, 2)


@pytest.fixture
def proc():
    # FloodMin is the simplest concrete instance of the engine.
    return FloodMinProcess(0, LOCS, k=1, f=1, values=(0, 1, 2))


def started(proc):
    state = proc.initial_state()
    state = proc.apply(state, propose_action(0, 0))
    enabled = list(proc.enabled_locally(state))
    assert enabled[0].name == START
    state = proc.apply(state, enabled[0])
    return state


class TestStarting:
    def test_not_ready_before_input(self, proc):
        assert list(proc.enabled_locally(proc.initial_state())) == []

    def test_start_queues_round_1_broadcast(self, proc):
        state = started(proc)
        _failed, core = state
        assert core.round == 1
        assert len(core.outbox) == 2
        assert core.outbox[0].payload[0] == ("floodmin", 1, 0)


class TestRoundCompletion:
    def drain_outbox(self, proc, state):
        while True:
            _failed, core = state
            if not core.outbox:
                return state
            state = proc.apply(state, core.outbox[0])

    def test_waits_for_all_peers(self, proc):
        state = self.drain_outbox(proc, started(proc))
        assert list(proc.enabled_locally(state)) == []  # waiting
        state = proc.apply(
            state, receive_action(0, ("floodmin", 1, 1), 1)
        )
        assert list(proc.enabled_locally(state)) == []  # still waiting on 2
        state = proc.apply(
            state, receive_action(0, ("floodmin", 1, 2), 2)
        )
        enabled = list(proc.enabled_locally(state))
        assert enabled and enabled[0].name == ADVANCE

    def test_suspicion_substitutes_for_message(self, proc):
        state = self.drain_outbox(proc, started(proc))
        state = proc.apply(
            state, receive_action(0, ("floodmin", 1, 1), 1)
        )
        state = proc.apply(state, perfect_output(0, (2,)))
        enabled = list(proc.enabled_locally(state))
        assert enabled and enabled[0].name == ADVANCE

    def test_no_advance_while_outbox_pending(self, proc):
        state = started(proc)
        state = proc.apply(
            state, receive_action(0, ("floodmin", 1, 1), 1)
        )
        state = proc.apply(
            state, receive_action(0, ("floodmin", 1, 2), 2)
        )
        enabled = list(proc.enabled_locally(state))
        assert enabled[0].name == "send"  # outbox first

    def test_advance_folds_received(self, proc):
        state = self.drain_outbox(proc, started(proc))
        state = proc.apply(
            state, receive_action(0, ("floodmin", 1, 1), 1)
        )
        state = proc.apply(state, perfect_output(0, (2,)))
        advance = list(proc.enabled_locally(state))[0]
        state = proc.apply(state, advance)
        _failed, core = state
        assert core.round == 2
        assert core.app.value == 0  # min(0, 1)


class TestMessagesAcrossRounds:
    def test_future_round_messages_buffered(self, proc):
        state = TestRoundCompletion().drain_outbox(proc, started(proc))
        state = proc.apply(
            state, receive_action(0, ("floodmin", 2, 1), 1)
        )
        # Round 1 not complete: the round-2 message does not count.
        assert list(proc.enabled_locally(state)) == []
        _failed, core = state
        assert (2, 1, 1) in core.inbox

    def test_foreign_messages_ignored(self, proc):
        state = proc.apply(
            proc.initial_state(), receive_action(0, ("est", 1, 0), 1)
        )
        _failed, core = state
        assert core.inbox == frozenset()


class TestCrashBehavior:
    def test_crash_silences_engine(self, proc):
        state = started(proc)
        state = proc.apply(state, crash_action(0))
        assert list(proc.enabled_locally(state)) == []

    def test_ownership_tags(self, proc):
        assert proc.owns_message(("floodmin", 1, 0))
        assert not proc.owns_message(("est", 1, 0))
        assert not proc.owns_message("floodmin")
