"""DelayModel / TimedParams: validation, merging, and identity."""

from __future__ import annotations

import pytest

from repro.timed.params import DelayModel, TimedParams


class TestDelayModelValidation:
    def test_defaults_are_synchronous_unit_delay(self):
        model = DelayModel()
        assert model.base == 1
        assert model.bounded
        assert model.max_total == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base": 0},
            {"base": -1},
            {"jitter": -1},
            {"gst": -1},
            {"post_jitter": -2},
            {"growth": 1},
            {"growth": -2},
        ],
    )
    def test_invalid_knobs_raise(self, kwargs):
        with pytest.raises(ValueError):
            DelayModel(**kwargs)

    def test_max_total_covers_both_jitter_regimes(self):
        # The bound must hold before *and* after gst.
        assert DelayModel(base=2, jitter=3).max_total == 5
        assert DelayModel(base=1, jitter=1, gst=5, post_jitter=4).max_total == 5

    def test_unbounded_model_has_no_max_total(self):
        model = DelayModel(growth=2)
        assert not model.bounded
        with pytest.raises(ValueError, match="unbounded"):
            model.max_total


class TestDelayDraws:
    def test_pure_function_of_seed_index_now(self):
        model = DelayModel(base=1, jitter=3)
        draws = [model.delay_of(7, k, 0) for k in range(50)]
        assert draws == [model.delay_of(7, k, 0) for k in range(50)]
        assert all(1 <= d <= 4 for d in draws)
        assert len(set(draws)) > 1  # jitter actually varies

    def test_zero_jitter_is_constant(self):
        model = DelayModel(base=2)
        assert {model.delay_of(3, k, 0) for k in range(20)} == {2}

    def test_gst_switches_jitter_regime(self):
        model = DelayModel(base=1, jitter=5, gst=10, post_jitter=0)
        before = [model.delay_of(7, k, 9) for k in range(50)]
        after = [model.delay_of(7, k, 10) for k in range(50)]
        assert max(before) > 1  # pre-gst jitter is live
        assert set(after) == {1}  # post-gst the channel is synchronous

    def test_growth_adds_exact_powers(self):
        model = DelayModel(base=1, growth=3)
        assert [model.delay_of(7, k, 0) for k in range(5)] == [
            1 + 3**k for k in range(5)
        ]

    def test_summary_elides_defaults(self):
        assert DelayModel().summary() == {"base": 1}
        assert DelayModel(base=2, jitter=1, gst=5, post_jitter=0).summary() == {
            "base": 2,
            "jitter": 1,
            "gst": 5,
            "post_jitter": 0,
        }
        assert DelayModel(growth=2).summary() == {"base": 1, "growth": 2}


class TestTimedParamsValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"heartbeat_period": 0},
            {"timeout": 0},
            {"query_period": -1},
            {"lease": 0},
            {"timeout_bump": -1},
        ],
    )
    def test_invalid_knobs_raise(self, kwargs):
        with pytest.raises(ValueError):
            TimedParams(**kwargs)

    def test_delay_must_be_a_model(self):
        with pytest.raises(TypeError, match="DelayModel"):
            TimedParams(delay={"base": 2})


class TestCoerce:
    def test_none_gives_defaults(self):
        assert TimedParams.coerce(None) == TimedParams()

    def test_instance_passes_through(self):
        params = TimedParams(timeout=9)
        assert TimedParams.coerce(params) is params

    def test_mapping_merges_over_defaults(self):
        params = TimedParams.coerce({"timeout": 4, "delay": {"jitter": 2}})
        assert params.timeout == 4
        assert params.delay.jitter == 2
        assert params.heartbeat_period == TimedParams().heartbeat_period

    def test_other_types_raise(self):
        with pytest.raises(TypeError, match="TimedParams"):
            TimedParams.coerce(7)


class TestMerged:
    def test_unknown_keys_raise_naming_the_valid_ones(self):
        with pytest.raises(ValueError, match="timout.*valid keys"):
            TimedParams().merged({"timout": 3})

    def test_unknown_delay_keys_raise(self):
        with pytest.raises(ValueError, match="jiter"):
            TimedParams().merged({"delay": {"jiter": 3}})

    def test_delay_mapping_merges_over_current_delay(self):
        base = TimedParams(delay=DelayModel(base=2, jitter=1))
        merged = base.merged({"delay": {"jitter": 3}})
        assert merged.delay == DelayModel(base=2, jitter=3)

    def test_delay_instance_replaces_wholesale(self):
        base = TimedParams(delay=DelayModel(base=2, jitter=1))
        merged = base.merged({"delay": DelayModel(jitter=3)})
        assert merged.delay == DelayModel(base=1, jitter=3)

    def test_delay_of_wrong_type_raises(self):
        with pytest.raises(TypeError, match="delay"):
            TimedParams().merged({"delay": 3})

    def test_merged_validates_like_the_constructor(self):
        with pytest.raises(ValueError):
            TimedParams().merged({"timeout": 0})


class TestSummary:
    def test_every_field_appears(self):
        summary = TimedParams().summary()
        assert set(summary) == {
            "heartbeat_period",
            "timeout",
            "timeout_bump",
            "query_period",
            "lease",
            "delay",
        }

    def test_summary_tracks_every_knob(self):
        # Timed runs are *defined* by their timing assumptions; the
        # summary is their cache/ledger identity, so no knob may alias.
        a = TimedParams().summary()
        for override in (
            {"heartbeat_period": 5},
            {"timeout": 9},
            {"timeout_bump": 0},
            {"query_period": 7},
            {"lease": 3},
            {"delay": {"jitter": 2}},
        ):
            assert TimedParams().merged(override).summary() != a
