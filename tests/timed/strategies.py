"""Hypothesis strategies for the timed-detector property suite.

The timing grids are deliberately *calibrated*, not arbitrary: a
bounded grid draws only parameter combinations under which the target
AFD class is realizable within the test horizon (so the conformance
property is a theorem, not a coin flip), and an unbounded grid draws
only growth rates whose delays provably outrun the adaptive timeout
before the horizon ends.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.timed.params import DelayModel, TimedParams

#: Scheduler steps per virtual tick for a 3-location run: one tick
#: action plus one fd output per live location per round-robin cycle.
STEPS_PER_TICK_3LOC = 4


def bounded_delays() -> st.SearchStrategy[DelayModel]:
    """Bounded delay models with a small worst case (max_total <= 5)."""
    return st.builds(
        DelayModel,
        base=st.integers(min_value=1, max_value=2),
        jitter=st.integers(min_value=0, max_value=3),
    )


def bounded_timing() -> st.SearchStrategy[TimedParams]:
    """Timing grids under which ◇P is realizable within the horizon.

    ``timeout_bump >= 1`` keeps the adaptive race winnable: every false
    suspicion permanently raises that peer's timeout, so with a bounded
    delay the false suspicions must stop after finitely many bumps.
    """
    return st.builds(
        TimedParams,
        heartbeat_period=st.integers(min_value=1, max_value=3),
        timeout=st.integers(min_value=1, max_value=6),
        timeout_bump=st.integers(min_value=1, max_value=3),
        lease=st.integers(min_value=1, max_value=12),
        delay=bounded_delays(),
    )


def unbounded_timing() -> st.SearchStrategy[TimedParams]:
    """Timing grids whose delays provably outrun any adaptive timeout.

    ``growth >= 3`` makes the k-th send of a channel wait ``3**k``
    extra ticks, so within a ~150-tick horizon the heartbeat gap blows
    past every reachable (initial + bumps) timeout and eventual strong
    accuracy fails *inside* the run.  (``growth == 2`` also diverges,
    but its first horizon-visible violation needs ~300 ticks — keep the
    strategy inside what the test actually executes.)
    """
    return st.builds(
        TimedParams,
        heartbeat_period=st.integers(min_value=1, max_value=3),
        timeout=st.integers(min_value=1, max_value=4),
        timeout_bump=st.integers(min_value=0, max_value=2),
        delay=st.builds(
            DelayModel,
            base=st.integers(min_value=1, max_value=2),
            growth=st.integers(min_value=3, max_value=4),
        ),
    )


def run_seeds() -> st.SearchStrategy[int]:
    return st.integers(min_value=0, max_value=2**32 - 1)
