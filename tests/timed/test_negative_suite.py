"""Mutation testing for timed conformance: each negative trips exactly
the AFD-validity oracle, at exactly the right index.

Mirrors ``tests/faults/test_oracles_catch_violations.py`` for the timed
layer: every registered implementation gets (a) a *run-level* negative —
a real execution whose timing assumption or fault plan breaks the
target AFD, judged by the full oracle bundle — and (b) a *trace-level*
mutation — a conformant trace with one event corrupted by hand.  In
both shapes the AFD-validity oracle must fire with the exact
first-violation index and every other oracle must stay silent, so a
green suite means the timed negatives are load-bearing, not incidental.
"""

from __future__ import annotations

import pytest

from repro.faults import ChannelFaults, FaultPlan
from repro.faults.oracles import (
    AfdValidityOracle,
    ConsensusAgreementOracle,
    ConsensusValidityOracle,
    CrashValidityOracle,
    FifoOracle,
    NoDuplicationOracle,
    NoLossOracle,
    run_oracles,
)
from repro.ioa.actions import Action
from repro.ioa.scheduler import Scheduler
from repro.system.fault_pattern import FaultPattern, is_crash
from repro.timed.registry import build_automaton, implementation_names

LOCS = (0, 1, 2)
CRASHES = {2: 160}
SEED = 5
MAX_STEPS = 600


def oracle_bundle(automaton):
    """Every applicable oracle, the AFD one aimed at the target class.

    ``ConsensusTerminationOracle`` is omitted by design: timed traces
    contain no decide events, so "every live location decides" is
    vacuously violated — the property simply does not apply here.
    """
    return (
        NoLossOracle(),
        NoDuplicationOracle(),
        FifoOracle(),
        CrashValidityOracle(allowed=set(CRASHES)),
        AfdValidityOracle(automaton.afd()),
        ConsensusAgreementOracle(),
        ConsensusValidityOracle(),
    )


def run_timed(impl, params, plan=None):
    automaton = build_automaton(
        impl, LOCS, params=params, seed=SEED, plan=plan
    )
    execution = Scheduler().run(
        automaton,
        max_steps=MAX_STEPS,
        injections=FaultPattern(CRASHES).injections(),
    )
    return automaton, list(execution.trace(automaton))


def clean_run(impl):
    """A conformant base run (bounded jitter, ample timeout)."""
    return run_timed(impl, {"timeout": 6, "delay": {"jitter": 2}})


def assert_only_afd(automaton, trace, expected_index):
    """The AFD oracle fires at the exact index; every other is silent."""
    report = run_oracles(trace, oracle_bundle(automaton))
    verdict = report.verdict("afd-validity")
    assert not verdict.ok, f"afd-validity did not fire: {report.to_dict()}"
    assert verdict.violation_index == expected_index, (
        f"afd-validity fired at {verdict.violation_index}, expected "
        f"{expected_index}: {verdict.reason}"
    )
    noisy = [
        v for v in report.verdicts if v.oracle != "afd-validity" and not v.ok
    ]
    assert not noisy, f"other oracles fired: {[v.to_dict() for v in noisy]}"


class TestCleanControls:
    @pytest.mark.parametrize("impl", implementation_names())
    def test_conformant_run_passes_every_oracle(self, impl):
        automaton, trace = clean_run(impl)
        report = run_oracles(trace, oracle_bundle(automaton))
        assert report.ok, report.to_dict()


class TestRunLevelNegatives:
    def test_pingpong_sub_bound_timeout_exact_safety_index(self):
        # timeout 2 < safe bound 5: the first slow round trip convicts
        # a live peer.  The violating output is localized exactly — the
        # P oracle binary-searches the minimal unsafe prefix.
        automaton, trace = run_timed(
            "ping-pong", {"timeout": 2, "delay": {"jitter": 2}}
        )
        assert_only_afd(automaton, trace, 18)
        violating = trace[18]
        assert violating.name == automaton.output_name
        assert violating.payload == ((2,),)  # suspects 2 before its crash

    def test_heartbeat_total_loss_fails_liveness_at_trace_end(self):
        # drop 1.0: no heartbeat ever lands, live peers stay suspected
        # forever.  ◇P's eventual accuracy is a liveness property — no
        # single event witnesses it, so the index is len(trace).
        automaton, trace = run_timed(
            "heartbeat",
            {"delay": {"jitter": 2}},
            plan=FaultPlan.uniform(drop_p=1.0, seed=3),
        )
        assert_only_afd(automaton, trace, len(trace))

    def test_leader_lease_outbound_cut_no_common_leader(self):
        # Cut 0's outbound channels only: 0 still hears 1 and 2, keeps
        # electing itself; 1 and 2 stop hearing 0 and elect 1.  The live
        # set never agrees, so Omega's stabilization witness never
        # arrives — a liveness failure at len(trace).
        cut = ChannelFaults(drop_p=1.0)
        automaton, trace = run_timed(
            "leader-lease",
            {"delay": {"jitter": 2}},
            plan=FaultPlan(seed=3, per_channel={(0, 1): cut, (0, 2): cut}),
        )
        assert_only_afd(automaton, trace, len(trace))


class TestTraceLevelMutations:
    def test_heartbeat_zombie_output_after_crash(self):
        automaton, trace = clean_run("heartbeat")
        crash_index = next(
            k for k, a in enumerate(trace) if is_crash(a)
        )
        assert crash_index == 120  # the {2: 160} injection, externalized
        mutated = list(trace)
        mutated.insert(
            crash_index + 5, Action(automaton.output_name, 2, ((),))
        )
        assert_only_afd(automaton, mutated, crash_index + 5)

    def test_leader_lease_foreign_leader_payload(self):
        automaton, trace = clean_run("leader-lease")
        k = next(
            i
            for i, a in enumerate(trace)
            if a.name == automaton.output_name and i > 10
        )
        mutated = list(trace)
        mutated[k] = Action(automaton.output_name, mutated[k].location, (99,))
        assert_only_afd(automaton, mutated, k)

    def test_pingpong_unsorted_suspects_payload(self):
        automaton, trace = clean_run("ping-pong")
        k = next(
            i
            for i, a in enumerate(trace)
            if a.name == automaton.output_name and i > 10
        )
        mutated = list(trace)
        mutated[k] = Action(
            automaton.output_name, mutated[k].location, ((2, 0),)
        )
        assert_only_afd(automaton, mutated, k)
