"""Property suite: timing assumptions decide AFD conformance.

The three satellite properties of the timed layer:

(a) bounded delay + bounded heartbeat period  =>  the adaptive
    heartbeat detector's trace is ◇P-conformant (and the grid's other
    implementations conform under their own realizability conditions);
(b) unbounded delay (geometric growth)  =>  conformance fails, and the
    oracle's reported first-violation index is exactly right — a
    liveness failure indexes the end of the trace, a safety failure
    indexes the *minimal* unsafe prefix's last event;
(c) the same grid executed serially, with ``--jobs 2``, and from a warm
    result cache yields byte-identical results.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings

from repro.cache import ResultStore
from repro.faults.oracles import AfdValidityOracle
from repro.ioa.scheduler import Scheduler
from repro.runner import BatchRunner, ExperimentSpec, run_spec, sweep
from repro.system.fault_pattern import FaultPattern
from repro.timed.registry import build_automaton

from tests.timed.strategies import (
    STEPS_PER_TICK_3LOC,
    bounded_timing,
    run_seeds,
    unbounded_timing,
)

LOCS = (0, 1, 2)
CRASHES = {2: 40 * STEPS_PER_TICK_3LOC}
MAX_STEPS = 150 * STEPS_PER_TICK_3LOC


def timed_spec(impl, params, seed, **overrides):
    base = dict(
        detector=impl,
        locations=LOCS,
        problem="timed-detector",
        crashes=CRASHES,
        timed=params,
        seed=seed,
        max_steps=MAX_STEPS,
        label=impl,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def judged_trace(spec):
    """(trace, verdict) of one spec, bypassing the runner's packaging."""
    automaton = build_automaton(
        spec.detector,
        spec.locations,
        params=spec.resolve_timed(),
        seed=spec.seed,
    )
    execution = Scheduler().run(
        automaton,
        max_steps=spec.max_steps,
        injections=FaultPattern(spec.crashes).injections(),
    )
    trace = list(execution.trace(automaton))
    verdict = AfdValidityOracle(automaton.afd()).check(trace)
    return trace, verdict


class TestBoundedDelayImpliesConformance:
    """Property (a): the realizability direction."""

    @settings(max_examples=15, deadline=None)
    @given(params=bounded_timing(), seed=run_seeds())
    def test_heartbeat_is_eventually_perfect(self, params, seed):
        # Any bounded grid point: the adaptive bump must win the race.
        result = run_spec(timed_spec("heartbeat", params, seed))
        assert result.fd_ok, result.conformance

    @settings(max_examples=10, deadline=None)
    @given(params=bounded_timing(), seed=run_seeds())
    def test_leader_lease_stabilizes_omega(self, params, seed):
        result = run_spec(timed_spec("leader-lease", params, seed))
        assert result.fd_ok, result.conformance

    @settings(max_examples=10, deadline=None)
    @given(params=bounded_timing(), seed=run_seeds())
    def test_pingpong_above_the_round_trip_bound_is_perfect(
        self, params, seed
    ):
        # P needs the extra realizability condition: the timeout covers
        # the worst-case round trip (2 * max_total - 1).
        safe = params.merged(
            {"timeout": max(params.timeout, 2 * params.delay.max_total - 1)}
        )
        result = run_spec(timed_spec("ping-pong", safe, seed))
        assert result.fd_ok, result.conformance


class TestUnboundedDelayImpliesViolation:
    """Property (b): the impossibility direction, with exact indices."""

    @settings(max_examples=10, deadline=None)
    @given(params=unbounded_timing(), seed=run_seeds())
    def test_heartbeat_fails_as_liveness_at_trace_end(self, params, seed):
        spec = timed_spec("heartbeat", params, seed, crashes={})
        result = run_spec(spec)
        assert not result.fd_ok
        trace, verdict = judged_trace(spec)
        assert not verdict.ok
        # ◇P has no finite safety content: the failure is the missing
        # stabilization witness, indexed at the end of the trace.
        assert verdict.violation_index == len(trace)
        assert result.conformance["violation_index"] == len(trace)
        assert result.conformance["reason"]

    @settings(max_examples=10, deadline=None)
    @given(params=unbounded_timing(), seed=run_seeds())
    def test_pingpong_fails_as_safety_at_the_minimal_prefix(
        self, params, seed
    ):
        # Growth >= 3 forces a round trip past any timeout in the grid,
        # so a live peer is irrevocably suspected: a strong-accuracy
        # (safety) violation with one exactly-localizable output.
        spec = timed_spec("ping-pong", params, seed, crashes={})
        trace, verdict = judged_trace(spec)
        assert not verdict.ok
        k = verdict.violation_index
        assert 0 <= k < len(trace)
        automaton = build_automaton(
            spec.detector, LOCS, params=spec.resolve_timed(), seed=spec.seed
        )
        afd = automaton.afd()
        events = [a for a in trace if afd.is_event(a)]
        prefix = [a for a in trace[:k] if afd.is_event(a)]
        assert afd.check_safety(prefix)  # safe before the event...
        assert not afd.check_safety(prefix + [trace[k]])  # ...unsafe at it
        assert len(prefix) + 1 <= len(events)


class TestExecutionModeIdentity:
    """Property (c): serial == --jobs 2 == cache-warm, byte for byte."""

    def grid(self):
        base = timed_spec("heartbeat", None, 0, max_steps=400)
        specs = []
        for impl in ("heartbeat", "ping-pong"):
            specs.extend(
                sweep(
                    dataclasses.replace(base, detector=impl, label=impl),
                    seeds=2,
                    timed_params=[
                        {"timeout": 2, "delay": {"jitter": 2}},
                        {"timeout": 6, "delay": {"jitter": 2}},
                    ],
                )
            )
        return specs

    @staticmethod
    def det(results):
        return [dataclasses.replace(r, wall_s=0.0) for r in results]

    def test_serial_jobs2_and_cache_warm_agree(self, tmp_path):
        specs = self.grid()
        serial = BatchRunner(jobs=1).run(specs, raise_on_error=True)
        parallel = BatchRunner(jobs=2).run(specs, raise_on_error=True)
        store = ResultStore(str(tmp_path / "store"))
        cold = BatchRunner(jobs=1, cache=store).run(
            specs, raise_on_error=True
        )
        warm = BatchRunner(jobs=1, cache=store).run(
            specs, raise_on_error=True
        )
        assert warm.cache_hits == len(specs)
        baseline = self.det(serial.results)
        assert self.det(parallel.results) == baseline
        assert self.det(cold.results) == baseline
        assert self.det(warm.results) == baseline
        # The grid exercises both verdicts, or the identity is vacuous.
        assert {r.fd_ok for r in serial.results} == {True, False}
