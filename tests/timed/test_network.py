"""TimedNetwork: pure transitions, determinism, and fault-plan draws."""

from __future__ import annotations

import pytest

from repro.faults import ChannelFaults, FaultPlan
from repro.timed.network import TimedNetwork
from repro.timed.params import DelayModel

LOCS = (0, 1, 2)


def make_net(delay=None, seed=7, plan=None):
    return TimedNetwork(LOCS, delay or DelayModel(), seed, plan=plan)


def drain(network, net, upto):
    """Every delivery through tick ``upto`` as (tick, dst, src, msg)."""
    out = []
    for now in range(1, upto + 1):
        net, deliveries = network.deliver(net, now)
        out.extend((now,) + d for d in deliveries)
    return net, out


class TestConstruction:
    def test_full_mesh_of_directed_channels(self):
        network = make_net()
        assert len(network.channels) == 6
        assert (0, 1) in network.channels and (1, 0) in network.channels
        assert all(s != d for s, d in network.channels)

    def test_unbound_plan_is_rejected(self):
        with pytest.raises(ValueError, match="bound FaultPlan"):
            make_net(plan=FaultPlan.uniform(drop_p=0.5))

    def test_bound_plan_is_accepted(self):
        network = make_net(plan=FaultPlan.uniform(drop_p=0.5, seed=3))
        assert network.plan.is_bound

    def test_initial_state_is_empty(self):
        network = make_net()
        net = network.initial()
        assert network.total_sends(net) == 0
        assert network.in_flight(net) == 0


class TestDelivery:
    def test_unit_delay_delivers_next_tick(self):
        network = make_net()
        net = network.send(network.initial(), 0, 1, "m", now=3)
        assert network.in_flight(net) == 1
        same, none_yet = network.deliver(net, 3)
        assert same is net and none_yet == []  # base >= 1: never same-tick
        net, deliveries = network.deliver(net, 4)
        assert deliveries == [(1, 0, "m")]
        assert network.in_flight(net) == 0

    def test_deliveries_in_canonical_channel_order(self):
        network = make_net()
        net = network.initial()
        # Sent in reverse channel order; delivered in canonical order.
        net = network.send(net, 2, 0, "b", now=0)
        net = network.send(net, 0, 1, "a", now=0)
        _net, deliveries = network.deliver(net, 1)
        assert deliveries == [(1, 0, "a"), (0, 2, "b")]

    def test_jitter_draws_are_deterministic_and_bounded(self):
        delay = DelayModel(base=1, jitter=3)
        runs = []
        for _ in range(2):
            network = make_net(delay=delay, seed=11)
            net = network.initial()
            for k in range(20):
                net = network.send(net, 0, 1, ("m", k), now=0)
            runs.append(drain(network, net, delay.max_total)[1])
        assert runs[0] == runs[1]  # same seed, same schedule
        assert len(runs[0]) == 20  # all within the bound
        ticks = {tick for tick, _dst, _src, _m in runs[0]}
        assert len(ticks) > 1  # jitter actually spreads arrivals

    def test_seed_changes_the_schedule(self):
        delay = DelayModel(base=1, jitter=3)
        schedules = []
        for seed in (1, 2):
            network = make_net(delay=delay, seed=seed)
            net = network.initial()
            for k in range(20):
                net = network.send(net, 0, 1, ("m", k), now=0)
            schedules.append(drain(network, net, delay.max_total)[1])
        assert schedules[0] != schedules[1]

    def test_send_counts_include_dropped_messages(self):
        network = make_net(plan=FaultPlan.uniform(drop_p=1.0, seed=3))
        net = network.send(network.initial(), 0, 1, "m", now=0)
        assert network.total_sends(net) == 1
        assert network.in_flight(net) == 0


class TestFaultDraws:
    def test_drop_one_silences_the_channel(self):
        network = make_net(plan=FaultPlan.uniform(drop_p=1.0, seed=3))
        net = network.initial()
        for k in range(10):
            net = network.send(net, 0, 1, ("m", k), now=0)
        _net, deliveries = drain(network, net, 10)
        assert deliveries == []

    def test_drop_sends_is_an_exact_schedule(self):
        plan = FaultPlan(
            seed=3, default=ChannelFaults(drop_sends=(0, 2))
        )
        network = make_net(plan=plan)
        net = network.initial()
        for k in range(4):
            net = network.send(net, 0, 1, ("m", k), now=0)
        _net, deliveries = drain(network, net, 5)
        assert [m for _t, _d, _s, m in deliveries] == [("m", 1), ("m", 3)]

    def test_duplicate_one_doubles_every_delivery(self):
        network = make_net(plan=FaultPlan.uniform(duplicate_p=1.0, seed=3))
        net = network.initial()
        for k in range(5):
            net = network.send(net, 0, 1, ("m", k), now=0)
        _net, deliveries = drain(network, net, 10)
        assert len(deliveries) == 10
        for k in range(5):
            assert (
                sum(1 for _t, _d, _s, m in deliveries if m == ("m", k)) == 2
            )

    def test_fractional_drop_matches_chaos_channel_stream(self):
        # The drop fate of send k is drawn from the exact ChaosChannel
        # decision stream: derive_seed(channel_seed, "drop", k) / 2**63.
        from repro.runner.seeds import derive_seed

        plan = FaultPlan.uniform(drop_p=0.4, seed=9)
        network = make_net(plan=plan)
        net = network.initial()
        n = 40
        for k in range(n):
            net = network.send(net, 0, 1, ("m", k), now=0)
        _net, deliveries = drain(network, net, 10)
        delivered = {m[1] for _t, _d, _s, m in deliveries}
        chan_seed = plan.channel_seed(0, 1)
        expected = {
            k
            for k in range(n)
            if derive_seed(chan_seed, "drop", k) / 2**63 >= 0.4
        }
        assert delivered == expected
        assert 0 < len(expected) < n  # the stream actually splits

    def test_partition_is_a_per_channel_cut_set(self):
        # Cut {0} off from {1, 2} in both directions; 1 <-> 2 stays up.
        cut = ChannelFaults(drop_p=1.0)
        plan = FaultPlan(
            seed=3,
            per_channel={
                (0, 1): cut, (0, 2): cut, (1, 0): cut, (2, 0): cut
            },
        )
        network = make_net(plan=plan)
        net = network.initial()
        for src in LOCS:
            for dst in LOCS:
                if src != dst:
                    net = network.send(net, src, dst, "m", now=0)
        _net, deliveries = drain(network, net, 5)
        assert sorted((d, s) for _t, d, s, _m in deliveries) == [
            (1, 2), (2, 1)
        ]


class TestPurity:
    def test_send_and_deliver_do_not_mutate_inputs(self):
        network = make_net()
        net0 = network.initial()
        net1 = network.send(net0, 0, 1, "m", now=0)
        assert network.in_flight(net0) == 0
        net2, _ = network.deliver(net1, 1)
        assert network.in_flight(net1) == 1
        assert network.in_flight(net2) == 0

    def test_states_are_hashable_tuples(self):
        network = make_net()
        net = network.send(network.initial(), 0, 1, "m", now=0)
        hash(net)  # interning requirement of the compiled path
