"""TimedDetectorAutomaton: contract surface, clock, crashes, registry."""

from __future__ import annotations

import pytest

from repro.detectors.eventually_perfect import EventuallyPerfect
from repro.detectors.omega import Omega
from repro.detectors.perfect import Perfect
from repro.ioa.actions import Action
from repro.system.fault_pattern import crash_action
from repro.timed.automaton import TICK, TimedDetectorAutomaton
from repro.timed.heartbeat import HeartbeatDetector
from repro.timed.leader_lease import LeaderLeaseDetector
from repro.timed.pingpong import PingPongDetector
from repro.timed.registry import (
    IMPLEMENTATIONS,
    build_automaton,
    implementation_names,
    iter_timed_automata,
    resolve_implementation,
    target_afd,
)

LOCS = (0, 1, 2)


def tick_n(automaton, state, n):
    tick = Action(TICK, None, ())
    for _ in range(n):
        state = automaton.apply(state, tick)
    return state


class TestRegistry:
    def test_canonical_names(self):
        assert implementation_names() == [
            "heartbeat",
            "leader-lease",
            "ping-pong",
        ]

    @pytest.mark.parametrize(
        "alias, canonical",
        [
            ("heartbeat", "heartbeat"),
            ("HB", "heartbeat"),
            ("heart_beat", "heartbeat"),
            ("PingPong", "ping-pong"),
            ("ping", "ping-pong"),
            ("ping_pong", "ping-pong"),
            ("lease", "leader-lease"),
            ("omega-lease", "leader-lease"),
        ],
    )
    def test_aliases_resolve(self, alias, canonical):
        assert resolve_implementation(alias) == canonical

    def test_unknown_name_lists_the_valid_ones(self):
        with pytest.raises(ValueError, match="heartbeat.*leader-lease"):
            resolve_implementation("gossip")

    def test_build_automaton_types(self):
        for name, cls in IMPLEMENTATIONS.items():
            assert isinstance(build_automaton(name, LOCS), cls)

    def test_target_afds(self):
        assert isinstance(target_afd("heartbeat", LOCS), EventuallyPerfect)
        assert isinstance(target_afd("ping-pong", LOCS), Perfect)
        assert isinstance(target_afd("leader-lease", LOCS), Omega)

    def test_iter_covers_every_implementation(self):
        pairs = list(iter_timed_automata(LOCS))
        assert [name for name, _a in pairs] == implementation_names()
        assert all(
            isinstance(a, TimedDetectorAutomaton) for _n, a in pairs
        )


class TestConstruction:
    def test_needs_two_locations(self):
        with pytest.raises(ValueError, match=">= 2 locations"):
            HeartbeatDetector((0,))

    def test_rejects_duplicate_locations(self):
        with pytest.raises(ValueError, match="duplicate"):
            HeartbeatDetector((0, 1, 0))

    def test_subclass_must_declare_output_name(self):
        class Nameless(TimedDetectorAutomaton):
            def node_initial(self, location):
                return ()

            def node_step(self, location, node, now, inbox):
                return (), ()

            def node_output(self, location, node):
                return ((),)

            def afd(self):
                raise NotImplementedError

        with pytest.raises(TypeError, match="output_name"):
            Nameless(LOCS)


class TestSignature:
    @pytest.fixture(params=sorted(IMPLEMENTATIONS))
    def automaton(self, request):
        return build_automaton(request.param, LOCS)

    def test_crashes_are_inputs(self, automaton):
        sig = automaton.signature
        for loc in LOCS:
            assert sig.is_input(crash_action(loc))

    def test_outputs_are_the_fd_vocabulary(self, automaton):
        sig = automaton.signature
        state = automaton.initial_state()
        out = automaton._output_at(0, state)
        assert sig.is_output(out)
        assert not sig.is_output(
            Action(automaton.output_name, 99, out.payload)
        )

    def test_tick_is_internal(self, automaton):
        assert automaton.signature.is_internal(Action(TICK, None, ()))


class TestCrashSemantics:
    def test_crash_is_idempotent(self):
        automaton = HeartbeatDetector(LOCS)
        s0 = automaton.initial_state()
        s1 = automaton.apply(s0, crash_action(1))
        assert automaton.crashed_locations(s1) == (1,)
        assert automaton.apply(s1, crash_action(1)) == s1

    def test_foreign_crash_is_a_no_op(self):
        automaton = HeartbeatDetector(LOCS)
        s0 = automaton.initial_state()
        assert automaton.apply(s0, crash_action(99)) == s0

    def test_crashed_process_goes_silent(self):
        automaton = HeartbeatDetector(LOCS)
        state = automaton.apply(automaton.initial_state(), crash_action(0))
        state = tick_n(automaton, state, 6)
        live_sends = automaton.messages_sent(state)
        # 2 live broadcasters x 2 peers x 3 heartbeat rounds.
        assert live_sends == 12

    def test_output_task_empties_at_crash(self):
        automaton = HeartbeatDetector(LOCS)
        state = automaton.apply(automaton.initial_state(), crash_action(2))
        assert automaton.enabled_in_task(state, "out[2]") == ()
        assert len(automaton.enabled_in_task(state, "out[0]")) == 1


class TestClockAndOutputs:
    def test_tick_advances_virtual_time(self):
        automaton = HeartbeatDetector(LOCS)
        state = tick_n(automaton, automaton.initial_state(), 5)
        assert automaton.now(state) == 5

    def test_outputs_never_change_state(self):
        automaton = HeartbeatDetector(LOCS)
        state = tick_n(automaton, automaton.initial_state(), 3)
        out = automaton._output_at(0, state)
        assert automaton.apply(state, out) == state

    def test_tasks_partition_clock_and_outputs(self):
        automaton = HeartbeatDetector(LOCS)
        assert automaton.tasks() == ("clock", "out[0]", "out[1]", "out[2]")
        tick = Action(TICK, None, ())
        assert automaton.task_of(tick) == "clock"
        state = automaton.initial_state()
        out = automaton._output_at(1, state)
        assert automaton.task_of(out) == "out[1]"
        assert automaton.task_of(crash_action(0)) is None

    def test_exactly_one_action_per_live_task(self):
        automaton = HeartbeatDetector(LOCS)
        state = automaton.initial_state()
        for task in automaton.tasks():
            assert len(automaton.enabled_in_task(state, task)) == 1
        assert automaton.enabled_in_task(state, "out[9]") == ()

    def test_enabled_matches_enabled_locally(self):
        automaton = HeartbeatDetector(LOCS)
        state = tick_n(automaton, automaton.initial_state(), 4)
        local = list(automaton.enabled_locally(state))
        assert len(local) == 1 + len(LOCS)
        for action in local:
            assert automaton.enabled(state, action)
        # A stale output (wrong payload) is not enabled.
        stale = Action(automaton.output_name, 0, ((0, 1, 2),))
        assert not automaton.enabled(state, stale)

    def test_node_state_accessor(self):
        automaton = HeartbeatDetector(LOCS)
        state = automaton.initial_state()
        assert automaton.node_state(state, 1) == automaton.node_initial(1)


class TestDetectorBehaviours:
    def test_heartbeat_suspects_a_crashed_peer(self):
        automaton = HeartbeatDetector(LOCS, params={"timeout": 4})
        state = automaton.apply(automaton.initial_state(), crash_action(2))
        state = tick_n(automaton, state, 20)
        assert automaton.node_output(0, automaton.node_state(state, 0)) == (
            (2,),
        )
        assert automaton.node_output(1, automaton.node_state(state, 1)) == (
            (2,),
        )

    def test_heartbeat_trusts_live_peers_under_bounded_delay(self):
        automaton = HeartbeatDetector(
            LOCS, params={"timeout": 6, "delay": {"jitter": 2}}
        )
        state = tick_n(automaton, automaton.initial_state(), 40)
        for loc in LOCS:
            assert automaton.node_output(
                loc, automaton.node_state(state, loc)
            ) == ((),)

    def test_pingpong_safe_timeout_formula(self):
        automaton = PingPongDetector(
            LOCS, params={"delay": {"base": 1, "jitter": 2}}
        )
        assert automaton.safe_timeout == 5

    def test_pingpong_suspicion_is_permanent(self):
        # Sub-bound timeout: the first slow round trip convicts forever.
        automaton = PingPongDetector(
            LOCS, params={"timeout": 1, "delay": {"base": 2}}
        )
        state = tick_n(automaton, automaton.initial_state(), 30)
        suspects = automaton.node_output(
            0, automaton.node_state(state, 0)
        )[0]
        assert suspects  # convicted...
        state = tick_n(automaton, state, 30)
        assert (
            automaton.node_output(0, automaton.node_state(state, 0))[0]
            == suspects
        )  # ...and never released

    def test_leader_lease_elects_min_trusted(self):
        automaton = LeaderLeaseDetector(LOCS)
        state = tick_n(automaton, automaton.initial_state(), 20)
        for loc in LOCS:
            assert automaton.node_output(
                loc, automaton.node_state(state, loc)
            ) == (0,)

    def test_leader_lease_fails_over_after_leader_crash(self):
        automaton = LeaderLeaseDetector(
            LOCS, params={"timeout": 4, "lease": 6}
        )
        state = tick_n(automaton, automaton.initial_state(), 10)
        state = automaton.apply(state, crash_action(0))
        state = tick_n(automaton, state, 30)
        for loc in (1, 2):
            assert automaton.node_output(
                loc, automaton.node_state(state, loc)
            ) == (1,)
