"""The sweep() timed axis: grid validation, labels, and seed identity.

Regression tests for the timed-axis failure modes fixed alongside the
axis itself: an explicitly empty ``timed_params`` grid used to expand
to *zero* specs (a sweep that runs nothing and "succeeds"), and
override dicts that merge to identical effective ``TimedParams`` used
to run the same grid point twice under different derived seeds —
silently double-counting it in every conformance-rate series.  Both
now raise ``ValueError`` up front, and the derived-seed/label formula
is pinned byte-for-byte (it is cache and series identity).
"""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan
from repro.runner import ExperimentSpec, sweep
from repro.runner.seeds import derive_seed
from repro.timed.params import TimedParams

LOCS = (0, 1, 2)


def timed_base(**overrides):
    base = dict(
        detector="heartbeat",
        locations=LOCS,
        problem="timed-detector",
        seed=7,
        label="base",
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestGridValidation:
    def test_empty_timed_axis_raises(self):
        with pytest.raises(ValueError, match=r"timed_params=\[\]"):
            sweep(timed_base(), timed_params=[])

    def test_duplicate_effective_params_raise_naming_indices(self):
        # Distinct-looking overrides that merge to the same TimedParams
        # (timeout 6 *is* the default) are the same grid point twice.
        with pytest.raises(ValueError, match=r"indices \[0, 2\]"):
            sweep(
                timed_base(),
                timed_params=[{"timeout": 6}, {"timeout": 2}, {}],
            )

    def test_readymade_instances_can_collide_too(self):
        with pytest.raises(ValueError, match="identical effective"):
            sweep(
                timed_base(),
                timed_params=[TimedParams(timeout=4), {"timeout": 4}],
            )

    def test_non_timed_base_rejects_the_axis(self):
        base = ExperimentSpec(
            detector="omega",
            locations=LOCS,
            problem="detector-trace",
            seed=7,
        )
        with pytest.raises(ValueError, match="timed-detector base"):
            sweep(base, timed_params=[{"timeout": 2}])

    def test_unknown_keys_fail_at_expansion_time(self):
        with pytest.raises(ValueError, match="timout"):
            sweep(timed_base(), timed_params=[{"timout": 2}])


class TestExpansion:
    def test_entries_merge_over_the_base_timed_value(self):
        base = timed_base(timed={"delay": {"jitter": 2}})
        variants = sweep(base, timed_params=[{"timeout": 2}, {"timeout": 9}])
        assert [v.resolve_timed().timeout for v in variants] == [2, 9]
        # The base's delay model rides along under every override.
        assert all(v.resolve_timed().delay.jitter == 2 for v in variants)

    def test_readymade_instances_pass_through(self):
        params = TimedParams(timeout=3, heartbeat_period=1)
        variants = sweep(
            timed_base(), timed_params=[params, {"timeout": 9}]
        )
        assert variants[0].resolve_timed() is params

    def test_grid_shape_is_the_full_product(self):
        variants = sweep(
            timed_base(),
            seeds=2,
            timed_params=[{"timeout": 2}, {"timeout": 9}],
            fault_plans=[None, FaultPlan.uniform(drop_p=1.0)],
        )
        assert len(variants) == 8
        assert len({v.seed for v in variants}) == 8


class TestLabelStability:
    """Labels are part of cache/series identity: pin them exactly."""

    def test_timed_axis_label_snapshot(self):
        variants = sweep(
            timed_base(),
            seeds=2,
            timed_params=[{"timeout": 2}, {"timeout": 6}],
        )
        assert [v.label for v in variants] == [
            "base|tm0|s5471530390812458800",
            "base|tm0|s105442632014728965",
            "base|tm1|s5354672437115170783",
            "base|tm1|s3211711195144572787",
        ]

    def test_timed_and_chaos_axes_label_snapshot(self):
        variants = sweep(
            timed_base(),
            seeds=2,
            timed_params=[{"timeout": 2}, {"timeout": 6}],
            fault_plans=[None, FaultPlan.uniform(drop_p=1.0)],
        )
        assert [v.label for v in variants] == [
            "base|ch0|tm0|s6985447901978024500",
            "base|ch0|tm0|s5971717974604659546",
            "base|ch0|tm1|s2388692840368165405",
            "base|ch0|tm1|s5308024157721372188",
            "base|ch1|tm0|s8730784994681765760",
            "base|ch1|tm0|s728817579831019706",
            "base|ch1|tm1|s6688464853874361503",
            "base|ch1|tm1|s2531269597617184825",
        ]

    def test_single_point_axis_adds_no_tag(self):
        variants = sweep(timed_base(), timed_params=[{"timeout": 2}])
        assert [v.label for v in variants] == ["base"]


class TestSeedFormula:
    def test_absent_axis_keeps_the_pre_timed_formula(self):
        # A timed-detector sweep that never mentions timed_params must
        # derive the exact seeds it did before the axis existed, so
        # committed artifacts and cache keys are untouched.
        variants = sweep(timed_base(), seeds=3)
        assert [v.seed for v in variants] == [
            derive_seed(7, 0, 0, si) for si in range(3)
        ]

    def test_present_axis_extends_the_coordinates(self):
        variants = sweep(
            timed_base(), seeds=2, timed_params=[{"timeout": 2}, {}]
        )
        assert [v.seed for v in variants] == [
            derive_seed(7, 0, 0, "tmd", ti, si)
            for ti in range(2)
            for si in range(2)
        ]
