"""The "timed-detector" problem end to end: spec, runner, identity."""

from __future__ import annotations

import dataclasses

import pytest

from repro.detectors.eventually_perfect import EventuallyPerfect
from repro.detectors.omega import Omega
from repro.detectors.perfect import Perfect
from repro.faults import CrashRule, FaultPlan
from repro.obs.ledger import spec_fingerprint
from repro.runner import ExperimentSpec, run_spec

LOCS = (0, 1, 2)


def timed_spec(**overrides):
    base = dict(
        detector="heartbeat",
        locations=LOCS,
        problem="timed-detector",
        crashes={2: 160},
        timed={"delay": {"jitter": 2}},
        seed=5,
        max_steps=600,
        label="t",
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestSpecValidation:
    def test_timed_requires_the_timed_problem(self):
        with pytest.raises(ValueError, match="timed-detector"):
            ExperimentSpec(
                detector="omega",
                locations=LOCS,
                problem="detector-trace",
                timed={"timeout": 2},
            )

    def test_detector_kwargs_are_rejected(self):
        with pytest.raises(ValueError, match="timed="):
            timed_spec(detector_kwargs={"timeout": 2})

    def test_implementation_must_be_named_by_string(self):
        with pytest.raises(ValueError, match="by string"):
            timed_spec(detector=EventuallyPerfect(LOCS))

    def test_unknown_implementation_fails_at_construction(self):
        with pytest.raises(ValueError, match="unknown timed implementation"):
            timed_spec(detector="gossip")

    def test_aliases_canonicalize_into_the_spec(self):
        assert timed_spec(detector="ping").detector == "ping-pong"
        assert timed_spec(detector="HB").detector == "heartbeat"

    def test_bad_timing_params_fail_at_construction(self):
        with pytest.raises(ValueError, match="timout"):
            timed_spec(timed={"timout": 2})

    def test_fault_plan_is_supported(self):
        spec = timed_spec(fault_plan=FaultPlan.uniform(drop_p=1.0))
        assert spec.resolve_fault_plan().is_bound


class TestResolution:
    def test_resolve_afd_is_the_target_class(self):
        assert isinstance(timed_spec().resolve_afd(), EventuallyPerfect)
        assert isinstance(
            timed_spec(detector="ping-pong").resolve_afd(), Perfect
        )
        assert isinstance(
            timed_spec(detector="leader-lease").resolve_afd(), Omega
        )

    def test_meta_carries_the_full_timing_identity(self):
        meta = dict(timed_spec(timed={"timeout": 4}).meta())
        assert meta["timed"]["timeout"] == 4
        assert meta["timed"]["delay"] == {"base": 1}

    def test_fingerprint_tracks_timing_params(self):
        # The timed knobs are cache/ledger identity: change a timeout,
        # change the key.
        a = spec_fingerprint(timed_spec(timed={"timeout": 4}))
        b = spec_fingerprint(timed_spec(timed={"timeout": 5}))
        c = spec_fingerprint(timed_spec(timed={"timeout": 4}))
        assert a != b
        assert a == c


class TestRunSpec:
    def test_conformant_run(self):
        result = run_spec(timed_spec())
        assert result.problem == "timed-detector"
        assert result.fd_ok and result.solved
        assert result.conformance == {"oracle": "afd-validity", "ok": True}
        assert result.steps == 600
        assert result.messages_sent > 0
        assert result.error is None

    def test_violating_run_reports_the_localized_verdict(self):
        result = run_spec(timed_spec(detector="ping-pong", timed={"timeout": 2, "delay": {"jitter": 2}}))
        assert not result.fd_ok and not result.solved
        verdict = result.conformance
        assert verdict["oracle"] == "afd-validity"
        assert not verdict["ok"]
        assert 0 <= verdict["violation_index"] < result.steps
        assert "suspects live location" in verdict["reason"]

    def test_non_timed_results_have_no_conformance(self):
        result = run_spec(
            ExperimentSpec(
                detector="omega",
                locations=LOCS,
                problem="detector-trace",
                max_steps=40,
            )
        )
        assert result.conformance is None

    def test_compiled_and_interpreted_runs_agree(self):
        spec = timed_spec(fault_plan=FaultPlan.uniform(drop_p=0.3))
        interpreted = run_spec(dataclasses.replace(spec, compiled=False))
        compiled = run_spec(dataclasses.replace(spec, compiled=True))
        det = lambda r: dataclasses.replace(r, wall_s=0.0)  # noqa: E731
        assert det(interpreted) == det(compiled)

    def test_at_step_crash_rules_inject(self):
        plan = FaultPlan(
            crash_rules=(
                CrashRule(trigger="at-step", location=2, param=160),
            )
        )
        with_rule = run_spec(timed_spec(crashes={}, fault_plan=plan))
        with_pattern = run_spec(timed_spec())
        det = lambda r: dataclasses.replace(r, wall_s=0.0)  # noqa: E731
        assert det(with_rule) == det(with_pattern)

    def test_event_triggered_crash_rules_are_rejected(self):
        plan = FaultPlan(
            crash_rules=(
                CrashRule(trigger="on-first-fd-output", location=2),
            )
        )
        with pytest.raises(ValueError, match="at-step"):
            run_spec(timed_spec(fault_plan=plan))

    def test_run_is_a_pure_function_of_the_spec(self):
        det = lambda r: dataclasses.replace(r, wall_s=0.0)  # noqa: E731
        assert det(run_spec(timed_spec())) == det(run_spec(timed_spec()))
        # ...and the seed is load-bearing for the fault/delay draws.
        a = run_spec(timed_spec(detector="ping-pong", timed={"timeout": 4, "delay": {"jitter": 2}}, seed=1))
        b = run_spec(timed_spec(detector="ping-pong", timed={"timeout": 4, "delay": {"jitter": 2}}, seed=2))
        assert a.messages_sent != b.messages_sent or a.fd_ok != b.fd_ok
