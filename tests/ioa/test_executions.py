"""Tests for repro.ioa.executions: sequences, projections, executions."""

import pytest

from repro.ioa.actions import Action, BOTTOM
from repro.ioa.executions import (
    ActionSequence,
    Execution,
    Schedule,
    Trace,
    apply_schedule,
)
from repro.ioa.signature import FiniteActionSet, Signature
from repro.ioa.automaton import FunctionalAutomaton

A = Action("a", 0)
B = Action("b", 1)
C = Action("c", 0)


class TestActionSequence:
    def test_paper_indexing(self):
        t = ActionSequence([A, B])
        assert t.at(1) == A
        assert t.at(2) == B
        assert t.at(3) is BOTTOM
        assert t.at(0) is BOTTOM

    def test_projection(self):
        t = ActionSequence([A, B, C])
        assert list(t.project(lambda a: a.location == 0)) == [A, C]
        assert list(t.project([B])) == [B]
        assert list(t.project(FiniteActionSet([A, B]))) == [A, B]

    def test_projection_preserves_type(self):
        t = Trace([A, B])
        assert isinstance(t.project([A]), Trace)

    def test_concat(self):
        t = ActionSequence([A]).concat([B])
        assert list(t) == [A, B]

    def test_prefix_relation(self):
        assert ActionSequence([A]).is_prefix_of(ActionSequence([A, B]))
        assert not ActionSequence([B]).is_prefix_of(ActionSequence([A, B]))

    def test_subsequence_relation(self):
        big = ActionSequence([A, B, C])
        assert ActionSequence([A, C]).is_subsequence_of(big)
        assert not ActionSequence([C, A]).is_subsequence_of(big)

    def test_equality_with_lists(self):
        assert ActionSequence([A, B]) == [A, B]
        assert ActionSequence([A]) == ActionSequence([A])

    def test_slicing(self):
        t = ActionSequence([A, B, C])
        assert list(t[1:]) == [B, C]
        assert t[0] == A

    def test_first_index_of(self):
        t = ActionSequence([A, B, C])
        assert t.first_index_of(lambda a: a.location == 1) == 1
        assert t.first_index_of(lambda a: a.name == "zzz") is None


def make_machine():
    """Automaton: output `a` toggles a bit; input `b` always applicable."""
    return FunctionalAutomaton(
        name="m",
        signature=Signature(
            inputs=FiniteActionSet([B]), outputs=FiniteActionSet([A])
        ),
        initial=0,
        transition=lambda s, act: 1 - s if act == A else s,
        enabled_fn=lambda s: [A] if s == 0 else [],
    )


class TestExecution:
    def test_null_execution(self):
        e = Execution([0], [])
        assert e.is_null()
        assert e.first_state == e.final_state == 0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Execution([0, 1], [])

    def test_steps(self):
        e = Execution([0, 1, 0], [A, A])
        assert list(e.steps()) == [(0, A, 1), (1, A, 0)]

    def test_schedule_and_trace(self):
        m = make_machine()
        e = Execution([0, 1], [A])
        assert list(e.schedule()) == [A]
        assert list(e.trace(m)) == [A]

    def test_trace_filters_non_external(self):
        m = make_machine()
        internal = Action("hidden", 0)
        e = Execution([0, 0, 1], [internal, A])
        assert list(e.trace(m)) == [A]

    def test_prefix(self):
        e = Execution([0, 1, 0], [A, A])
        p = e.prefix(1)
        assert len(p) == 1
        assert p.final_state == 1
        with pytest.raises(ValueError):
            e.prefix(5)

    def test_concat(self):
        e1 = Execution([0, 1], [A])
        e2 = Execution([1, 1], [B])
        joined = e1.concat(e2)
        assert len(joined) == 2
        assert joined.final_state == 1

    def test_concat_requires_matching_states(self):
        e1 = Execution([0, 1], [A])
        e2 = Execution([0, 0], [B])
        with pytest.raises(ValueError):
            e1.concat(e2)

    def test_extend(self):
        e = Execution([0], []).extend(A, 1)
        assert len(e) == 1
        assert e.final_state == 1

    def test_is_execution_of(self):
        m = make_machine()
        good = Execution([0, 1], [A])
        assert good.is_execution_of(m)
        bad_state = Execution([0, 0], [A])
        assert not bad_state.is_execution_of(m)
        not_enabled = Execution([1, 0], [A])
        assert not not_enabled.is_execution_of(m)


class TestApplySchedule:
    def test_applicable_schedule(self):
        m = make_machine()
        e = apply_schedule(m, [A, B])
        assert e.final_state == 1
        assert list(e.schedule()) == [A, B]

    def test_inapplicable_schedule_raises(self):
        m = make_machine()
        with pytest.raises(ValueError, match="not applicable"):
            apply_schedule(m, [A, A])  # second `a` disabled in state 1

    def test_from_custom_start(self):
        m = make_machine()
        e = apply_schedule(m, [B], start=1)
        assert e.first_state == 1
