"""Tests for repro.ioa.signature."""

import pytest

from repro.ioa.actions import Action
from repro.ioa.signature import (
    EmptyActionSet,
    FiniteActionSet,
    PredicateActionSet,
    Signature,
    UnionActionSet,
)

A = Action("a", 0)
B = Action("b", 1)
C = Action("c", 2)


class TestActionSets:
    def test_empty(self):
        s = EmptyActionSet()
        assert A not in s
        assert s.is_finite()
        assert list(s.enumerate()) == []

    def test_finite_membership(self):
        s = FiniteActionSet([A, B])
        assert A in s
        assert B in s
        assert C not in s

    def test_finite_enumerate_sorted(self):
        s = FiniteActionSet([B, A])
        assert list(s.enumerate()) == [A, B]

    def test_finite_len(self):
        assert len(FiniteActionSet([A, B, A])) == 2

    def test_predicate(self):
        s = PredicateActionSet(lambda a: a.name == "a", "name==a")
        assert A in s
        assert B not in s
        assert not s.is_finite()
        with pytest.raises(TypeError):
            list(s.enumerate())

    def test_union_membership(self):
        s = UnionActionSet([FiniteActionSet([A]), FiniteActionSet([B])])
        assert A in s and B in s and C not in s

    def test_union_finiteness(self):
        finite = UnionActionSet([FiniteActionSet([A]), FiniteActionSet([B])])
        assert finite.is_finite()
        assert set(finite.enumerate()) == {A, B}
        mixed = UnionActionSet(
            [FiniteActionSet([A]), PredicateActionSet(lambda a: False, "")]
        )
        assert not mixed.is_finite()

    def test_union_enumerate_dedupes(self):
        s = UnionActionSet([FiniteActionSet([A, B]), FiniteActionSet([A])])
        assert sorted(s.enumerate()) == [A, B]

    def test_or_operator(self):
        s = FiniteActionSet([A]) | FiniteActionSet([B])
        assert A in s and B in s


class TestSignature:
    def make(self):
        return Signature(
            inputs=FiniteActionSet([A]),
            outputs=FiniteActionSet([B]),
            internals=FiniteActionSet([C]),
        )

    def test_classification(self):
        sig = self.make()
        assert sig.is_input(A) and not sig.is_input(B)
        assert sig.is_output(B)
        assert sig.is_internal(C)

    def test_external(self):
        sig = self.make()
        assert sig.is_external(A)
        assert sig.is_external(B)
        assert not sig.is_external(C)

    def test_locally_controlled(self):
        sig = self.make()
        assert sig.is_locally_controlled(B)
        assert sig.is_locally_controlled(C)
        assert not sig.is_locally_controlled(A)

    def test_contains(self):
        sig = self.make()
        assert A in sig and B in sig and C in sig
        assert Action("zzz", 0) not in sig

    def test_classify(self):
        sig = self.make()
        assert sig.classify(A) == "input"
        assert sig.classify(B) == "output"
        assert sig.classify(C) == "internal"
        assert sig.classify(Action("zzz", 0)) is None

    def test_default_empty(self):
        sig = Signature()
        assert A not in sig
