"""Tests for repro.ioa.hiding."""

from repro.ioa.actions import Action
from repro.ioa.automaton import FunctionalAutomaton
from repro.ioa.executions import Execution
from repro.ioa.hiding import hide
from repro.ioa.signature import FiniteActionSet, Signature

OUT = Action("out", 0)
AUX = Action("aux", 0)


def machine():
    return FunctionalAutomaton(
        name="m",
        signature=Signature(outputs=FiniteActionSet([OUT, AUX])),
        initial=0,
        transition=lambda s, a: s + 1,
        enabled_fn=lambda s: [OUT, AUX] if s < 2 else [],
    )


class TestHiding:
    def test_hidden_output_becomes_internal(self):
        h = hide(machine(), [AUX])
        assert h.signature.is_internal(AUX)
        assert not h.signature.is_output(AUX)
        assert h.signature.is_output(OUT)

    def test_hidden_action_leaves_traces(self):
        h = hide(machine(), [AUX])
        e = Execution([0, 1, 2], [AUX, OUT])
        assert list(e.trace(h)) == [OUT]

    def test_behavior_unchanged(self):
        base = machine()
        h = hide(base, [AUX])
        assert h.initial_state() == base.initial_state()
        assert h.apply(0, AUX) == base.apply(0, AUX)
        assert set(h.enabled_locally(0)) == set(base.enabled_locally(0))
        assert h.tasks() == base.tasks()
        assert h.task_of(OUT) == base.task_of(OUT)
        assert h.enabled_in_task(0, "main") == base.enabled_in_task(0, "main")

    def test_hide_with_predicate(self):
        h = hide(machine(), lambda a: a.name == "aux")
        assert h.signature.is_internal(AUX)
        assert h.signature.is_output(OUT)

    def test_hide_only_affects_outputs(self):
        """Hiding something that is not an output does not create a
        phantom internal action."""
        h = hide(machine(), [Action("never", 0)])
        assert not h.signature.is_internal(Action("never", 0))
