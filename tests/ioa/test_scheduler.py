"""Tests for repro.ioa.scheduler: policies, injections, stopping."""

import pytest

from repro.ioa.actions import Action
from repro.ioa.automaton import FunctionalAutomaton
from repro.ioa.scheduler import (
    AdversarialPolicy,
    Injection,
    RandomPolicy,
    RoundRobinPolicy,
    Scheduler,
)
from repro.ioa.signature import FiniteActionSet, Signature

T1 = Action("t1", 0)
T2 = Action("t2", 1)
IN = Action("in", 0)


def two_task_machine():
    """Counts events of two independent tasks; input `in` is absorbed."""
    return FunctionalAutomaton(
        name="m",
        signature=Signature(
            inputs=FiniteActionSet([IN]),
            outputs=FiniteActionSet([T1, T2]),
        ),
        initial=(0, 0),
        transition=lambda s, a: (
            (s[0] + 1, s[1]) if a == T1
            else (s[0], s[1] + 1) if a == T2
            else s
        ),
        enabled_fn=lambda s: [T1, T2],
        task_names=("one", "two"),
        task_assignment=lambda a: "one" if a == T1 else "two",
    )


def finite_machine(limit=3):
    return FunctionalAutomaton(
        name="f",
        signature=Signature(
            inputs=FiniteActionSet([IN]), outputs=FiniteActionSet([T1])
        ),
        initial=0,
        transition=lambda s, a: s + 1 if a == T1 else s,
        enabled_fn=lambda s: [T1] if s < limit else [],
    )


class TestRoundRobin:
    def test_alternates_tasks(self):
        e = Scheduler(RoundRobinPolicy()).run(two_task_machine(), 6)
        assert list(e.actions) == [T1, T2, T1, T2, T1, T2]

    def test_skips_disabled_tasks(self):
        e = Scheduler(RoundRobinPolicy()).run(finite_machine(2), 10)
        # Quiesces after 2 steps even though max_steps is 10.
        assert list(e.actions) == [T1, T1]

    def test_deterministic_across_runs(self):
        s = Scheduler(RoundRobinPolicy())
        e1 = s.run(two_task_machine(), 10)
        e2 = s.run(two_task_machine(), 10)
        assert list(e1.actions) == list(e2.actions)


class TestRandomPolicy:
    def test_reproducible_with_seed(self):
        e1 = Scheduler(RandomPolicy(seed=42)).run(two_task_machine(), 20)
        e2 = Scheduler(RandomPolicy(seed=42)).run(two_task_machine(), 20)
        assert list(e1.actions) == list(e2.actions)

    def test_different_seeds_differ(self):
        runs = {
            tuple(
                Scheduler(RandomPolicy(seed=s)).run(
                    two_task_machine(), 20
                ).actions
            )
            for s in range(5)
        }
        assert len(runs) > 1

    def test_statistically_fair(self):
        e = Scheduler(RandomPolicy(seed=1)).run(two_task_machine(), 200)
        c1, c2 = e.final_state
        assert c1 > 50 and c2 > 50


class TestAdversarialPolicy:
    def test_adversary_choice_respected(self):
        def always_t2(state, options, step):
            for task, enabled in options:
                if task == "two":
                    return enabled[0]
            return None

        e = Scheduler(AdversarialPolicy(always_t2)).run(
            two_task_machine(), 5
        )
        assert list(e.actions) == [T2] * 5

    def test_fallback_on_abstain(self):
        e = Scheduler(
            AdversarialPolicy(lambda state, options, step: None)
        ).run(two_task_machine(), 4)
        assert len(e) == 4  # round-robin fallback kept things moving

    def test_chooser_receives_current_state(self):
        """Regression: the chooser's first argument is the scheduler's
        *current state*, as the docstring and type annotation promise.
        AdversarialPolicy used to pass the automaton object instead,
        silently breaking every chooser written against the contract."""
        seen = []

        def chooser(state, options, step):
            seen.append(state)
            return None  # abstain: fallback keeps the run moving

        machine = two_task_machine()
        e = Scheduler(AdversarialPolicy(chooser)).run(machine, 4)
        assert len(seen) == 4
        for state in seen:
            assert not isinstance(state, type(machine))
        # The k-th call sees the state the k-th action fires in.
        assert seen == list(e.states[:4])

    def test_chooser_state_tracks_run_progress(self):
        """The adversary can steer based on the state it is handed."""

        def prefer_t1_until_two(state, options, step):
            count_t1, _count_t2 = state
            wanted = "one" if count_t1 < 2 else "two"
            for task, enabled in options:
                if task == wanted:
                    return enabled[0]
            return None

        e = Scheduler(AdversarialPolicy(prefer_t1_until_two)).run(
            two_task_machine(), 5
        )
        assert list(e.actions) == [T1, T1, T2, T2, T2]


class TestInjections:
    def test_injection_fires_at_step(self):
        e = Scheduler().run(
            two_task_machine(),
            4,
            injections=[Injection(2, IN)],
        )
        assert e.actions[2] == IN

    def test_injection_into_quiescent_system(self):
        """Injections fast-forward when nothing else is enabled."""
        e = Scheduler().run(
            finite_machine(1),
            10,
            injections=[Injection(7, IN)],
        )
        assert list(e.actions) == [T1, IN]

    def test_injections_beyond_run_are_dropped(self):
        e = Scheduler().run(
            finite_machine(1), 10, injections=[]
        )
        assert list(e.actions) == [T1]

    def test_unenabled_injection_raises(self):
        bad = Action("not-in-signature", 5)
        with pytest.raises(ValueError):
            Scheduler().run(
                finite_machine(3), 10, injections=[Injection(0, bad)]
            )


class TestStopping:
    def test_stop_when(self):
        e = Scheduler().run(
            finite_machine(10),
            100,
            stop_when=lambda state, step: state >= 4,
        )
        assert e.final_state == 4

    def test_run_to_quiescence_ok(self):
        e = Scheduler().run_to_quiescence(finite_machine(3), 50)
        assert e.final_state == 3

    def test_run_to_quiescence_raises_when_bound_hit(self):
        with pytest.raises(RuntimeError, match="did not quiesce"):
            Scheduler().run_to_quiescence(two_task_machine(), 10)
