"""Tests for repro.ioa.automaton (FunctionalAutomaton as the vehicle)."""

import pytest

from repro.ioa.actions import Action
from repro.ioa.automaton import FunctionalAutomaton
from repro.ioa.signature import FiniteActionSet, Signature

INC = Action("inc", 0)
RESET = Action("reset", 0)


def counter(limit=3):
    """A deterministic counter automaton: outputs `inc` until `limit`,
    input `reset` returns to 0."""
    return FunctionalAutomaton(
        name="counter",
        signature=Signature(
            inputs=FiniteActionSet([RESET]),
            outputs=FiniteActionSet([INC]),
        ),
        initial=0,
        transition=lambda s, a: 0 if a == RESET else s + 1,
        enabled_fn=lambda s: [INC] if s < limit else [],
    )


class TestFunctionalAutomaton:
    def test_initial_state(self):
        assert counter().initial_state() == 0

    def test_apply(self):
        c = counter()
        assert c.apply(0, INC) == 1
        assert c.apply(2, RESET) == 0

    def test_enabled_locally(self):
        c = counter(limit=2)
        assert list(c.enabled_locally(0)) == [INC]
        assert list(c.enabled_locally(2)) == []

    def test_inputs_always_enabled(self):
        c = counter()
        assert c.enabled(0, RESET)
        assert c.enabled(99, RESET)

    def test_local_enabled_respects_state(self):
        c = counter(limit=1)
        assert c.enabled(0, INC)
        assert not c.enabled(1, INC)

    def test_default_single_task(self):
        c = counter()
        assert c.tasks() == ("main",)
        assert c.task_of(INC) == "main"

    def test_enabled_in_task(self):
        c = counter(limit=1)
        assert c.enabled_in_task(0, "main") == (INC,)
        assert c.enabled_in_task(1, "main") == ()

    def test_task_enabled(self):
        c = counter(limit=1)
        assert c.task_enabled(0, "main")
        assert not c.task_enabled(1, "main")

    def test_participates(self):
        c = counter()
        assert c.participates(INC)
        assert c.participates(RESET)
        assert not c.participates(Action("zzz", 0))

    def test_custom_tasks(self):
        a1 = Action("t1", 0)
        a2 = Action("t2", 0)
        auto = FunctionalAutomaton(
            name="two-task",
            signature=Signature(outputs=FiniteActionSet([a1, a2])),
            initial=0,
            transition=lambda s, a: s,
            enabled_fn=lambda s: [a1, a2],
            task_names=("one", "two"),
            task_assignment=lambda a: "one" if a == a1 else "two",
        )
        assert auto.enabled_in_task(0, "one") == (a1,)
        assert auto.enabled_in_task(0, "two") == (a2,)


class TestDefaultTaskOf:
    """The default task_of can express exactly two partitions: no tasks
    (everything obligation-free) and one task (everything in it).  It
    used to silently return ``tasks()[0]`` for *any* task structure,
    collapsing multi-task automata into their first task."""

    def test_obligation_free_output_maps_to_none(self):
        auto = FunctionalAutomaton(
            name="free",
            signature=Signature(outputs=FiniteActionSet([INC])),
            initial=0,
            transition=lambda s, a: s,
            enabled_fn=lambda s: [INC],
            task_names=(),
        )
        assert auto.tasks() == ()
        assert auto.task_of(INC) is None

    def test_input_maps_to_none(self):
        assert counter().task_of(RESET) is None

    def test_multi_task_without_override_raises(self):
        a1 = Action("t1", 0)
        a2 = Action("t2", 0)
        auto = FunctionalAutomaton(
            name="ambiguous",
            signature=Signature(outputs=FiniteActionSet([a1, a2])),
            initial=0,
            transition=lambda s, a: s,
            enabled_fn=lambda s: [a1, a2],
            task_names=("one", "two"),
        )
        with pytest.raises(NotImplementedError, match="task_of"):
            auto.task_of(a1)


class TestEnabledByTask:
    def test_snapshot_matches_enabled_in_task(self):
        c = counter(limit=1)
        assert c.enabled_by_task(0) == {"main": (INC,)}
        assert c.enabled_by_task(1) == {}

    def test_tasks_with_nothing_enabled_are_absent(self):
        a1 = Action("t1", 0)
        a2 = Action("t2", 0)
        auto = FunctionalAutomaton(
            name="two-task",
            signature=Signature(outputs=FiniteActionSet([a1, a2])),
            initial=0,
            transition=lambda s, a: s,
            enabled_fn=lambda s: [a2] if s else [a1, a2],
            task_names=("one", "two"),
            task_assignment=lambda a: "one" if a == a1 else "two",
        )
        assert auto.enabled_by_task(0) == {"one": (a1,), "two": (a2,)}
        assert auto.enabled_by_task(1) == {"two": (a2,)}

    def test_obligation_free_actions_excluded(self):
        auto = FunctionalAutomaton(
            name="free",
            signature=Signature(outputs=FiniteActionSet([INC])),
            initial=0,
            transition=lambda s, a: s,
            enabled_fn=lambda s: [INC],
            task_names=(),
        )
        assert auto.enabled_by_task(0) == {}
