"""Tests for repro.ioa.composition: synchronization, projection, tasks."""

import pytest

from repro.ioa.actions import Action
from repro.ioa.automaton import FunctionalAutomaton
from repro.ioa.composition import Composition, CompositionError, compose
from repro.ioa.executions import apply_schedule
from repro.ioa.signature import FiniteActionSet, Signature

PING = Action("ping", 0)
PONG = Action("pong", 1)


def pinger():
    """Outputs ping when its bit is 0; receiving pong resets the bit."""
    return FunctionalAutomaton(
        name="pinger",
        signature=Signature(
            inputs=FiniteActionSet([PONG]), outputs=FiniteActionSet([PING])
        ),
        initial=0,
        transition=lambda s, a: 1 if a == PING else 0,
        enabled_fn=lambda s: [PING] if s == 0 else [],
    )


def ponger():
    """Outputs pong after seeing ping."""
    return FunctionalAutomaton(
        name="ponger",
        signature=Signature(
            inputs=FiniteActionSet([PING]), outputs=FiniteActionSet([PONG])
        ),
        initial=0,
        transition=lambda s, a: 1 if a == PING else 0,
        enabled_fn=lambda s: [PONG] if s == 1 else [],
    )


class TestCompositionConstruction:
    def test_requires_components(self):
        with pytest.raises(CompositionError):
            Composition([])

    def test_requires_unique_names(self):
        with pytest.raises(CompositionError, match="unique"):
            Composition([pinger(), pinger()])

    def test_detects_shared_outputs(self):
        with pytest.raises(CompositionError, match="output of several"):
            Composition([pinger(), pinger().__class__(
                name="pinger2",
                signature=Signature(outputs=FiniteActionSet([PING])),
                initial=0,
                transition=lambda s, a: s,
                enabled_fn=lambda s: [],
            )])

    def test_signature_classification(self):
        c = compose(pinger(), ponger())
        # ping is an output of pinger: matched input becomes composition
        # output, not input.
        assert c.signature.is_output(PING)
        assert c.signature.is_output(PONG)
        assert not c.signature.is_input(PING)


class TestCompositionDynamics:
    def test_synchronized_step(self):
        c = compose(pinger(), ponger())
        s0 = c.initial_state()
        assert s0 == (0, 0)
        s1 = c.apply(s0, PING)
        assert s1 == (1, 1)  # both observed ping
        s2 = c.apply(s1, PONG)
        assert s2 == (0, 0)

    def test_enabled_locally_union(self):
        c = compose(pinger(), ponger())
        assert set(c.enabled_locally((0, 0))) == {PING}
        assert set(c.enabled_locally((1, 1))) == {PONG}

    def test_enabled_checks_owner(self):
        c = compose(pinger(), ponger())
        assert c.enabled((0, 0), PING)
        assert not c.enabled((1, 1), PING)

    def test_ping_pong_alternation(self):
        c = compose(pinger(), ponger())
        e = apply_schedule(c, [PING, PONG, PING, PONG])
        assert e.final_state == (0, 0)

    def test_owner_of(self):
        c = compose(pinger(), ponger())
        assert c.owner_of(PING).name == "pinger"
        assert c.owner_of(PONG).name == "ponger"
        assert c.owner_of(Action("other", 9)) is None


class TestCompositionTasks:
    def test_namespaced_tasks(self):
        c = compose(pinger(), ponger())
        assert c.tasks() == ("pinger:main", "ponger:main")

    def test_task_of(self):
        c = compose(pinger(), ponger())
        assert c.task_of(PING) == "pinger:main"
        assert c.task_of(PONG) == "ponger:main"

    def test_enabled_in_task(self):
        c = compose(pinger(), ponger())
        assert c.enabled_in_task((0, 0), "pinger:main") == (PING,)
        assert c.enabled_in_task((0, 0), "ponger:main") == ()

    def test_split_task(self):
        c = compose(pinger(), ponger())
        component, local = c.split_task("ponger:main")
        assert component.name == "ponger"
        assert local == "main"
        with pytest.raises(KeyError):
            c.split_task("nobody:main")


class TestProjection:
    def test_project_execution(self):
        """Theorem 8.1: the projection of an execution is an execution of
        the component."""
        p1, p2 = pinger(), ponger()
        c = compose(p1, p2)
        e = apply_schedule(c, [PING, PONG, PING])
        proj = c.project_execution(e, p1)
        assert proj.is_execution_of(p1)
        proj2 = c.project_execution(e, p2)
        assert proj2.is_execution_of(p2)

    def test_component_state(self):
        p1, p2 = pinger(), ponger()
        c = compose(p1, p2)
        state = c.apply(c.initial_state(), PING)
        assert c.component_state(state, p1) == 1
        assert c.component_state(state, p2) == 1
