"""Tests for repro.ioa.composition: synchronization, projection, tasks."""

import pytest

from repro.ioa.actions import Action
from repro.ioa.automaton import FunctionalAutomaton
from repro.ioa.composition import (
    Composition,
    CompositionError,
    compose,
    enabled_cache_default,
    set_enabled_cache_default,
)
from repro.ioa.executions import apply_schedule
from repro.ioa.signature import FiniteActionSet, Signature

PING = Action("ping", 0)
PONG = Action("pong", 1)


def pinger():
    """Outputs ping when its bit is 0; receiving pong resets the bit."""
    return FunctionalAutomaton(
        name="pinger",
        signature=Signature(
            inputs=FiniteActionSet([PONG]), outputs=FiniteActionSet([PING])
        ),
        initial=0,
        transition=lambda s, a: 1 if a == PING else 0,
        enabled_fn=lambda s: [PING] if s == 0 else [],
    )


def ponger():
    """Outputs pong after seeing ping."""
    return FunctionalAutomaton(
        name="ponger",
        signature=Signature(
            inputs=FiniteActionSet([PING]), outputs=FiniteActionSet([PONG])
        ),
        initial=0,
        transition=lambda s, a: 1 if a == PING else 0,
        enabled_fn=lambda s: [PONG] if s == 1 else [],
    )


class TestCompositionConstruction:
    def test_requires_components(self):
        with pytest.raises(CompositionError):
            Composition([])

    def test_requires_unique_names(self):
        with pytest.raises(CompositionError, match="unique"):
            Composition([pinger(), pinger()])

    def test_detects_shared_outputs(self):
        with pytest.raises(CompositionError, match="output of several"):
            Composition([pinger(), pinger().__class__(
                name="pinger2",
                signature=Signature(outputs=FiniteActionSet([PING])),
                initial=0,
                transition=lambda s, a: s,
                enabled_fn=lambda s: [],
            )])

    def test_signature_classification(self):
        c = compose(pinger(), ponger())
        # ping is an output of pinger: matched input becomes composition
        # output, not input.
        assert c.signature.is_output(PING)
        assert c.signature.is_output(PONG)
        assert not c.signature.is_input(PING)


class TestCompositionDynamics:
    def test_synchronized_step(self):
        c = compose(pinger(), ponger())
        s0 = c.initial_state()
        assert s0 == (0, 0)
        s1 = c.apply(s0, PING)
        assert s1 == (1, 1)  # both observed ping
        s2 = c.apply(s1, PONG)
        assert s2 == (0, 0)

    def test_enabled_locally_union(self):
        c = compose(pinger(), ponger())
        assert set(c.enabled_locally((0, 0))) == {PING}
        assert set(c.enabled_locally((1, 1))) == {PONG}

    def test_enabled_checks_owner(self):
        c = compose(pinger(), ponger())
        assert c.enabled((0, 0), PING)
        assert not c.enabled((1, 1), PING)

    def test_ping_pong_alternation(self):
        c = compose(pinger(), ponger())
        e = apply_schedule(c, [PING, PONG, PING, PONG])
        assert e.final_state == (0, 0)

    def test_owner_of(self):
        c = compose(pinger(), ponger())
        assert c.owner_of(PING).name == "pinger"
        assert c.owner_of(PONG).name == "ponger"
        assert c.owner_of(Action("other", 9)) is None


class TestCompositionTasks:
    def test_namespaced_tasks(self):
        c = compose(pinger(), ponger())
        assert c.tasks() == ("pinger:main", "ponger:main")

    def test_task_of(self):
        c = compose(pinger(), ponger())
        assert c.task_of(PING) == "pinger:main"
        assert c.task_of(PONG) == "ponger:main"

    def test_enabled_in_task(self):
        c = compose(pinger(), ponger())
        assert c.enabled_in_task((0, 0), "pinger:main") == (PING,)
        assert c.enabled_in_task((0, 0), "ponger:main") == ()

    def test_split_task(self):
        c = compose(pinger(), ponger())
        component, local = c.split_task("ponger:main")
        assert component.name == "ponger"
        assert local == "main"
        with pytest.raises(KeyError):
            c.split_task("nobody:main")


class TestEnabledCacheLayer:
    """The dispatch maps and per-component enabled cache are pure
    accelerations: every observable must match the brute-force path."""

    def _states(self):
        return [(0, 0), (1, 1), (1, 0), (0, 1)]

    def test_cached_matches_uncached_everywhere(self):
        cached = compose(pinger(), ponger())
        uncached = Composition(
            [pinger(), ponger()], use_enabled_cache=False
        )
        for state in self._states():
            assert cached.enabled_by_task(state) == (
                uncached.enabled_by_task(state)
            )
            for task in cached.tasks():
                assert cached.enabled_in_task(state, task) == (
                    uncached.enabled_in_task(state, task)
                )
            for action in (PING, PONG):
                assert cached.enabled(state, action) == (
                    uncached.enabled(state, action)
                )
                if cached.enabled(state, action):
                    assert cached.apply(state, action) == (
                        uncached.apply(state, action)
                    )
        for action in (PING, PONG):
            assert cached.owner_of(action) is uncached.owner_of(action) or (
                cached.owner_of(action).name == uncached.owner_of(action).name
            )
            assert cached.task_of(action) == uncached.task_of(action)
            assert cached.participants(action) == uncached.participants(action)

    def test_snapshot_covers_all_enabled_tasks(self):
        c = compose(pinger(), ponger())
        assert c.enabled_by_task((0, 0)) == {"pinger:main": (PING,)}
        assert c.enabled_by_task((1, 1)) == {"ponger:main": (PONG,)}
        assert c.enabled_by_task((1, 0)) == {}

    def test_repeated_queries_hit_memo(self):
        c = compose(pinger(), ponger())
        first = c.enabled_by_task((0, 0))
        assert c.enabled_by_task((0, 0)) == first
        assert len(c._enabled_memo) == 2  # one entry per component piece
        c.enabled_by_task((1, 1))
        assert len(c._enabled_memo) == 4

    def test_dispatch_memoizes_participants(self):
        c = compose(pinger(), ponger())
        c.apply((0, 0), PING)
        assert PING in c._dispatch_memo
        owner_index, participants = c._dispatch_memo[PING]
        assert owner_index == 0
        assert participants == (0, 1)  # ping synchronizes both

    def test_uncached_composition_keeps_memos_empty(self):
        c = Composition([pinger(), ponger()], use_enabled_cache=False)
        c.apply((0, 0), PING)
        c.enabled_by_task((0, 0))
        c.task_of(PING)
        assert not c._dispatch_memo
        assert not c._enabled_memo
        assert not c._task_memo

    def test_unknown_action_dispatch_not_an_error(self):
        c = compose(pinger(), ponger())
        other = Action("zzz", 9)
        assert c.owner_of(other) is None
        assert c.participants(other) == []
        assert c.task_of(other) is None
        assert not c.enabled((0, 0), other)

    def test_ambiguous_owner_raises_every_time(self):
        """The lazy one-owner check (predicate signatures escape the
        constructor's enumerable scan) must not be memoized away."""
        from repro.ioa.signature import PredicateActionSet

        shared = Action("shared", 0)

        def claims_shared(name):
            return FunctionalAutomaton(
                name=name,
                signature=Signature(
                    outputs=PredicateActionSet(
                        lambda a: a.name == "shared", "shared claimer"
                    )
                ),
                initial=0,
                transition=lambda s, a: s,
                enabled_fn=lambda s: [],
            )

        c = Composition([claims_shared("left"), claims_shared("right")])
        for _ in range(2):
            with pytest.raises(CompositionError, match="several"):
                c.apply((0, 0), shared)
        assert shared not in c._dispatch_memo

    def test_set_enabled_cache_default_round_trip(self):
        previous = set_enabled_cache_default(False)
        try:
            assert enabled_cache_default() is False
            c = compose(pinger(), ponger())
            assert not c._use_cache
            c.enabled_by_task((0, 0))
            assert not c._enabled_memo
        finally:
            set_enabled_cache_default(previous)
        assert enabled_cache_default() is previous

    def test_instance_override_beats_default(self):
        previous = set_enabled_cache_default(False)
        try:
            c = Composition(
                [pinger(), ponger()], use_enabled_cache=True
            )
            assert c._use_cache
        finally:
            set_enabled_cache_default(previous)

    def test_cache_cap_clears_memo(self):
        c = compose(pinger(), ponger())
        c.ENABLED_CACHE_CAP = 2
        for state in self._states():
            c.enabled_by_task(state)
        assert len(c._enabled_memo) <= 2
        # Behaviour is still correct after the clear.
        assert c.enabled_by_task((0, 0)) == {"pinger:main": (PING,)}

    def test_system_builder_toggle(self):
        from repro.system.network import SystemBuilder

        builder = SystemBuilder((0, 1))
        assert builder.use_enabled_cache is None
        assert builder.without_enabled_cache() is builder
        assert builder.use_enabled_cache is False


class TestProjection:
    def test_project_execution(self):
        """Theorem 8.1: the projection of an execution is an execution of
        the component."""
        p1, p2 = pinger(), ponger()
        c = compose(p1, p2)
        e = apply_schedule(c, [PING, PONG, PING])
        proj = c.project_execution(e, p1)
        assert proj.is_execution_of(p1)
        proj2 = c.project_execution(e, p2)
        assert proj2.is_execution_of(p2)

    def test_component_state(self):
        p1, p2 = pinger(), ponger()
        c = compose(p1, p2)
        state = c.apply(c.initial_state(), PING)
        assert c.component_state(state, p1) == 1
        assert c.component_state(state, p2) == 1
