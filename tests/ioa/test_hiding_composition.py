"""Hiding interacts with composition: a hidden output no longer
synchronizes with same-named inputs (Section 2.3)."""

from repro.ioa.actions import Action
from repro.ioa.automaton import FunctionalAutomaton
from repro.ioa.composition import compose
from repro.ioa.hiding import hide
from repro.ioa.scheduler import Scheduler
from repro.ioa.signature import FiniteActionSet, Signature

TICK = Action("tick", 0)


def producer():
    return FunctionalAutomaton(
        name="producer",
        signature=Signature(outputs=FiniteActionSet([TICK])),
        initial=0,
        transition=lambda s, a: s + 1,
        enabled_fn=lambda s: [TICK] if s < 3 else [],
    )


def listener():
    return FunctionalAutomaton(
        name="listener",
        signature=Signature(inputs=FiniteActionSet([TICK])),
        initial=0,
        transition=lambda s, a: s + 1 if a == TICK else s,
        enabled_fn=lambda s: [],
    )


class TestHidingAndComposition:
    def test_exposed_output_synchronizes(self):
        system = compose(producer(), listener())
        execution = Scheduler().run(system, max_steps=10)
        _prod, heard = execution.final_state
        assert heard == 3

    def test_hide_after_compose_keeps_synchronization(self):
        """The correct order: compose first (tick synchronizes), then
        hide the composition's output — traces lose the tick, behavior
        keeps it."""
        system = hide(compose(producer(), listener()), [TICK])
        execution = Scheduler().run(system, max_steps=10)
        _prod, heard = execution.final_state
        assert heard == 3
        assert list(execution.trace(system)) == []
        assert len(execution) == 3

    def test_hide_before_compose_is_incompatible(self):
        """Hiding first makes tick internal to the producer; composing
        with an automaton that still inputs tick violates the
        compatibility rule (internal actions must be private) and is
        rejected."""
        import pytest

        from repro.ioa.composition import CompositionError

        with pytest.raises(CompositionError, match="internal action"):
            compose(hide(producer(), [TICK]), listener())

    def test_composition_signature_reflects_hiding(self):
        system = hide(compose(producer(), listener()), [TICK])
        assert system.signature.is_internal(TICK)
        assert not system.signature.is_output(TICK)


class TestHierarchyDot:
    def test_dot_renders_edges(self):
        from repro.analysis.hierarchy import hierarchy_dot

        dot = hierarchy_dot()
        assert dot.startswith("digraph afd_hierarchy")
        assert '"P" -> "Omega"' in dot
        assert '"W" -> "S"' in dot
        # Self-loops (Corollary 14) are omitted from the rendering.
        assert '"P" -> "P"' not in dot
