"""Tests for repro.ioa.actions."""

import pytest

from repro.ioa.actions import Action, BOTTOM, loc


class TestAction:
    def test_basic_construction(self):
        a = Action("crash", 2)
        assert a.name == "crash"
        assert a.location == 2
        assert a.payload == ()

    def test_payload(self):
        a = Action("send", 0, ("hello", 1))
        assert a.payload == ("hello", 1)

    def test_payload_must_be_tuple(self):
        with pytest.raises(TypeError):
            Action("send", 0, ["hello", 1])

    def test_equality_and_hash(self):
        a = Action("send", 0, ("m", 1))
        b = Action("send", 0, ("m", 1))
        c = Action("send", 0, ("m", 2))
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_ordering_is_total_on_simple_payloads(self):
        a = Action("a", 0)
        b = Action("b", 0)
        assert a < b
        assert min(b, a) == a

    def test_with_name(self):
        a = Action("fd-omega", 3, (1,))
        renamed = a.with_name("fd-omega'")
        assert renamed.name == "fd-omega'"
        assert renamed.location == 3
        assert renamed.payload == (1,)
        # Original untouched (immutability).
        assert a.name == "fd-omega"

    def test_with_location(self):
        a = Action("x", 1)
        assert a.with_location(5).location == 5
        assert a.with_location(None).location is None

    def test_str_rendering(self):
        assert str(Action("crash", 2)) == "crash()_2"
        assert "send" in str(Action("send", 0, ("m", 1)))

    def test_unlocated_action(self):
        a = Action("tick")
        assert a.location is None


class TestLoc:
    def test_loc_of_action(self):
        assert loc(Action("crash", 7)) == 7

    def test_loc_of_bottom_is_bottom(self):
        assert loc(BOTTOM) is None

    def test_loc_of_unlocated(self):
        assert loc(Action("tick")) is None
