"""Tests for repro.ioa.determinism."""

from repro.ioa.actions import Action
from repro.ioa.automaton import FunctionalAutomaton
from repro.ioa.determinism import (
    is_deterministic,
    is_task_deterministic,
    reachable_states,
    violations_of_task_determinism,
)
from repro.ioa.signature import FiniteActionSet, Signature
from repro.detectors.omega import OmegaAutomaton
from repro.system.channel import ChannelAutomaton
from repro.system.environment import ConsensusEnvironmentLocation

A1 = Action("a1", 0)
A2 = Action("a2", 0)


def nondeterministic_machine():
    """Two actions enabled in the same (single) task."""
    return FunctionalAutomaton(
        name="nd",
        signature=Signature(outputs=FiniteActionSet([A1, A2])),
        initial=0,
        transition=lambda s, a: min(s + 1, 3),
        enabled_fn=lambda s: [A1, A2] if s < 3 else [],
    )


class TestReachability:
    def test_reachable_states_explores(self):
        states = reachable_states(nondeterministic_machine())
        assert set(states) == {0, 1, 2, 3}

    def test_respects_bound(self):
        states = reachable_states(nondeterministic_machine(), max_states=2)
        assert len(states) == 2

    def test_extra_inputs_explored(self):
        reset = Action("reset", 0)
        m = FunctionalAutomaton(
            name="m",
            signature=Signature(
                inputs=FiniteActionSet([reset]),
                outputs=FiniteActionSet([A1]),
            ),
            initial=0,
            transition=lambda s, a: 9 if a == reset else s + 1,
            enabled_fn=lambda s: [A1] if s == 0 else [],
        )
        assert 9 in reachable_states(m, extra_inputs=[reset])


class TestTaskDeterminism:
    def test_violation_detected(self):
        violations = violations_of_task_determinism(
            nondeterministic_machine()
        )
        assert violations
        state, task, enabled = violations[0]
        assert task == "main"
        assert set(enabled) == {A1, A2}

    def test_channel_is_deterministic(self):
        chan = ChannelAutomaton(0, 1)
        # Explore including a send input so the queue grows.
        send = Action("send", 0, ("m", 1))
        assert is_task_deterministic(chan, extra_inputs=[send])
        assert is_deterministic(chan, extra_inputs=[send])

    def test_omega_automaton_is_task_deterministic(self):
        fd = OmegaAutomaton((0, 1, 2))
        crash = Action("crash", 0)
        assert is_task_deterministic(fd, extra_inputs=[crash])

    def test_omega_automaton_not_single_task(self):
        fd = OmegaAutomaton((0, 1, 2))
        assert not is_deterministic(fd)  # one task per location

    def test_environment_location_is_task_deterministic(self):
        env = ConsensusEnvironmentLocation(0)
        assert is_task_deterministic(env)
        # Two tasks (propose 0 / propose 1), so not 'deterministic'.
        assert not is_deterministic(env)
