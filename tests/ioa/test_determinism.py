"""Tests for repro.ioa.determinism."""

from repro.ioa.actions import Action
from repro.ioa.automaton import FunctionalAutomaton
from repro.ioa.determinism import (
    Reachability,
    explore_reachable,
    is_deterministic,
    is_task_deterministic,
    reachable_states,
    violations_of_task_determinism,
)
from repro.ioa.signature import FiniteActionSet, Signature
from repro.detectors.omega import OmegaAutomaton
from repro.system.channel import ChannelAutomaton
from repro.system.environment import ConsensusEnvironmentLocation

A1 = Action("a1", 0)
A2 = Action("a2", 0)


def nondeterministic_machine():
    """Two actions enabled in the same (single) task."""
    return FunctionalAutomaton(
        name="nd",
        signature=Signature(outputs=FiniteActionSet([A1, A2])),
        initial=0,
        transition=lambda s, a: min(s + 1, 3),
        enabled_fn=lambda s: [A1, A2] if s < 3 else [],
    )


class TestReachability:
    def test_reachable_states_explores(self):
        states = reachable_states(nondeterministic_machine())
        assert set(states) == {0, 1, 2, 3}

    def test_respects_bound(self):
        states = reachable_states(nondeterministic_machine(), max_states=2)
        assert len(states) == 2

    def test_extra_inputs_explored(self):
        reset = Action("reset", 0)
        m = FunctionalAutomaton(
            name="m",
            signature=Signature(
                inputs=FiniteActionSet([reset]),
                outputs=FiniteActionSet([A1]),
            ),
            initial=0,
            transition=lambda s, a: 9 if a == reset else s + 1,
            enabled_fn=lambda s: [A1] if s == 0 else [],
        )
        assert 9 in reachable_states(m, extra_inputs=[reset])


class TestExploreReachable:
    def test_complete_exploration_is_not_truncated(self):
        reach = explore_reachable(nondeterministic_machine())
        assert isinstance(reach, Reachability)
        assert set(reach.states) == {0, 1, 2, 3}
        assert reach.truncated is False
        assert reach.transitions > 0

    def test_truncation_is_reported(self):
        reach = explore_reachable(nondeterministic_machine(), max_states=2)
        assert len(reach) == 2
        assert reach.truncated is True

    def test_bound_exactly_at_state_count_is_conservative(self):
        # Hitting the bound leaves frontier states unexpanded, so even
        # though all 4 states were *discovered*, their outgoing
        # transitions were not all verified: truncated stays True.
        reach = explore_reachable(nondeterministic_machine(), max_states=4)
        assert len(reach) == 4
        assert reach.truncated is True
        # One spare slot lets the frontier drain: complete.
        reach = explore_reachable(nondeterministic_machine(), max_states=5)
        assert len(reach) == 4
        assert reach.truncated is False

    def test_extra_inputs_reach_otherwise_unreachable_states(self):
        reset = Action("reset", 0)
        m = FunctionalAutomaton(
            name="m",
            signature=Signature(
                inputs=FiniteActionSet([reset]),
                outputs=FiniteActionSet([A1]),
            ),
            initial=0,
            transition=lambda s, a: 9 if a == reset else s + 1,
            enabled_fn=lambda s: [A1] if s == 0 else [],
        )
        assert 9 not in explore_reachable(m).states
        assert 9 in explore_reachable(m, extra_inputs=[reset]).states

    def test_iteration_and_reachable_states_agree(self):
        m = nondeterministic_machine()
        reach = explore_reachable(m)
        assert list(reach) == reach.states == reachable_states(m)


class TestTaskDeterminism:
    def test_violation_detected(self):
        violations = violations_of_task_determinism(
            nondeterministic_machine()
        )
        assert violations
        state, task, enabled = violations[0]
        assert task == "main"
        assert set(enabled) == {A1, A2}

    def test_violations_name_the_exact_offending_states(self):
        # Both actions stay enabled until the counter saturates at 3, so
        # the violating states are exactly 0, 1 and 2 — state 3 is clean.
        violations = violations_of_task_determinism(
            nondeterministic_machine()
        )
        assert [state for state, _, _ in violations] == [0, 1, 2]
        assert all(task == "main" for _, task, _ in violations)

    def test_channel_is_deterministic(self):
        chan = ChannelAutomaton(0, 1)
        # Explore including a send input so the queue grows.
        send = Action("send", 0, ("m", 1))
        assert is_task_deterministic(chan, extra_inputs=[send])
        assert is_deterministic(chan, extra_inputs=[send])

    def test_omega_automaton_is_task_deterministic(self):
        fd = OmegaAutomaton((0, 1, 2))
        crash = Action("crash", 0)
        assert is_task_deterministic(fd, extra_inputs=[crash])

    def test_omega_automaton_not_single_task(self):
        fd = OmegaAutomaton((0, 1, 2))
        assert not is_deterministic(fd)  # one task per location

    def test_environment_location_is_task_deterministic(self):
        env = ConsensusEnvironmentLocation(0)
        assert is_task_deterministic(env)
        # Two tasks (propose 0 / propose 1), so not 'deterministic'.
        assert not is_deterministic(env)
