"""Injection-spillover semantics: injections scheduled at the same (or an
earlier, displaced) step fire at the first step >= their scheduled step,
in order — none may be silently dropped mid-run."""

from repro.ioa.actions import Action
from repro.ioa.automaton import FunctionalAutomaton
from repro.ioa.scheduler import Injection, Scheduler
from repro.ioa.signature import FiniteActionSet, Signature

IN_A = Action("in-a", 0)
IN_B = Action("in-b", 0)
IN_C = Action("in-c", 0)
WORK = Action("work", 0)


def machine():
    """Counts inputs; always has local work available."""
    return FunctionalAutomaton(
        name="m",
        signature=Signature(
            inputs=FiniteActionSet([IN_A, IN_B, IN_C]),
            outputs=FiniteActionSet([WORK]),
        ),
        initial=(),
        transition=lambda s, a: s + (a.name,),
        enabled_fn=lambda s: [WORK],
    )


class TestInjectionSpillover:
    def test_same_step_injections_all_fire(self):
        execution = Scheduler().run(
            machine(),
            10,
            injections=[
                Injection(2, IN_A),
                Injection(2, IN_B),
                Injection(2, IN_C),
            ],
        )
        names = [a.name for a in execution.actions]
        assert names[2:5] == ["in-a", "in-b", "in-c"]

    def test_displaced_injection_fires_later(self):
        """An injection at step 0 displaced by another step-0 injection
        fires at step 1, ahead of a step-1 injection."""
        execution = Scheduler().run(
            machine(),
            10,
            injections=[
                Injection(0, IN_A),
                Injection(1, IN_C),
                Injection(0, IN_B),
            ],
        )
        names = [a.name for a in execution.actions]
        assert names[:3] == ["in-a", "in-b", "in-c"]

    def test_ordering_within_a_step_is_submission_order(self):
        execution = Scheduler().run(
            machine(),
            10,
            injections=[Injection(0, IN_B), Injection(0, IN_A)],
        )
        names = [a.name for a in execution.actions]
        assert names[:2] == ["in-b", "in-a"]

    def test_local_work_resumes_after_spillover(self):
        execution = Scheduler().run(
            machine(),
            6,
            injections=[Injection(1, IN_A), Injection(1, IN_B)],
        )
        names = [a.name for a in execution.actions]
        assert names == ["work", "in-a", "in-b", "work", "work", "work"]
