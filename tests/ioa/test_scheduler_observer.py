"""Scheduler observer hooks and injection error paths.

The observer contract: ``on_run_start`` exactly once, then per fired
event ``on_step_scheduled`` followed by ``on_action`` (with a correct
``injected`` flag), then ``on_run_end`` exactly once with the stop
reason.  Disabled injections — both at their due step and when
fast-forwarded past a quiescent state — must raise, not be dropped.
"""

import pytest

from repro.ioa.actions import Action
from repro.ioa.automaton import FunctionalAutomaton
from repro.ioa.scheduler import Injection, Scheduler
from repro.ioa.signature import FiniteActionSet, Signature
from repro.obs.trace import Observer

IN_A = Action("in-a", 0)
WORK = Action("work", 0)
NEVER = Action("never", 0)


def machine(limit=None):
    """Counts inputs; WORK is enabled until ``limit`` events (or forever).

    NEVER is an output that is never enabled, so injecting it exercises
    the scheduler's disabled-injection error paths.
    """
    def enabled(s):
        if limit is not None and len(s) >= limit:
            return []
        return [WORK]

    return FunctionalAutomaton(
        name="m",
        signature=Signature(
            inputs=FiniteActionSet([IN_A]),
            outputs=FiniteActionSet([WORK, NEVER]),
        ),
        initial=(),
        transition=lambda s, a: s + (a.name,),
        enabled_fn=enabled,
    )


class RecordingObserver(Observer):
    def __init__(self):
        self.calls = []

    def on_run_start(self, automaton, max_steps):
        self.calls.append(("run-start", automaton.name, max_steps))

    def on_step_scheduled(self, step):
        self.calls.append(("step", step))

    def on_action(self, step, action, injected):
        self.calls.append(("action", step, action.name, injected))

    def on_run_end(self, steps, reason):
        self.calls.append(("run-end", steps, reason))


class TestObserverHooks:
    def test_notification_order_and_flags(self):
        obs = RecordingObserver()
        Scheduler(instrument=obs).run(
            machine(), 3, injections=[Injection(1, IN_A)]
        )
        assert obs.calls == [
            ("run-start", "m", 3),
            ("step", 0),
            ("action", 0, "work", False),
            ("step", 1),
            ("action", 1, "in-a", True),
            ("step", 2),
            ("action", 2, "work", False),
            ("run-end", 3, "max-steps"),
        ]

    def test_run_end_reason_quiescent(self):
        obs = RecordingObserver()
        Scheduler(instrument=obs).run(machine(limit=2), 10)
        assert obs.calls[-1] == ("run-end", 2, "quiescent")

    def test_run_end_reason_stopped(self):
        obs = RecordingObserver()
        Scheduler(instrument=obs).run(
            machine(), 10, stop_when=lambda s, step: len(s) >= 4
        )
        assert obs.calls[-1] == ("run-end", 4, "stopped")
        # The stopped step was never scheduled: stop_when is checked first.
        assert ("step", 4) not in obs.calls

    def test_no_observer_produces_same_execution(self):
        plain = Scheduler().run(machine(), 5, injections=[Injection(2, IN_A)])
        observed = Scheduler(instrument=RecordingObserver()).run(
            machine(), 5, injections=[Injection(2, IN_A)]
        )
        assert list(plain.actions) == list(observed.actions)

    def test_run_observer_fast_forwarded_injection_flagged(self):
        obs = RecordingObserver()
        Scheduler(instrument=obs).run(
            machine(limit=1), 10, injections=[Injection(5, IN_A)]
        )
        actions = [c for c in obs.calls if c[0] == "action"]
        assert actions == [
            ("action", 0, "work", False),
            ("action", 1, "in-a", True),
        ]


class TestDisabledInjectionRaises:
    def test_due_injection_not_enabled_raises(self):
        with pytest.raises(ValueError, match="not enabled"):
            Scheduler().run(machine(), 5, injections=[Injection(2, NEVER)])

    def test_fast_forwarded_injection_not_enabled_raises(self):
        # Local work dries up at step 1; the scheduler fast-forwards to
        # the pending injection, which is not enabled either.
        with pytest.raises(ValueError, match="fast-forwarded"):
            Scheduler().run(
                machine(limit=1), 10, injections=[Injection(7, NEVER)]
            )

    def test_error_does_not_fire_run_end(self):
        obs = RecordingObserver()
        with pytest.raises(ValueError):
            Scheduler(instrument=obs).run(
                machine(), 5, injections=[Injection(0, NEVER)]
            )
        assert not any(c[0] == "run-end" for c in obs.calls)
