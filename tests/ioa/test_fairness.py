"""Tests for repro.ioa.fairness."""

from repro.ioa.actions import Action
from repro.ioa.automaton import FunctionalAutomaton
from repro.ioa.executions import Execution, apply_schedule
from repro.ioa.fairness import (
    enabled_tasks,
    fairness_debt,
    is_fair_finite_execution,
    task_event_counts,
)
from repro.ioa.signature import FiniteActionSet, Signature

STEP = Action("step", 0)
IN = Action("in", 0)


def finite_machine(limit=2):
    return FunctionalAutomaton(
        name="m",
        signature=Signature(
            inputs=FiniteActionSet([IN]), outputs=FiniteActionSet([STEP])
        ),
        initial=0,
        transition=lambda s, a: s + 1 if a == STEP else s,
        enabled_fn=lambda s: [STEP] if s < limit else [],
    )


class TestFairness:
    def test_enabled_tasks(self):
        m = finite_machine()
        assert enabled_tasks(m, 0) == ["main"]
        assert enabled_tasks(m, 2) == []

    def test_complete_run_is_fair(self):
        m = finite_machine(2)
        e = apply_schedule(m, [STEP, STEP])
        assert is_fair_finite_execution(m, e)
        assert fairness_debt(m, e) == []

    def test_truncated_run_is_unfair(self):
        m = finite_machine(2)
        e = apply_schedule(m, [STEP])
        assert not is_fair_finite_execution(m, e)
        assert fairness_debt(m, e) == ["main"]

    def test_null_execution_fairness(self):
        m = finite_machine(0)
        e = Execution([m.initial_state()], [])
        assert is_fair_finite_execution(m, e)

    def test_task_event_counts(self):
        m = finite_machine(2)
        e = apply_schedule(m, [STEP, IN, STEP])
        counts = task_event_counts(m, e)
        assert counts["main"] == 2
        assert counts["<input>"] == 1
