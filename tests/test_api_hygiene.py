"""API hygiene: public packages export what they promise, and every
public item carries a docstring."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.ioa",
    "repro.system",
    "repro.core",
    "repro.detectors",
    "repro.problems",
    "repro.algorithms",
    "repro.tree",
    "repro.analysis",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_imports(package_name):
    module = importlib.import_module(package_name)
    assert module.__doc__, f"{package_name} lacks a module docstring"


@pytest.mark.parametrize("package_name", PACKAGES[1:])
def test_all_exports_resolve(package_name):
    module = importlib.import_module(package_name)
    assert hasattr(module, "__all__"), f"{package_name} lacks __all__"
    for name in module.__all__:
        assert hasattr(module, name), (
            f"{package_name}.__all__ lists {name!r} but it is missing"
        )


@pytest.mark.parametrize("package_name", PACKAGES[1:])
def test_public_classes_and_functions_documented(package_name):
    module = importlib.import_module(package_name)
    undocumented = []
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not inspect.getdoc(obj):
                undocumented.append(name)
    assert not undocumented, (
        f"{package_name} exports undocumented items: {undocumented}"
    )


def test_version_string():
    import repro

    assert repro.__version__


def test_examples_are_runnable_files():
    """The example scripts exist and are syntactically valid."""
    import pathlib
    import py_compile

    examples = sorted(
        pathlib.Path(__file__).parent.parent.joinpath("examples").glob(
            "*.py"
        )
    )
    assert len(examples) >= 3, "at least three runnable examples required"
    for script in examples:
        py_compile.compile(str(script), doraise=True)
