"""Tests for the f-crash-tolerant binary consensus specification (§9.1)."""

import pytest

from repro.problems.consensus import ConsensusProblem
from repro.system.environment import decide_action, propose_action
from repro.system.fault_pattern import crash_action

LOCS = (0, 1, 2)


@pytest.fixture
def problem():
    return ConsensusProblem(LOCS, f=1)


def good_trace():
    return [
        propose_action(0, 1),
        propose_action(1, 0),
        propose_action(2, 1),
        decide_action(0, 1),
        decide_action(1, 1),
        decide_action(2, 1),
    ]


class TestVocabulary:
    def test_f_range(self):
        with pytest.raises(ValueError):
            ConsensusProblem(LOCS, f=3)
        with pytest.raises(ValueError):
            ConsensusProblem(LOCS, f=-1)

    def test_inputs(self, problem):
        assert problem.is_input(propose_action(0, 1))
        assert problem.is_input(crash_action(2))
        assert not problem.is_input(propose_action(0, 7))
        assert not problem.is_input(decide_action(0, 1))

    def test_outputs(self, problem):
        assert problem.is_output(decide_action(1, 0))
        assert not problem.is_output(propose_action(1, 0))

    def test_projection(self, problem):
        from repro.ioa.actions import Action

        t = good_trace() + [Action("send", 0, ("m", 1))]
        assert problem.project_events(t) == good_trace()


class TestEnvironmentWellFormedness:
    def test_good(self, problem):
        assert problem.check_environment_well_formedness(good_trace())

    def test_double_proposal(self, problem):
        t = [propose_action(0, 1), propose_action(0, 0)]
        assert not problem.check_environment_well_formedness(t)

    def test_proposal_after_crash(self, problem):
        t = [crash_action(0), propose_action(0, 1)]
        assert not problem.check_environment_well_formedness(t)

    def test_live_must_propose(self, problem):
        t = [propose_action(0, 1), propose_action(1, 0)]
        result = problem.check_environment_well_formedness(t)
        assert not result
        assert "never proposed" in result.reasons[0]


class TestGuarantees:
    def test_agreement_violation(self, problem):
        t = good_trace()[:4] + [decide_action(1, 0)]
        assert not problem.check_agreement(t)

    def test_validity_violation(self, problem):
        t = [
            propose_action(0, 0),
            propose_action(1, 0),
            propose_action(2, 0),
            decide_action(0, 1),
        ]
        assert not problem.check_validity(t)

    def test_crash_validity_violation(self, problem):
        t = [crash_action(0), decide_action(0, 1)]
        assert not problem.check_crash_validity(t)

    def test_termination_double_decide(self, problem):
        t = good_trace() + [decide_action(0, 1)]
        assert not problem.check_termination(t)

    def test_termination_missing_decide(self, problem):
        t = good_trace()[:-1]
        result = problem.check_termination(t)
        assert not result
        assert "never decided" in result.reasons[0]

    def test_faulty_need_not_decide(self, problem):
        t = [
            propose_action(0, 1),
            propose_action(1, 1),
            propose_action(2, 1),
            crash_action(2),
            decide_action(0, 1),
            decide_action(1, 1),
        ]
        assert problem.check_guarantees(t)

    def test_crash_limitation(self, problem):
        t = [crash_action(0), crash_action(1)]
        assert not problem.check_crash_limitation(t)


class TestConditional:
    def test_good_trace_accepted(self, problem):
        assert problem.check_conditional(good_trace())

    def test_violated_guarantee_rejected(self, problem):
        t = good_trace()[:4] + [decide_action(1, 0), decide_action(2, 0)]
        assert not problem.check_conditional(t)

    def test_broken_assumption_vacuous(self, problem):
        # Two crashes with f=1: assumptions fail, so anything is in T_P.
        t = [
            crash_action(0),
            crash_action(1),
            propose_action(2, 1),
            decide_action(2, 0),  # even invalid decisions pass vacuously
        ]
        assert problem.check_conditional(t)
