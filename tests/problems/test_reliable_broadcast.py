"""Tests for the terminating-reliable-broadcast specification."""

import pytest

from repro.problems.reliable_broadcast import (
    SILENT,
    ReliableBroadcastProblem,
    bcast_action,
    deliver_action,
)
from repro.system.fault_pattern import crash_action

LOCS = (0, 1, 2)


class TestReliableBroadcast:
    def setup_method(self):
        self.p = ReliableBroadcastProblem(LOCS, sender=0, f=1)

    def test_sender_validation(self):
        with pytest.raises(ValueError):
            ReliableBroadcastProblem(LOCS, sender=9, f=1)

    def test_good_broadcast(self):
        t = [bcast_action(0, "hello")] + [
            deliver_action(i, "hello") for i in LOCS
        ]
        assert self.p.check_conditional(t)

    def test_wrong_message_rejected(self):
        t = [bcast_action(0, "hello")] + [
            deliver_action(i, "bye") for i in LOCS
        ]
        assert not self.p.check_guarantees(t)

    def test_silent_when_sender_live_rejected(self):
        t = [bcast_action(0, "m")] + [
            deliver_action(i, SILENT) for i in LOCS
        ]
        assert not self.p.check_guarantees(t)

    def test_silent_when_sender_crashed_ok(self):
        t = [crash_action(0)] + [deliver_action(i, SILENT) for i in (1, 2)]
        assert self.p.check_guarantees(t)

    def test_delivery_without_broadcast_rejected(self):
        t = [crash_action(0)] + [deliver_action(i, "ghost") for i in (1, 2)]
        assert not self.p.check_guarantees(t)

    def test_conflicting_deliveries_rejected(self):
        t = [
            bcast_action(0, "m"),
            deliver_action(0, "m"),
            deliver_action(1, "m"),
            deliver_action(2, SILENT),
        ]
        assert not self.p.check_guarantees(t)

    def test_double_delivery_rejected(self):
        t = [bcast_action(0, "m"), deliver_action(1, "m"),
             deliver_action(1, "m")]
        assert not self.p.check_guarantees(t)

    def test_live_must_deliver(self):
        t = [bcast_action(0, "m"), deliver_action(0, "m")]
        assert not self.p.check_guarantees(t)

    def test_assumptions(self):
        assert not self.p.check_assumptions(
            [bcast_action(0, "a"), bcast_action(0, "b")]
        )
        assert not self.p.check_assumptions([])  # live sender never bcast
        assert self.p.check_assumptions([crash_action(0)])
