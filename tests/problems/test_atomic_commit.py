"""Tests for the NBAC specification."""

from repro.problems.atomic_commit import (
    NO,
    YES,
    AtomicCommitProblem,
    abort_action,
    commit_action,
    vote_action,
)
from repro.system.fault_pattern import crash_action

LOCS = (0, 1, 2)


class TestAtomicCommit:
    def setup_method(self):
        self.p = AtomicCommitProblem(LOCS, f=1)

    def all_yes(self):
        return [vote_action(i, YES) for i in LOCS]

    def test_commit_after_all_yes(self):
        t = self.all_yes() + [commit_action(i) for i in LOCS]
        assert self.p.check_conditional(t)

    def test_commit_despite_no_rejected(self):
        t = [
            vote_action(0, YES),
            vote_action(1, NO),
            vote_action(2, YES),
        ] + [commit_action(i) for i in LOCS]
        assert not self.p.check_guarantees(t)

    def test_abort_after_no_ok(self):
        t = [
            vote_action(0, YES),
            vote_action(1, NO),
            vote_action(2, YES),
        ] + [abort_action(i) for i in LOCS]
        assert self.p.check_conditional(t)

    def test_spurious_abort_rejected(self):
        t = self.all_yes() + [abort_action(i) for i in LOCS]
        result = self.p.check_guarantees(t)
        assert not result
        assert "abort although" in result.reasons[0]

    def test_abort_justified_by_crash(self):
        t = [
            vote_action(0, YES),
            vote_action(1, YES),
            crash_action(2),
            abort_action(0),
            abort_action(1),
        ]
        assert self.p.check_guarantees(t)

    def test_mixed_verdicts_rejected(self):
        t = self.all_yes() + [
            commit_action(0),
            abort_action(1),
            commit_action(2),
        ]
        assert not self.p.check_guarantees(t)

    def test_double_verdict_rejected(self):
        t = self.all_yes() + [commit_action(0), commit_action(0)]
        assert not self.p.check_guarantees(t)

    def test_verdict_after_crash_rejected(self):
        t = self.all_yes() + [crash_action(0), commit_action(0)]
        assert not self.p.check_guarantees(t)

    def test_live_must_decide(self):
        t = self.all_yes() + [commit_action(0)]
        result = self.p.check_guarantees(t)
        assert not result

    def test_assumptions(self):
        assert not self.p.check_assumptions(
            [vote_action(0, YES), vote_action(0, NO)]
        )
        assert not self.p.check_assumptions([vote_action(0, YES)])
        assert self.p.check_assumptions(self.all_yes())
