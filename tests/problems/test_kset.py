"""Tests for k-set agreement."""

import pytest

from repro.problems.kset_agreement import KSetAgreementProblem
from repro.system.environment import decide_action, propose_action

LOCS = (0, 1, 2)


class TestKSetAgreement:
    def test_k_validation(self):
        with pytest.raises(ValueError):
            KSetAgreementProblem(LOCS, f=1, k=0)
        with pytest.raises(ValueError):
            KSetAgreementProblem(LOCS, f=1, k=4)

    def test_defaults_to_id_values(self):
        p = KSetAgreementProblem(LOCS, f=1, k=2)
        assert p.values == LOCS

    def test_two_decisions_ok_for_k2(self):
        p = KSetAgreementProblem(LOCS, f=1, k=2)
        t = [
            propose_action(0, 0),
            propose_action(1, 1),
            propose_action(2, 2),
            decide_action(0, 0),
            decide_action(1, 1),
            decide_action(2, 1),
        ]
        assert p.check_conditional(t)

    def test_three_decisions_rejected_for_k2(self):
        p = KSetAgreementProblem(LOCS, f=1, k=2)
        t = [
            propose_action(0, 0),
            propose_action(1, 1),
            propose_action(2, 2),
            decide_action(0, 0),
            decide_action(1, 1),
            decide_action(2, 2),
        ]
        assert not p.check_conditional(t)

    def test_k1_is_consensus(self):
        p = KSetAgreementProblem(LOCS, f=1, k=1, values=(0, 1))
        t = [
            propose_action(0, 0),
            propose_action(1, 1),
            propose_action(2, 1),
            decide_action(0, 0),
            decide_action(1, 1),
            decide_action(2, 1),
        ]
        assert not p.check_conditional(t)

    def test_validity_inherited(self):
        p = KSetAgreementProblem(LOCS, f=1, k=2)
        t = [
            propose_action(0, 0),
            propose_action(1, 0),
            propose_action(2, 0),
            decide_action(0, 1),  # 1 never proposed
            decide_action(1, 0),
            decide_action(2, 0),
        ]
        assert not p.check_conditional(t)
