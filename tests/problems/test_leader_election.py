"""Tests for the leader-election bounded problem."""

from repro.problems.leader_election import (
    LeaderElectionProblem,
    leader_action,
)
from repro.system.fault_pattern import crash_action

LOCS = (0, 1, 2)


class TestLeaderElection:
    def setup_method(self):
        self.p = LeaderElectionProblem(LOCS, f=1)

    def test_good_trace(self):
        t = [leader_action(i, 1) for i in LOCS]
        assert self.p.check_conditional(t)

    def test_conflicting_leaders(self):
        t = [leader_action(0, 1), leader_action(1, 2), leader_action(2, 1)]
        assert not self.p.check_guarantees(t)

    def test_double_election(self):
        t = [leader_action(i, 1) for i in LOCS] + [leader_action(0, 1)]
        assert not self.p.check_guarantees(t)

    def test_live_must_elect(self):
        t = [leader_action(0, 1), leader_action(1, 1)]
        result = self.p.check_guarantees(t)
        assert not result
        assert "never elected" in result.reasons[0]

    def test_electing_pre_crashed_leader_rejected(self):
        t = [crash_action(1)] + [leader_action(i, 1) for i in (0, 2)]
        assert not self.p.check_guarantees(t)

    def test_leader_crashing_after_election_ok(self):
        t = [leader_action(i, 1) for i in LOCS] + [crash_action(1)]
        assert self.p.check_guarantees(t)

    def test_output_after_crash_rejected(self):
        t = [
            leader_action(0, 0),
            leader_action(1, 0),
            crash_action(2),
            leader_action(2, 0),
        ]
        assert not self.p.check_guarantees(t)

    def test_crash_limit_is_assumption(self):
        t = [crash_action(0), crash_action(1)]
        assert not self.p.check_assumptions(t)
        assert self.p.check_conditional(t)  # vacuous

    def test_vocabulary(self):
        assert self.p.is_output(leader_action(0, 2))
        assert not self.p.is_output(leader_action(0, 9))
        assert self.p.is_input(crash_action(0))
