"""Tests for the bounded-problem machinery of Theorem 21 (Section 7.3).

The witness automaton U for consensus must: solve consensus, be crash
independent, and have bounded length.  The Lemma 23/24 constructions are
exercised on concrete systems in tests/integration/test_theorems.py;
here the building blocks are verified in isolation.
"""

from repro.ioa.scheduler import Injection, Scheduler
from repro.problems.bounded import (
    BoundedProblemAnalysis,
    check_bounded_length,
    check_crash_independence,
    strip_crash_events,
)
from repro.problems.consensus import (
    CentralizedConsensusSolver,
    ConsensusProblem,
)
from repro.system.environment import propose_action
from repro.system.fault_pattern import crash_action

LOCS = (0, 1, 2)


def scenario(crashes=(), proposals=((0, 1), (1, 0), (2, 1))):
    injections = [
        Injection(k, propose_action(i, v))
        for k, (i, v) in enumerate(proposals)
    ]
    injections += [
        Injection(step, crash_action(i)) for (i, step) in crashes
    ]
    return injections


class TestCentralizedSolver:
    def test_solves_consensus(self):
        u = CentralizedConsensusSolver(LOCS)
        execution = Scheduler().run(u, 50, injections=scenario())
        problem = ConsensusProblem(LOCS, f=1)
        t = problem.project_events(list(execution.actions))
        assert problem.check_conditional(t)

    def test_solves_consensus_with_crash(self):
        u = CentralizedConsensusSolver(LOCS)
        execution = Scheduler().run(
            u, 50, injections=scenario(crashes=[(2, 1)])
        )
        problem = ConsensusProblem(LOCS, f=1)
        t = problem.project_events(list(execution.actions))
        assert problem.check_conditional(t)

    def test_decides_first_proposal(self):
        u = CentralizedConsensusSolver(LOCS)
        execution = Scheduler().run(u, 50, injections=scenario())
        decisions = {
            a.payload[0]
            for a in execution.actions
            if a.name == "decide"
        }
        assert decisions == {1}  # location 0 proposed first, value 1


class TestBoundedLength:
    def test_at_most_n_outputs(self):
        u = CentralizedConsensusSolver(LOCS)
        runs = [
            (60, scenario()),
            (60, scenario(crashes=[(0, 0)])),
            (60, scenario(crashes=[(1, 2), (2, 2)])),
        ]
        assert check_bounded_length(
            u, lambda a: a.name == "decide", len(LOCS), runs
        )

    def test_violation_detected(self):
        u = CentralizedConsensusSolver(LOCS)
        result = check_bounded_length(
            u, lambda a: a.name == "decide", 1, [(60, scenario())]
        )
        assert not result


class TestCrashIndependence:
    def test_strip_crash_events(self):
        t = [crash_action(0), propose_action(1, 1), crash_action(2)]
        assert strip_crash_events(t) == [propose_action(1, 1)]

    def test_solver_is_crash_independent(self):
        u = CentralizedConsensusSolver(LOCS)
        execution = Scheduler().run(
            u, 60, injections=scenario(crashes=[(2, 1)])
        )
        assert check_crash_independence(u, execution)

    def test_crash_dependent_automaton_detected(self):
        """An automaton whose outputs are only enabled after a crash is
        NOT crash independent: stripping the crash breaks the replay."""
        from repro.ioa.actions import Action
        from repro.ioa.automaton import FunctionalAutomaton
        from repro.ioa.signature import FiniteActionSet, Signature

        out = Action("out", 0)
        dependent = FunctionalAutomaton(
            name="crash-dependent",
            signature=Signature(
                inputs=FiniteActionSet([crash_action(0)]),
                outputs=FiniteActionSet([out]),
            ),
            initial=0,
            transition=lambda s, a: 1 if a == crash_action(0) else 2,
            enabled_fn=lambda s: [out] if s == 1 else [],
        )
        execution = Scheduler().run(
            dependent, 10, injections=[Injection(0, crash_action(0))]
        )
        assert [a.name for a in execution.actions] == ["crash", "out"]
        assert not check_crash_independence(dependent, execution)


class TestBoundedProblemAnalysis:
    def test_verify_consensus_witness(self):
        u = CentralizedConsensusSolver(LOCS)
        analysis = BoundedProblemAnalysis(
            u, lambda a: a.name == "decide", bound=len(LOCS)
        )
        runs = [
            (60, scenario()),
            (60, scenario(crashes=[(0, 5)])),
            (60, scenario(crashes=[(1, 0), (2, 4)])),
        ]
        assert analysis.verify(runs)
