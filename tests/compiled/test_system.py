"""compile_spec: fingerprints, the LRU, and the picklable meta card."""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.algorithms.consensus_omega import omega_consensus_algorithm
from repro.compiled.system import (
    SCHEMA,
    clear_spec_cache,
    compile_spec,
    spec_fingerprint,
)
from repro.runner.spec import ExperimentSpec

SPEC = ExperimentSpec(
    detector="omega",
    algorithm=omega_consensus_algorithm,
    locations=(0, 1, 2),
    proposals={0: 0, 1: 1, 2: 1},
    crashes={0: 40},
    f=1,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_spec_cache()
    yield
    clear_spec_cache()


class TestFingerprint:
    def test_run_varying_knobs_excluded(self):
        base = spec_fingerprint(SPEC)
        for override in (
            {"seed": 99},
            {"crashes": {1: 5}},
            {"f": 2},
            {"max_steps": 17},
            {"min_live_outputs": 3},
            {"compiled": True},
            {"instrument": True},
        ):
            assert spec_fingerprint(
                dataclasses.replace(SPEC, **override)
            ) == base, override

    def test_system_shaping_knobs_included(self):
        base = spec_fingerprint(SPEC)
        for override in (
            {"detector": "evp"},
            {"locations": (0, 1)},
            {"proposals": {0: 1, 1: 1, 2: 1}},
        ):
            changed = dataclasses.replace(SPEC, **override)
            if "locations" in override:
                changed = dataclasses.replace(
                    changed, proposals={0: 0, 1: 1}
                )
            assert spec_fingerprint(changed) != base, override

    def test_unbound_fault_plan_keys_per_seed(self):
        from repro.faults.plan import ChannelFaults, FaultPlan

        plan = FaultPlan(default=ChannelFaults(drop_p=0.25))
        spec = dataclasses.replace(SPEC, fault_plan=plan)
        a = spec_fingerprint(dataclasses.replace(spec, seed=1))
        b = spec_fingerprint(dataclasses.replace(spec, seed=2))
        assert a != b


class TestSpecCache:
    def test_equal_fingerprints_share_tables(self):
        first = compile_spec(SPEC)
        again = compile_spec(dataclasses.replace(SPEC, seed=123, crashes={}))
        assert again is first

    def test_distinct_fingerprints_do_not(self):
        first = compile_spec(SPEC)
        other = compile_spec(dataclasses.replace(SPEC, detector="evp"))
        assert other is not first

    def test_runs_reuse_compiled_tables(self):
        cs = compile_spec(SPEC)
        r1 = cs.run(seed=1)
        r2 = cs.run(seed=2)
        assert r1.solved and r2.solved
        # The second run re-walked interned territory: tables grew once.
        assert cs.table_sizes()["configs"] > 0


class TestMeta:
    def test_pickle_round_trip(self):
        meta = compile_spec(SPEC).meta
        clone = pickle.loads(pickle.dumps(meta))
        assert clone == meta
        assert clone.schema == SCHEMA
        assert clone.fingerprint == spec_fingerprint(SPEC)

    def test_to_dict_is_json_able(self):
        import json

        doc = compile_spec(SPEC).meta.to_dict()
        assert json.loads(json.dumps(doc)) == doc
        assert doc["problem"] == "consensus"
        assert doc["locations"] == [0, 1, 2]
        assert doc["n_components"] >= 3

    def test_detector_trace_meta(self):
        spec = ExperimentSpec(
            problem="detector-trace",
            detector="evp",
            locations=(0, 1),
            f=1,
        )
        cs = compile_spec(spec)
        assert cs.meta.problem == "detector-trace"
        assert cs.meta.n_components == 1
        assert cs.automaton is not None and cs.system is None


class TestApiCompile:
    def test_spec_dispatch(self):
        from repro.api import compile as api_compile

        cs = api_compile(SPEC)
        assert cs is compile_spec(SPEC)

    def test_automaton_dispatch(self):
        from repro.api import compile as api_compile
        from repro.compiled.tables import CompiledAutomaton
        from repro.detectors.registry import resolve_detector

        automaton = resolve_detector("omega", (0, 1)).automaton()
        core = api_compile(automaton)
        assert isinstance(core, CompiledAutomaton)
        # Memoised: compiling the same instance reuses the core.
        assert api_compile(automaton) is core

    def test_junk_rejected(self):
        from repro.api import compile as api_compile

        with pytest.raises(TypeError, match="ExperimentSpec or an Automaton"):
            api_compile(42)
