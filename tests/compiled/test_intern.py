"""The hash-consing interner: id equality tracks canonical equality.

The compiled core's whole correctness story rests on one property: two
values receive the same interned id *iff* they compare (and hash) equal.
Hypothesis drives the property over nested hashable values shaped like
real composition states (tuples of ints, strings, frozensets).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.compiled.intern import Interner

hashable_values = st.recursive(
    st.one_of(
        st.integers(min_value=-5, max_value=5),
        st.sampled_from(["a", "b", "decided", ()]),
        st.booleans(),
        st.none(),
    ),
    lambda children: st.one_of(
        st.tuples(children, children),
        st.frozensets(children, max_size=3),
    ),
    max_leaves=8,
)


@settings(max_examples=200, deadline=None)
@given(values=st.lists(hashable_values, min_size=1, max_size=20))
def test_intern_equality_iff_value_equality(values):
    interner = Interner("prop")
    ids = [interner.intern(v) for v in values]
    for i, a in enumerate(values):
        for j, b in enumerate(values):
            assert (ids[i] == ids[j]) == (a == b), (a, b)


@settings(max_examples=100, deadline=None)
@given(values=st.lists(hashable_values, min_size=1, max_size=20))
def test_ids_are_dense_discovery_order(values):
    interner = Interner("dense")
    seen = []
    for v in values:
        vid = interner.intern(v)
        if v not in seen:
            # First sighting: the next free id, in discovery order.
            assert vid == len(seen)
            seen.append(v)
        assert interner.value_of(vid) == v
    assert len(interner) == len(seen)


def test_canonical_returns_first_equal_instance():
    interner = Interner("canon")
    first = (1, frozenset({2}))
    duplicate = (1, frozenset({2}))
    assert first is not duplicate
    interner.intern(first)
    assert interner.canonical(duplicate) is first


def test_lookup_does_not_create():
    interner = Interner("lookup")
    assert interner.lookup((1, 2)) is None
    vid = interner.intern((1, 2))
    assert interner.lookup((1, 2)) == vid
    assert len(interner) == 1


def test_clear_forgets_everything():
    interner = Interner("clear")
    interner.intern("x")
    interner.intern("y")
    interner.clear()
    assert len(interner) == 0
    # Ids restart from zero after a clear.
    assert interner.intern("z") == 0
