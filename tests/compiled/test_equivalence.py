"""Compiled-vs-interpreted equivalence: the oracle property.

The interpreted :class:`~repro.ioa.scheduler.Scheduler` loop is the
specification; the compiled array loop must reproduce its executions
*byte-identically* — same actions, same states, same stop reason — for
every policy, injection schedule and fault plan.  These tests drive both
paths over the same inputs and diff the full executions.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.consensus_omega import omega_consensus_algorithm
from repro.analysis.checkers import run_consensus_experiment
from repro.detectors.registry import resolve_detector
from repro.faults.plan import ChannelFaults, CrashRule, FaultPlan
from repro.ioa.scheduler import (
    Injection,
    RandomPolicy,
    RoundRobinPolicy,
    Scheduler,
)
from repro.runner.spec import ExperimentSpec, run_spec
from repro.system.fault_pattern import crash_action

LOCS = (0, 1, 2)


def run_both(automaton_factory, policy_factory, max_steps, injections=()):
    """One interpreted and one compiled run over fresh twins."""
    interp = Scheduler(policy_factory(), compiled=False).run(
        automaton_factory(), max_steps=max_steps, injections=injections
    )
    comp = Scheduler(policy_factory(), compiled=True).run(
        automaton_factory(), max_steps=max_steps, injections=injections
    )
    return interp, comp


def assert_executions_identical(interp, comp):
    assert list(interp.actions) == list(comp.actions)
    assert list(interp.states) == list(comp.states)


class TestSchedulerEquivalence:
    @pytest.mark.parametrize("detector", ["omega", "evp", "perfect", "sigma"])
    @pytest.mark.parametrize(
        "policy_factory",
        [RoundRobinPolicy, lambda: RandomPolicy(seed=42)],
        ids=["round-robin", "random"],
    )
    def test_detector_automata(self, detector, policy_factory):
        factory = lambda: resolve_detector(detector, LOCS).automaton()
        interp, comp = run_both(factory, policy_factory, max_steps=200)
        assert_executions_identical(interp, comp)

    @pytest.mark.parametrize(
        "policy_factory",
        [RoundRobinPolicy, lambda: RandomPolicy(seed=7)],
        ids=["round-robin", "random"],
    )
    def test_with_crash_injections(self, policy_factory):
        factory = lambda: resolve_detector("evp", LOCS).automaton()
        injections = [
            Injection(step=10, action=crash_action(2)),
            Injection(step=40, action=crash_action(0)),
        ]
        interp, comp = run_both(
            factory, policy_factory, max_steps=150, injections=injections
        )
        assert_executions_identical(interp, comp)

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        max_steps=st.integers(min_value=1, max_value=120),
        crash_step=st.integers(min_value=0, max_value=60),
    )
    def test_random_policy_property(self, seed, max_steps, crash_step):
        factory = lambda: resolve_detector("omega", LOCS).automaton()
        injections = [Injection(step=crash_step, action=crash_action(1))]
        interp, comp = run_both(
            lambda: factory(),
            lambda: RandomPolicy(seed=seed),
            max_steps=max_steps,
            injections=injections,
        )
        assert_executions_identical(interp, comp)


def spec_pair(spec):
    """Run ``spec`` interpreted and compiled; return both results."""
    interp = run_spec(dataclasses.replace(spec, compiled=False))
    comp = run_spec(dataclasses.replace(spec, compiled=True))
    return interp, comp


def assert_results_identical(interp, comp):
    """Every deterministic ExperimentResult field agrees (wall time and
    the report's timing/cache numbers legitimately differ)."""
    for f in dataclasses.fields(interp):
        if f.name in ("wall_s", "report", "run"):
            continue
        assert getattr(interp, f.name) == getattr(comp, f.name), f.name


CONSENSUS_SPEC = ExperimentSpec(
    detector="omega",
    algorithm=omega_consensus_algorithm,
    locations=LOCS,
    proposals={0: 0, 1: 1, 2: 1},
    crashes={0: 40},
    f=1,
    max_steps=3000,
)


class TestSpecEquivalence:
    def test_consensus(self):
        assert_results_identical(*spec_pair(CONSENSUS_SPEC))

    def test_consensus_instrumented_traces(self):
        spec = dataclasses.replace(CONSENSUS_SPEC, instrument=True)
        interp, comp = spec_pair(spec)
        assert interp.trace == comp.trace
        assert interp.decisions == comp.decisions

    def test_detector_trace(self):
        spec = ExperimentSpec(
            problem="detector-trace",
            detector="evp",
            locations=(0, 1),
            crashes={1: 25},
            f=1,
            max_steps=400,
            seed=7,
        )
        assert_results_identical(*spec_pair(spec))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_seed_sweep(self, seed):
        spec = dataclasses.replace(CONSENSUS_SPEC, seed=seed)
        assert_results_identical(*spec_pair(spec))

    def test_fault_plan(self):
        plan = FaultPlan(
            default=ChannelFaults(duplicate_p=0.2, drop_p=0.1),
            crash_rules=(CrashRule(trigger="on-first-fd-output", delay=2),),
        )
        spec = dataclasses.replace(
            CONSENSUS_SPEC, crashes={}, fault_plan=plan, seed=13
        )
        assert_results_identical(*spec_pair(spec))


class TestDelegateEquivalence:
    """run_consensus_experiment is a thin delegate over run_spec."""

    def test_matches_spec_run(self):
        afd = resolve_detector("omega", LOCS)
        alg = omega_consensus_algorithm(LOCS)
        via_delegate = run_consensus_experiment(
            alg, afd, {0: 0, 1: 1, 2: 1}, {0: 40}, f=1, max_steps=3000
        )
        via_spec = run_spec(CONSENSUS_SPEC, keep=True).run
        assert via_delegate.decisions == via_spec.decisions
        assert via_delegate.steps == via_spec.steps
        assert list(via_delegate.execution.actions) == list(
            via_spec.execution.actions
        )
        assert via_delegate.fd_check.ok == via_spec.fd_check.ok
        assert via_delegate.consensus_check.ok == via_spec.consensus_check.ok

    def test_compiled_flag_passes_through(self):
        afd = resolve_detector("omega", LOCS)
        alg = omega_consensus_algorithm(LOCS)
        interp = run_consensus_experiment(
            alg, afd, {0: 0, 1: 1, 2: 1}, {0: 40}, f=1, compiled=False
        )
        comp = run_consensus_experiment(
            alg, afd, {0: 0, 1: 1, 2: 1}, {0: 40}, f=1, compiled=True
        )
        assert interp.decisions == comp.decisions
        assert interp.steps == comp.steps
        assert list(interp.execution.actions) == list(comp.execution.actions)
