"""The compiled tagged-tree build agrees with the interpreted build.

``TaggedTreeGraph(compiled=True)`` discovers the same quotient graph in
the same order — vertex for vertex, edge for edge, action for action —
so every downstream analysis (valence, hooks, critical locations) is
unchanged.  Checked on the Section 8 tree system under both a crash-free
and a one-crash FD sequence.
"""

from __future__ import annotations

import pytest

from repro.algorithms.consensus_tree import (
    TreeConsensusProcess,
    tree_consensus_algorithm,
)
from repro.ioa.composition import Composition
from repro.system.channel import make_channels
from repro.system.environment import ConsensusEnvironment
from repro.tree.hooks import HookSearch
from repro.tree.tagged_tree import TaggedTreeGraph
from repro.tree.valence import (
    ValenceAnalysis,
    decision_extractor_for_processes,
)
from tests.tree.conftest import crash_free_td, one_crash_td

LOCS = (0, 1)


def build_system():
    algorithm = tree_consensus_algorithm(LOCS)
    composition = Composition(
        list(algorithm.automata())
        + make_channels(LOCS)
        + [ConsensusEnvironment(LOCS)],
        name="tree-system",
    )
    return algorithm, composition


def graph_pair(td):
    algorithm, composition = build_system()
    interp = TaggedTreeGraph(
        composition, td, max_vertices=50_000, compiled=False
    )
    comp = TaggedTreeGraph(
        composition, td, max_vertices=50_000, compiled=True
    )
    return algorithm, composition, interp, comp


def assert_graphs_identical(interp, comp):
    vi, vc = list(interp.vertices()), list(comp.vertices())
    assert [(v.config, v.fd_index) for v in vi] == [
        (v.config, v.fd_index) for v in vc
    ]
    # Dense discovery indices cover 0..n-1 in insertion order both ways.
    assert [v.index for v in vi] == list(range(len(vi)))
    assert [v.index for v in vc] == list(range(len(vc)))
    for a, b in zip(vi, vc):
        ea, eb = interp.edges[a], comp.edges[b]
        assert list(ea) == list(eb)  # same labels, same order
        for label in ea:
            action_a, target_a = ea[label]
            action_b, target_b = eb[label]
            assert action_a == action_b
            assert (target_a.config, target_a.fd_index) == (
                target_b.config,
                target_b.fd_index,
            )


@pytest.mark.parametrize(
    "td_factory", [crash_free_td, one_crash_td], ids=["crash-free", "one-crash"]
)
def test_graph_identical(td_factory):
    _, _, interp, comp = graph_pair(td_factory())
    assert_graphs_identical(interp, comp)


@pytest.mark.parametrize(
    "td_factory", [crash_free_td, one_crash_td], ids=["crash-free", "one-crash"]
)
def test_valence_and_hooks_identical(td_factory):
    algorithm, composition, interp, comp = graph_pair(td_factory())

    def analyse(graph):
        valence = ValenceAnalysis(
            graph,
            decision_extractor_for_processes(
                composition, algorithm.automata(), TreeConsensusProcess.decision
            ),
        )
        report = HookSearch(graph, valence, LOCS).report()
        return valence, report

    val_i, hooks_i = analyse(interp)
    val_c, hooks_c = analyse(comp)

    assert val_i.root_valence() == val_c.root_valence()
    assert val_i.counts() == val_c.counts()
    assert [
        (v.config, v.fd_index) for v in val_i.bivalent_vertices()
    ] == [(v.config, v.fd_index) for v in val_c.bivalent_vertices()]

    assert hooks_i.num_hooks == hooks_c.num_hooks
    assert hooks_i.critical_locations == hooks_c.critical_locations
    assert hooks_i.theorem59_holds == hooks_c.theorem59_holds


def test_task_determinism_violation_message_identical():
    """A non-task-deterministic system raises the same error either way."""
    from repro.ioa.actions import Action
    from repro.ioa.automaton import FunctionalAutomaton
    from repro.ioa.signature import FiniteActionSet, Signature

    # One task covering two always-enabled outputs: the canonical
    # task-determinism violation.
    a0, a1 = Action("out0", 0), Action("out1", 0)
    automaton = FunctionalAutomaton(
        name="ambiguous",
        signature=Signature(outputs=FiniteActionSet([a0, a1])),
        initial=0,
        transition=lambda s, a: s,
        enabled_fn=lambda s: (a0, a1),
        task_names=("t",),
        task_assignment=lambda a: "t",
    )
    composition = Composition([automaton], name="wrapper")
    td = [a0]
    errors = []
    for compiled in (False, True):
        with pytest.raises(RuntimeError) as exc:
            TaggedTreeGraph(
                composition, td, max_vertices=5_000, compiled=compiled
            )
        errors.append(str(exc.value))
    assert errors[0] == errors[1]
