"""BatchRunner / parallel_map: fan-out mechanics and failure capture."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import validate_bench_artifact
from repro.runner import (
    BatchRunner,
    ExperimentSpec,
    default_jobs,
    parallel_map,
)

LOCS = (0, 1, 2)


def trace_spec(**overrides):
    base = dict(
        detector="omega",
        locations=LOCS,
        problem="detector-trace",
        max_steps=40,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def _square(x):
    return x * x


def _boom(x):
    raise RuntimeError(f"boom {x}")


class TestParallelMap:
    def test_serial_short_circuit(self):
        assert parallel_map(_square, [1, 2, 3], jobs=1) == [1, 4, 9]
        assert parallel_map(_square, [5], jobs=8) == [25]

    def test_order_preserved_across_workers(self):
        items = list(range(12))
        assert parallel_map(_square, items, jobs=3) == [x * x for x in items]

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


class TestBatchRunner:
    def test_jobs_zero_means_all_cores(self):
        assert BatchRunner(jobs=0).jobs == default_jobs()
        assert BatchRunner(jobs=None).jobs == default_jobs()
        assert BatchRunner(jobs=3).jobs == 3

    def test_failures_captured_not_raised(self):
        good = trace_spec()
        bad = trace_spec(detector="no-such-detector", label="bad")
        batch = BatchRunner(jobs=1).run([good, bad])
        assert not batch.ok and len(batch.failures) == 1
        assert batch.failures[0].label == "bad"
        assert "ValueError" in batch.failures[0].error

    def test_raise_on_error(self):
        bad = trace_spec(detector="no-such-detector", label="bad")
        with pytest.raises(RuntimeError, match="bad"):
            BatchRunner(jobs=1).run([bad], raise_on_error=True)

    def test_failures_captured_in_workers_too(self):
        specs = [trace_spec(), trace_spec(detector="no-such", label="bad")]
        batch = BatchRunner(jobs=2).run(specs)
        assert len(batch) == 2
        assert batch.results[0].ok and not batch.results[1].ok

    def test_batch_metrics(self):
        reg = MetricsRegistry()
        BatchRunner(jobs=1, instrument=reg).run([trace_spec()] * 3)
        assert reg.counter("batch.runs").value == 3
        assert reg.counter("batch.failures").value == 0
        assert reg.histogram("batch.wall_s").count == 1

    def test_to_bench_artifact_schema_valid(self):
        batch = BatchRunner(jobs=1).run([trace_spec()] * 2)
        doc = batch.to_bench_artifact("t01", "batch artifact test")
        assert validate_bench_artifact(doc) == []
        assert doc["metrics"]["runs"] == 2

    def test_map_uses_runner_jobs(self):
        assert BatchRunner(jobs=2).map(_square, [2, 3]) == [4, 9]


class TestProgress:
    def specs(self, n=4):
        return [trace_spec(seed=k, label=f"run-{k}") for k in range(n)]

    def test_progress_changes_nothing_about_results(self, tmp_path):
        specs = self.specs()
        plain = BatchRunner(jobs=2).run(specs)
        tracked = BatchRunner(
            jobs=2, progress=str(tmp_path / "progress.jsonl")
        ).run(specs)
        assert [r.row() for r in tracked] == [r.row() for r in plain]

    def test_file_sink_emits_monotone_run_events(self, tmp_path):
        import json

        path = tmp_path / "progress.jsonl"
        BatchRunner(jobs=1, progress=str(path)).run(self.specs(3))
        events = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        runs = [e for e in events if e["event"] == "run"]
        assert [e["completed"] for e in runs] == [1, 2, 3]
        assert all(e["total"] == 3 and e["ok"] for e in runs)
        end = events[-1]
        assert end["event"] == "batch-end"
        assert end["runs"] == 3 and end["errors"] == 0
        assert end["jobs"] == 1

    def test_callable_sink_and_error_tally(self):
        events = []
        specs = [trace_spec(), trace_spec(detector="no-such", label="bad")]
        BatchRunner(jobs=1, progress=events.append).run(specs)
        runs = [e for e in events if e["event"] == "run"]
        assert [e["ok"] for e in runs] == [True, False]
        assert events[-1]["errors"] == 1

    def test_sink_file_truncated_per_sweep(self, tmp_path):
        import json

        path = tmp_path / "progress.jsonl"
        BatchRunner(jobs=1, progress=str(path)).run(self.specs(2))
        BatchRunner(jobs=1, progress=str(path)).run(self.specs(2))
        events = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        # One sweep's worth of events, not two appended.
        assert sum(1 for e in events if e["event"] == "batch-end") == 1

    def test_sink_opens_file_exactly_once(self, tmp_path, monkeypatch):
        # Regression: emit() used to reopen the JSONL file per event —
        # O(runs) opens on large sweeps.  One handle for the sink's
        # lifetime now, with byte-identical output.
        import builtins

        path = tmp_path / "progress.jsonl"
        real_open = builtins.open
        opens = []

        def counting_open(file, *args, **kwargs):
            if str(file) == str(path):
                opens.append(file)
            return real_open(file, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", counting_open)
        BatchRunner(jobs=1, progress=str(path)).run(self.specs(5))
        assert len(opens) == 1
        assert len(path.read_text().splitlines()) == 6  # 5 runs + batch-end

    def test_sink_close_is_explicit_and_final(self, tmp_path):
        from repro.runner.batch import _ProgressSink

        path = tmp_path / "progress.jsonl"
        with _ProgressSink(str(path)) as sink:
            sink.emit({"event": "run", "completed": 1})
            sink.emit({"event": "batch-end", "runs": 1})
        assert len(path.read_text().splitlines()) == 2
        with pytest.raises(ValueError):
            sink.emit({"event": "late"})  # closed handle refuses writes

    def test_callable_sink_close_noop(self):
        from repro.runner.batch import _ProgressSink

        events = []
        with _ProgressSink(events.append) as sink:
            sink.emit({"event": "run"})
        sink.emit({"event": "still-fine"})  # no handle to close
        assert len(events) == 2
