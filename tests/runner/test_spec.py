"""ExperimentSpec: validation, resolution, and single-run execution."""

from __future__ import annotations

import pickle

import pytest

from repro.algorithms.consensus_omega import omega_consensus_algorithm
from repro.runner import ExperimentSpec, run_spec
from repro.system.fault_pattern import FaultPattern

LOCS = (0, 1, 2)


class TestValidation:
    def test_unknown_problem_rejected(self):
        with pytest.raises(ValueError, match="problem"):
            ExperimentSpec(detector="omega", locations=LOCS, problem="nope")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            ExperimentSpec(
                detector="omega",
                locations=LOCS,
                problem="detector-trace",
                policy="chaotic",
            )

    def test_consensus_requires_algorithm(self):
        with pytest.raises(ValueError, match="algorithm"):
            ExperimentSpec(detector="omega", locations=LOCS)

    def test_unknown_detector_name_lists_valid_names(self):
        spec = ExperimentSpec(
            detector="omegaz", locations=LOCS, problem="detector-trace"
        )
        with pytest.raises(ValueError) as exc:
            spec.resolve_afd()
        assert "omega" in str(exc.value).lower()

    def test_auto_label(self):
        spec = ExperimentSpec(
            detector="omega", locations=LOCS, problem="detector-trace", seed=9
        )
        assert "detector-trace" in spec.label
        assert "s9" in spec.label


class TestResolution:
    def test_detector_kwargs_reach_family(self):
        spec = ExperimentSpec(
            detector="omega-k",
            detector_kwargs={"k": 2},
            locations=LOCS,
            problem="detector-trace",
        )
        afd = spec.resolve_afd()
        assert getattr(afd, "k", None) == 2

    def test_fault_pattern_from_mapping_and_instance(self):
        mapping = ExperimentSpec(
            detector="omega",
            locations=LOCS,
            problem="detector-trace",
            crashes={1: 4},
        ).fault_pattern()
        assert isinstance(mapping, FaultPattern)
        explicit = FaultPattern({1: 4}, LOCS)
        spec = ExperimentSpec(
            detector="omega",
            locations=LOCS,
            problem="detector-trace",
            crashes=explicit,
        )
        assert spec.fault_pattern() is explicit

    def test_default_proposals_alternate(self):
        spec = ExperimentSpec(
            algorithm=omega_consensus_algorithm,
            detector="omega",
            locations=LOCS,
        )
        assert spec.effective_proposals() == {0: 0, 1: 1, 2: 0}

    def test_spec_is_picklable(self):
        spec = ExperimentSpec(
            algorithm=omega_consensus_algorithm,
            detector="omega",
            locations=LOCS,
            crashes={0: 10},
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec


class TestRun:
    def test_consensus_run(self):
        result = ExperimentSpec(
            algorithm=omega_consensus_algorithm,
            detector="omega",
            locations=LOCS,
            proposals={0: 1, 1: 0, 2: 0},
            crashes={0: 10},
            f=1,
            max_steps=30_000,
        ).run()
        assert result.ok and result.solved and result.all_live_decided
        assert result.steps > 0 and result.messages_sent > 0
        assert set(result.decisions) == {1, 2}

    def test_detector_trace_run(self):
        result = run_spec(
            ExperimentSpec(
                detector="p",
                locations=LOCS,
                problem="detector-trace",
                crashes={2: 5},
                max_steps=80,
            )
        )
        assert result.ok and result.fd_ok

    def test_uninstrumented_run_has_no_trace(self):
        result = ExperimentSpec(
            detector="p",
            locations=LOCS,
            problem="detector-trace",
            max_steps=40,
        ).run()
        assert result.trace is None and result.report is None

    def test_instrumented_run_has_canonical_trace_and_report(self):
        result = ExperimentSpec(
            detector="p",
            locations=LOCS,
            problem="detector-trace",
            max_steps=40,
            instrument=True,
        ).run()
        assert result.trace and result.report
        assert result.report["schema"] == "repro.report/1"
        # Canonical lines carry no wall-clock field.
        assert all('"t":' not in line for line in result.trace)

    def test_meta_is_json_ready(self):
        import json

        spec = ExperimentSpec(
            algorithm=omega_consensus_algorithm,
            detector="omega",
            locations=LOCS,
            crashes={0: 10},
        )
        json.dumps(spec.meta())

    def test_row_shape(self):
        result = ExperimentSpec(
            detector="p",
            locations=LOCS,
            problem="detector-trace",
            max_steps=40,
        ).run()
        row = result.row()
        assert row[0] == result.label
        assert len(row) == 5
