"""sweep(): grid expansion, seed derivation, labels."""

from __future__ import annotations

import pytest

from repro.runner import ExperimentSpec, sweep

LOCS = (0, 1, 2)


def base_spec(**overrides):
    kwargs = dict(
        detector="omega",
        locations=LOCS,
        problem="detector-trace",
        seed=7,
        label="base",
    )
    kwargs.update(overrides)
    return ExperimentSpec(**kwargs)


class TestSweep:
    def test_cartesian_size(self):
        variants = sweep(
            base_spec(),
            seeds=3,
            fault_patterns=[{}, {0: 5}],
            detector_params=[{}, {}],
        )
        assert len(variants) == 12

    def test_derived_seeds_distinct_per_cell(self):
        variants = sweep(base_spec(), seeds=5, fault_patterns=[{}, {1: 2}])
        assert len({v.seed for v in variants}) == len(variants) == 10

    def test_explicit_seeds_kept_verbatim(self):
        variants = sweep(base_spec(), seeds=[11, 22])
        assert [v.seed for v in variants] == [11, 22]

    def test_none_keeps_base_everything(self):
        variants = sweep(base_spec())
        assert len(variants) == 1
        assert variants[0].seed == 7
        assert variants[0].label == "base"

    def test_labels_tag_varied_axes_only(self):
        variants = sweep(base_spec(), fault_patterns=[{}, {0: 5}])
        assert [v.label for v in variants] == ["base|fp0", "base|fp1"]

    def test_detector_params_merge_over_base(self):
        base = base_spec(
            detector="omega-k", detector_kwargs={"k": 1}
        )
        variants = sweep(base, detector_params=[{}, {"k": 2}])
        assert variants[0].detector_kwargs == {"k": 1}
        assert variants[1].detector_kwargs == {"k": 2}
        assert "k=2" in variants[1].label

    def test_fault_pattern_axis_applied(self):
        variants = sweep(base_spec(), fault_patterns=[{}, {0: 5}])
        assert variants[0].crashes == {}
        assert variants[1].crashes == {0: 5}


class TestEmptyGridGuards:
    """Regression: grids that would run nothing must fail loudly."""

    def test_seeds_zero_raises(self):
        # Was: sweep(base, seeds=0) == [] — a sweep that runs nothing
        # and "succeeds".
        with pytest.raises(ValueError, match="seeds=None"):
            sweep(base_spec(), seeds=0)

    def test_seeds_negative_raises(self):
        with pytest.raises(ValueError, match="empty grid"):
            sweep(base_spec(), seeds=-3)

    def test_empty_explicit_seeds_raise(self):
        with pytest.raises(ValueError, match="seeds=None"):
            sweep(base_spec(), seeds=[])

    def test_empty_axis_lists_raise(self):
        with pytest.raises(ValueError, match="fault_patterns=None"):
            sweep(base_spec(), fault_patterns=[])
        with pytest.raises(ValueError, match="detector_params=None"):
            sweep(base_spec(), detector_params=[])
        with pytest.raises(ValueError, match="fault_plans=None"):
            sweep(base_spec(), fault_plans=[])


class TestDuplicateSeedGuard:
    """Regression: duplicate explicit seeds aliased labels and cache keys."""

    def test_duplicate_explicit_seeds_raise(self):
        # Was: sweep(base, seeds=[3, 3]) -> two byte-identical "...|s3"
        # rows colliding in series and aliasing cache keys.
        with pytest.raises(ValueError, match=r"duplicate explicit seeds \[3\]"):
            sweep(base_spec(), seeds=[3, 3])

    def test_duplicates_reported_sorted_and_deduped(self):
        with pytest.raises(ValueError, match=r"\[2, 9\]"):
            sweep(base_spec(), seeds=[9, 2, 9, 2, 9])

    def test_distinct_explicit_seeds_still_verbatim(self):
        variants = sweep(base_spec(), seeds=[11, 22])
        assert [v.seed for v in variants] == [11, 22]
        assert [v.label for v in variants] == ["base|s11", "base|s22"]


class TestLabelStability:
    """Labels are part of cache/series identity: pin them exactly."""

    def test_multi_axis_label_snapshot(self):
        variants = sweep(
            base_spec(detector="omega-k", detector_kwargs={"k": 1}),
            seeds=2,
            fault_patterns=[{}, {0: 5}],
            detector_params=[{"k": 1}, {"k": 2}],
        )
        # Derived seeds are pure functions of (base.seed, di, pi, si),
        # so these labels are machine-stable byte for byte.
        assert [v.label for v in variants] == [
            "base|k=1|fp0|s7427288272649902801",
            "base|k=1|fp0|s6013431156936813000",
            "base|k=1|fp1|s2544757172392426940",
            "base|k=1|fp1|s5483792722208945595",
            "base|k=2|fp0|s459306240873674934",
            "base|k=2|fp0|s4950481152883457842",
            "base|k=2|fp1|s2852928810020327877",
            "base|k=2|fp1|s8935470365701884183",
        ]

    def test_single_axis_label_snapshot(self):
        variants = sweep(base_spec(), fault_patterns=[{}, {0: 5}, {1: 9}])
        assert [v.label for v in variants] == [
            "base|fp0",
            "base|fp1",
            "base|fp2",
        ]
