"""sweep(): grid expansion, seed derivation, labels."""

from __future__ import annotations

from repro.runner import ExperimentSpec, sweep

LOCS = (0, 1, 2)


def base_spec(**overrides):
    kwargs = dict(
        detector="omega",
        locations=LOCS,
        problem="detector-trace",
        seed=7,
        label="base",
    )
    kwargs.update(overrides)
    return ExperimentSpec(**kwargs)


class TestSweep:
    def test_cartesian_size(self):
        variants = sweep(
            base_spec(),
            seeds=3,
            fault_patterns=[{}, {0: 5}],
            detector_params=[{}, {}],
        )
        assert len(variants) == 12

    def test_derived_seeds_distinct_per_cell(self):
        variants = sweep(base_spec(), seeds=5, fault_patterns=[{}, {1: 2}])
        assert len({v.seed for v in variants}) == len(variants) == 10

    def test_explicit_seeds_kept_verbatim(self):
        variants = sweep(base_spec(), seeds=[11, 22])
        assert [v.seed for v in variants] == [11, 22]

    def test_none_keeps_base_everything(self):
        variants = sweep(base_spec())
        assert len(variants) == 1
        assert variants[0].seed == 7
        assert variants[0].label == "base"

    def test_labels_tag_varied_axes_only(self):
        variants = sweep(base_spec(), fault_patterns=[{}, {0: 5}])
        assert [v.label for v in variants] == ["base|fp0", "base|fp1"]

    def test_detector_params_merge_over_base(self):
        base = base_spec(
            detector="omega-k", detector_kwargs={"k": 1}
        )
        variants = sweep(base, detector_params=[{}, {"k": 2}])
        assert variants[0].detector_kwargs == {"k": 1}
        assert variants[1].detector_kwargs == {"k": 2}
        assert "k=2" in variants[1].label

    def test_fault_pattern_axis_applied(self):
        variants = sweep(base_spec(), fault_patterns=[{}, {0: 5}])
        assert variants[0].crashes == {}
        assert variants[1].crashes == {0: 5}
