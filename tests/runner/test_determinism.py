"""The engine's determinism contract (the tentpole guarantee).

1. The canonical trace of an instrumented spec is byte-identical whether
   the spec runs serially or in a multiprocessing worker pool.
2. Derived seeds are distinct (collision-free over a wide sweep) and
   distinct seeds produce genuinely different runs under the random
   scheduling policy.
"""

from __future__ import annotations

import dataclasses

from repro.algorithms.consensus_omega import omega_consensus_algorithm
from repro.runner import (
    BatchRunner,
    ExperimentSpec,
    derive_seed,
    derive_seeds,
    run_spec,
    sweep,
)

LOCS = (0, 1, 2)


def consensus_spec(**overrides):
    base = dict(
        algorithm=omega_consensus_algorithm,
        detector="omega",
        locations=LOCS,
        proposals={0: 1, 1: 0, 2: 0},
        crashes={0: 10},
        f=1,
        max_steps=30_000,
        instrument=True,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def trace_spec(**overrides):
    base = dict(
        detector="p",
        locations=LOCS,
        problem="detector-trace",
        crashes={2: 5},
        max_steps=80,
        instrument=True,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestSerialParallelIdentity:
    def test_consensus_traces_byte_identical_across_jobs(self):
        specs = sweep(consensus_spec(), fault_patterns=[{}, {0: 10}, {1: 4}])
        serial = BatchRunner(jobs=1).run(specs, raise_on_error=True)
        parallel = BatchRunner(jobs=4).run(specs, raise_on_error=True)
        for s, p in zip(serial, parallel):
            assert s.trace == p.trace  # byte-identical canonical JSONL
            assert s.trace is not None and len(s.trace) > 0
            assert (s.steps, s.messages_sent, s.decisions) == (
                p.steps,
                p.messages_sent,
                p.decisions,
            )

    def test_detector_traces_byte_identical_across_jobs(self):
        specs = sweep(
            trace_spec(), seeds=4, fault_patterns=[{}, {2: 5}]
        )
        serial = BatchRunner(jobs=1).run(specs, raise_on_error=True)
        parallel = BatchRunner(jobs=4).run(specs, raise_on_error=True)
        assert [r.trace for r in serial] == [r.trace for r in parallel]

    def test_random_policy_matches_in_worker(self):
        spec = consensus_spec(policy="random", seed=123)
        in_process = run_spec(spec)
        in_worker = BatchRunner(jobs=2).run(
            [spec, dataclasses.replace(spec)], raise_on_error=True
        )
        for result in in_worker:
            assert result.trace == in_process.trace

    def test_reports_stable_modulo_wall_clock(self):
        spec = trace_spec()
        a = run_spec(spec).report
        b = BatchRunner(jobs=2).run([spec, spec]).results[0].report
        # Everything but wall-clock-bearing sections is identical.
        for key in ("event_counts", "per_location", "message_matrix", "meta"):
            assert a[key] == b[key], key


class TestSeedDerivation:
    def test_derived_seeds_distinct_wide(self):
        seeds = derive_seeds(0, 64, "sweep")
        assert len(set(seeds)) == 64
        # Distinct bases and components never collide in practice.
        wide = {
            derive_seed(base, di, pi, si)
            for base in range(4)
            for di in range(4)
            for pi in range(4)
            for si in range(4)
        }
        assert len(wide) == 256

    def test_sweep_over_20_seeds_all_distinct_runs(self):
        base = consensus_spec(policy="random")
        specs = sweep(base, seeds=20)
        assert len({s.seed for s in specs}) == 20
        batch = BatchRunner(jobs=4).run(specs, raise_on_error=True)
        assert all(r.solved for r in batch)
        # Distinct derived seeds drive genuinely different schedules:
        # the canonical traces are not all the same.
        assert len({tuple(r.trace) for r in batch}) > 1

    def test_derivation_is_stable(self):
        # Pinned: the derivation is SHA-256 based, not process-salted
        # Python hash(); the same inputs give the same seed anywhere.
        assert derive_seed(7, "x", 1) == derive_seed(7, "x", 1)
        assert derive_seed(7, "x", 1) != derive_seed(7, "x", 2)
        assert derive_seed(7, "x", 1) != derive_seed(8, "x", 1)
