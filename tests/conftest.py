"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.ioa.scheduler import Scheduler
from repro.system.fault_pattern import FaultPattern


@pytest.fixture
def locations3():
    return (0, 1, 2)


@pytest.fixture
def locations4():
    return (0, 1, 2, 3)


@pytest.fixture
def scheduler():
    return Scheduler()


def run_detector(detector_automaton, fault_pattern: FaultPattern, steps: int):
    """Run a detector automaton under a fault pattern; return the events."""
    execution = Scheduler().run(
        detector_automaton,
        max_steps=steps,
        injections=fault_pattern.injections(),
    )
    return list(execution.actions)
