"""Property-based tests over the tagged tree: for randomized FD
sequences in T_P (random victim, crash position, round counts), the
Section 9 structure always emerges — bivalent root, complete valence,
hooks satisfying Theorem 59 with live critical locations."""

from hypothesis import given, settings, strategies as st

from repro.algorithms.consensus_tree import (
    TreeConsensusProcess,
    tree_consensus_algorithm,
)
from repro.core.validity import faulty_locations
from repro.detectors.perfect import perfect_output
from repro.ioa.composition import Composition
from repro.system.channel import make_channels
from repro.system.environment import ConsensusEnvironment
from repro.system.fault_pattern import crash_action
from repro.tree.hooks import HookSearch
from repro.tree.tagged_tree import TaggedTreeGraph
from repro.tree.valence import (
    ValenceAnalysis,
    decision_extractor_for_processes,
)

LOCS = (0, 1)


def build_composition():
    algorithm = tree_consensus_algorithm(LOCS)
    composition = Composition(
        list(algorithm.automata())
        + make_channels(LOCS)
        + [ConsensusEnvironment(LOCS)],
        name="prop-tree",
    )
    return algorithm, composition


@st.composite
def fd_sequences(draw):
    """A randomized element of T_P over two locations."""
    crash_someone = draw(st.booleans())
    if not crash_someone:
        rounds = draw(st.integers(6, 9))
        return [
            perfect_output(i, ()) for _ in range(rounds) for i in LOCS
        ]
    victim = draw(st.sampled_from(LOCS))
    survivor = 1 - victim
    pre_rounds = draw(st.integers(0, 2))
    post_rounds = draw(st.integers(5, 8))
    td = [
        perfect_output(i, ()) for _ in range(pre_rounds) for i in LOCS
    ]
    td.append(crash_action(victim))
    td += [perfect_output(survivor, (victim,))] * post_rounds
    return td


@settings(max_examples=10, deadline=None)
@given(td=fd_sequences())
def test_tree_structure_invariants(td):
    algorithm, composition = build_composition()
    graph = TaggedTreeGraph(composition, td, max_vertices=400_000)
    valence = ValenceAnalysis(
        graph,
        decision_extractor_for_processes(
            composition, algorithm.automata(), TreeConsensusProcess.decision
        ),
    )
    # Proposition 48's finite counterpart: t_D is long enough that every
    # vertex reaches a decision.
    assert not valence.undetermined_vertices(), td
    # Proposition 51.
    assert valence.root_valence().bivalent
    # Lemma 55 + Theorem 59.
    report = HookSearch(graph, valence, LOCS).report(max_hooks=60)
    assert report.num_hooks > 0
    assert report.theorem59_holds, td
    faulty = set(faulty_locations(td))
    assert not (report.critical_locations & faulty)
