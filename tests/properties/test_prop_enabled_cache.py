"""Property-based validation of the composition's enabled-cache layer.

The dispatch maps and per-component enabled cache
(:mod:`repro.ioa.composition`) are pure accelerations: on randomized
compositions driven through randomized fired-action sequences — including
injected crash events, whose participants' pieces change while everyone
else's stay cached — the cached ``enabled_by_task``/``enabled_in_task``/
``enabled`` answers must agree exactly with brute-force re-enumeration
from ``enabled_locally`` after every step, and a cache-disabled twin
composition must follow the identical state trajectory.
"""

from hypothesis import given, settings, strategies as st

from repro.ioa.actions import Action
from repro.ioa.automaton import FunctionalAutomaton
from repro.ioa.composition import Composition
from repro.ioa.signature import FiniteActionSet, Signature
from repro.system.crash import CrashAutomaton
from repro.system.fault_pattern import crash_action

MAX_COMPONENTS = 3
MAX_STATES = 4


def brute_force_snapshot(composition, state):
    """The pre-cache O(tasks × enabled-actions) formula, computed straight
    from ``enabled_locally`` with no memo in the path."""
    snapshot = {}
    for task in composition.tasks():
        component, local = composition.split_task(task)
        piece = composition.component_state(state, component)
        enabled = tuple(
            action
            for action in component.enabled_locally(piece)
            if component.task_of(action) == local
        )
        if enabled:
            snapshot[task] = enabled
    return snapshot


@st.composite
def random_systems(draw):
    """A random compatible composition plus a random walk plan.

    Each component owns a few output actions split over one or two tasks,
    reacts to every other component's outputs and to crash events, and
    enables a state-dependent subset of its outputs.  A crash automaton
    rides along so walks can inject crash actions (obligation-free, always
    enabled, never in any task snapshot).
    """
    n_components = draw(st.integers(min_value=2, max_value=MAX_COMPONENTS))
    locations = tuple(range(n_components))
    crashes = [crash_action(i) for i in locations]
    specs = []
    for i in range(n_components):
        n_actions = draw(st.integers(min_value=1, max_value=3))
        specs.append([Action(f"a{i}.{j}", i) for j in range(n_actions)])

    n_states = draw(st.integers(min_value=2, max_value=MAX_STATES))
    components = []
    for i, own in enumerate(specs):
        foreign = [a for k, acts in enumerate(specs) if k != i for a in acts]
        observed = own + foreign + crashes
        table = {
            (s, a.name, a.location): draw(
                st.integers(min_value=0, max_value=n_states - 1)
            )
            for s in range(n_states)
            for a in observed
        }
        enabled = {
            s: tuple(a for a in own if draw(st.booleans()))
            for s in range(n_states)
        }
        n_tasks = draw(st.integers(min_value=1, max_value=2))
        task_names = tuple(f"t{k}" for k in range(n_tasks))
        assign = {
            a.name: task_names[
                draw(st.integers(min_value=0, max_value=n_tasks - 1))
            ]
            for a in own
        }
        components.append(
            FunctionalAutomaton(
                name=f"c{i}",
                signature=Signature(
                    inputs=FiniteActionSet(foreign + crashes),
                    outputs=FiniteActionSet(own),
                ),
                initial=draw(st.integers(min_value=0, max_value=n_states - 1)),
                transition=lambda s, a, table=table: table[
                    (s, a.name, a.location)
                ],
                enabled_fn=lambda s, enabled=enabled: enabled[s],
                task_names=task_names,
                task_assignment=lambda a, assign=assign: assign[a.name],
            )
        )
    components.append(CrashAutomaton(locations))
    steps = draw(
        st.lists(
            st.tuples(
                st.booleans(),  # fire a crash event this step?
                st.integers(min_value=0, max_value=10**6),  # choice seed
            ),
            min_size=1,
            max_size=12,
        )
    )
    return components, crashes, steps


def make_pair(components):
    """Cached composition and its brute-force twin over the same
    (stateless, shareable) component objects."""
    cached = Composition(components, name="sys", use_enabled_cache=True)
    uncached = Composition(components, name="sys", use_enabled_cache=False)
    return cached, uncached


@settings(max_examples=30, deadline=None)
@given(system=random_systems())
def test_cached_enabled_agrees_with_brute_force(system):
    components, crashes, steps = system
    cached, uncached = make_pair(components)
    state = cached.initial_state()
    assert state == uncached.initial_state()

    for want_crash, choice in steps:
        snapshot = cached.enabled_by_task(state)
        # 1. The per-step snapshot equals brute-force re-enumeration...
        assert snapshot == brute_force_snapshot(cached, state)
        # ...and the cache-disabled twin computes the same thing.
        assert snapshot == uncached.enabled_by_task(state)
        # 2. Per-task queries agree with the snapshot on every task,
        #    including the ones the snapshot omits as empty.
        for task in cached.tasks():
            assert cached.enabled_in_task(state, task) == snapshot.get(
                task, ()
            )
            assert uncached.enabled_in_task(state, task) == snapshot.get(
                task, ()
            )
        # 3. Crash actions are always fireable but never in any task.
        for crash in crashes:
            assert cached.enabled(state, crash)
            assert cached.task_of(crash) is None
        assert not any(
            crash in actions
            for actions in snapshot.values()
            for crash in [crashes[0]]
        )

        # Fire one action — an injected crash or a task-enabled action —
        # on both compositions and check they stay in lockstep.
        fireable = sorted(
            {a for actions in snapshot.values() for a in actions},
            key=lambda a: (a.name, a.location),
        )
        if want_crash or not fireable:
            action = crashes[choice % len(crashes)]
        else:
            action = fireable[choice % len(fireable)]
        assert cached.enabled(state, action)
        assert uncached.enabled(state, action)
        assert cached.task_of(action) == uncached.task_of(action)
        assert cached.participants(action) == uncached.participants(action)
        next_state = cached.apply(state, action)
        assert next_state == uncached.apply(state, action)
        state = next_state

    # Final-state sanity: one more full agreement check after the walk.
    assert cached.enabled_by_task(state) == brute_force_snapshot(
        cached, state
    )


@settings(max_examples=15, deadline=None)
@given(system=random_systems())
def test_memo_reuse_never_leaks_between_states(system):
    """Replaying the same walk on a fresh composition (cold caches) gives
    identical snapshots at every step: warm memos carry no hidden state."""
    components, crashes, steps = system
    warm, _ = make_pair(components)
    replay = Composition(components, name="sys", use_enabled_cache=True)

    state = warm.initial_state()
    trail = []
    for want_crash, choice in steps:
        snapshot = warm.enabled_by_task(state)
        trail.append((state, snapshot))
        fireable = sorted(
            {a for actions in snapshot.values() for a in actions},
            key=lambda a: (a.name, a.location),
        )
        if want_crash or not fireable:
            action = crashes[choice % len(crashes)]
        else:
            action = fireable[choice % len(fireable)]
        state = warm.apply(state, action)

    for visited, snapshot in trail:
        assert replay.enabled_by_task(visited) == snapshot
