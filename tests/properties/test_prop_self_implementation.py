"""Property-based Theorem 13: A^self solves a renaming of D for a
randomly chosen zoo detector under a random fault pattern and schedule
seed."""

from hypothesis import given, settings, strategies as st

from repro.core.self_implementation import self_implementation_algorithm
from repro.detectors.registry import ZOO, make_detector
from repro.ioa.composition import Composition
from repro.ioa.scheduler import RandomPolicy, Scheduler
from repro.system.crash import CrashAutomaton
from repro.system.fault_pattern import FaultPattern

LOCS = (0, 1, 2)


@st.composite
def scenarios(draw):
    name = draw(st.sampled_from(sorted(ZOO)))
    num_crashes = draw(st.integers(0, 2))
    victims = draw(st.permutations(list(LOCS)).map(lambda p: p[:num_crashes]))
    crashes = {v: draw(st.integers(0, 50)) for v in victims}
    seed = draw(st.integers(0, 10_000))
    return name, crashes, seed


@settings(max_examples=20, deadline=None)
@given(scenario=scenarios())
def test_self_implementation_theorem13(scenario):
    name, crashes, seed = scenario
    afd = make_detector(name, LOCS)
    algorithm, _renaming = self_implementation_algorithm(afd)
    system = Composition(
        [afd.automaton()]
        + list(algorithm.automata())
        + [CrashAutomaton(LOCS)],
        name="self-prop",
    )
    execution = Scheduler(RandomPolicy(seed=seed)).run(
        system,
        max_steps=900,
        injections=FaultPattern(crashes, LOCS).injections(),
    )
    events = list(execution.actions)
    renamed = afd.renamed()
    premise = afd.check_limit(afd.project_events(events))
    if not premise:
        return  # implication vacuous under this schedule (rare)
    conclusion = renamed.check_limit(renamed.project_events(events))
    assert conclusion, (name, crashes, seed, conclusion.reasons)
