"""Property-based consensus correctness: over random proposals, fault
patterns and schedules, the defining implication of "A solves consensus
using D in E_C" (Section 9.3) holds.
"""

from hypothesis import given, settings, strategies as st

from repro.algorithms.consensus_omega import omega_consensus_algorithm
from repro.algorithms.consensus_perfect import perfect_consensus_algorithm
from repro.analysis.checkers import run_consensus_experiment
from repro.detectors.omega import Omega
from repro.detectors.perfect import Perfect
from repro.ioa.scheduler import RandomPolicy
from repro.system.fault_pattern import FaultPattern

LOCS = (0, 1, 2)


@st.composite
def scenarios(draw, max_faulty):
    proposals = {i: draw(st.integers(0, 1)) for i in LOCS}
    num_crashes = draw(st.integers(min_value=0, max_value=max_faulty))
    victims = draw(
        st.permutations(list(LOCS)).map(lambda p: p[:num_crashes])
    )
    crashes = {v: draw(st.integers(0, 60)) for v in victims}
    seed = draw(st.integers(0, 10_000))
    return proposals, crashes, seed


@settings(max_examples=20, deadline=None)
@given(scenario=scenarios(max_faulty=1))
def test_omega_consensus_solves(scenario):
    """f < n/2 for the Paxos-style algorithm."""
    proposals, crashes, seed = scenario
    result = run_consensus_experiment(
        omega_consensus_algorithm(LOCS),
        Omega(LOCS),
        proposals=proposals,
        fault_pattern=FaultPattern(crashes, LOCS),
        f=1,
        max_steps=25_000,
        policy=RandomPolicy(seed=seed),
    )
    assert result.all_live_decided
    assert result.solved, (
        proposals,
        crashes,
        result.fd_check.reasons,
        result.consensus_check.reasons,
    )
    decided = set(result.decisions.values())
    assert len(decided) == 1
    assert decided <= set(proposals.values())


@settings(max_examples=20, deadline=None)
@given(scenario=scenarios(max_faulty=2))
def test_perfect_consensus_solves(scenario):
    """f < n for the rotating-coordinator algorithm."""
    proposals, crashes, seed = scenario
    result = run_consensus_experiment(
        perfect_consensus_algorithm(LOCS),
        Perfect(LOCS),
        proposals=proposals,
        fault_pattern=FaultPattern(crashes, LOCS),
        f=2,
        max_steps=25_000,
        policy=RandomPolicy(seed=seed),
    )
    assert result.all_live_decided
    assert result.solved, (
        proposals,
        crashes,
        result.fd_check.reasons,
        result.consensus_check.reasons,
    )
    decided = set(result.decisions.values())
    assert len(decided) <= 1
    assert decided <= set(proposals.values())
