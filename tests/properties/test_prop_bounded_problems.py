"""Property-based tests for the bounded-problem algorithm suite:
FloodMin k-set agreement and flooding TRB under random proposals, crash
plans and schedules."""

from hypothesis import given, settings, strategies as st

from repro.algorithms.kset_floodmin import (
    FloodMinProcess,
    floodmin_algorithm,
)
from repro.algorithms.trb_flooding import trb_flooding_algorithm
from repro.detectors.perfect import PerfectAutomaton
from repro.ioa.composition import Composition
from repro.ioa.scheduler import Injection, Scheduler
from repro.problems.kset_agreement import KSetAgreementProblem
from repro.problems.reliable_broadcast import (
    ReliableBroadcastProblem,
    bcast_action,
)
from repro.system.channel import make_channels
from repro.system.crash import CrashAutomaton
from repro.system.environment import ScriptedConsensusEnvironment
from repro.system.fault_pattern import FaultPattern
from repro.system.network import SystemBuilder

LOCS = (0, 1, 2, 3)


@st.composite
def crash_plans(draw, max_faulty):
    num = draw(st.integers(0, max_faulty))
    victims = draw(st.permutations(list(LOCS)).map(lambda p: p[:num]))
    return {v: draw(st.integers(0, 50)) for v in victims}


@settings(max_examples=12, deadline=None)
@given(
    crashes=crash_plans(max_faulty=2),
    proposals=st.tuples(*[st.integers(0, 3) for _ in LOCS]),
)
def test_floodmin_kset_agreement(crashes, proposals):
    k, f = 2, 2
    algorithm = floodmin_algorithm(LOCS, k=k, f=f)
    system = (
        SystemBuilder(LOCS)
        .with_algorithm(algorithm)
        .with_failure_detector(PerfectAutomaton(LOCS))
        .with_environment(
            ScriptedConsensusEnvironment(dict(zip(LOCS, proposals)))
        )
        .build()
    )

    def settled(state, _step):
        crashed = system.crashed(state)
        return all(
            i in crashed
            or FloodMinProcess.decision(system.process_state(state, i))
            is not None
            for i in LOCS
        )

    execution = system.run(
        max_steps=20_000,
        fault_pattern=FaultPattern(crashes, LOCS),
        stop_when=settled,
    )
    problem = KSetAgreementProblem(LOCS, f=f, k=k, values=tuple(range(4)))
    events = problem.project_events(list(execution.actions))
    verdict = problem.check_conditional(events)
    assert verdict, (crashes, proposals, verdict.reasons)
    decisions = {a.payload[0] for a in events if a.name == "decide"}
    assert len(decisions) <= k
    assert decisions <= set(proposals)


@settings(max_examples=12, deadline=None)
@given(
    crashes=crash_plans(max_faulty=2),
    bcast_step=st.integers(0, 30),
)
def test_trb_agreement_and_validity(crashes, bcast_step):
    algorithm = trb_flooding_algorithm(LOCS, sender=0, f=2)
    system = Composition(
        list(algorithm.automata())
        + make_channels(LOCS)
        + [PerfectAutomaton(LOCS), CrashAutomaton(LOCS)],
        name="trb",
    )
    execution = Scheduler().run(
        system,
        max_steps=12_000,
        injections=[Injection(bcast_step, bcast_action(0, "m"))]
        + FaultPattern(crashes, LOCS).injections(),
    )
    problem = ReliableBroadcastProblem(LOCS, sender=0, f=2)
    events = problem.project_events(list(execution.actions))
    verdict = problem.check_conditional(events)
    assert verdict, (crashes, bcast_step, verdict.reasons)
