"""Property-based tests for samplings (Section 3.2).

Invariants:
* every random sampling is a sampling (checker/generator agreement);
* sampling is transitive: a sampling of a sampling is a sampling;
* sampling preserves validity condition (1) and the faulty set;
* sampling never drops events at live locations.
"""

from hypothesis import given, settings, strategies as st

from repro.core.sampling import is_sampling_of, random_sampling
from repro.core.validity import (
    check_no_outputs_after_crash,
    faulty_locations,
    outputs_at,
)
from repro.detectors.omega import Omega
from repro.ioa.scheduler import Scheduler
from repro.system.fault_pattern import FaultPattern

LOCS = (0, 1, 2)


@st.composite
def generated_traces(draw):
    """Fair finite traces of the Omega generator under a random plan."""
    num_crashes = draw(st.integers(min_value=0, max_value=2))
    victims = draw(
        st.permutations(list(LOCS)).map(lambda p: p[:num_crashes])
    )
    steps = draw(st.integers(min_value=20, max_value=80))
    crashes = {
        v: draw(st.integers(min_value=0, max_value=steps - 1))
        for v in victims
    }
    fd = Omega(LOCS).automaton()
    execution = Scheduler().run(
        fd,
        max_steps=steps,
        injections=FaultPattern(crashes, LOCS).injections(),
    )
    return list(execution.actions)


@settings(max_examples=25, deadline=None)
@given(t=generated_traces(), seed=st.integers(min_value=0, max_value=10_000))
def test_random_sampling_is_sampling(t, seed):
    assert is_sampling_of(random_sampling(t, seed=seed), t)


@settings(max_examples=25, deadline=None)
@given(
    t=generated_traces(),
    seed1=st.integers(min_value=0, max_value=10_000),
    seed2=st.integers(min_value=0, max_value=10_000),
)
def test_sampling_transitive(t, seed1, seed2):
    first = random_sampling(t, seed=seed1)
    second = random_sampling(first, seed=seed2)
    assert is_sampling_of(second, first)
    assert is_sampling_of(second, t)


@settings(max_examples=25, deadline=None)
@given(t=generated_traces(), seed=st.integers(min_value=0, max_value=10_000))
def test_sampling_preserves_validity_condition_1(t, seed):
    sampled = random_sampling(t, seed=seed)
    assert check_no_outputs_after_crash(sampled)


@settings(max_examples=25, deadline=None)
@given(t=generated_traces(), seed=st.integers(min_value=0, max_value=10_000))
def test_sampling_preserves_faulty_set(t, seed):
    sampled = random_sampling(t, seed=seed)
    assert faulty_locations(sampled) == faulty_locations(t)


@settings(max_examples=25, deadline=None)
@given(t=generated_traces(), seed=st.integers(min_value=0, max_value=10_000))
def test_sampling_keeps_live_outputs(t, seed):
    sampled = random_sampling(t, seed=seed)
    faulty = faulty_locations(t)
    for i in LOCS:
        if i not in faulty:
            assert outputs_at(sampled, i) == outputs_at(t, i)


@settings(max_examples=25, deadline=None)
@given(t=generated_traces(), seed=st.integers(min_value=0, max_value=10_000))
def test_faulty_outputs_form_prefix(t, seed):
    sampled = random_sampling(t, seed=seed)
    for i in faulty_locations(t):
        mine = outputs_at(sampled, i)
        theirs = outputs_at(t, i)
        assert mine == theirs[: len(mine)]
