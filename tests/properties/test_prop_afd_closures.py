"""Property-based validation of the three AFD properties across the zoo
(Section 3.2): every fair generator trace under a random fault pattern is
accepted, and membership is closed under random samplings and random
constrained reorderings.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.afd import check_afd_closure_properties
from repro.detectors.registry import ZOO, make_detector
from repro.ioa.scheduler import Scheduler
from repro.system.fault_pattern import FaultPattern

LOCS = (0, 1, 2)

#: Steps chosen so every live location has a long stabilized tail.
STEPS = 120


@st.composite
def fault_plans(draw):
    num_crashes = draw(st.integers(min_value=0, max_value=2))
    victims = draw(
        st.permutations(list(LOCS)).map(lambda p: tuple(p[:num_crashes]))
    )
    return {
        v: draw(st.integers(min_value=0, max_value=40)) for v in victims
    }


@pytest.mark.parametrize("name", sorted(ZOO))
@settings(max_examples=10, deadline=None)
@given(crashes=fault_plans(), seed=st.integers(min_value=0, max_value=999))
def test_zoo_closure_properties(name, crashes, seed):
    detector = make_detector(name, LOCS)
    execution = Scheduler().run(
        detector.automaton(),
        max_steps=STEPS,
        injections=FaultPattern(crashes, LOCS).injections(),
    )
    trace = list(execution.actions)
    result = check_afd_closure_properties(
        detector,
        trace,
        num_samplings=3,
        num_reorderings=3,
        seed=seed,
    )
    assert result, (name, crashes, result.reasons)


@pytest.mark.parametrize("name", sorted(ZOO))
@settings(max_examples=8, deadline=None)
@given(crashes=fault_plans())
def test_zoo_renamed_afd_accepts_renamed_trace(name, crashes):
    """Renaming commutes with membership (Section 5.3, condition 2e)."""
    detector = make_detector(name, LOCS)
    renamed = detector.renamed()
    execution = Scheduler().run(
        detector.automaton(),
        max_steps=STEPS,
        injections=FaultPattern(crashes, LOCS).injections(),
    )
    trace = list(execution.actions)
    if not detector.check_limit(trace):
        return  # a pathological plan; the implication is vacuous
    renamed_trace = renamed.renaming_map.apply_sequence(trace)
    assert renamed.check_limit(renamed_trace)
