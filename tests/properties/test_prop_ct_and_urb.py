"""Property-based tests for the Chandra–Toueg ◇S consensus algorithm and
the majority-echo URB algorithm."""

from hypothesis import given, settings, strategies as st

from repro.algorithms.consensus_ct import ct_consensus_algorithm
from repro.algorithms.urb import urb_algorithm
from repro.analysis.checkers import run_consensus_experiment
from repro.detectors.strong import EventuallyStrong
from repro.ioa.composition import Composition
from repro.ioa.scheduler import Injection, RandomPolicy, Scheduler
from repro.problems.uniform_broadcast import (
    UniformBroadcastProblem,
    urb_bcast_action,
)
from repro.system.channel import make_channels
from repro.system.crash import CrashAutomaton
from repro.system.fault_pattern import FaultPattern

LOCS = (0, 1, 2)


@st.composite
def ct_scenarios(draw):
    proposals = {i: draw(st.integers(0, 1)) for i in LOCS}
    num_crashes = draw(st.integers(0, 1))  # f < n/2
    victims = draw(st.permutations(list(LOCS)).map(lambda p: p[:num_crashes]))
    crashes = {v: draw(st.integers(0, 60)) for v in victims}
    seed = draw(st.integers(0, 10_000))
    return proposals, crashes, seed


@settings(max_examples=15, deadline=None)
@given(scenario=ct_scenarios())
def test_ct_consensus_solves(scenario):
    proposals, crashes, seed = scenario
    result = run_consensus_experiment(
        ct_consensus_algorithm(LOCS),
        EventuallyStrong(LOCS),
        proposals=proposals,
        fault_pattern=FaultPattern(crashes, LOCS),
        f=1,
        max_steps=60_000,
        policy=RandomPolicy(seed=seed),
    )
    assert result.all_live_decided
    assert result.solved, (
        proposals,
        crashes,
        result.fd_check.reasons,
        result.consensus_check.reasons,
    )
    decided = set(result.decisions.values())
    assert len(decided) == 1
    assert decided <= set(proposals.values())


@st.composite
def urb_scenarios(draw):
    num_bcasts = draw(st.integers(1, 4))
    broadcasts = [
        (draw(st.integers(0, 30)), draw(st.sampled_from(LOCS)), f"m{k}")
        for k in range(num_bcasts)
    ]
    num_crashes = draw(st.integers(0, 1))  # f < n/2
    victims = draw(st.permutations(list(LOCS)).map(lambda p: p[:num_crashes]))
    crashes = {v: draw(st.integers(0, 40)) for v in victims}
    return broadcasts, crashes


@settings(max_examples=15, deadline=None)
@given(scenario=urb_scenarios())
def test_urb_uniform_agreement(scenario):
    broadcasts, crashes = scenario
    algorithm = urb_algorithm(LOCS)
    system = Composition(
        list(algorithm.automata())
        + make_channels(LOCS)
        + [CrashAutomaton(LOCS)],
        name="urb",
    )
    injections = [
        Injection(step, urb_bcast_action(src, msg))
        for (step, src, msg) in broadcasts
    ] + FaultPattern(crashes, LOCS).injections()
    execution = Scheduler().run(
        system, max_steps=15_000, injections=injections
    )
    problem = UniformBroadcastProblem(LOCS, f=1)
    events = problem.project_events(list(execution.actions))
    verdict = problem.check_conditional(events)
    assert verdict, (broadcasts, crashes, verdict.reasons)
