"""Property-based tests for constrained reorderings (Section 3.2).

Invariants:
* every random constrained reordering passes the checker;
* reordering is a permutation (multiset equality);
* per-location subsequences are preserved exactly;
* crash-precedence is preserved;
* constrained reorderings compose (transitivity);
* reordering preserves validity condition (1).
"""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.core.reordering import (
    is_constrained_reordering_of,
    random_constrained_reordering,
)
from repro.core.validity import check_no_outputs_after_crash
from repro.detectors.perfect import Perfect
from repro.ioa.scheduler import Scheduler
from repro.system.fault_pattern import FaultPattern, is_crash

LOCS = (0, 1, 2)


@st.composite
def generated_traces(draw):
    num_crashes = draw(st.integers(min_value=0, max_value=2))
    victims = draw(
        st.permutations(list(LOCS)).map(lambda p: p[:num_crashes])
    )
    steps = draw(st.integers(min_value=15, max_value=60))
    crashes = {
        v: draw(st.integers(min_value=0, max_value=steps - 1))
        for v in victims
    }
    fd = Perfect(LOCS).automaton()
    execution = Scheduler().run(
        fd,
        max_steps=steps,
        injections=FaultPattern(crashes, LOCS).injections(),
    )
    return list(execution.actions)


seeds = st.integers(min_value=0, max_value=10_000)


@settings(max_examples=25, deadline=None)
@given(t=generated_traces(), seed=seeds)
def test_random_reordering_passes_checker(t, seed):
    assert is_constrained_reordering_of(
        random_constrained_reordering(t, seed=seed), t
    )


@settings(max_examples=25, deadline=None)
@given(t=generated_traces(), seed=seeds)
def test_reordering_is_permutation(t, seed):
    reordered = random_constrained_reordering(t, seed=seed)
    assert Counter(reordered) == Counter(t)


@settings(max_examples=25, deadline=None)
@given(t=generated_traces(), seed=seeds)
def test_per_location_order_preserved(t, seed):
    reordered = random_constrained_reordering(t, seed=seed)
    for i in LOCS:
        mine = [a for a in reordered if a.location == i]
        theirs = [a for a in t if a.location == i]
        assert mine == theirs


@settings(max_examples=25, deadline=None)
@given(t=generated_traces(), seed=seeds)
def test_crash_precedence_preserved(t, seed):
    reordered = random_constrained_reordering(t, seed=seed)
    # Every event that followed a given crash in t still follows it.
    for k, a in enumerate(t):
        if not is_crash(a):
            continue
        crash_pos = _position_of_occurrence(reordered, t, k)
        for later in range(k + 1, len(t)):
            later_pos = _position_of_occurrence(reordered, t, later)
            assert crash_pos < later_pos


def _position_of_occurrence(reordered, t, index):
    """Position in `reordered` of the occurrence that is t[index], using
    the canonical k-th-occurrence matching."""
    action = t[index]
    rank = sum(1 for a in t[:index] if a == action)
    count = -1
    for pos, a in enumerate(reordered):
        if a == action:
            count += 1
            if count == rank:
                return pos
    raise AssertionError("occurrence missing")


@settings(max_examples=20, deadline=None)
@given(t=generated_traces(), seed1=seeds, seed2=seeds)
def test_reordering_composes(t, seed1, seed2):
    first = random_constrained_reordering(t, seed=seed1)
    second = random_constrained_reordering(first, seed=seed2)
    assert is_constrained_reordering_of(second, t)


@settings(max_examples=25, deadline=None)
@given(t=generated_traces(), seed=seeds)
def test_reordering_preserves_validity_condition_1(t, seed):
    reordered = random_constrained_reordering(t, seed=seed)
    assert check_no_outputs_after_crash(reordered)
