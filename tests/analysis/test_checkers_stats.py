"""Tests for the experiment runner and run statistics."""

from repro.algorithms.consensus_omega import omega_consensus_algorithm
from repro.algorithms.consensus_perfect import perfect_consensus_algorithm
from repro.analysis.checkers import run_consensus_experiment
from repro.analysis.stats import (
    collect_run_statistics,
    summarize_series,
)
from repro.detectors.omega import Omega
from repro.detectors.perfect import Perfect
from repro.system.fault_pattern import FaultPattern

LOCS = (0, 1, 2)


class TestRunConsensusExperiment:
    def test_successful_run_fields(self):
        result = run_consensus_experiment(
            omega_consensus_algorithm(LOCS),
            Omega(LOCS),
            proposals={0: 1, 1: 0, 2: 1},
            fault_pattern=FaultPattern({}, LOCS),
            f=1,
        )
        assert result.solved
        assert result.all_live_decided
        assert result.steps > 0
        assert result.messages_sent > 0
        assert result.fd_events
        assert result.problem_events
        assert result.fd_check.ok
        assert result.consensus_check.ok

    def test_faulty_location_excluded_from_decisions(self):
        result = run_consensus_experiment(
            perfect_consensus_algorithm(LOCS),
            Perfect(LOCS),
            proposals={0: 1, 1: 0, 2: 1},
            fault_pattern=FaultPattern({0: 4}, LOCS),
            f=1,
        )
        assert set(result.decisions) == {1, 2}
        assert result.solved


class TestRunStatistics:
    def test_collect(self):
        result = run_consensus_experiment(
            perfect_consensus_algorithm(LOCS),
            Perfect(LOCS),
            proposals={0: 1, 1: 1, 2: 1},
            fault_pattern=FaultPattern({2: 6}, LOCS),
            f=1,
        )
        stats = collect_run_statistics(result.execution, "fd-p")
        assert stats.total_events == result.steps
        assert stats.sends == result.messages_sent
        assert stats.receives <= stats.sends
        assert stats.crashes == 1
        assert stats.decisions == 2
        assert stats.fd_outputs > 0
        assert stats.first_decision_index <= stats.last_decision_index
        # Latency counts events, inclusive of the decision itself: an
        # execution whose last decision is at 0-based index i ran i + 1
        # events to settle.
        assert stats.decision_latency == stats.last_decision_index + 1
        assert stats.first_decision_latency == stats.first_decision_index + 1
        assert stats.decision_latency <= stats.total_events

    def test_decision_latency_off_by_one_regression(self):
        """A decision at step index 0 took 1 event, not 0."""
        from repro.ioa.actions import Action
        from repro.ioa.executions import Execution

        decide = Action("decide", 0, (1,))
        stats = collect_run_statistics(Execution([0, 1], [decide]))
        assert stats.first_decision_index == 0
        assert stats.last_decision_index == 0
        assert stats.decision_latency == 1
        assert stats.first_decision_latency == 1

    def test_to_dict_round_trips_derived_fields(self):
        from repro.ioa.actions import Action
        from repro.ioa.executions import Execution

        decide = Action("decide", 1, (0,))
        stats = collect_run_statistics(
            Execution([0, 1, 2], [Action("noop", 0), decide])
        )
        d = stats.to_dict()
        assert d["decision_latency"] == 2
        assert d["first_decision_latency"] == 2
        assert d["total_events"] == 2

    def test_empty_run(self):
        from repro.ioa.executions import Execution

        stats = collect_run_statistics(Execution([0], []))
        assert stats.total_events == 0
        assert stats.first_decision_index is None
        assert stats.decision_latency is None
        assert stats.first_decision_latency is None

    def test_fd_output_name_colliding_with_builtin_buckets(self):
        """Regression: fd_outputs used to sit in the same elif chain as
        sends/receives/decisions, so a detector whose output action was
        named "send" (or "receive"/"decide") had every event credited to
        the other bucket and its fd_outputs silently undercounted."""
        from repro.ioa.actions import Action
        from repro.ioa.executions import Execution

        events = [
            Action("send", 0, ("m", 1)),
            Action("receive", 1, ("m", 0)),
            Action("decide", 1, (1,)),
            Action("send", 1, ("m", 0)),
        ]
        stats = collect_run_statistics(
            Execution(list(range(len(events) + 1)), events),
            fd_output_name="send",
        )
        # Events named "send" count as both sends and FD outputs.
        assert stats.sends == 2
        assert stats.fd_outputs == 2
        assert stats.receives == 1
        assert stats.decisions == 1

        stats = collect_run_statistics(
            Execution(list(range(len(events) + 1)), events),
            fd_output_name="decide",
        )
        assert stats.fd_outputs == 1
        assert stats.decisions == 1

    def test_distinct_fd_output_name_unchanged(self):
        from repro.ioa.actions import Action
        from repro.ioa.executions import Execution

        events = [
            Action("suspect", 0, ((1,),)),
            Action("send", 0, ("m", 1)),
            Action("suspect", 1, ((0,),)),
        ]
        stats = collect_run_statistics(
            Execution(list(range(len(events) + 1)), events),
            fd_output_name="suspect",
        )
        assert stats.fd_outputs == 2
        assert stats.sends == 1


class TestSummarizeSeries:
    def test_summary(self):
        summary = summarize_series([1.0, 2.0, 3.0])
        assert summary["mean"] == 2.0
        assert summary["median"] == 2.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0

    def test_empty(self):
        assert summarize_series([])["mean"] == 0.0
