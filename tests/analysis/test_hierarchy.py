"""Tests for the AFD hierarchy graph (Section 7.1)."""

import pytest

from repro.analysis.hierarchy import (
    KNOWN_SEPARATIONS,
    build_hierarchy_graph,
    is_stronger,
    is_strictly_stronger,
    validate_hierarchy,
)
from repro.system.fault_pattern import FaultPattern

LOCS = (0, 1, 2)


class TestHierarchyGraph:
    def test_nodes_cover_zoo(self):
        graph = build_hierarchy_graph()
        for name in ("P", "EvP", "Omega", "Sigma", "antiOmega"):
            assert name in graph

    def test_self_loops_from_corollary_14(self):
        graph = build_hierarchy_graph()
        for name in graph.nodes:
            assert graph.has_edge(name, name)

    def test_registered_edges_present(self):
        graph = build_hierarchy_graph()
        assert graph.has_edge("P", "Omega")
        assert graph.has_edge("EvP", "Omega")
        assert graph.has_edge("Omega", "antiOmega")


class TestStrengthQueries:
    def test_direct_edges(self):
        assert is_stronger("P", "EvP")
        assert is_stronger("P", "Sigma")

    def test_transitive_closure(self):
        """Theorem 15: P >= EvP >= Omega >= antiOmega."""
        assert is_stronger("P", "antiOmega")
        assert is_stronger("EvP", "antiOmega")

    def test_reflexive(self):
        assert is_stronger("Omega", "Omega")

    def test_no_upward_path(self):
        assert not is_stronger("antiOmega", "Omega")
        assert not is_stronger("Omega", "P")
        assert not is_stronger("Sigma", "Omega")

    def test_unknown_detector(self):
        with pytest.raises(KeyError):
            is_stronger("P", "nope")

    def test_strictness(self):
        assert is_strictly_stronger("P", "Omega")
        assert is_strictly_stronger("Omega", "antiOmega")
        assert not is_strictly_stronger("antiOmega", "Omega")
        # P >= S registered but no separation recorded S-vs-P... check
        # a pair with a separation only.
        assert is_strictly_stronger("P", "EvP")

    def test_separations_cite_sources(self):
        for _s, _t, why in KNOWN_SEPARATIONS:
            assert "[" in why  # every separation carries a citation


class TestEmpiricalValidation:
    def test_all_edges_hold(self):
        patterns = [
            FaultPattern({}, LOCS),
            FaultPattern({1: 6}, LOCS),
        ]
        validation = validate_hierarchy(LOCS, patterns, max_steps=600)
        assert validation.all_held, validation.failures
        assert validation.edges_checked == validation.edges_held


class TestWeakestAmong:
    """Section 7.2's 'weakest in a set D of AFDs', executably."""

    def test_omega_weakest_among_consensus_solvers(self):
        """Every detector this library solves consensus with (P directly,
        EvP and EvS through stacks, Omega via Paxos) is stronger than
        Omega — matching [4]'s weakest-detector result."""
        from repro.analysis.hierarchy import weakest_among

        solvers = ["P", "EvP", "Omega"]
        assert weakest_among(solvers) == ["Omega"]

    def test_plural_weakest_possible(self):
        from repro.analysis.hierarchy import weakest_among

        # P >= Q and Q >= P (via the completeness boost): both weakest.
        assert set(weakest_among(["P", "Q"])) == {"P", "Q"}

    def test_empty_when_incomparable(self):
        from repro.analysis.hierarchy import weakest_among

        # Sigma and Omega are incomparable: neither is weakest in the set.
        assert weakest_among(["Sigma", "Omega"]) == []

    def test_unknown_candidate_rejected(self):
        import pytest

        from repro.analysis.hierarchy import weakest_among

        with pytest.raises(KeyError):
            weakest_among(["P", "nope"])
