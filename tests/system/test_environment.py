"""Tests for the consensus environments (Section 9.2, Algorithm 4).

Theorem 44: E_C is a well-formed environment — at most one proposal per
location, none after a crash, exactly one at each live location in fair
runs.
"""

from repro.ioa.scheduler import Injection, Scheduler
from repro.system.environment import (
    ConsensusEnvironment,
    ConsensusEnvironmentLocation,
    ScriptedConsensusEnvironment,
    decide_action,
    propose_action,
)
from repro.system.fault_pattern import crash_action


class TestEnvironmentLocation:
    def test_both_values_enabled_initially(self):
        env = ConsensusEnvironmentLocation(0)
        assert set(env.enabled_locally(env.initial_state())) == {
            propose_action(0, 0),
            propose_action(0, 1),
        }

    def test_tasks_per_value(self):
        env = ConsensusEnvironmentLocation(0)
        assert env.tasks() == ("env0", "env1")
        assert env.task_of(propose_action(0, 1)) == "env1"
        assert env.enabled_in_task(False, "env0") == (propose_action(0, 0),)

    def test_propose_disables_both(self):
        """Proposition 43."""
        env = ConsensusEnvironmentLocation(0)
        s = env.apply(env.initial_state(), propose_action(0, 1))
        assert list(env.enabled_locally(s)) == []
        assert env.enabled_in_task(s, "env0") == ()

    def test_crash_disables_proposals(self):
        env = ConsensusEnvironmentLocation(0)
        s = env.apply(env.initial_state(), crash_action(0))
        assert list(env.enabled_locally(s)) == []

    def test_decide_input_absorbed(self):
        env = ConsensusEnvironmentLocation(0)
        s = env.apply(env.initial_state(), decide_action(0, 1))
        assert s == env.initial_state()
        assert list(env.enabled_locally(s))  # still able to propose


class TestWellFormedness:
    def test_fair_run_proposes_exactly_once_per_location(self):
        """Theorem 44, claims 1 and 3."""
        env = ConsensusEnvironment((0, 1, 2))
        e = Scheduler().run(env, max_steps=50)
        proposals = [a for a in e.actions if a.name == "propose"]
        assert len(proposals) == 3
        assert {a.location for a in proposals} == {0, 1, 2}

    def test_no_proposal_after_crash(self):
        """Theorem 44, claim 2."""
        env = ConsensusEnvironment((0, 1))
        e = Scheduler().run(
            env,
            max_steps=50,
            injections=[Injection(0, crash_action(0))],
        )
        assert e.actions[0] == crash_action(0)
        proposals = [a for a in e.actions if a.name == "propose"]
        assert {a.location for a in proposals} == {1}


class TestScriptedEnvironment:
    def test_proposes_scripted_values(self):
        env = ScriptedConsensusEnvironment({0: 1, 1: 0})
        e = Scheduler().run(env, max_steps=10)
        got = {a.location: a.payload[0] for a in e.actions}
        assert got == {0: 1, 1: 0}

    def test_still_well_formed(self):
        env = ScriptedConsensusEnvironment({0: 1, 1: 0})
        e = Scheduler().run(env, max_steps=50)
        assert len([a for a in e.actions if a.name == "propose"]) == 2
