"""Tests for repro.system.fault_pattern."""

import pytest

from repro.ioa.actions import Action
from repro.system.fault_pattern import (
    FaultPattern,
    crash_action,
    is_crash,
)


class TestCrashActions:
    def test_crash_action(self):
        a = crash_action(3)
        assert a.name == "crash"
        assert a.location == 3

    def test_is_crash(self):
        assert is_crash(crash_action(0))
        assert not is_crash(Action("send", 0, ("m", 1)))


class TestFaultPattern:
    def test_faulty_and_live(self):
        fp = FaultPattern({2: 10}, locations=(0, 1, 2))
        assert fp.faulty == {2}
        assert fp.live == {0, 1}
        assert fp.num_faulty == 1

    def test_unknown_location_rejected(self):
        with pytest.raises(ValueError):
            FaultPattern({9: 0}, locations=(0, 1))

    def test_injections_ordered(self):
        fp = FaultPattern({1: 20, 0: 5}, locations=(0, 1, 2))
        injections = fp.injections()
        assert [i.step for i in injections] == [5, 20]
        assert [i.action.location for i in injections] == [0, 1]

    def test_crash_step(self):
        fp = FaultPattern({1: 20}, locations=(0, 1))
        assert fp.crash_step(1) == 20
        assert fp.crash_step(0) is None

    def test_crash_free(self):
        fp = FaultPattern.crash_free((0, 1, 2))
        assert fp.faulty == frozenset()
        assert fp.injections() == []

    def test_random_respects_bound(self):
        for seed in range(10):
            fp = FaultPattern.random((0, 1, 2, 3), 2, horizon=50, seed=seed)
            assert fp.num_faulty <= 2
            assert all(0 <= s < 50 for s in fp.crashes.values())

    def test_random_exactly(self):
        fp = FaultPattern.random(
            (0, 1, 2, 3), 2, horizon=50, seed=7, exactly=True
        )
        assert fp.num_faulty == 2

    def test_random_reproducible(self):
        a = FaultPattern.random((0, 1, 2), 1, 10, seed=3)
        b = FaultPattern.random((0, 1, 2), 1, 10, seed=3)
        assert a.crashes == b.crashes

    def test_random_too_many_rejected(self):
        with pytest.raises(ValueError):
            FaultPattern.random((0, 1), 3, 10)

    def test_enumerate_single_crash(self):
        patterns = FaultPattern.enumerate_single_crash((0, 1), [0, 5])
        crash_specs = {
            (next(iter(p.crashes)), p.crashes[next(iter(p.crashes))])
            for p in patterns
        }
        assert crash_specs == {(0, 0), (0, 5), (1, 0), (1, 5)}
