"""Tests for the reliable FIFO channel automata (Section 4.3)."""

import pytest

from repro.ioa.scheduler import Scheduler
from repro.system.channel import (
    ChannelAutomaton,
    make_channels,
    receive_action,
    send_action,
)


class TestChannelAutomaton:
    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            ChannelAutomaton(0, 0)

    def test_signature(self):
        c = ChannelAutomaton(0, 1)
        assert c.signature.is_input(send_action(0, "m", 1))
        assert not c.signature.is_input(send_action(0, "m", 2))
        assert not c.signature.is_input(send_action(1, "m", 0))
        assert c.signature.is_output(receive_action(1, "m", 0))
        assert not c.signature.is_output(receive_action(2, "m", 0))

    def test_fifo_order(self):
        c = ChannelAutomaton(0, 1)
        s = c.initial_state()
        s = c.apply(s, send_action(0, "first", 1))
        s = c.apply(s, send_action(0, "second", 1))
        assert s == ("first", "second")
        enabled = list(c.enabled_locally(s))
        assert enabled == [receive_action(1, "first", 0)]
        s = c.apply(s, receive_action(1, "first", 0))
        assert s == ("second",)

    def test_receive_on_empty_disabled(self):
        c = ChannelAutomaton(0, 1)
        assert list(c.enabled_locally(())) == []
        assert not c.enabled((), receive_action(1, "m", 0))

    def test_receive_wrong_head_rejected(self):
        c = ChannelAutomaton(0, 1)
        s = c.apply(c.initial_state(), send_action(0, "x", 1))
        assert not c.enabled(s, receive_action(1, "y", 0))
        with pytest.raises(ValueError):
            c.apply(s, receive_action(1, "y", 0))

    def test_duplicate_messages_supported(self):
        """Two copies of the same message traverse in order."""
        c = ChannelAutomaton(0, 1)
        s = c.initial_state()
        s = c.apply(s, send_action(0, "m", 1))
        s = c.apply(s, send_action(0, "m", 1))
        s = c.apply(s, receive_action(1, "m", 0))
        assert s == ("m",)

    def test_scheduler_drains_channel(self):
        c = ChannelAutomaton(0, 1)
        s = c.initial_state()
        for k in range(3):
            s = c.apply(s, send_action(0, f"m{k}", 1))
        e = Scheduler().run(c, max_steps=10, start=s)
        assert [a.payload[0] for a in e.actions] == ["m0", "m1", "m2"]
        assert e.final_state == ()


class TestMakeChannels:
    def test_one_per_ordered_pair(self):
        channels = make_channels((0, 1, 2))
        assert len(channels) == 6
        pairs = {(c.source, c.destination) for c in channels}
        assert (0, 1) in pairs and (1, 0) in pairs
        assert (0, 0) not in pairs
