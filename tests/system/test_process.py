"""Tests for the process-automaton base class (Section 4.2)."""

from typing import Iterable

from repro.ioa.actions import Action
from repro.system.channel import receive_action
from repro.system.fault_pattern import crash_action
from repro.system.process import DistributedAlgorithm, ProcessAutomaton

import pytest


class EchoProcess(ProcessAutomaton):
    """Re-sends every received message back to its sender."""

    def core_initial(self):
        return ()  # outbox

    def core_apply(self, core, action: Action):
        if self.is_receive(action):
            message, sender = self.received_message(action)
            return core + (self.send(("echo", message), sender),)
        if action.name == "send" and core and action == core[0]:
            return core[1:]
        return core

    def core_enabled(self, core) -> Iterable[Action]:
        if core:
            yield core[0]


class TestProcessAutomaton:
    def test_signature_includes_standard_actions(self):
        p = EchoProcess(0)
        assert p.signature.is_input(crash_action(0))
        assert p.signature.is_input(receive_action(0, "m", 1))
        assert not p.signature.is_input(receive_action(1, "m", 0))
        assert p.signature.is_output(p.send("m", 1))

    def test_crash_disables_locally_controlled(self):
        p = EchoProcess(0)
        s = p.apply(p.initial_state(), receive_action(0, "hello", 1))
        assert list(p.enabled_locally(s))  # echo pending
        s = p.apply(s, crash_action(0))
        assert list(p.enabled_locally(s)) == []

    def test_crash_is_permanent(self):
        p = EchoProcess(0)
        s = p.apply(p.initial_state(), crash_action(0))
        # Inputs are absorbed after the crash without effect.
        s2 = p.apply(s, receive_action(0, "hello", 1))
        assert s2 == s
        assert list(p.enabled_locally(s2)) == []

    def test_echo_behavior(self):
        p = EchoProcess(0)
        s = p.apply(p.initial_state(), receive_action(0, "hi", 2))
        enabled = list(p.enabled_locally(s))
        assert enabled == [p.send(("echo", "hi"), 2)]
        s = p.apply(s, enabled[0])
        assert list(p.enabled_locally(s)) == []

    def test_received_message_helper(self):
        message, sender = ProcessAutomaton.received_message(
            receive_action(0, "payload", 7)
        )
        assert message == "payload"
        assert sender == 7


class TestDistributedAlgorithm:
    def test_construction_and_access(self):
        alg = DistributedAlgorithm({0: EchoProcess(0), 1: EchoProcess(1)})
        assert alg.locations == (0, 1)
        assert alg[0].location == 0
        assert len(alg) == 2
        assert [p.location for p in alg.automata()] == [0, 1]

    def test_location_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DistributedAlgorithm({0: EchoProcess(1)})
