"""Tests for the crash automaton (Section 4.4)."""

from repro.ioa.executions import apply_schedule
from repro.system.crash import CrashAutomaton
from repro.system.fault_pattern import crash_action


class TestCrashAutomaton:
    def test_signature(self):
        c = CrashAutomaton((0, 1))
        assert c.signature.is_output(crash_action(0))
        assert c.signature.is_output(crash_action(1))
        assert not c.signature.is_output(crash_action(2))

    def test_no_tasks(self):
        """Crash actions carry no fairness obligation: that is what makes
        *every* sequence over I-hat a fair trace."""
        c = CrashAutomaton((0, 1))
        assert c.tasks() == ()
        assert c.task_of(crash_action(0)) is None

    def test_any_sequence_is_applicable(self):
        """Every sequence over I-hat is a trace (Section 4.4)."""
        c = CrashAutomaton((0, 1, 2))
        schedule = [
            crash_action(1),
            crash_action(1),  # repeats allowed
            crash_action(0),
            crash_action(2),
        ]
        e = apply_schedule(c, schedule)
        assert e.final_state == frozenset({0, 1, 2})

    def test_state_tracks_crashed(self):
        c = CrashAutomaton((0, 1))
        s = c.apply(c.initial_state(), crash_action(1))
        assert s == frozenset({1})

    def test_crash_remains_enabled_after_firing(self):
        c = CrashAutomaton((0,))
        s = c.apply(c.initial_state(), crash_action(0))
        assert c.enabled(s, crash_action(0))
