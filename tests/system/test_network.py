"""Tests for system assembly (Section 4.1, Figure 1)."""

import pytest

from repro.detectors.omega import OmegaAutomaton
from repro.algorithms.consensus_omega import (
    OmegaConsensusProcess,
    omega_consensus_algorithm,
)
from repro.system.environment import ScriptedConsensusEnvironment
from repro.system.fault_pattern import FaultPattern
from repro.system.network import SystemBuilder, assemble_system


@pytest.fixture
def locations():
    return (0, 1, 2)


@pytest.fixture
def system(locations):
    return (
        SystemBuilder(locations)
        .with_algorithm(omega_consensus_algorithm(locations))
        .with_failure_detector(OmegaAutomaton(locations))
        .with_environment(ScriptedConsensusEnvironment({0: 0, 1: 1, 2: 0}))
        .build()
    )


class TestSystemBuilder:
    def test_distinct_locations_required(self):
        with pytest.raises(ValueError):
            SystemBuilder((0, 0, 1))

    def test_algorithm_locations_must_match(self, locations):
        with pytest.raises(ValueError):
            SystemBuilder((0, 1)).with_algorithm(
                omega_consensus_algorithm((0, 1, 2))
            )

    def test_components_assembled(self, system, locations):
        names = [c.name for c in system.composition.components]
        # n processes + n(n-1) channels + crash + FD + env
        assert len([n for n in names if n.startswith("consOmega")]) == 3
        assert len([n for n in names if n.startswith("chan")]) == 6
        assert "crash" in names
        assert "FD-Omega" in names
        assert "envScripted" in names

    def test_assemble_system_helper(self, locations):
        system = assemble_system(
            locations,
            algorithm=omega_consensus_algorithm(locations),
            failure_detector=OmegaAutomaton(locations),
        )
        assert system.algorithm is not None
        assert system.failure_detector is not None
        assert system.environment is None


class TestSystemAccessors:
    def test_initial_accessors(self, system, locations):
        state = system.composition.initial_state()
        assert system.channels_empty(state)
        assert system.crashed(state) == frozenset()
        for i in locations:
            failed, _core = system.process_state(state, i)
            assert not failed

    def test_channel_state_lookup(self, system):
        state = system.composition.initial_state()
        assert system.channel_state(state, 0, 1) == ()
        with pytest.raises(KeyError):
            system.channel_state(state, 0, 0)

    def test_run_with_fault_pattern(self, system, locations):
        fp = FaultPattern({2: 3}, locations)
        execution = system.run(max_steps=200, fault_pattern=fp)
        assert system.crashed(execution.final_state) == frozenset({2})
        failed, _ = system.process_state(execution.final_state, 2)
        assert failed

    def test_run_to_decision(self, system, locations):
        def all_decided(state, _step):
            return all(
                OmegaConsensusProcess.decision(
                    system.process_state(state, i)
                )
                is not None
                for i in locations
            )

        execution = system.run(max_steps=3000, stop_when=all_decided)
        decisions = {
            OmegaConsensusProcess.decision(
                system.process_state(execution.final_state, i)
            )
            for i in locations
        }
        assert len(decisions) == 1
        assert decisions.pop() in (0, 1)
