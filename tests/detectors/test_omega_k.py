"""Tests for the Omega^k AFD."""

import pytest

from repro.core.afd import check_afd_closure_properties
from repro.detectors.omega_k import OmegaK, OmegaKAutomaton, omega_k_output
from repro.system.fault_pattern import FaultPattern, crash_action
from tests.conftest import run_detector

LOCS = (0, 1, 2, 3)


class TestOmegaKSpec:
    def test_k_validation(self):
        with pytest.raises(ValueError):
            OmegaK(LOCS, 0)
        with pytest.raises(ValueError):
            OmegaK(LOCS, 5)
        with pytest.raises(ValueError):
            OmegaKAutomaton(LOCS, 9)

    def test_well_formed_requires_k_elements(self):
        ok2 = OmegaK(LOCS, 2)
        assert ok2.well_formed_output(omega_k_output(0, (1, 2)))
        assert not ok2.well_formed_output(omega_k_output(0, (1,)))
        assert not ok2.well_formed_output(omega_k_output(0, (1, 2, 3)))

    def test_stable_set_with_live_member_accepted(self):
        ok2 = OmegaK(LOCS, 2)
        t = [omega_k_output(i, (0, 3)) for _ in range(4) for i in LOCS]
        assert ok2.check_limit(t)

    def test_unstable_sets_rejected(self):
        ok2 = OmegaK(LOCS, 2)
        t = []
        for round_num in range(6):
            leaders = (0, 1) if round_num % 2 == 0 else (2, 3)
            t += [omega_k_output(i, leaders) for i in LOCS]
        assert not ok2.check_limit(t)

    def test_stable_all_faulty_set_rejected(self):
        ok1 = OmegaK((0, 1), 1)
        t = [crash_action(1)] + [omega_k_output(0, (1,))] * 6
        assert not ok1.check_limit(t)


class TestOmegaKAutomaton:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_generated_traces_accepted(self, k):
        okk = OmegaK(LOCS, k)
        for crashes in [{}, {0: 4}, {0: 3, 1: 7}]:
            t = run_detector(
                okk.automaton(), FaultPattern(crashes, LOCS), 180
            )
            result = okk.check_limit(t)
            assert result, (k, crashes, result.reasons)

    def test_padding_when_few_remain(self):
        fd = OmegaKAutomaton(LOCS, 3)
        crashset = frozenset({0, 1})
        action = fd.output_at(2, crashset)
        leaders = action.payload[0]
        assert len(leaders) == 3
        assert 2 in leaders and 3 in leaders  # the uncrashed ones

    def test_omega1_matches_omega_shape(self):
        fd = OmegaKAutomaton(LOCS, 1)
        action = fd.output_at(0, frozenset({0}))
        assert action.payload[0] == (1,)  # min uncrashed

    def test_closure_properties(self):
        ok2 = OmegaK(LOCS, 2)
        t = run_detector(ok2.automaton(), FaultPattern({3: 5}, LOCS), 160)
        assert check_afd_closure_properties(ok2, t, seed=3)
