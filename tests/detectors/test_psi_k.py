"""Tests for the Psi^k AFD."""

import pytest

from repro.core.afd import check_afd_closure_properties
from repro.detectors.psi_k import PsiK, PsiKAutomaton, psi_k_output
from repro.system.fault_pattern import FaultPattern, crash_action
from tests.conftest import run_detector

LOCS = (0, 1, 2)


class TestPsiKSpec:
    def test_well_formed(self):
        psi = PsiK(LOCS, 2)
        assert psi.well_formed_output(psi_k_output(0, (0, 1), (0, 2)))
        # Wrong leader-set size.
        assert not psi.well_formed_output(psi_k_output(0, (0, 1), (0,)))
        # Empty quorum.
        assert not psi.well_formed_output(psi_k_output(0, (), (0, 1)))

    def test_quorum_intersection_enforced(self):
        psi = PsiK(LOCS, 1)
        t = [
            psi_k_output(0, (0,), (0,)),
            psi_k_output(1, (1, 2), (0,)),
        ]
        result = psi.check_safety(t)
        assert not result
        assert "intersect" in result.reasons[0]

    def test_leadership_stabilization_required(self):
        psi = PsiK(LOCS, 1)
        t = []
        for k in range(6):
            leaders = (0,) if k % 2 == 0 else (1,)
            t += [psi_k_output(i, (0, 1, 2), leaders) for i in LOCS]
        assert not psi.check_limit(t)

    def test_good_trace_accepted(self):
        psi = PsiK(LOCS, 1)
        t = [psi_k_output(i, (0, 1, 2), (0,)) for _ in range(4) for i in LOCS]
        assert psi.check_limit(t)


class TestPsiKAutomaton:
    @pytest.mark.parametrize("k", [1, 2])
    def test_generated_traces_accepted(self, k):
        psi = PsiK(LOCS, k)
        for crashes in [{}, {2: 4}, {0: 3, 2: 8}]:
            t = run_detector(
                psi.automaton(), FaultPattern(crashes, LOCS), 160
            )
            result = psi.check_limit(t)
            assert result, (k, crashes, result.reasons)

    def test_pairs_quorum_and_leaders(self):
        fd = PsiKAutomaton(LOCS, 2)
        action = fd.output_at(1, frozenset({0}))
        quorum, leaders = action.payload
        assert quorum == (1, 2)
        assert len(leaders) == 2

    def test_closure_properties(self):
        psi = PsiK(LOCS, 2)
        t = run_detector(psi.automaton(), FaultPattern({1: 6}, LOCS), 160)
        assert check_afd_closure_properties(psi, t, seed=12)
