"""Tests for the quorum failure detector Sigma."""

from repro.core.afd import check_afd_closure_properties
from repro.detectors.quorum import Sigma, SigmaAutomaton, sigma_output
from repro.system.fault_pattern import FaultPattern, crash_action
from tests.conftest import run_detector

LOCS = (0, 1, 2)


class TestSigmaIntersection:
    def test_intersecting_quorums_accepted(self):
        sigma = Sigma(LOCS)
        t = [sigma_output(0, (0, 1)), sigma_output(1, (1, 2))]
        assert sigma.check_safety(t)

    def test_disjoint_quorums_rejected(self):
        sigma = Sigma(LOCS)
        t = [sigma_output(0, (0,)), sigma_output(1, (1, 2))]
        result = sigma.check_safety(t)
        assert not result
        assert "do not intersect" in result.reasons[0]

    def test_empty_quorum_malformed(self):
        sigma = Sigma(LOCS)
        assert not sigma.well_formed_output(sigma_output(0, ()))


class TestSigmaCompleteness:
    def test_quorum_with_faulty_member_must_shrink(self):
        sigma = Sigma(LOCS)
        t = [crash_action(2)] + [sigma_output(0, (0, 1, 2))] * 5 + [
            sigma_output(1, (0, 1, 2))
        ] * 5
        assert not sigma.check_limit(t)

    def test_eventually_live_only_accepted(self):
        sigma = Sigma(LOCS)
        t = [sigma_output(0, (0, 1, 2)), sigma_output(1, (0, 1, 2))]
        t += [crash_action(2)]
        t += [sigma_output(0, (0, 1)), sigma_output(1, (0, 1))] * 4
        assert sigma.check_limit(t)


class TestSigmaEndToEnd:
    def test_generated_traces_accepted(self):
        sigma = Sigma(LOCS)
        for crashes in [{}, {2: 3}, {0: 2, 1: 8}]:
            t = run_detector(
                sigma.automaton(), FaultPattern(crashes, LOCS), 140
            )
            result = sigma.check_limit(t)
            assert result, (crashes, result.reasons)

    def test_generator_quorums_always_intersect(self):
        """Monotone crashsets make generated quorums nested (module
        docstring argument)."""
        sigma = Sigma(LOCS)
        t = run_detector(
            sigma.automaton(), FaultPattern({0: 2, 2: 6}, LOCS), 140
        )
        quorums = [
            frozenset(a.payload[0]) for a in t if a.name == "fd-sigma"
        ]
        for qa in quorums:
            for qb in quorums:
                assert qa & qb

    def test_closure_properties(self):
        sigma = Sigma(LOCS)
        t = run_detector(sigma.automaton(), FaultPattern({1: 4}, LOCS), 140)
        assert check_afd_closure_properties(sigma, t, seed=6)
