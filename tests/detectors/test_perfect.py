"""Tests for the perfect failure detector P (Section 3.3, Algorithm 2)."""

from repro.core.afd import check_afd_closure_properties
from repro.detectors.perfect import (
    Perfect,
    PerfectAutomaton,
    check_no_premature_suspicion,
    perfect_output,
)
from repro.system.fault_pattern import FaultPattern, crash_action
from tests.conftest import run_detector

LOCS = (0, 1, 2)


class TestPerfectAutomaton:
    def test_outputs_crashset(self):
        fd = PerfectAutomaton(LOCS)
        state = fd.apply(fd.initial_state(), crash_action(1))
        assert fd.output_at(0, state) == perfect_output(0, (1,))

    def test_initially_suspects_nobody(self):
        fd = PerfectAutomaton(LOCS)
        assert fd.output_at(0, fd.initial_state()) == perfect_output(0, ())


class TestStrongAccuracy:
    def test_accepts_accurate_suspicion(self):
        t = [crash_action(1), perfect_output(0, (1,))]
        assert check_no_premature_suspicion(t)

    def test_rejects_premature_suspicion(self):
        t = [perfect_output(0, (1,)), crash_action(1)]
        result = check_no_premature_suspicion(t)
        assert not result
        assert "before their crash" in result.reasons[0]

    def test_is_wired_into_safety(self):
        p = Perfect(LOCS)
        assert not p.check_safety([perfect_output(0, (1,))])


class TestStrongCompleteness:
    def test_rejects_never_suspecting_faulty(self):
        p = Perfect(LOCS)
        t = [crash_action(1)] + [
            perfect_output(0, ()),
            perfect_output(2, ()),
        ] * 5
        assert not p.check_limit(t)

    def test_accepts_eventual_suspicion(self):
        p = Perfect(LOCS)
        t = [crash_action(1), perfect_output(0, ()), perfect_output(2, ())]
        t += [perfect_output(0, (1,)), perfect_output(2, (1,))] * 4
        assert p.check_limit(t)


class TestPerfectEndToEnd:
    def test_accepts_generated_traces(self):
        p = Perfect(LOCS)
        for crashes in [{}, {0: 4}, {0: 4, 2: 9}]:
            t = run_detector(p.automaton(), FaultPattern(crashes, LOCS), 140)
            result = p.check_limit(t)
            assert result, (crashes, result.reasons)

    def test_closure_properties(self):
        p = Perfect(LOCS)
        t = run_detector(p.automaton(), FaultPattern({2: 5}, LOCS), 140)
        assert check_afd_closure_properties(
            p, t, num_samplings=8, num_reorderings=8, seed=4
        )

    def test_well_formed_output(self):
        p = Perfect(LOCS)
        assert p.well_formed_output(perfect_output(0, (1, 2)))
        # Unsorted or duplicated encodings are rejected.
        from repro.ioa.actions import Action

        assert not p.well_formed_output(Action("fd-p", 0, ((2, 1),)))
        assert not p.well_formed_output(Action("fd-p", 0, ((1, 1),)))
        assert not p.well_formed_output(Action("fd-p", 0, ((9,),)))
        assert not p.well_formed_output(Action("fd-p", 0, (1,)))
