"""Tests for the eventually perfect failure detector ◇P (Section 3.3)."""

from repro.core.afd import check_afd_closure_properties
from repro.detectors.eventually_perfect import (
    EventuallyPerfect,
    EventuallyPerfectAutomaton,
    eventually_perfect_output,
)
from repro.system.fault_pattern import FaultPattern, crash_action
from tests.conftest import run_detector

LOCS = (0, 1, 2)


class TestEventuallyPerfectSpec:
    def test_premature_suspicion_allowed_if_transient(self):
        """Unlike P, ◇P may suspect live locations — as long as it stops."""
        evp = EventuallyPerfect(LOCS)
        t = [eventually_perfect_output(0, (1,))]  # wrongly suspects 1
        t += [
            eventually_perfect_output(0, ()),
            eventually_perfect_output(1, ()),
            eventually_perfect_output(2, ()),
        ] * 4
        assert evp.check_limit(t)

    def test_permanent_wrong_suspicion_rejected(self):
        evp = EventuallyPerfect(LOCS)
        t = [
            eventually_perfect_output(0, (1,)),
            eventually_perfect_output(1, ()),
            eventually_perfect_output(2, ()),
        ] * 5
        assert not evp.check_limit(t)

    def test_completeness_required(self):
        evp = EventuallyPerfect(LOCS)
        t = [crash_action(1)] + [
            eventually_perfect_output(0, ()),
            eventually_perfect_output(2, ()),
        ] * 5
        assert not evp.check_limit(t)

    def test_accepts_generated_traces(self):
        evp = EventuallyPerfect(LOCS)
        for crashes in [{}, {1: 3}, {0: 2, 1: 10}]:
            t = run_detector(
                evp.automaton(), FaultPattern(crashes, LOCS), 140
            )
            result = evp.check_limit(t)
            assert result, (crashes, result.reasons)

    def test_closure_properties(self):
        evp = EventuallyPerfect(LOCS)
        t = run_detector(evp.automaton(), FaultPattern({0: 6}, LOCS), 140)
        assert check_afd_closure_properties(evp, t, seed=5)

    def test_p_trace_relabelled_is_evp_trace(self):
        """The paper defines the ◇P generator by renaming Algorithm 2's
        outputs; P's behavior trivially satisfies ◇P."""
        from repro.detectors.perfect import Perfect

        p = Perfect(LOCS)
        t = run_detector(p.automaton(), FaultPattern({2: 4}, LOCS), 140)
        relabelled = [
            a if a.name == "crash" else a.with_name("fd-evp") for a in t
        ]
        assert EventuallyPerfect(LOCS).check_limit(relabelled)

    def test_automaton_vocabulary(self):
        fd = EventuallyPerfectAutomaton(LOCS)
        outputs = list(fd.enabled_locally(fd.initial_state()))
        assert all(a.name == "fd-evp" for a in outputs)
