"""Tests for the query-based participant detector (Section 10.1)."""

from repro.ioa.scheduler import Injection, Scheduler
from repro.detectors.participant import (
    ParticipantDetectorAutomaton,
    query_action,
    response_action,
)
from repro.system.fault_pattern import crash_action

LOCS = (0, 1, 2)


class TestParticipantAutomaton:
    def test_no_response_before_any_query(self):
        fd = ParticipantDetectorAutomaton(LOCS)
        assert list(fd.enabled_locally(fd.initial_state())) == []

    def test_first_querier_chosen(self):
        fd = ParticipantDetectorAutomaton(LOCS)
        s = fd.apply(fd.initial_state(), query_action(1))
        s = fd.apply(s, query_action(0))
        enabled = set(fd.enabled_locally(s))
        assert enabled == {response_action(0, 1), response_action(1, 1)}

    def test_response_clears_pending(self):
        fd = ParticipantDetectorAutomaton(LOCS)
        s = fd.apply(fd.initial_state(), query_action(1))
        s = fd.apply(s, response_action(1, 1))
        assert list(fd.enabled_locally(s)) == []

    def test_crashed_querier_not_answered(self):
        fd = ParticipantDetectorAutomaton(LOCS)
        s = fd.apply(fd.initial_state(), query_action(1))
        s = fd.apply(s, crash_action(1))
        assert list(fd.enabled_locally(s)) == []

    def test_task_per_location(self):
        fd = ParticipantDetectorAutomaton(LOCS)
        s = fd.apply(fd.initial_state(), query_action(2))
        assert fd.enabled_in_task(s, "resp[2]") == (response_action(2, 2),)
        assert fd.enabled_in_task(s, "resp[0]") == ()


class TestParticipationGuarantee:
    def test_fair_run_satisfies_participation(self):
        fd = ParticipantDetectorAutomaton(LOCS)
        execution = Scheduler().run(
            fd,
            max_steps=30,
            injections=[
                Injection(0, query_action(2)),
                Injection(1, query_action(0)),
                Injection(2, query_action(1)),
            ],
        )
        trace = list(execution.actions)
        assert ParticipantDetectorAutomaton.satisfies_participation(trace)
        responses = [a for a in trace if a.name == "fd-response"]
        assert len(responses) == 3
        # All name the first querier.
        assert {a.payload[0] for a in responses} == {2}

    def test_participation_checker_rejects_bad_traces(self):
        # Response names a location that never queried.
        bad = [query_action(0), response_action(0, 1)]
        assert not ParticipantDetectorAutomaton.satisfies_participation(bad)
        # Conflicting names.
        bad2 = [
            query_action(0),
            query_action(1),
            response_action(0, 0),
            response_action(1, 1),
        ]
        assert not ParticipantDetectorAutomaton.satisfies_participation(bad2)
