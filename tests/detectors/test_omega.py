"""Tests for the Omega AFD (Section 3.3, Algorithm 1)."""

import pytest

from repro.core.afd import check_afd_closure_properties
from repro.detectors.omega import Omega, OmegaAutomaton, omega_output
from repro.system.fault_pattern import FaultPattern, crash_action
from tests.conftest import run_detector

LOCS = (0, 1, 2, 3)


class TestOmegaAutomaton:
    def test_outputs_min_uncrashed(self):
        fd = OmegaAutomaton(LOCS)
        state = frozenset({0, 1})
        assert fd.output_at(2, state) == omega_output(2, 2)

    def test_crashed_location_stops_outputting(self):
        fd = OmegaAutomaton(LOCS)
        state = fd.apply(fd.initial_state(), crash_action(0))
        enabled = list(fd.enabled_locally(state))
        assert all(a.location != 0 for a in enabled)

    def test_one_task_per_location(self):
        fd = OmegaAutomaton(LOCS)
        assert len(fd.tasks()) == len(LOCS)
        assert fd.task_of(omega_output(2, 0)) == "out[2]"


class TestOmegaSpecification:
    def test_accepts_generated_traces(self):
        omega = Omega(LOCS)
        for crashes in [{}, {0: 3}, {0: 5, 3: 11}, {1: 0, 2: 0, 3: 0}]:
            t = run_detector(
                omega.automaton(), FaultPattern(crashes, LOCS), 160
            )
            result = omega.check_limit(t)
            assert result, (crashes, result.reasons)

    def test_rejects_unstable_leader(self):
        omega = Omega((0, 1))
        # Leader flip-flops forever: no suffix with a unique leader.
        t = []
        for _ in range(10):
            t += [omega_output(0, 0), omega_output(1, 0)]
            t += [omega_output(0, 1), omega_output(1, 1)]
        assert not omega.check_limit(t)

    def test_rejects_faulty_leader_in_limit(self):
        omega = Omega((0, 1))
        # Location 1 crashes, yet outputs at 0 keep naming 1 forever.
        t = [crash_action(1)] + [omega_output(0, 1)] * 10
        assert not omega.check_limit(t)

    def test_accepts_eventual_stabilization(self):
        omega = Omega((0, 1))
        # Wrong leader early, then stabilizes on 0.
        t = [omega_output(0, 1), omega_output(1, 1)]
        t += [omega_output(0, 0), omega_output(1, 0)] * 5
        assert omega.check_limit(t)

    def test_all_crashed_accepted(self):
        omega = Omega((0, 1))
        t = [
            omega_output(0, 0),
            omega_output(1, 0),
            crash_action(0),
            crash_action(1),
        ]
        assert omega.check_limit(t)

    def test_closure_properties(self):
        omega = Omega(LOCS)
        t = run_detector(
            omega.automaton(), FaultPattern({1: 7}, LOCS), 160
        )
        assert check_afd_closure_properties(
            omega, t, num_samplings=8, num_reorderings=8, seed=2
        )

    def test_well_formed_output(self):
        omega = Omega(LOCS)
        assert omega.well_formed_output(omega_output(0, 3))
        assert not omega.well_formed_output(omega_output(0, 9))
