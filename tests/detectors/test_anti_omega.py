"""Tests for the anti-Omega AFD."""

import pytest

from repro.core.afd import check_afd_closure_properties
from repro.detectors.anti_omega import (
    AntiOmega,
    AntiOmegaAutomaton,
    anti_omega_output,
)
from repro.system.fault_pattern import FaultPattern, crash_action
from tests.conftest import run_detector

LOCS = (0, 1, 2)


class TestAntiOmegaSpec:
    def test_avoiding_one_live_location_accepted(self):
        anti = AntiOmega(LOCS)
        # Outputs rotate over {1, 2}; live location 0 is never named.
        t = [anti_omega_output(i, 1 + (k % 2)) for k in range(4) for i in LOCS]
        assert anti.check_limit(t)

    def test_naming_everyone_forever_rejected(self):
        anti = AntiOmega(LOCS)
        t = []
        for k in range(6):
            for i in LOCS:
                t.append(anti_omega_output(i, k % 3))
        assert not anti.check_limit(t)

    def test_naming_only_faulty_accepted(self):
        anti = AntiOmega(LOCS)
        t = [crash_action(2)] + [
            anti_omega_output(0, 2),
            anti_omega_output(1, 2),
        ] * 4
        assert anti.check_limit(t)

    def test_all_crashed_accepted(self):
        anti = AntiOmega(LOCS)
        t = [
            anti_omega_output(0, 0),
            crash_action(0),
            crash_action(1),
            crash_action(2),
        ]
        assert anti.check_limit(t)


class TestAntiOmegaAutomaton:
    def test_needs_two_locations(self):
        with pytest.raises(ValueError):
            AntiOmegaAutomaton((0,))

    def test_never_names_min_uncrashed(self):
        fd = AntiOmegaAutomaton(LOCS)
        for crashset in [frozenset(), frozenset({0}), frozenset({0, 1})]:
            remaining = [i for i in LOCS if i not in crashset]
            protected = min(remaining)
            for i in remaining:
                action = fd.output_at(i, crashset)
                assert action.payload[0] != protected

    def test_generated_traces_accepted(self):
        anti = AntiOmega(LOCS)
        for crashes in [{}, {0: 3}, {0: 3, 1: 9}, {2: 5}]:
            t = run_detector(
                anti.automaton(), FaultPattern(crashes, LOCS), 140
            )
            result = anti.check_limit(t)
            assert result, (crashes, result.reasons)

    def test_closure_properties(self):
        anti = AntiOmega(LOCS)
        t = run_detector(anti.automaton(), FaultPattern({0: 4}, LOCS), 140)
        assert check_afd_closure_properties(anti, t, seed=8)
