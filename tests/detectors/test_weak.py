"""Tests for the weak-completeness detectors Q, W, ◇Q, ◇W."""

import pytest

from repro.core.afd import check_afd_closure_properties
from repro.detectors.weak import (
    EventuallyQuasi,
    EventuallyWeak,
    Quasi,
    Weak,
    WeakAutomaton,
    quasi_output,
    weak_output,
)
from repro.system.fault_pattern import FaultPattern, crash_action
from tests.conftest import run_detector

LOCS = (0, 1, 2)


class TestWeakCompleteness:
    def test_single_witness_suffices(self):
        """Only location 0 ever suspects the crashed 2: weak completeness
        is satisfied, although strong completeness would not be."""
        w = Weak(LOCS)
        t = [crash_action(2)]
        t += [weak_output(0, (2,)), weak_output(1, ())] * 5
        assert w.check_limit(t)
        # The same trace relabelled fails S (strong completeness).
        from repro.detectors.strong import Strong

        relabelled = [
            a if a.name == "crash" else a.with_name("fd-s") for a in t
        ]
        assert not Strong(LOCS).check_limit(relabelled)

    def test_no_witness_rejected(self):
        w = Weak(LOCS)
        t = [crash_action(2)]
        t += [weak_output(0, ()), weak_output(1, ())] * 5
        result = w.check_limit(t)
        assert not result
        assert "no live location eventually permanently suspects" in (
            result.reasons[0]
        )

    def test_witness_must_be_permanent(self):
        w = Weak(LOCS)
        t = [crash_action(2), weak_output(0, (2,))]  # one-off suspicion
        t += [weak_output(0, ()), weak_output(1, ())] * 5
        assert not w.check_limit(t)


class TestAccuracyVariants:
    def test_q_strong_accuracy_is_safety(self):
        q = Quasi(LOCS)
        assert not q.check_safety([quasi_output(0, (1,))])
        assert q.check_safety(
            [crash_action(1), quasi_output(0, (1,))]
        )

    def test_w_weak_accuracy(self):
        w = Weak(LOCS)
        # Everyone suspected at least once: weak accuracy fails.
        t = [
            weak_output(0, (1, 2)),
            weak_output(1, (0,)),
        ]
        t += [weak_output(i, ()) for _ in range(4) for i in LOCS]
        assert not w.check_limit(t)

    def test_evw_tolerates_transient_universal_suspicion(self):
        evw = EventuallyWeak(LOCS)
        t = [
            Action_evw(0, (1, 2)),
            Action_evw(1, (0,)),
        ]
        t += [Action_evw(i, ()) for _ in range(4) for i in LOCS]
        assert evw.check_limit(t)


def Action_evw(location, suspects):
    from repro.detectors.weak import EVENTUALLY_WEAK_OUTPUT
    from repro.detectors.base import sorted_tuple
    from repro.ioa.actions import Action

    return Action(EVENTUALLY_WEAK_OUTPUT, location, (sorted_tuple(suspects),))


@pytest.mark.parametrize(
    "factory", [Quasi, Weak, EventuallyQuasi, EventuallyWeak],
    ids=["Q", "W", "EvQ", "EvW"],
)
class TestGeneratedTraces:
    def test_generator_traces_accepted(self, factory):
        detector = factory(LOCS)
        for crashes in [{}, {2: 4}, {0: 3, 2: 11}]:
            t = run_detector(
                detector.automaton(), FaultPattern(crashes, LOCS), 140
            )
            result = detector.check_limit(t)
            assert result, (factory.__name__, crashes, result.reasons)

    def test_closure_properties(self, factory):
        detector = factory(LOCS)
        t = run_detector(
            detector.automaton(), FaultPattern({1: 6}, LOCS), 140
        )
        assert check_afd_closure_properties(detector, t, seed=21)


class TestSingleReporterGenerator:
    def test_only_min_live_reports(self):
        fd = WeakAutomaton(LOCS)
        state = fd.apply(fd.initial_state(), crash_action(0))
        outputs = {a.location: a.payload[0] for a in fd.enabled_locally(state)}
        assert outputs[1] == (0,)  # the reporter
        assert outputs[2] == ()  # everyone else reports nothing
