"""Tests for the Marabout non-AFD counterexample (Section 3.4)."""

from repro.detectors.base import CrashsetDetectorAutomaton, sorted_tuple
from repro.detectors.marabout import (
    MARABOUT_OUTPUT,
    MaraboutSpec,
    marabout_output,
    refute_marabout_automaton,
)
from repro.system.fault_pattern import crash_action

LOCS = (0, 1, 2)


class TestMaraboutSpec:
    def test_accepts_clairvoyant_trace(self):
        spec = MaraboutSpec(LOCS)
        # Output {2} before 2 even crashes: only a clairvoyant can.
        t = [
            marabout_output(0, (2,)),
            marabout_output(1, (2,)),
            crash_action(2),
        ]
        assert spec.accepts(t)

    def test_rejects_wrong_prediction(self):
        spec = MaraboutSpec(LOCS)
        t = [marabout_output(0, ()), crash_action(2)]
        assert not spec.accepts(t)
        assert spec.first_violation(t) == 0

    def test_rejects_overprediction(self):
        spec = MaraboutSpec(LOCS)
        t = [marabout_output(0, (1,))]  # nobody ever crashes
        assert not spec.accepts(t)


class TestRefutation:
    """No deterministic automaton implements Marabout: the adversary
    picks the fault pattern after seeing the first output."""

    def test_refutes_empty_guesser(self):
        # A candidate that always outputs the current crashset: its first
        # output in a crash-free run is the empty set, so crashing anyone
        # afterwards refutes it.
        candidate = CrashsetDetectorAutomaton(
            LOCS,
            MARABOUT_OUTPUT,
            lambda loc, crashset: (sorted_tuple(crashset),),
            name="guess-crashset",
        )
        refutation = refute_marabout_automaton(candidate, LOCS)
        assert "empty faulty set" in refutation.reason
        assert not MaraboutSpec(LOCS).accepts(refutation.trace)

    def test_refutes_nonempty_guesser(self):
        # A candidate that always predicts {2}: a crash-free run refutes it.
        candidate = CrashsetDetectorAutomaton(
            LOCS,
            MARABOUT_OUTPUT,
            lambda loc, crashset: ((2,),),
            name="guess-2",
        )
        refutation = refute_marabout_automaton(candidate, LOCS)
        assert "crash-free" in refutation.fault_pattern_note
        assert not MaraboutSpec(LOCS).accepts(refutation.trace)

    def test_refutes_silent_candidate(self):
        # A candidate that never outputs violates validity.
        candidate = CrashsetDetectorAutomaton(
            LOCS,
            MARABOUT_OUTPUT,
            lambda loc, crashset: ((),),
            name="silent",
        )
        # Make it silent by crashing... simpler: restrict enabled outputs.
        class Silent(CrashsetDetectorAutomaton):
            def enabled_locally(self, state):
                return ()

            def enabled_in_task(self, state, task):
                return ()

        silent = Silent(
            LOCS, MARABOUT_OUTPUT, lambda loc, crashset: ((),)
        )
        refutation = refute_marabout_automaton(silent, LOCS)
        assert "no output" in refutation.reason
