"""Tests for the strong (S) and eventually strong (◇S) AFDs."""

from repro.core.afd import check_afd_closure_properties
from repro.detectors.strong import (
    EventuallyStrong,
    Strong,
    eventually_strong_output,
    strong_output,
)
from repro.system.fault_pattern import FaultPattern, crash_action
from tests.conftest import run_detector

LOCS = (0, 1, 2)


class TestStrong:
    def test_weak_accuracy_whole_trace(self):
        s = Strong(LOCS)
        # Location 0 is suspected once: weak accuracy demands SOME live
        # location never suspected — here 1 and 2 qualify.
        t = [strong_output(1, (0,))] + [
            strong_output(i, ()) for _ in range(4) for i in LOCS
        ]
        assert s.check_limit(t)

    def test_everyone_suspected_rejected(self):
        s = Strong(LOCS)
        t = [strong_output(0, (1, 2)), strong_output(1, (0,))]
        t += [strong_output(i, ()) for _ in range(4) for i in LOCS]
        result = s.check_limit(t)
        assert not result
        assert "weak accuracy" in " ".join(result.reasons)

    def test_completeness_required(self):
        s = Strong(LOCS)
        t = [crash_action(2)] + [
            strong_output(0, ()),
            strong_output(1, ()),
        ] * 5
        assert not s.check_limit(t)

    def test_generated_traces_accepted(self):
        s = Strong(LOCS)
        for crashes in [{}, {1: 4}, {1: 3, 2: 9}]:
            t = run_detector(s.automaton(), FaultPattern(crashes, LOCS), 140)
            result = s.check_limit(t)
            assert result, (crashes, result.reasons)

    def test_closure_properties(self):
        s = Strong(LOCS)
        t = run_detector(s.automaton(), FaultPattern({0: 5}, LOCS), 140)
        assert check_afd_closure_properties(s, t, seed=1)


class TestEventuallyStrong:
    def test_transient_universal_suspicion_allowed(self):
        evs = EventuallyStrong(LOCS)
        # Everyone suspected early; stabilizes with 0 unsuspected.
        t = [
            eventually_strong_output(1, (0, 2)),
            eventually_strong_output(0, (1,)),
        ]
        t += [eventually_strong_output(i, ()) for _ in range(4) for i in LOCS]
        assert evs.check_limit(t)

    def test_permanent_universal_suspicion_rejected(self):
        evs = EventuallyStrong(LOCS)
        t = []
        for k in range(6):
            t += [
                eventually_strong_output(0, (1,)),
                eventually_strong_output(1, (2,)),
                eventually_strong_output(2, (0,)),
            ]
        assert not evs.check_limit(t)

    def test_generated_traces_accepted(self):
        evs = EventuallyStrong(LOCS)
        for crashes in [{}, {2: 2}]:
            t = run_detector(
                evs.automaton(), FaultPattern(crashes, LOCS), 140
            )
            result = evs.check_limit(t)
            assert result, (crashes, result.reasons)

    def test_closure_properties(self):
        evs = EventuallyStrong(LOCS)
        t = run_detector(evs.automaton(), FaultPattern({1: 3}, LOCS), 140)
        assert check_afd_closure_properties(evs, t, seed=14)
