"""Tests for the detector registry and reduction catalogue."""

import pytest

from repro.detectors.registry import (
    ZOO,
    known_reductions,
    make_detector,
    reductions_from,
)

LOCS = (0, 1, 2)


class TestZoo:
    def test_all_factories_instantiate(self):
        for name in ZOO:
            detector = make_detector(name, LOCS)
            assert detector.locations == LOCS

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_detector("nope", LOCS)

    def test_zoo_covers_paper_detectors(self):
        """Section 3.3 names Omega, P, ◇P, Sigma, anti-Omega, Omega^k,
        Psi^k; [5]'s S and ◇S are also included."""
        for name in (
            "Omega",
            "P",
            "EvP",
            "Sigma",
            "antiOmega",
            "Omega^2",
            "Psi^2",
            "S",
            "EvS",
        ):
            assert name in ZOO

    def test_generators_have_matching_vocabulary(self):
        for name in ZOO:
            detector = make_detector(name, LOCS)
            automaton = detector.automaton()
            outputs = list(
                automaton.enabled_locally(automaton.initial_state())
            )
            assert outputs, name
            assert all(detector.is_output(a) for a in outputs), name
            assert all(
                detector.well_formed_output(a) for a in outputs
            ), name


class TestReductionCatalogue:
    def test_edges_reference_known_detectors(self):
        for reduction in known_reductions():
            source, target = reduction.name.split(">=")
            assert source in ZOO
            assert target in ZOO

    def test_instantiation(self):
        for reduction in known_reductions():
            source, target, algorithm = reduction.instantiate(LOCS)
            assert source.locations == LOCS
            assert target.locations == LOCS
            assert algorithm.locations == LOCS

    def test_reductions_from(self):
        from_p = reductions_from("P")
        assert all(r.name.startswith("P>=") for r in from_p)
        assert len(from_p) >= 4

    def test_catalogue_nonempty_and_unique(self):
        names = [r.name for r in known_reductions()]
        assert len(names) == len(set(names))
        assert len(names) >= 10
