"""Tests for the detector registry and reduction catalogue."""

import pytest

from repro.detectors.registry import (
    ZOO,
    instantiate_for_lint,
    iter_registered_automata,
    known_reductions,
    make_detector,
    reductions_from,
)
from repro.core.afd import AFD
from repro.ioa.automaton import Automaton

LOCS = (0, 1, 2)


class TestZoo:
    def test_all_factories_instantiate(self):
        for name in ZOO:
            detector = make_detector(name, LOCS)
            assert detector.locations == LOCS

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_detector("nope", LOCS)

    def test_zoo_covers_paper_detectors(self):
        """Section 3.3 names Omega, P, ◇P, Sigma, anti-Omega, Omega^k,
        Psi^k; [5]'s S and ◇S are also included."""
        for name in (
            "Omega",
            "P",
            "EvP",
            "Sigma",
            "antiOmega",
            "Omega^2",
            "Psi^2",
            "S",
            "EvS",
        ):
            assert name in ZOO

    def test_generators_have_matching_vocabulary(self):
        for name in ZOO:
            detector = make_detector(name, LOCS)
            automaton = detector.automaton()
            outputs = list(
                automaton.enabled_locally(automaton.initial_state())
            )
            assert outputs, name
            assert all(detector.is_output(a) for a in outputs), name
            assert all(
                detector.well_formed_output(a) for a in outputs
            ), name


class TestReductionCatalogue:
    def test_edges_reference_known_detectors(self):
        for reduction in known_reductions():
            source, target = reduction.name.split(">=")
            assert source in ZOO
            assert target in ZOO

    def test_instantiation(self):
        for reduction in known_reductions():
            source, target, algorithm = reduction.instantiate(LOCS)
            assert source.locations == LOCS
            assert target.locations == LOCS
            assert algorithm.locations == LOCS

    def test_reductions_from(self):
        from_p = reductions_from("P")
        assert all(r.name.startswith("P>=") for r in from_p)
        assert len(from_p) >= 4

    def test_catalogue_nonempty_and_unique(self):
        names = [r.name for r in known_reductions()]
        assert len(names) == len(set(names))
        assert len(names) >= 10


class TestLintHooks:
    """iter_registered_automata / instantiate_for_lint: the enumeration
    surface the contract linter (repro.lint.contract) is built on."""

    def test_iteration_covers_zoo_and_families(self):
        entries = list(iter_registered_automata(LOCS))
        names = [name for name, _, _ in entries]
        assert set(ZOO) <= set(names)
        for family in ("omega-k", "psi-k"):
            for k in (1, 2, 3):
                assert f"{family}(k={k})" in names
        assert len(names) == len(set(names))

    def test_iteration_yields_live_pairs(self):
        for name, afd, automaton in iter_registered_automata(LOCS):
            assert isinstance(afd, AFD), name
            assert isinstance(automaton, Automaton), name
            assert afd.locations == LOCS, name
            # The automaton is executable from its initial state.
            automaton.initial_state()

    def test_iteration_order_is_stable(self):
        first = [name for name, _, _ in iter_registered_automata(LOCS)]
        second = [name for name, _, _ in iter_registered_automata(LOCS)]
        assert first == second == sorted(first, key=first.index)

    def test_instantiate_by_canonical_name(self):
        afd, automaton = instantiate_for_lint("Omega", LOCS)
        assert afd.locations == LOCS
        assert isinstance(automaton, Automaton)

    def test_instantiate_family_defaults_k(self):
        afd, _ = instantiate_for_lint("omega-k", LOCS)
        assert afd.locations == LOCS  # k defaulted to 1, no TypeError

    def test_instantiate_family_explicit_k(self):
        afd, _ = instantiate_for_lint("psi-k", LOCS, k=2)
        assert afd.locations == LOCS
