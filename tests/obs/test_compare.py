"""The BENCH drift comparator: exact series, banded timings, CLI."""

from __future__ import annotations

import json

from repro.obs.compare import (
    SeriesDrift,
    compare_dirs,
    compare_docs,
    compare_files,
    compare_series,
    first_divergence,
    main,
    summarize,
)


def bench_doc(**overrides):
    doc = {
        "schema": "repro.bench/1",
        "bench_id": "e99",
        "title": "test bench",
        "quick": False,
        "series": {
            "header": ["n", "steps", "messages"],
            "rows": [[3, 40, 12], [5, 90, 30], [7, 160, 56]],
        },
        "timings": {"kernel_wall_s": 1.0},
        "created_unix": 1754500000,
        "environment": {"python": "3.x"},
    }
    doc.update(overrides)
    return doc


def mutated(doc, row, col, value):
    out = json.loads(json.dumps(doc))
    out["series"]["rows"][row][col] = value
    return out


class TestFirstDivergence:
    def test_identical(self):
        rows = [[1, 2], [3, 4]]
        assert first_divergence(rows, rows) is None

    def test_tuples_equal_lists(self):
        # JSON round-trips turn tuples into lists; that is not drift.
        assert first_divergence([(1, 2)], [[1, 2]]) is None

    def test_cell_difference_names_row_and_column(self):
        assert first_divergence([[1, 2], [3, 4]], [[1, 2], [3, 5]]) == (1, 1)

    def test_length_mismatch_at_row(self):
        assert first_divergence([[1]], [[1], [2]]) == (1, None)
        assert first_divergence([[1], [2]], [[1]]) == (1, None)

    def test_ragged_row_reports_no_column(self):
        assert first_divergence([[1, 2]], [[1, 2, 3]]) == (0, None)

    def test_empty_vs_empty(self):
        assert first_divergence([], []) is None


class TestCompareSeries:
    def test_identical_is_clean(self):
        rows = [[1, 2], [3, 4]]
        drift = compare_series("x", rows, rows)
        assert not drift.drifted
        assert drift.identical_series
        assert drift.row_counts == (2, 2)

    def test_divergence_carries_column_name(self):
        drift = compare_series(
            "x", [[1, 2]], [[1, 9]], header=("n", "steps")
        )
        assert drift.drifted
        assert drift.divergence["row"] == 0
        assert drift.divergence["column"] == 1
        assert drift.divergence["column_name"] == "steps"
        assert drift.divergence["a"] == [1, 2]
        assert drift.divergence["b"] == [1, 9]


class TestCompareDocs:
    def test_identical_docs_clean(self):
        drift = compare_docs(bench_doc(), bench_doc())
        assert not drift.drifted
        assert drift.timings["kernel_wall_s"]["within_band"] is True

    def test_measured_half_ignored(self):
        other = bench_doc(
            created_unix=1, environment={"python": "different"}
        )
        assert not compare_docs(bench_doc(), other).drifted

    def test_injected_mutation_located(self):
        drift = compare_docs(bench_doc(), mutated(bench_doc(), 2, 1, 161))
        assert drift.drifted
        assert drift.divergence["row"] == 2
        assert drift.divergence["column"] == 1
        assert drift.divergence["column_name"] == "steps"

    def test_bench_id_mismatch_is_drift(self):
        drift = compare_docs(bench_doc(), bench_doc(bench_id="e98"))
        assert drift.drifted and "bench ids differ" in drift.error

    def test_header_drift(self):
        other = bench_doc()
        other["series"]["header"] = ["n", "rounds", "messages"]
        drift = compare_docs(bench_doc(), other)
        assert drift.drifted and drift.header_drift is not None

    def test_quick_mismatch_is_a_category_error(self):
        drift = compare_docs(bench_doc(), bench_doc(quick=True))
        assert drift.drifted
        assert drift.quick_mismatch == {"a": False, "b": True}

    def test_wall_time_band_does_not_fail(self):
        slow = bench_doc(timings={"kernel_wall_s": 10.0})
        drift = compare_docs(bench_doc(), slow)
        assert not drift.drifted  # weather, not law
        assert drift.wall_out_of_band == ["kernel_wall_s"]
        assert drift.timings["kernel_wall_s"]["within_band"] is False

    def test_one_sided_timing_is_unbanded(self):
        extra = bench_doc(timings={"kernel_wall_s": 1.0, "extra_s": 0.1})
        drift = compare_docs(bench_doc(), extra)
        assert drift.timings["extra_s"]["within_band"] is None
        assert not drift.wall_out_of_band


class TestBandBoundaries:
    """_band_check edge geometry: zeros, infinities, one-sided keys."""

    @staticmethod
    def check(timings_a, timings_b, tolerance=0.25):
        from repro.obs.compare import _band_check

        drift = SeriesDrift(name="x", row_counts=(0, 0))
        _band_check(drift, timings_a, timings_b, tolerance)
        return drift

    def test_zero_baseline_with_positive_b_is_out_of_band(self):
        # b/0 is an infinite ratio: reported as ratio None (JSON has no
        # inf) and always out of band — a timing appearing from nothing
        # is exactly the regression the band exists to flag.
        drift = self.check({"wall_s": 0.0}, {"wall_s": 0.5})
        entry = drift.timings["wall_s"]
        assert entry["ratio"] is None
        assert entry["within_band"] is False
        assert drift.wall_out_of_band == ["wall_s"]
        assert entry["delta_s"] == 0.5

    def test_both_zero_is_in_band(self):
        # 0 -> 0 is "still free": ratio pinned to 1.0, inside any band.
        drift = self.check({"wall_s": 0.0}, {"wall_s": 0.0})
        entry = drift.timings["wall_s"]
        assert entry["ratio"] == 1.0
        assert entry["within_band"] is True
        assert not drift.wall_out_of_band

    def test_exact_band_edges_are_inside(self):
        drift = self.check(
            {"lo": 1.0, "hi": 1.0}, {"lo": 0.75, "hi": 1.25}, tolerance=0.25
        )
        assert drift.timings["lo"]["within_band"] is True
        assert drift.timings["hi"]["within_band"] is True
        assert not drift.wall_out_of_band

    def test_one_sided_keys_present_but_unbanded(self):
        drift = self.check({"only_a": 1.0}, {"only_b": 2.0})
        assert drift.timings["only_a"] == {
            "a": 1.0, "b": None, "within_band": None,
        }
        assert drift.timings["only_b"] == {
            "a": None, "b": 2.0, "within_band": None,
        }
        assert not drift.wall_out_of_band

    def test_non_numeric_timing_is_unbanded_not_a_crash(self):
        drift = self.check({"wall_s": "fast"}, {"wall_s": 1.0})
        assert drift.timings["wall_s"]["within_band"] is None

    def test_keys_reported_in_sorted_order(self):
        drift = self.check(
            {"c": 1.0, "a": 1.0}, {"b": 1.0, "a": 1.0}
        )
        assert list(drift.timings) == ["a", "b", "c"]


class TestFilesAndDirs:
    def test_compare_files(self, tmp_path):
        a = tmp_path / "BENCH_A.json"
        b = tmp_path / "BENCH_B.json"
        a.write_text(json.dumps(bench_doc()))
        b.write_text(json.dumps(bench_doc()))
        assert not compare_files(str(a), str(b)).drifted

    def test_unreadable_file_is_a_verdict_not_an_exception(self, tmp_path):
        a = tmp_path / "BENCH_A.json"
        a.write_text(json.dumps(bench_doc()))
        drift = compare_files(str(a), str(tmp_path / "missing.json"))
        assert drift.drifted and "unreadable" in drift.error

    def test_compare_dirs_pairs_and_flags_missing(self, tmp_path):
        dir_a, dir_b = tmp_path / "a", tmp_path / "b"
        dir_a.mkdir(), dir_b.mkdir()
        (dir_a / "BENCH_X.json").write_text(json.dumps(bench_doc()))
        (dir_b / "BENCH_X.json").write_text(json.dumps(bench_doc()))
        (dir_a / "BENCH_Y.json").write_text(
            json.dumps(bench_doc(bench_id="y"))
        )
        (dir_a / "not_a_bench.json").write_text("{}")
        results = {r.name: r for r in compare_dirs(str(dir_a), str(dir_b))}
        assert set(results) == {"BENCH_X.json", "BENCH_Y.json"}
        assert not results["BENCH_X.json"].drifted
        assert results["BENCH_Y.json"].drifted
        assert "missing from" in results["BENCH_Y.json"].error

    def test_summarize_shape(self):
        doc = summarize([SeriesDrift(name="x"), SeriesDrift(name="y", drifted=True)])
        assert doc["compared"] == 2
        assert doc["drifted"] == ["y"]
        json.dumps(doc)


class TestCLI:
    def write_pair(self, tmp_path, doc_b=None):
        a = tmp_path / "BENCH_A.json"
        b = tmp_path / "BENCH_B.json"
        a.write_text(json.dumps(bench_doc()))
        b.write_text(json.dumps(doc_b if doc_b is not None else bench_doc()))
        return str(a), str(b)

    def test_no_drift_exits_zero(self, tmp_path, capsys):
        a, b = self.write_pair(tmp_path)
        assert main([a, b]) == 0
        assert "no series drift" in capsys.readouterr().out

    def test_drift_exits_one_and_names_the_cell(self, tmp_path, capsys):
        a, b = self.write_pair(tmp_path, mutated(bench_doc(), 1, 2, 31))
        assert main([a, b]) == 1
        out = capsys.readouterr().out
        assert "first divergence at row 1, column 2 (messages)" in out

    def test_strict_wall_promotes_band_to_failure(self, tmp_path):
        slow = bench_doc(timings={"kernel_wall_s": 10.0})
        a, b = self.write_pair(tmp_path, slow)
        assert main([a, b]) == 0
        assert main([a, b, "--strict-wall"]) == 1
        # A wider band absorbs the movement again.
        assert main([a, b, "--strict-wall", "--tolerance", "20"]) == 0

    def test_json_format_parses(self, tmp_path, capsys):
        a, b = self.write_pair(tmp_path)
        assert main([a, b, "--format=json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["compared"] == 1 and doc["drifted"] == []

    def test_all_mode_over_directories(self, tmp_path, capsys):
        dir_a, dir_b = tmp_path / "a", tmp_path / "b"
        dir_a.mkdir(), dir_b.mkdir()
        (dir_a / "BENCH_X.json").write_text(json.dumps(bench_doc()))
        (dir_b / "BENCH_X.json").write_text(json.dumps(bench_doc()))
        assert main(["--all", str(dir_a), str(dir_b)]) == 0

    def test_usage_errors_exit_two(self, tmp_path):
        assert main([]) == 2
        assert main(["a.json", "b.json", "--format", "yaml"]) == 2
        assert main(["a.json", "b.json", "--what"]) == 2
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["--all", str(empty), str(empty)]) == 2
