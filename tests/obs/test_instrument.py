"""The unified instrument= convention: coercion and the 1.5.0 removals."""

from __future__ import annotations

import pytest

from repro.ioa.scheduler import Scheduler
from repro.obs.instrument import Instrumentation, coerce_instrument
from repro.obs.metrics import MetricsObserver, MetricsRegistry
from repro.obs.prof import StepProfiler
from repro.obs.trace import TraceRecorder
from repro.system.network import SystemBuilder

LOCS = (0, 1, 2)


class TestCoerce:
    def test_none(self):
        bundle = coerce_instrument(None)
        assert bundle.observer is None and bundle.metrics is None
        assert not bundle

    def test_registry(self):
        reg = MetricsRegistry()
        bundle = coerce_instrument(reg)
        assert bundle.metrics is reg and bundle.observer is None
        assert bundle

    def test_observer(self):
        rec = TraceRecorder()
        bundle = coerce_instrument(rec)
        assert bundle.observer is rec and bundle.metrics is None

    def test_tuple_merges(self):
        rec, reg = TraceRecorder(), MetricsRegistry()
        bundle = coerce_instrument((rec, reg))
        assert bundle.observer is rec and bundle.metrics is reg

    def test_nested_with_nones(self):
        reg = MetricsRegistry()
        bundle = coerce_instrument((None, (reg, None)))
        assert bundle.metrics is reg

    def test_passthrough(self):
        inst = Instrumentation(metrics=MetricsRegistry())
        assert coerce_instrument(inst) is inst

    def test_rejects_junk(self):
        with pytest.raises(TypeError):
            coerce_instrument(42)

    def test_rejects_junk_names_profiler(self):
        with pytest.raises(TypeError, match="StepProfiler"):
            coerce_instrument(42)

    def test_profiler_alone(self):
        prof = StepProfiler()
        bundle = coerce_instrument(prof)
        assert bundle.profiler is prof
        assert bundle.observer is None and bundle.metrics is None
        assert bundle

    def test_all_three_halves_merge(self):
        rec, reg, prof = TraceRecorder(), MetricsRegistry(), StepProfiler()
        bundle = coerce_instrument((rec, reg, prof))
        assert bundle.observer is rec
        assert bundle.metrics is reg
        assert bundle.profiler is prof

    def test_first_profiler_wins_in_merge(self):
        first, second = StepProfiler(), StepProfiler()
        bundle = coerce_instrument((first, second))
        assert bundle.profiler is first


class TestSchedulerInstrument:
    def test_observer_kwarg_removed(self):
        # The pre-1.2 spelling went through a deprecation cycle and was
        # removed in 1.5.0; it must fail loudly, not silently ignore.
        with pytest.raises(TypeError):
            Scheduler(observer=TraceRecorder())

    def test_instrument_kwarg_no_warning(self, recwarn):
        Scheduler(instrument=TraceRecorder())
        assert not [
            w for w in recwarn if w.category is DeprecationWarning
        ]

    def test_metrics_half_records_run(self):
        reg = MetricsRegistry()
        Scheduler(instrument=reg)
        assert Scheduler(instrument=reg)._metrics is reg

    def test_attach_metrics(self):
        reg = MetricsRegistry()
        scheduler = Scheduler()
        assert scheduler.attach_metrics(reg) is scheduler
        assert scheduler._metrics is reg

    def test_observer_and_metrics_halves_together(self):
        mobs = MetricsObserver()
        reg = MetricsRegistry()
        scheduler = Scheduler(instrument=(mobs, reg))
        assert scheduler.observer is mobs
        assert scheduler._metrics is reg


class TestBuilderInstrument:
    def test_with_observer_removed(self):
        assert not hasattr(SystemBuilder(LOCS), "with_observer")

    def test_with_metrics_removed(self):
        assert not hasattr(SystemBuilder(LOCS), "with_metrics")

    def test_with_instrumentation_sets_both(self, recwarn):
        rec, reg = TraceRecorder(), MetricsRegistry()
        builder = SystemBuilder(LOCS).with_instrumentation((rec, reg))
        assert builder.observer is rec
        assert builder.metrics is reg
        assert not [
            w for w in recwarn if w.category is DeprecationWarning
        ]
