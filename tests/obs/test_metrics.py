"""MetricsRegistry primitives and the MetricsObserver derivations."""

import pytest

from repro.ioa.actions import Action
from repro.ioa.automaton import FunctionalAutomaton
from repro.ioa.scheduler import Injection, Scheduler
from repro.ioa.signature import FiniteActionSet, Signature
from repro.obs.metrics import (
    Histogram,
    MetricsObserver,
    MetricsRegistry,
)

IN_A = Action("in-a", 0)
WORK = Action("work", 0)


def machine():
    return FunctionalAutomaton(
        name="m",
        signature=Signature(
            inputs=FiniteActionSet([IN_A]),
            outputs=FiniteActionSet([WORK]),
        ),
        initial=0,
        transition=lambda s, a: s + 1,
        enabled_fn=lambda s: [WORK],
        task_names=("worker",),
        task_assignment=lambda a: "worker",
    )


class TestPrimitives:
    def test_counter_gauge(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        reg.gauge("g").set(2.5)
        reg.gauge("g").add(-0.5)
        assert reg.counter("c").value == 5
        assert reg.gauge("g").value == 2.0

    def test_histogram_summary(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        d = h.to_dict()
        assert d["count"] == 4
        assert d["mean"] == 2.5
        assert d["min"] == 1.0
        assert d["max"] == 4.0
        assert d["p50"] == 2.0
        assert d["p95"] == 4.0

    def test_histogram_percentile_bounds(self):
        h = Histogram("h")
        assert h.percentile(50) == 0.0
        h.observe(7.0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_timer_observes_into_histogram(self):
        reg = MetricsRegistry()
        with reg.timer("t_s"):
            pass
        assert reg.histogram("t_s").count == 1
        assert reg.histogram("t_s").values[0] >= 0

    def test_names_and_to_dict(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.gauge("a").set(1)
        snapshot = reg.to_dict()
        assert reg.names() == ["a", "b"]
        assert list(snapshot) == ["a", "b"]
        assert snapshot["b"] == {"type": "counter", "value": 1}

    def test_empty_histogram_to_dict(self):
        assert Histogram("h").to_dict() == {"type": "histogram", "count": 0}


class TestDeterministicSnapshots:
    """REPRO003 by construction: serialized snapshots are sorted at the
    source, not rescued by a ``sorted()`` wrapper at each call site."""

    def test_histogram_to_dict_keys_sorted(self):
        h = Histogram("h")
        for v in (3.0, 1.0, 2.0):
            h.observe(v)
        d = h.to_dict()
        assert list(d) == sorted(d)

    def test_empty_histogram_keys_sorted(self):
        d = Histogram("h").to_dict()
        assert list(d) == sorted(d)

    def test_registry_to_dict_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z.last").inc()
        reg.gauge("a.first").set(1)
        reg.histogram("m.middle").observe(1.0)
        snapshot = reg.to_dict()
        assert list(snapshot) == sorted(snapshot)
        assert list(snapshot["m.middle"]) == sorted(snapshot["m.middle"])


class TestMetricsObserver:
    def test_scheduler_run_derivations(self):
        mobs = MetricsObserver()
        Scheduler(instrument=mobs).run(
            machine(), 4, injections=[Injection(1, IN_A)]
        )
        reg = mobs.registry
        assert reg.counter("scheduler.runs").value == 1
        assert reg.counter("scheduler.steps").value == 4
        assert reg.counter("scheduler.injections").value == 1
        assert reg.counter("scheduler.turns.worker").value == 3
        assert reg.counter("scheduler.run_end.max-steps").value == 1
        assert reg.histogram("scheduler.step_wall_s").count == 4

    def test_per_task_opt_out(self):
        mobs = MetricsObserver(per_task=False)
        Scheduler(instrument=mobs).run(machine(), 3)
        assert "scheduler.turns.worker" not in mobs.registry.names()

    def test_shared_registry(self):
        reg = MetricsRegistry()
        mobs = MetricsObserver(registry=reg)
        Scheduler(instrument=mobs).run(machine(), 2)
        Scheduler(instrument=mobs).run(machine(), 2)
        assert reg.counter("scheduler.runs").value == 2
        assert reg.counter("scheduler.steps").value == 4
