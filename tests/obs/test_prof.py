"""StepProfiler and cache telemetry: scripted clocks, identity, export."""

from __future__ import annotations

import json

from repro.algorithms.consensus_omega import omega_consensus_algorithm
from repro.ioa.actions import Action
from repro.ioa.automaton import FunctionalAutomaton
from repro.ioa.scheduler import (
    Injection,
    RoundRobinPolicy,
    Scheduler,
    set_default_profiler,
)
from repro.ioa.signature import FiniteActionSet, Signature
from repro.obs.metrics import MetricsRegistry
from repro.obs.prof import (
    PHASES,
    PROFILE_SCHEMA,
    CacheCounter,
    StepProfiler,
    cache_counter,
    cache_stats_delta,
    cache_stats_snapshot,
    reset_cache_stats,
    validate_profile,
)
from repro.runner import ExperimentSpec, run_spec

T1 = Action("t1", 0)
T2 = Action("t2", 1)
IN = Action("in", 0)
LOCS = (0, 1, 2)


def two_task_machine():
    return FunctionalAutomaton(
        name="m",
        signature=Signature(
            inputs=FiniteActionSet([IN]),
            outputs=FiniteActionSet([T1, T2]),
        ),
        initial=(0, 0),
        transition=lambda s, a: (
            (s[0] + 1, s[1]) if a == T1
            else (s[0], s[1] + 1) if a == T2
            else s
        ),
        enabled_fn=lambda s: [T1, T2],
        task_names=("one", "two"),
        task_assignment=lambda a: "one" if a == T1 else "two",
    )


def scripted_clock(step=1.0):
    """A deterministic clock advancing by ``step`` per reading."""
    state = {"t": 0.0}

    def clock():
        state["t"] += step
        return state["t"]

    return clock


class TestStepProfiler:
    def test_scripted_clock_books_exact_durations(self):
        prof = StepProfiler(clock=scripted_clock(0.5))
        t0 = prof.t()
        prof.add("apply", prof.t() - t0)
        assert prof.phase_calls == {"apply": 1}
        assert prof.phase_wall_s == {"apply": 0.5}
        assert prof.wall_s == 0.5

    def test_run_counters_accumulate_across_runs(self):
        prof = StepProfiler(clock=scripted_clock())
        prof.on_run_start()
        prof.on_run_end(steps=10, injections=2)
        prof.on_run_start()
        prof.on_run_end(steps=5, injections=0)
        assert prof.runs == 2
        assert prof.steps == 15
        assert prof.injections == 2
        # One fresh state per fired step plus the initial state per run.
        assert prof.states_touched == 10 + 1 + 5 + 1

    def test_frozen_now_fn_stamps_summary(self):
        prof = StepProfiler(clock=scripted_clock(), now_fn=lambda: 1234.9)
        doc = prof.summary()
        assert doc["schema"] == PROFILE_SCHEMA
        assert doc["created_unix"] == 1234
        assert validate_profile(doc) == []

    def test_summary_phases_sorted_and_rounded(self):
        prof = StepProfiler(clock=scripted_clock())
        prof.add("policy", 0.25)
        prof.add("apply", 0.125)
        doc = prof.summary(include_cache=False)
        assert list(doc["phases"]) == sorted(doc["phases"])
        assert doc["phases"]["apply"] == {"calls": 1, "wall_s": 0.125}
        assert "cache" not in doc
        json.dumps(doc)  # JSON-serializable as-is

    def test_reset_forgets_everything(self):
        prof = StepProfiler(clock=scripted_clock())
        prof.add("apply", 1.0)
        prof.on_run_start()
        prof.on_run_end(3, 0)
        prof.reset()
        assert prof.phase_calls == {}
        assert prof.runs == prof.steps == prof.states_touched == 0

    def test_to_json_round_trips(self, tmp_path):
        prof = StepProfiler(clock=scripted_clock(), now_fn=lambda: 7.0)
        prof.add("snapshot", 0.5)
        path = tmp_path / "PROFILE_X.json"
        text = prof.to_json(str(path))
        doc = json.loads(path.read_text())
        assert doc == json.loads(text)
        assert validate_profile(doc) == []


class TestValidateProfile:
    def test_rejects_non_dict(self):
        assert validate_profile([1]) != []

    def test_missing_key(self):
        doc = StepProfiler(now_fn=lambda: 0.0).summary()
        del doc["counters"]
        assert any("counters" in e for e in validate_profile(doc))

    def test_wrong_schema_tag(self):
        doc = StepProfiler(now_fn=lambda: 0.0).summary()
        doc["schema"] = "other/9"
        assert validate_profile(doc) != []

    def test_phase_without_calls_rejected(self):
        doc = StepProfiler(now_fn=lambda: 0.0).summary()
        doc["phases"]["apply"] = {"wall_s": 0.1}
        assert validate_profile(doc) != []

    def test_non_integer_counter_rejected(self):
        doc = StepProfiler(now_fn=lambda: 0.0).summary()
        doc["counters"]["steps"] = 1.5
        assert validate_profile(doc) != []


class TestCacheCounters:
    def test_counter_is_process_global_and_in_place(self):
        a = cache_counter("test.memo-a")
        assert cache_counter("test.memo-a") is a
        a.hits += 3
        a.misses += 1
        assert a.probes == 4
        assert a.hit_rate == 0.75
        reset_cache_stats()
        # Existing references stay live; the counts are zeroed in place.
        assert a.hits == a.misses == 0
        assert a.hit_rate == 0.0

    def test_as_dict_sorted_keys(self):
        c = CacheCounter("x")
        c.hits = 2
        assert list(c.as_dict()) == sorted(c.as_dict())

    def test_delta_drops_idle_memos(self):
        counter = cache_counter("test.memo-b")
        before = cache_stats_snapshot()
        counter.hits += 5
        counter.misses += 5
        delta = cache_stats_delta(before)
        assert delta["test.memo-b"]["hits"] == 5
        assert delta["test.memo-b"]["hit_rate"] == 0.5
        # Memos with no probes in the window are absent from the delta.
        assert "test.memo-a" not in delta

    def test_delta_counts_absent_memos_from_zero(self):
        counter = cache_counter("test.memo-c")
        counter.hits += 1
        delta = cache_stats_delta({})
        assert delta["test.memo-c"]["hits"] >= 1


class TestSchedulerIntegration:
    def test_profiled_run_is_execution_identical(self):
        base = Scheduler(RoundRobinPolicy()).run(two_task_machine(), 8)
        prof = StepProfiler()
        profiled = Scheduler(RoundRobinPolicy(), instrument=prof).run(
            two_task_machine(), 8
        )
        assert list(profiled.actions) == list(base.actions)
        assert list(profiled.states) == list(base.states)

    def test_phases_and_counters_recorded(self):
        prof = StepProfiler()
        Scheduler(RoundRobinPolicy(), instrument=prof).run(
            two_task_machine(), 8
        )
        assert prof.runs == 1
        assert prof.steps == 8
        assert prof.phase_calls["snapshot"] == 8
        assert prof.phase_calls["policy"] == 8
        assert prof.phase_calls["apply"] == 8
        assert set(prof.phase_calls) <= set(PHASES)

    def test_injections_booked_separately(self):
        prof = StepProfiler()
        Scheduler(RoundRobinPolicy(), instrument=prof).run(
            two_task_machine(), 4, injections=[Injection(2, IN)]
        )
        assert prof.injections == 1
        assert prof.phase_calls["injection"] == 1

    def test_default_profiler_seam(self):
        prof = StepProfiler()
        previous = set_default_profiler(prof)
        try:
            scheduler = Scheduler(RoundRobinPolicy())
            assert scheduler.profiler is prof
            scheduler.run(two_task_machine(), 3)
        finally:
            set_default_profiler(previous)
        assert prof.steps == 3
        # Restored: new schedulers are unprofiled again.
        assert Scheduler(RoundRobinPolicy()).profiler is previous

    def test_explicit_profiler_beats_default(self):
        fallback, explicit = StepProfiler(), StepProfiler()
        previous = set_default_profiler(fallback)
        try:
            scheduler = Scheduler(RoundRobinPolicy(), instrument=explicit)
            assert scheduler.profiler is explicit
        finally:
            set_default_profiler(previous)


def consensus_spec(**overrides):
    base = dict(
        algorithm=omega_consensus_algorithm,
        detector="omega",
        locations=LOCS,
        crashes={0: 10},
        f=1,
        seed=7,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestSpecProfile:
    def test_profile_flag_returns_summary(self):
        result = run_spec(consensus_spec(profile=True))
        assert result.solved
        assert result.profile is not None
        assert validate_profile(result.profile) == []
        assert result.profile["counters"]["steps"] == result.steps

    def test_profile_off_by_default(self):
        assert run_spec(consensus_spec()).profile is None

    def test_profiling_does_not_change_the_execution(self):
        plain = run_spec(consensus_spec())
        profiled = run_spec(consensus_spec(profile=True))
        assert profiled.solved == plain.solved
        assert profiled.steps == plain.steps
        assert profiled.decisions == plain.decisions
        assert profiled.messages_sent == plain.messages_sent

    def test_cache_hits_nonzero_on_consensus_kernel(self):
        result = run_spec(consensus_spec(profile=True))
        cache = result.profile["cache"]
        assert cache["composition.dispatch"]["hits"] > 0
        assert cache["composition.enabled"]["hit_rate"] > 0.5


class TestMetricsExport:
    def test_scheduler_exports_run_metrics_and_cache_deltas(self):
        registry = MetricsRegistry()
        Scheduler(RoundRobinPolicy(), instrument=registry).run(
            two_task_machine(), 6
        )
        snapshot = registry.to_dict()
        # The toy machine is not composed, so composition memos may be
        # idle (idle deltas are dropped) — but the run metrics must land
        # and any exported cache counter follows the naming convention.
        assert "scheduler.steps" in snapshot
        assert all(
            n.count(".") >= 2 for n in snapshot if n.startswith("cache.")
        )

    def test_composed_run_exports_composition_counters(self):
        result = run_spec(consensus_spec(instrument=True))
        # run_spec builds its own registry; the export surfaces through
        # the serialized report's metrics snapshot.
        assert result.report is not None
        metrics = result.report.get("metrics", {})
        assert any(n.startswith("cache.composition.") for n in metrics)
