"""The content-addressed run ledger: digests, fingerprints, the JSONL book."""

from __future__ import annotations

import json

import pytest

from repro.algorithms.consensus_omega import omega_consensus_algorithm
from repro.obs.ledger import (
    LEDGER_SCHEMA,
    RunLedger,
    bench_identity,
    canonical_json,
    digest,
    file_digest,
    main,
    make_ledger_entry,
    series_digest,
    spec_digest,
    spec_fingerprint,
    validate_ledger_entry,
)
from repro.runner import ExperimentSpec, run_spec

LOCS = (0, 1, 2)
NOW = lambda: 1754500000.0  # noqa: E731 - frozen clock for every entry


def consensus_spec(**overrides):
    base = dict(
        algorithm=omega_consensus_algorithm,
        detector="omega",
        locations=LOCS,
        crashes={0: 10},
        f=1,
        seed=7,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def bench_doc(**overrides):
    doc = {
        "bench_id": "e99",
        "title": "test bench",
        "quick": True,
        "series": {"header": ["n", "steps"], "rows": [[3, 40], [5, 90]]},
        "timings": {"kernel_wall_s": 0.25},
        "created_unix": 1754500000,
        "environment": {"python": "3.x"},
    }
    doc.update(overrides)
    return doc


class TestDigests:
    def test_canonical_json_is_order_free(self):
        assert canonical_json({"b": 1, "a": [2, 3]}) == '{"a":[2,3],"b":1}'
        assert digest({"a": 1, "b": 2}) == digest({"b": 2, "a": 1})

    def test_digest_prefix_and_stability(self):
        d = digest({"x": 1})
        assert d.startswith("sha256:") and len(d) == 7 + 64
        assert d == digest({"x": 1})
        assert d != digest({"x": 2})

    def test_canonical_json_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})

    def test_file_digest(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(b"abc")
        info = file_digest(str(path))
        assert info["bytes"] == 3
        assert info["sha256"].startswith("sha256:")

    def test_series_digest_ignores_the_measured_half(self):
        a = bench_doc()
        b = bench_doc(
            timings={"kernel_wall_s": 9.9},
            created_unix=1,
            environment={"python": "other"},
        )
        assert series_digest(a) == series_digest(b)

    def test_series_digest_sees_series_and_quick(self):
        base = series_digest(bench_doc())
        assert base != series_digest(
            bench_doc(series={"header": ["n", "steps"], "rows": [[3, 41]]})
        )
        assert base != series_digest(bench_doc(quick=False))


class TestSpecFingerprint:
    def test_equal_specs_share_an_address(self):
        assert spec_digest(consensus_spec()) == spec_digest(consensus_spec())

    def test_instrumentation_flags_do_not_change_the_address(self):
        plain = spec_digest(consensus_spec())
        assert plain == spec_digest(consensus_spec(instrument=True))
        assert plain == spec_digest(consensus_spec(profile=True))

    def test_behavior_fields_change_the_address(self):
        plain = spec_digest(consensus_spec())
        assert plain != spec_digest(consensus_spec(seed=8))
        assert plain != spec_digest(consensus_spec(crashes={1: 10}))

    def test_fingerprint_is_json_canonicalizable(self):
        fp = spec_fingerprint(consensus_spec())
        canonical_json(fp)  # must not raise
        assert fp["algorithm"]
        assert fp["seed"] == 7


class TestEntries:
    def test_well_formed_entry_validates(self):
        entry = make_ledger_entry(
            "bench", bench_identity(bench_doc()), now_fn=NOW
        )
        assert entry["schema"] == LEDGER_SCHEMA
        assert entry["created_unix"] == 1754500000
        assert entry["key"] == digest(bench_identity(bench_doc()))
        assert validate_ledger_entry(entry) == []

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            make_ledger_entry("mystery", {"x": 1})

    def test_tampered_key_detected(self):
        entry = make_ledger_entry(
            "bench", bench_identity(bench_doc()), now_fn=NOW
        )
        entry["bench"]["title"] = "edited after the fact"
        assert any("digest" in e for e in validate_ledger_entry(entry))

    def test_artifacts_must_carry_digests(self):
        entry = make_ledger_entry(
            "bench",
            bench_identity(bench_doc()),
            artifacts={"series": {"note": "no digest"}},
            now_fn=NOW,
        )
        assert validate_ledger_entry(entry) != []

    def test_non_dict_rejected(self):
        assert validate_ledger_entry([1]) != []


class TestRunLedger:
    def test_bench_round_trip(self, tmp_path):
        path = tmp_path / "sub" / "LEDGER.jsonl"  # parent dirs created
        ledger = RunLedger(str(path), now_fn=NOW)
        entry = ledger.record_bench(bench_doc())
        assert ledger.validate() == []
        assert ledger.has(entry["key"])
        [stored] = ledger.lookup(entry["key"])
        assert stored["artifacts"]["series"]["sha256"] == series_digest(
            bench_doc()
        )
        assert stored["timings"] == {"kernel_wall_s": 0.25}

    def test_spec_run_records_outcome_and_key(self, tmp_path):
        spec = consensus_spec(profile=True)
        result = run_spec(spec)
        ledger = RunLedger(str(tmp_path / "LEDGER.jsonl"), now_fn=NOW)
        entry = ledger.record_spec_run(spec, result)
        assert entry["key"] == spec_digest(spec)
        assert entry["seed"] == 7
        assert entry["outcome"]["solved"] is True
        assert entry["outcome"]["steps"] == result.steps
        # profile defaults to result.profile when the run was profiled
        assert entry["profile"]["counters"]["steps"] == result.steps
        assert ledger.validate() == []

    def test_append_only_same_key_twice(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "LEDGER.jsonl"), now_fn=NOW)
        ledger.record_bench(bench_doc())
        ledger.record_bench(bench_doc())
        key = digest(bench_identity(bench_doc()))
        assert len(ledger.lookup(key)) == 2

    def test_missing_file_reads_empty(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "nope.jsonl"))
        assert ledger.entries() == []
        assert not ledger.has("sha256:0")

    def test_truncated_final_line_tolerated_but_flagged(self, tmp_path):
        path = tmp_path / "LEDGER.jsonl"
        ledger = RunLedger(str(path), now_fn=NOW)
        ledger.record_bench(bench_doc())
        with open(path, "a", encoding="utf-8") as fp:
            fp.write('{"schema": "repro.led')  # killed writer
        assert len(ledger.entries()) == 1  # the log still reads
        assert any("line 2" in e for e in ledger.validate())

    def test_invalid_entry_refused_at_append(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "LEDGER.jsonl"))
        with pytest.raises(ValueError, match="invalid ledger entry"):
            ledger.append({"schema": LEDGER_SCHEMA})


class TestCLI:
    def test_valid_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "LEDGER.jsonl"
        RunLedger(str(path), now_fn=NOW).record_bench(bench_doc())
        assert main([str(path)]) == 0
        assert "ok (1 entries)" in capsys.readouterr().out

    def test_list_prints_key_table(self, tmp_path, capsys):
        path = tmp_path / "LEDGER.jsonl"
        RunLedger(str(path), now_fn=NOW).record_bench(bench_doc())
        assert main([str(path), "--list"]) == 0
        out = capsys.readouterr().out
        assert "bench" in out and "e99" in out

    def test_corrupt_file_exits_one(self, tmp_path, capsys):
        path = tmp_path / "LEDGER.jsonl"
        path.write_text(json.dumps({"schema": "wrong"}) + "\n")
        assert main([str(path)]) == 1

    def test_usage_error_exits_two(self):
        assert main([]) == 2
        assert main(["a.jsonl", "b.jsonl"]) == 2
