"""TraceRecorder: classification, spans, fan-out, JSONL round-trip."""

import io
import json

from repro.ioa.actions import Action
from repro.obs.trace import (
    MultiObserver,
    Observer,
    TraceRecorder,
    load_jsonl,
)


class TestClassification:
    def test_taxonomy(self):
        rec = TraceRecorder(fd_output_name="fd-omega")
        assert rec.classify(Action("crash", 1), True) == "crash"
        assert rec.classify(Action("send", 0, ("m", 1)), False) == "send"
        assert rec.classify(Action("receive", 1, ("m", 0)), False) == "receive"
        assert rec.classify(Action("decide", 0, (1,)), False) == "decision"
        assert rec.classify(Action("fd-omega", 0, (0,)), False) == "fd-output"
        assert rec.classify(Action("propose", 0, (1,)), True) == "injection"
        assert rec.classify(Action("tick", 0), False) == "action"

    def test_send_receive_endpoints(self):
        rec = TraceRecorder()
        rec.on_action(0, Action("send", 0, ("m", 2)), False)
        rec.on_action(1, Action("receive", 2, ("m", 0)), False)
        send, receive = rec.events
        assert send.data == {"dst": 2}
        assert receive.data == {"src": 0}

    def test_unclassified_fd_output_without_name(self):
        rec = TraceRecorder()  # no fd_output_name
        assert rec.classify(Action("fd-omega", 0, (0,)), False) == "action"


class TestSpans:
    def test_events_carry_innermost_span(self):
        rec = TraceRecorder()
        with rec.span("outer"):
            rec.record("checker", name="a", ok=True)
            with rec.span("inner"):
                rec.record("checker", name="b", ok=True)
        by_name = {e.data.get("ok") and e.name: e for e in rec.events
                   if e.kind == "checker"}
        assert by_name["a"].span == "outer"
        assert by_name["b"].span == "inner"
        assert [s.name for s in rec.spans] == ["inner", "outer"]
        assert all(s.dur_s >= 0 for s in rec.spans)

    def test_slowest_spans_sorted(self):
        rec = TraceRecorder()
        for name in ("a", "b", "c"):
            with rec.span(name):
                pass
        slow = rec.slowest_spans(top=2)
        assert len(slow) == 2
        assert slow[0].dur_s >= slow[1].dur_s


class TestJsonl:
    def test_round_trip(self, tmp_path):
        rec = TraceRecorder()
        with rec.span("run"):
            rec.on_action(0, Action("send", 0, ("m", 1)), False)
            rec.on_action(1, Action("decide", 1, (0,)), False)
        path = str(tmp_path / "run.jsonl")
        rec.to_jsonl(path)
        events = load_jsonl(path)
        assert [e["kind"] for e in events] == [
            "span-start", "send", "decision", "span-end",
        ]
        decision = events[2]
        assert decision["step"] == 1
        assert decision["location"] == 1
        assert decision["span"] == "run"

    def test_write_to_open_file(self):
        rec = TraceRecorder()
        rec.record("checker", name="x", ok=False)
        buf = io.StringIO()
        rec.to_jsonl(buf)
        (line,) = buf.getvalue().splitlines()
        assert json.loads(line)["data"] == {"ok": False}


class TestMultiObserver:
    def test_fan_out_and_proxies(self):
        a, b = TraceRecorder(), TraceRecorder()
        multi = MultiObserver(a, b, Observer())  # plain Observer: no extras
        multi.record("checker", name="x", ok=True)
        with multi.span("joint"):
            multi.on_action(0, Action("decide", 0, (1,)), False)
        for rec in (a, b):
            assert rec.counts() == {
                "checker": 1, "span-start": 1, "decision": 1, "span-end": 1,
            }
            assert rec.events_of_kind("decision")[0].span == "joint"

    def test_counts_and_events_of_kind(self):
        rec = TraceRecorder()
        rec.on_run_start(None, 5)
        rec.on_action(0, Action("tick", 0), False)
        rec.on_run_end(1, "max-steps")
        assert rec.counts() == {"run-start": 1, "action": 1, "run-end": 1}
        (end,) = rec.events_of_kind("run-end")
        assert end.data == {"steps": 1, "reason": "max-steps"}

    def test_step_events_only_when_requested(self):
        quiet = TraceRecorder()
        quiet.on_step_scheduled(0)
        assert quiet.events == []
        chatty = TraceRecorder(record_steps=True)
        chatty.on_step_scheduled(0)
        assert chatty.counts() == {"step": 1}
