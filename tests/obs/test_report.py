"""RunReport assembly, the JSONL CLI path, and the end-to-end
acceptance property: every decision of an instrumented consensus run
appears in the exported JSONL with its step index, location and
enclosing span."""

import json

import pytest

from repro.algorithms.consensus_perfect import perfect_consensus_algorithm
from repro.analysis.checkers import run_consensus_experiment
from repro.detectors.perfect import Perfect
from repro.ioa.actions import Action
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    RunReport,
    build_run_report,
    main,
    report_from_jsonl,
)
from repro.obs.trace import TraceRecorder
from repro.system.fault_pattern import FaultPattern

LOCS = (0, 1, 2)


def instrumented_run():
    recorder = TraceRecorder(fd_output_name="fd-p")
    result = run_consensus_experiment(
        perfect_consensus_algorithm(LOCS),
        Perfect(LOCS),
        proposals={0: 1, 1: 0, 2: 1},
        fault_pattern=FaultPattern({2: 6}, LOCS),
        f=1,
        instrument=recorder,
    )
    return result, recorder


class TestBuildRunReport:
    def test_from_recorder_and_execution(self):
        result, recorder = instrumented_run()
        metrics = MetricsRegistry()
        metrics.counter("tree.vertices").inc(3)
        report = build_run_report(
            execution=result.execution,
            recorder=recorder,
            metrics=metrics,
            meta={"experiment": "test"},
        )
        assert report.stats.decisions == 2
        assert report.event_counts["decision"] == 2
        assert report.event_counts["checker"] == 2
        assert report.metrics["tree.vertices"]["value"] == 3
        assert any("->" in edge for edge in report.message_matrix)
        assert sum(report.message_matrix.values()) == report.stats.sends
        d = report.to_dict()
        assert d["schema"] == "repro.report/1"
        assert d["stats"]["decisions"] == 2
        # The report is JSON-serializable as-is.
        json.dumps(d)

    def test_recorder_only_matrix_from_events(self):
        rec = TraceRecorder()
        rec.on_action(0, Action("send", 0, ("m", 1)), False)
        rec.on_action(1, Action("send", 0, ("m", 1)), False)
        report = build_run_report(recorder=rec)
        assert report.message_matrix == {"0->1": 2}
        assert report.stats is None

    def test_to_text_mentions_top_spans(self):
        result, recorder = instrumented_run()
        report = build_run_report(
            execution=result.execution, recorder=recorder
        )
        text = report.to_text()
        assert "consensus-run" in text
        assert "decision" in text


class TestDecisionEventsInJsonl:
    def test_every_decision_exported_with_context(self, tmp_path):
        result, recorder = instrumented_run()
        path = str(tmp_path / "run.jsonl")
        recorder.to_jsonl(path)
        with open(path) as fp:
            events = [json.loads(line) for line in fp if line.strip()]
        decisions = [e for e in events if e["kind"] == "decision"]
        stats_decisions = sum(
            1 for a in result.execution.actions if a.name == "decide"
        )
        assert len(decisions) == stats_decisions == 2
        for event in decisions:
            assert isinstance(event["step"], int)
            assert event["location"] in LOCS
            assert event["span"] == "consensus-run"


class TestJsonlCli:
    def test_report_from_jsonl_and_main(self, tmp_path, capsys):
        _result, recorder = instrumented_run()
        path = str(tmp_path / "run.jsonl")
        recorder.to_jsonl(path)
        report = report_from_jsonl(path)
        assert report.event_counts["decision"] == 2
        assert any(s["name"] == "consensus-run" for s in report.spans)
        assert main([path, "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "decision" in out
        assert "consensus-run" in out

    def test_main_usage_errors(self, capsys):
        assert main([]) == 2
        assert main(["a", "b"]) == 2
        assert main(["--top", "x", "f.jsonl"]) == 2
        assert main(["/nonexistent/trace.jsonl"]) == 1

    def test_empty_report_text(self):
        assert "events: 0" in RunReport().to_text() or RunReport().to_text()


class TestGracefulInputs:
    """The CLI never crashes on degenerate traces: empty files, killed
    writers and stray text are reported, not raised."""

    def test_empty_file_exits_zero_and_says_so(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main([str(path)]) == 0
        captured = capsys.readouterr()
        assert "empty trace" in captured.err

    def test_truncated_line_skipped_and_counted(self, tmp_path, capsys):
        _result, recorder = instrumented_run()
        path = tmp_path / "run.jsonl"
        recorder.to_jsonl(str(path))
        with open(path, "a", encoding="utf-8") as fp:
            fp.write('{"kind": "deci')  # killed writer mid-line
        assert main([str(path)]) == 0
        assert "skipped 1 malformed line" in capsys.readouterr().err
        report = report_from_jsonl(str(path), strict=False)
        assert report.meta["skipped_lines"] == 1
        assert report.event_counts["decision"] == 2

    def test_strict_library_default_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(json.JSONDecodeError):
            report_from_jsonl(str(path))

    def test_format_json_parses(self, tmp_path, capsys):
        _result, recorder = instrumented_run()
        path = tmp_path / "run.jsonl"
        recorder.to_jsonl(str(path))
        assert main([str(path), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.report/1"
        assert doc["event_counts"]["decision"] == 2

    def test_format_json_on_empty_trace(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main([str(path), "--format=json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["meta"]["num_events"] == 0

    def test_unknown_format_exits_two(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main([str(path), "--format", "yaml"]) == 2
