"""The BENCH_*.json artifact schema: construction and validation."""

import json

from repro.obs.schema import (
    BENCH_SCHEMA,
    environment_info,
    jsonify_cell,
    make_bench_artifact,
    main,
    validate_bench_artifact,
    validate_bench_file,
)


def artifact(**overrides):
    doc = make_bench_artifact(
        bench_id="e99",
        title="test bench",
        rows=[("a", 1, True), ("b", 2, False)],
        header=("label", "value", "ok"),
        timings={"kernel_wall_s": 0.25},
        quick=True,
    )
    doc.update(overrides)
    return doc


class TestMakeArtifact:
    def test_well_formed(self):
        doc = artifact()
        assert doc["schema"] == BENCH_SCHEMA
        assert doc["bench_id"] == "e99"
        assert doc["quick"] is True
        assert doc["series"]["header"] == ["label", "value", "ok"]
        assert doc["series"]["rows"] == [["a", 1, True], ["b", 2, False]]
        assert doc["timings"] == {"kernel_wall_s": 0.25}
        assert "python" in doc["environment"]
        assert validate_bench_artifact(doc) == []
        json.dumps(doc)  # JSON-serializable as-is

    def test_jsonify_cell_coercions(self):
        assert jsonify_cell(1) == 1
        assert jsonify_cell("x") == "x"
        assert jsonify_cell(None) is None
        assert jsonify_cell((0, 1)) == [0, 1]
        assert jsonify_cell({0: 1}) == {"0": 1}
        assert jsonify_cell({2, 1}) == [1, 2]

        class Opaque:
            def __str__(self):
                return "opaque"

        assert jsonify_cell(Opaque()) == "opaque"

    def test_environment_info_keys(self):
        env = environment_info()
        assert set(env) >= {"python", "platform"}

    def test_now_fn_injects_the_creation_stamp(self):
        doc = make_bench_artifact(
            bench_id="e99",
            title="frozen clock",
            rows=[("a", 1)],
            header=("label", "value"),
            now_fn=lambda: 1234.9,
        )
        assert doc["created_unix"] == 1234
        assert validate_bench_artifact(doc) == []

    def test_now_fn_defaults_to_wall_clock(self):
        import time

        before = int(time.time())
        doc = artifact()
        assert before <= doc["created_unix"] <= int(time.time())


class TestValidation:
    def test_missing_key(self):
        doc = artifact()
        del doc["series"]
        assert any("series" in e for e in validate_bench_artifact(doc))

    def test_wrong_schema_tag(self):
        errors = validate_bench_artifact(artifact(schema="other/9"))
        assert errors

    def test_non_dict(self):
        assert validate_bench_artifact([1, 2]) != []

    def test_non_list_row_rejected(self):
        doc = artifact()
        doc["series"]["rows"] = [["a", 1, True], "not-a-row"]
        assert validate_bench_artifact(doc) != []

    def test_non_numeric_timings_rejected(self):
        doc = artifact()
        doc["timings"] = {"kernel_wall_s": "fast"}
        assert validate_bench_artifact(doc) != []

    def test_file_validation_and_cli(self, tmp_path, capsys):
        good = tmp_path / "BENCH_OK.json"
        good.write_text(json.dumps(artifact()))
        bad = tmp_path / "BENCH_BAD.json"
        bad.write_text(json.dumps({"schema": BENCH_SCHEMA}))
        assert validate_bench_file(str(good)) == []
        assert validate_bench_file(str(bad)) != []
        assert main([str(good)]) == 0
        assert main([str(good), str(bad)]) == 1
        assert main([]) == 2
