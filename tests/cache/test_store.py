"""ResultStore: content addressing, integrity, invalidation, telemetry."""

from __future__ import annotations

import os
import pickle

from repro.cache import CACHE_SCHEMA, ENGINE_REVISION, ResultStore, cacheable
from repro.obs.ledger import spec_digest
from repro.runner import ExperimentSpec

LOCS = (0, 1, 2)


def trace_spec(**overrides):
    base = dict(
        detector="omega",
        locations=LOCS,
        problem="detector-trace",
        max_steps=40,
        seed=7,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def store_at(tmp_path, **kwargs):
    return ResultStore(str(tmp_path / "store"), **kwargs)


class TestRoundTrip:
    def test_get_before_put_is_miss(self, tmp_path):
        assert store_at(tmp_path).get(trace_spec()) is None

    def test_put_get_round_trips_the_result(self, tmp_path):
        store = store_at(tmp_path)
        spec = trace_spec()
        result = spec.run()
        key = store.put(spec, result)
        assert key == spec_digest(spec)
        cached = store.get(spec)
        assert cached == result
        assert cached.row() == result.row()

    def test_key_is_the_ledger_spec_digest(self, tmp_path):
        store = store_at(tmp_path)
        spec = trace_spec(seed=11)
        assert store.key_for(spec) == spec_digest(spec)

    def test_distinct_specs_distinct_objects(self, tmp_path):
        store = store_at(tmp_path)
        a, b = trace_spec(seed=1), trace_spec(seed=2)
        store.put(a, a.run())
        store.put(b, b.run())
        assert len(store) == 2
        assert store.get(a).seed == 1
        assert store.get(b).seed == 2

    def test_instrumentation_never_changes_the_key(self, tmp_path):
        # Fingerprints exclude instrument/profile on purpose; cacheable()
        # is what keeps instrumented runs out of the cache.
        store = store_at(tmp_path)
        plain = trace_spec()
        instrumented = trace_spec(instrument=True)
        assert store.key_for(plain) == store.key_for(instrumented)

    def test_layout_is_prefix_sharded(self, tmp_path):
        store = store_at(tmp_path)
        spec = trace_spec()
        key = store.put(spec, spec.run())
        hexdigest = key.split(":", 1)[1]
        path = store.object_path(key)
        assert path.endswith(os.path.join(hexdigest[:2], hexdigest + ".pkl"))
        assert os.path.exists(path)

    def test_keys_sorted_and_len(self, tmp_path):
        store = store_at(tmp_path)
        for seed in range(4):
            spec = trace_spec(seed=seed)
            store.put(spec, spec.run())
        keys = store.keys()
        assert keys == sorted(keys) and len(store) == 4


class TestIntegrity:
    def test_corrupted_payload_is_a_miss_and_evicted(self, tmp_path):
        store = store_at(tmp_path)
        spec = trace_spec()
        key = store.put(spec, spec.run())
        path = store.object_path(key)
        with open(path, "rb") as fp:
            entry = pickle.load(fp)
        entry["payload"] = entry["payload"][:-4] + b"\x00\x00\x00\x00"
        with open(path, "wb") as fp:
            pickle.dump(entry, fp)
        before = store.counter.evictions
        assert store.get(spec) is None
        assert not os.path.exists(path)  # evicted, self-healing
        assert store.counter.evictions == before + 1

    def test_truncated_object_file_is_a_miss(self, tmp_path):
        store = store_at(tmp_path)
        spec = trace_spec()
        key = store.put(spec, spec.run())
        path = store.object_path(key)
        with open(path, "rb") as fp:
            blob = fp.read()
        with open(path, "wb") as fp:
            fp.write(blob[: len(blob) // 2])
        assert store.get(spec) is None

    def test_verify_reports_without_evicting(self, tmp_path):
        store = store_at(tmp_path)
        spec = trace_spec()
        key = store.put(spec, spec.run())
        assert store.verify() == []
        path = store.object_path(key)
        with open(path, "rb") as fp:
            entry = pickle.load(fp)
        entry["payload"] = b"not the payload"
        with open(path, "wb") as fp:
            pickle.dump(entry, fp)
        problems = store.verify()
        assert problems and "integrity digest" in problems[0]
        assert os.path.exists(path)  # verify() inspects, never deletes

    def test_has_does_not_touch_counters(self, tmp_path):
        store = store_at(tmp_path)
        spec = trace_spec()
        key = store.put(spec, spec.run())
        hits, misses = store.counter.hits, store.counter.misses
        assert store.has(key)
        assert not store.has("sha256:" + "0" * 64)
        assert (store.counter.hits, store.counter.misses) == (hits, misses)


class TestInvalidation:
    def test_version_mismatch_is_a_miss_and_evicts(self, tmp_path):
        spec = trace_spec()
        writer = store_at(tmp_path, repro_version="0.9.0")
        key = writer.put(spec, spec.run())
        reader = store_at(tmp_path)  # current library version
        before = reader.counter.evictions
        assert reader.get(spec) is None
        assert reader.counter.evictions == before + 1
        assert not os.path.exists(reader.object_path(key))

    def test_engine_mismatch_is_a_miss(self, tmp_path):
        spec = trace_spec()
        writer = store_at(tmp_path, engine="step-loop/0")
        writer.put(spec, spec.run())
        reader = store_at(tmp_path, engine=ENGINE_REVISION)
        assert reader.get(spec) is None

    def test_spec_change_is_a_new_cell(self, tmp_path):
        store = store_at(tmp_path)
        spec = trace_spec(max_steps=40)
        store.put(spec, spec.run())
        assert store.get(trace_spec(max_steps=41)) is None

    def test_schema_field_pins_the_format(self, tmp_path):
        store = store_at(tmp_path)
        spec = trace_spec()
        key = store.put(spec, spec.run())
        with open(store.object_path(key), "rb") as fp:
            entry = pickle.load(fp)
        assert entry["schema"] == CACHE_SCHEMA


class TestTelemetry:
    def test_hit_miss_counters_book_probes(self, tmp_path):
        store = store_at(tmp_path)
        spec = trace_spec()
        h0, m0 = store.counter.hits, store.counter.misses
        assert store.get(spec) is None  # miss
        store.put(spec, spec.run())
        assert store.get(spec) is not None  # hit
        assert store.counter.hits == h0 + 1
        assert store.counter.misses == m0 + 1
        assert store.stats()["hits"] == store.counter.hits

    def test_counter_is_the_shared_cache_telemetry(self, tmp_path):
        from repro.obs.prof import cache_counter

        store = store_at(tmp_path)
        assert store.counter is cache_counter("store.results")


class TestCacheable:
    def test_plain_spec_cacheable(self):
        assert cacheable(trace_spec())

    def test_instrumented_profiled_and_step_recording_bypass(self):
        assert not cacheable(trace_spec(instrument=True))
        assert not cacheable(trace_spec(profile=True))
        assert not cacheable(trace_spec(record_steps=True))
