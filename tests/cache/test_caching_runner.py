"""BatchRunner(cache=...): hit/miss partitioning and the third
byte-identity leg (cached-vs-recomputed)."""

from __future__ import annotations

import pytest

import repro.runner.batch as batch_mod
from repro.cache import ResultStore
from repro.runner import BatchRunner, ExperimentSpec, sweep

LOCS = (0, 1, 2)


def trace_spec(**overrides):
    base = dict(
        detector="omega",
        locations=LOCS,
        problem="detector-trace",
        max_steps=40,
        seed=7,
        label="base",
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def small_sweep(seeds=5):
    return sweep(trace_spec(), seeds=seeds)


def _refuse_to_execute(spec):
    raise AssertionError(f"kernel executed on a warm cache: {spec.label}")


def det(results):
    """Results with the one nondeterministic field (wall_s) zeroed.

    Everything else — labels, seeds, verdicts, step/message counts —
    must match byte-for-byte between independent executions.
    """
    import dataclasses

    return [dataclasses.replace(r, wall_s=0.0) for r in results]


class TestColdWarm:
    def test_cold_batch_is_all_misses_and_matches_uncached(self, tmp_path):
        specs = small_sweep()
        plain = BatchRunner(jobs=1).run(specs)
        cold = BatchRunner(jobs=1, cache=str(tmp_path / "store")).run(specs)
        assert cold.cache_hits == 0
        assert cold.cache_misses == len(specs)
        assert det(cold.results) == det(plain.results)  # cached-vs-recomputed

    def test_warm_batch_is_all_hits_and_byte_identical(self, tmp_path):
        specs = small_sweep()
        store = ResultStore(str(tmp_path / "store"))
        cold = BatchRunner(jobs=1, cache=store).run(specs)
        warm = BatchRunner(jobs=1, cache=store).run(specs)
        assert warm.cache_hits == len(specs)
        assert warm.cache_misses == 0
        assert warm.results == cold.results

    def test_warm_batch_executes_zero_kernels(self, tmp_path, monkeypatch):
        specs = small_sweep()
        store = ResultStore(str(tmp_path / "store"))
        BatchRunner(jobs=1, cache=store).run(specs)
        monkeypatch.setattr(batch_mod, "_execute_spec", _refuse_to_execute)
        warm = BatchRunner(jobs=1, cache=store).run(specs)
        assert warm.ok and warm.cache_hits == len(specs)

    def test_partial_store_reassembles_in_spec_order(self, tmp_path):
        specs = small_sweep(6)
        store = ResultStore(str(tmp_path / "store"))
        # Pre-warm only the odd cells; the batch must interleave hits and
        # executed misses back into spec order.
        for spec in specs[1::2]:
            store.put(spec, spec.run())
        plain = BatchRunner(jobs=1).run(specs)
        mixed = BatchRunner(jobs=1, cache=store).run(specs)
        assert mixed.cache_hits == 3 and mixed.cache_misses == 3
        assert [r.label for r in mixed.results] == [s.label for s in specs]
        assert det(mixed.results) == det(plain.results)

    def test_parallel_warm_matches_serial_cold(self, tmp_path):
        specs = small_sweep(6)
        store = ResultStore(str(tmp_path / "store"))
        cold = BatchRunner(jobs=1, cache=store).run(specs)
        warm = BatchRunner(jobs=2, cache=store).run(specs)
        assert warm.cache_hits == len(specs)
        assert warm.results == cold.results

    def test_uncached_batch_reports_zero_traffic(self):
        batch = BatchRunner(jobs=1).run(small_sweep(2))
        assert batch.cache_hits == 0 and batch.cache_misses == 0

    def test_cache_accepts_a_path_string(self, tmp_path):
        runner = BatchRunner(jobs=1, cache=str(tmp_path / "store"))
        assert isinstance(runner.cache, ResultStore)
        batch = runner.run(small_sweep(2))
        assert batch.cache_misses == 2


class TestCachePolicy:
    def test_failed_results_are_never_cached(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        bad = trace_spec(detector="no-such-detector", label="bad")
        first = BatchRunner(jobs=1, cache=store).run([bad])
        assert not first.ok and len(store) == 0
        second = BatchRunner(jobs=1, cache=store).run([bad])
        assert second.cache_hits == 0 and second.cache_misses == 1

    def test_instrumented_specs_bypass_the_cache(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        plain = trace_spec()
        BatchRunner(jobs=1, cache=store).run([plain])
        assert len(store) == 1
        # Same fingerprint as the stored plain result, but the trace
        # must come from a real execution, never from the store.
        instrumented = trace_spec(instrument=True)
        batch = BatchRunner(jobs=1, cache=store).run([instrumented])
        assert batch.cache_hits == 0 and batch.cache_misses == 1
        assert batch.results[0].trace is not None
        # And the instrumented result never overwrites the plain entry.
        assert store.get(plain).trace is None

    def test_corrupt_entry_reexecutes_instead_of_failing(self, tmp_path):
        import pickle

        store = ResultStore(str(tmp_path / "store"))
        spec = trace_spec()
        cold = BatchRunner(jobs=1, cache=store).run([spec])
        key = store.key_for(spec)
        path = store.object_path(key)
        with open(path, "rb") as fp:
            entry = pickle.load(fp)
        entry["payload"] = b"garbage"
        with open(path, "wb") as fp:
            pickle.dump(entry, fp)
        healed = BatchRunner(jobs=1, cache=store).run([spec])
        assert healed.cache_misses == 1
        assert det(healed.results) == det(cold.results)
        assert store.get(spec) is not None  # republished after re-run


class TestProgressInterplay:
    def test_cache_event_announced_to_progress_sink(self, tmp_path):
        specs = small_sweep(4)
        store = ResultStore(str(tmp_path / "store"))
        for spec in specs[:2]:
            store.put(spec, spec.run())
        events = []
        BatchRunner(jobs=1, cache=store, progress=events.append).run(specs)
        cache_events = [e for e in events if e["event"] == "cache"]
        assert cache_events == [
            {"event": "cache", "hits": 2, "misses": 2, "total": 4}
        ]
        runs = [e for e in events if e["event"] == "run"]
        assert len(runs) == 2  # executed misses only
        assert events[-1]["event"] == "batch-end"

    def test_no_cache_event_without_a_cache(self):
        events = []
        BatchRunner(jobs=1, progress=events.append).run(small_sweep(2))
        assert all(e["event"] != "cache" for e in events)


class TestRaiseOnError:
    def test_raise_on_error_still_applies_to_misses(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        bad = trace_spec(detector="no-such-detector", label="bad")
        with pytest.raises(RuntimeError, match="bad"):
            BatchRunner(jobs=1, cache=store).run([bad], raise_on_error=True)
