"""shard_manifest / run_sharded: deterministic partitions, byte identity."""

from __future__ import annotations

import json

import pytest

from repro.cache import (
    SHARD_SCHEMA,
    ResultStore,
    ShardManifest,
    run_sharded,
    shard_manifest,
)
from repro.obs.ledger import spec_digest
from repro.runner import BatchRunner, ExperimentSpec, sweep

LOCS = (0, 1, 2)


def trace_spec(**overrides):
    base = dict(
        detector="omega",
        locations=LOCS,
        problem="detector-trace",
        max_steps=40,
        seed=7,
        label="base",
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def small_sweep(seeds=6):
    return sweep(trace_spec(), seeds=seeds)


class TestManifest:
    def test_round_robin_assignment(self):
        manifest = shard_manifest(small_sweep(7), shards=3)
        assert manifest.total == 7
        assert manifest.shard_count == 3
        assert manifest.assignment == ((0, 3, 6), (1, 4), (2, 5))

    def test_disjoint_union_covers_every_index(self):
        specs = small_sweep(11)
        manifest = shard_manifest(specs, shards=4)
        flat = [i for indices in manifest.assignment for i in indices]
        assert sorted(flat) == list(range(len(specs)))
        assert len(flat) == len(set(flat))

    def test_shard_sizes_differ_by_at_most_one(self):
        manifest = shard_manifest(small_sweep(10), shards=3)
        sizes = [len(indices) for indices in manifest.assignment]
        assert max(sizes) - min(sizes) <= 1

    def test_shards_clamped_to_spec_count(self):
        manifest = shard_manifest(small_sweep(3), shards=8)
        assert manifest.shard_count == 3
        assert all(len(indices) == 1 for indices in manifest.assignment)

    def test_deterministic_pure_function_of_specs(self):
        a = shard_manifest(small_sweep(9), shards=4)
        b = shard_manifest(small_sweep(9), shards=4)
        assert a == b

    def test_keys_are_the_store_content_addresses(self):
        specs = small_sweep(4)
        manifest = shard_manifest(specs, shards=2)
        assert manifest.keys == tuple(spec_digest(s) for s in specs)

    def test_rejects_nonpositive_shards_and_empty_sweeps(self):
        with pytest.raises(ValueError, match="shards must be positive"):
            shard_manifest(small_sweep(2), shards=0)
        with pytest.raises(ValueError, match="empty spec list"):
            shard_manifest([], shards=2)

    def test_doc_round_trip(self, tmp_path):
        manifest = shard_manifest(small_sweep(5), shards=2)
        doc = manifest.to_doc()
        assert doc["schema"] == SHARD_SCHEMA
        assert doc["shards"][0]["keys"] == [
            manifest.keys[i] for i in manifest.assignment[0]
        ]
        assert ShardManifest.from_doc(doc) == manifest
        path = manifest.write(str(tmp_path / "manifest.json"))
        assert ShardManifest.load(path) == manifest
        with open(path, "r", encoding="utf-8") as fp:
            raw = json.load(fp)
        assert raw["total"] == 5

    def test_from_doc_rejects_unknown_schema(self):
        doc = shard_manifest(small_sweep(2), shards=1).to_doc()
        doc["schema"] = "repro.shard/999"
        with pytest.raises(ValueError, match="unknown shard manifest schema"):
            ShardManifest.from_doc(doc)


class TestRunSharded:
    def test_sharded_cold_matches_serial_rows(self, tmp_path):
        specs = small_sweep(6)
        serial = BatchRunner(jobs=1).run(specs)
        store = ResultStore(str(tmp_path / "store"))
        sharded = run_sharded(specs, store, shards=3, jobs=2)
        assert [r.row() for r in sharded.results] == [
            r.row() for r in serial.results
        ]
        assert sharded.cache_misses == len(specs)
        assert sharded.cache_hits == 0

    def test_cold_run_populates_the_shared_store(self, tmp_path):
        specs = small_sweep(5)
        store = ResultStore(str(tmp_path / "store"))
        run_sharded(specs, store, shards=2, jobs=2)
        assert len(store) == len(specs)
        assert all(store.has(spec_digest(s)) for s in specs)

    def test_warm_run_is_all_hits_and_byte_identical(self, tmp_path):
        specs = small_sweep(6)
        store = ResultStore(str(tmp_path / "store"))
        cold = run_sharded(specs, store, shards=3, jobs=2)
        warm = run_sharded(specs, store, shards=2, jobs=2)
        assert warm.cache_hits == len(specs)
        assert warm.cache_misses == 0
        assert [r.row() for r in warm.results] == [
            r.row() for r in cold.results
        ]

    def test_store_accepted_as_path_string(self, tmp_path):
        specs = small_sweep(3)
        batch = run_sharded(specs, str(tmp_path / "store"), shards=2, jobs=1)
        assert batch.ok and len(batch) == 3
