#!/usr/bin/env python
"""Hooks: how AFDs circumvent FLP (Sections 8–9, Theorem 59).

Builds the tagged tree R^{t_D} of a two-location consensus system for a
fixed perfect-detector sequence t_D that crashes location 1, computes the
exact valence of every reachable configuration, finds the hooks — the
bivalent-to-univalent pivots — and verifies the paper's main structural
result: every hook's two edges carry actions at the *same, live*
location.  The failure detector's information is decisive exactly there.

Run:  python examples/hook_analysis_demo.py
"""

from repro.algorithms.consensus_tree import (
    TreeConsensusProcess,
    tree_consensus_algorithm,
)
from repro.detectors.perfect import perfect_output
from repro.ioa.composition import Composition
from repro.system.channel import make_channels
from repro.system.environment import ConsensusEnvironment
from repro.system.fault_pattern import crash_action
from repro.tree.hooks import HookSearch, find_hooks
from repro.tree.tagged_tree import TaggedTreeGraph
from repro.tree.valence import (
    ValenceAnalysis,
    decision_extractor_for_processes,
)


def main() -> None:
    locations = (0, 1)
    algorithm = tree_consensus_algorithm(locations)
    composition = Composition(
        list(algorithm.automata())
        + make_channels(locations)
        + [ConsensusEnvironment(locations)],
        name="tree-system",
    )

    # t_D in T_P: location 1 crashes after one output round; afterwards
    # location 0 is (accurately) told about it, repeatedly.
    td = [perfect_output(0, ()), perfect_output(1, ())]
    td += [crash_action(1)]
    td += [perfect_output(0, (1,))] * 6
    print("t_D:", ", ".join(str(a) for a in td[:5]), "...")

    graph = TaggedTreeGraph(composition, td, max_vertices=200_000)
    print(f"\ntagged-tree quotient vertices: {graph.num_vertices}")

    valence = ValenceAnalysis(
        graph,
        decision_extractor_for_processes(
            composition, algorithm.automata(), TreeConsensusProcess.decision
        ),
    )
    counts = valence.counts()
    print(f"valence census               : {counts}")
    print(f"root valence                 : "
          f"{valence.root_valence().describe()}  (Proposition 51)")

    hooks = find_hooks(graph, valence)
    print(f"\nhooks found                  : {len(hooks)}")
    example = hooks[0]
    print("an example hook (N, l, r):")
    print(f"  l-edge action : {example.l_action}   "
          f"-> {example.l_child_valence.describe()} child")
    print(f"  r-edge action : {example.r_action}   "
          f"(r-child's l-child is "
          f"{example.rl_child_valence.describe()})")
    print(f"  critical location: {example.critical_location}")

    report = HookSearch(graph, valence, locations).report()
    print("\nTheorem 59 checks over all hooks:")
    print(f"  Lemma 56 (non-bottom tags)   : {report.all_lemma56}")
    print(f"  Lemma 57 (same location)     : {report.all_lemma57}")
    print(f"  Lemma 58 (live location)     : {report.all_lemma58}")
    print(f"  critical locations observed  : "
          f"{sorted(report.critical_locations)}")
    assert report.theorem59_holds
    assert report.critical_locations == {0}, (
        "location 1 is faulty in t_D, so it can never be critical"
    )
    print(
        "\n=> the decision pivots only on events at live location 0 —\n"
        "   the detector's (and scheduler's) choices there are exactly\n"
        "   the information that lets consensus evade FLP."
    )


if __name__ == "__main__":
    main()
