#!/usr/bin/env python
"""The AFD hierarchy (Section 7.1): who implements whom.

Prints the registered strength lattice over the detector zoo, answers
reachability queries through Theorem 15 (transitivity), and then
*empirically validates every edge*: each reduction's witness algorithm is
run under several fault patterns and the defining implication of ⪰ is
checked on the produced traces.

Run:  python examples/hierarchy_demo.py
"""

from repro.analysis.hierarchy import (
    KNOWN_SEPARATIONS,
    build_hierarchy_graph,
    is_stronger,
    is_strictly_stronger,
    validate_hierarchy,
)
from repro.system.fault_pattern import FaultPattern


def main() -> None:
    graph = build_hierarchy_graph()
    print("registered reductions (D -> D' means D ⪰ D'):")
    for source, target, data in sorted(graph.edges(data=True)):
        if source != target:  # skip the Corollary-14 self-loops
            print(f"  {source:10} -> {target:10}  via {data['reduction']}")

    print("\nstrength queries (transitive closure, Theorem 15):")
    queries = [
        ("P", "antiOmega"),
        ("EvP", "Omega"),
        ("P", "Psi^2"),
        ("antiOmega", "Omega"),
        ("Sigma", "Omega"),
    ]
    for source, target in queries:
        verdict = is_stronger(source, target)
        strict = (
            " (strictly)" if verdict and is_strictly_stronger(source, target)
            else ""
        )
        print(f"  {source:10} ⪰ {target:10} ? {verdict}{strict}")

    print("\nknown separations (with literature sources):")
    for source, target, why in KNOWN_SEPARATIONS[:4]:
        print(f"  {source:10} cannot implement {target:10} — {why}")

    locations = (0, 1, 2)
    patterns = [
        FaultPattern({}, locations),
        FaultPattern({2: 5}, locations),
        FaultPattern({0: 15}, locations),
    ]
    print(
        f"\nempirically validating every edge over "
        f"{len(patterns)} fault patterns..."
    )
    validation = validate_hierarchy(locations, patterns)
    print(
        f"  {validation.edges_held}/{validation.edges_checked} "
        f"(reduction, pattern) runs upheld the ⪰ implication"
    )
    assert validation.all_held, validation.failures
    print("  all registered strength claims verified on live runs")


if __name__ == "__main__":
    main()
