#!/usr/bin/env python
"""Quickstart: generate and check failure-detector behavior.

Builds the paper's Algorithm 1 automaton (FD-Omega) over four locations,
crashes two of them mid-run, produces a fair finite execution, and checks
the resulting event sequence against the Omega AFD specification —
including the closure properties that make Omega an *asynchronous*
failure detector (validity, closure under sampling, closure under
constrained reordering; Section 3.2 of the paper).

Run:  python examples/quickstart.py
"""

from repro.core.afd import check_afd_closure_properties
from repro.core.sampling import random_sampling
from repro.core.reordering import random_constrained_reordering
from repro.detectors.omega import Omega
from repro.ioa.scheduler import Scheduler
from repro.system.fault_pattern import FaultPattern


def main() -> None:
    locations = (0, 1, 2, 3)
    omega = Omega(locations)

    # The adversary's plan: crash location 2 early, location 0 later.
    pattern = FaultPattern({2: 6, 0: 24}, locations)
    print(f"fault pattern : crash {dict(pattern.crashes)}")
    print(f"live locations: {sorted(pattern.live)}")

    # Run the generator automaton (Algorithm 1) under a fair scheduler.
    execution = Scheduler().run(
        omega.automaton(), max_steps=120, injections=pattern.injections()
    )
    trace = list(execution.actions)
    print(f"\ngenerated {len(trace)} events; first 6:")
    for action in trace[:6]:
        print(f"  {action}")

    # Membership in T_Omega (safety exactly, liveness in the limit).
    verdict = omega.check_limit(trace)
    print(f"\ntrace in T_Omega?           {bool(verdict)}")

    # The three AFD closure properties, exercised on this trace.
    closures = check_afd_closure_properties(omega, trace, seed=7)
    print(f"AFD closure properties hold? {bool(closures)}")

    # Peek at what the closures mean.
    sampled = random_sampling(trace, seed=1)
    reordered = random_constrained_reordering(trace, seed=1)
    print(f"\na sampling drops {len(trace) - len(sampled)} events "
          f"(suffixes at crashed locations) -> still in T_Omega: "
          f"{bool(omega.check_limit(sampled))}")
    print(f"a constrained reordering permutes events across locations "
          f"-> still in T_Omega: {bool(omega.check_limit(reordered))}")

    # Eventually, everyone agrees on the smallest live location.
    last_leaders = {
        a.location: a.payload[0]
        for a in trace
        if a.name == "fd-omega" and a.location in pattern.live
    }
    print(f"\nfinal leader at each live location: {last_leaders}")
    assert set(last_leaders.values()) == {min(pattern.live)}
    print("=> unique live leader, as T_Omega requires")


if __name__ == "__main__":
    main()
