#!/usr/bin/env python
"""The bounded-problem suite (Section 7.3) in action.

Theorem 21's subjects — consensus, k-set agreement, leader election,
NBAC, terminating reliable broadcast — are all implemented here over the
perfect detector P (and, where natural, a consensus black box).  This
demo runs each under the same crash plan and checks it against its
specification, then shows the property that makes them *bounded*: each
run emits a bounded number of problem outputs and then goes quiet.

Run:  python examples/bounded_problems_demo.py
"""

from repro.algorithms.atomic_commit import nbac_algorithm
from repro.algorithms.consensus_perfect import perfect_consensus_algorithm
from repro.algorithms.kset_floodmin import (
    FloodMinProcess,
    floodmin_algorithm,
)
from repro.algorithms.leader_election import leader_election_algorithm
from repro.algorithms.trb_flooding import trb_flooding_algorithm
from repro.detectors.perfect import PerfectAutomaton
from repro.ioa.composition import Composition
from repro.ioa.scheduler import Injection, Scheduler
from repro.problems.atomic_commit import YES, AtomicCommitProblem, vote_action
from repro.problems.kset_agreement import KSetAgreementProblem
from repro.problems.leader_election import LeaderElectionProblem
from repro.problems.reliable_broadcast import (
    ReliableBroadcastProblem,
    bcast_action,
)
from repro.system.channel import make_channels
from repro.system.crash import CrashAutomaton
from repro.system.environment import ScriptedConsensusEnvironment
from repro.system.fault_pattern import FaultPattern
from repro.system.network import SystemBuilder

LOCATIONS = (0, 1, 2)
CRASHES = {2: 7}


def show(label, problem, events, outputs):
    verdict = problem.check_conditional(events)
    print(f"{label:38} outputs={outputs:<24} spec={'OK' if verdict else 'FAIL'}")
    assert verdict, verdict.reasons


def main() -> None:
    print(f"locations {LOCATIONS}, crash plan {CRASHES}\n")
    pattern = FaultPattern(CRASHES, LOCATIONS)

    # --- 2-set agreement (FloodMin over P) ------------------------------
    algorithm = floodmin_algorithm(LOCATIONS, k=2, f=2)
    system = (
        SystemBuilder(LOCATIONS)
        .with_algorithm(algorithm)
        .with_failure_detector(PerfectAutomaton(LOCATIONS))
        .with_environment(
            ScriptedConsensusEnvironment({i: i for i in LOCATIONS})
        )
        .build()
    )

    def settled(state, _step):
        crashed = system.crashed(state)
        return all(
            i in crashed
            or FloodMinProcess.decision(system.process_state(state, i))
            is not None
            for i in LOCATIONS
        )

    execution = system.run(
        max_steps=15_000, fault_pattern=pattern, stop_when=settled
    )
    problem = KSetAgreementProblem(LOCATIONS, f=2, k=2)
    events = problem.project_events(list(execution.actions))
    decisions = sorted(
        (a.location, a.payload[0]) for a in events if a.name == "decide"
    )
    show("2-set agreement (FloodMin over P)", problem, events, str(decisions))

    # --- terminating reliable broadcast ---------------------------------
    trb = trb_flooding_algorithm(LOCATIONS, sender=0, f=2)
    trb_system = Composition(
        list(trb.automata())
        + make_channels(LOCATIONS)
        + [PerfectAutomaton(LOCATIONS), CrashAutomaton(LOCATIONS)],
        name="trb",
    )
    execution = Scheduler().run(
        trb_system,
        max_steps=8000,
        injections=[Injection(0, bcast_action(0, "payload"))]
        + pattern.injections(),
    )
    problem = ReliableBroadcastProblem(LOCATIONS, sender=0, f=2)
    events = problem.project_events(list(execution.actions))
    deliveries = sorted(
        (a.location, a.payload[0]) for a in events if a.name == "deliver"
    )
    show("TRB (flooding over P)", problem, events, str(deliveries))

    # --- leader election (consensus black box) --------------------------
    drivers = leader_election_algorithm(LOCATIONS)
    consensus = perfect_consensus_algorithm(LOCATIONS, values=LOCATIONS)
    election = Composition(
        list(drivers.automata())
        + list(consensus.automata())
        + make_channels(LOCATIONS)
        + [PerfectAutomaton(LOCATIONS), CrashAutomaton(LOCATIONS)],
        name="election",
    )
    execution = Scheduler().run(
        election, max_steps=8000, injections=pattern.injections()
    )
    problem = LeaderElectionProblem(LOCATIONS, f=1)
    events = problem.project_events(list(execution.actions))
    leaders = sorted(
        (a.location, a.payload[0]) for a in events if a.name == "leader"
    )
    show("leader election (via consensus)", problem, events, str(leaders))

    # --- NBAC (vote round + consensus) ----------------------------------
    nbac = nbac_algorithm(LOCATIONS)
    nbac_consensus = perfect_consensus_algorithm(LOCATIONS)
    commit_system = Composition(
        list(nbac.automata())
        + list(nbac_consensus.automata())
        + make_channels(LOCATIONS)
        + [PerfectAutomaton(LOCATIONS), CrashAutomaton(LOCATIONS)],
        name="nbac",
    )
    execution = Scheduler().run(
        commit_system,
        max_steps=8000,
        injections=[
            Injection(k, vote_action(i, YES))
            for k, i in enumerate(LOCATIONS)
        ]
        + pattern.injections(),
    )
    problem = AtomicCommitProblem(LOCATIONS, f=1)
    events = problem.project_events(list(execution.actions))
    verdicts = sorted(
        (a.location, a.name)
        for a in events
        if a.name in ("commit", "abort")
    )
    show("NBAC (vote round + consensus)", problem, events, str(verdicts))

    print(
        "\nEach run produced at most n problem outputs and then went "
        "quiet:\nthe bounded-length behavior that (with crash "
        "independence) denies\nthese problems a representative AFD "
        "(Theorem 21)."
    )


if __name__ == "__main__":
    main()
