#!/usr/bin/env python
"""Algorithm 3 end-to-end: every AFD is self-implementable (Section 6).

Composes the eventually-perfect detector's generator with A^self and the
crash automaton, runs the system under a crash plan, and verifies
Theorem 13: the emitted (renamed) events form a trace of the renaming
◇P' of ◇P.  Also re-traces the proof's two structural facts on the run:
per-location outputs form a prefix of the inputs (Corollary 3), and live
locations relay everything (Corollary 5).

Run:  python examples/self_implementation_demo.py
"""

from repro.core.self_implementation import self_implementation_algorithm
from repro.detectors.eventually_perfect import EventuallyPerfect
from repro.ioa.composition import Composition
from repro.ioa.scheduler import Scheduler
from repro.system.crash import CrashAutomaton
from repro.system.fault_pattern import FaultPattern


def main() -> None:
    locations = (0, 1, 2)
    afd = EventuallyPerfect(locations)
    renamed = afd.renamed()  # D': the renaming A^self solves
    algorithm, renaming = self_implementation_algorithm(afd)

    pattern = FaultPattern({1: 9}, locations)
    system = Composition(
        [afd.automaton()]
        + list(algorithm.automata())
        + [CrashAutomaton(locations)],
        name="self-implementation",
    )
    execution = Scheduler().run(
        system, max_steps=400, injections=pattern.injections()
    )
    events = list(execution.actions)

    source = afd.project_events(events)
    target = renamed.project_events(events)
    print(f"detector events (O_D)  : {len(source)}")
    print(f"relayed events (O_D')  : {len(target)}")
    print(f"sample relay           : {source[0]}  ->  "
          f"{renaming.apply(source[0])}")

    premise = afd.check_limit(source)
    conclusion = renamed.check_limit(target)
    print(f"\npremise   (t|O_D in T_D)   : {bool(premise)}")
    print(f"conclusion (t|O_D' in T_D') : {bool(conclusion)}")
    assert premise and conclusion
    print("=> Theorem 13: A^self uses D to solve a renaming of D")

    # Corollary 3 / Corollary 5 on this concrete run.
    print("\nper-location relay accounting:")
    for i in locations:
        ins = [a for a in source if a.location == i and a.name != "crash"]
        outs = [
            renaming.invert(a)
            for a in target
            if a.location == i and a.name != "crash"
        ]
        assert outs == ins[: len(outs)], "outputs must prefix inputs"
        status = "live" if i in pattern.live else "faulty"
        print(
            f"  location {i} ({status:6}): {len(ins):3} in, "
            f"{len(outs):3} out  (prefix property holds)"
        )


if __name__ == "__main__":
    main()
