#!/usr/bin/env python
"""Consensus with AFDs — the paper's Section 9 application.

Solves f-crash-tolerant binary consensus three times on the same inputs:

* with **Omega** (the weakest detector for consensus [4]) via a
  Paxos-style algorithm tolerating f < n/2 crashes,
* with **◇S** via the Chandra–Toueg rotating-coordinator protocol [5]
  (also f < n/2), and
* with the **perfect detector P** via a rotating-coordinator algorithm
  tolerating f < n crashes,

then crashes the initial leader mid-protocol and shows every stack still
reaches a single decision at every surviving location, verified against
the Section 9.1 specification (agreement, validity, termination, crash
validity).

Run:  python examples/consensus_demo.py
"""

from repro.algorithms.consensus_ct import ct_consensus_algorithm
from repro.algorithms.consensus_omega import omega_consensus_algorithm
from repro.algorithms.consensus_perfect import perfect_consensus_algorithm
from repro.analysis.checkers import run_consensus_experiment
from repro.analysis.stats import collect_run_statistics
from repro.detectors.omega import Omega
from repro.detectors.perfect import Perfect
from repro.detectors.strong import EventuallyStrong
from repro.system.fault_pattern import FaultPattern


def banner(text: str) -> None:
    print(f"\n=== {text} " + "=" * max(0, 60 - len(text)))


def report(result, fd_name: str) -> None:
    stats = collect_run_statistics(result.execution)
    print(f"decisions            : {result.decisions}")
    print(f"events until settled : {result.steps}")
    print(f"messages sent        : {stats.sends}")
    print(f"FD events conform    : {bool(result.fd_check)}")
    print(f"consensus spec holds : {bool(result.consensus_check)}")
    print(f"'A solves consensus using {fd_name}' implication: "
          f"{result.solved}")


def main() -> None:
    locations = (0, 1, 2, 3, 4)
    proposals = {0: 1, 1: 0, 2: 1, 3: 0, 4: 1}
    # Crash the initial leader (0) mid-protocol, and one more later.
    pattern = FaultPattern({0: 12, 3: 40}, locations)
    print(f"locations : {locations}")
    print(f"proposals : {proposals}")
    print(f"crashes   : {dict(pattern.crashes)} (f = 2)")

    banner("Omega + Paxos-style algorithm (f < n/2)")
    result = run_consensus_experiment(
        omega_consensus_algorithm(locations),
        Omega(locations),
        proposals=proposals,
        fault_pattern=pattern,
        f=2,
        max_steps=40_000,
    )
    report(result, "Omega")
    assert result.solved and result.all_live_decided

    banner("◇S + Chandra–Toueg rotating coordinator (f < n/2)")
    result = run_consensus_experiment(
        ct_consensus_algorithm(locations),
        EventuallyStrong(locations),
        proposals=proposals,
        fault_pattern=pattern,
        f=2,
        max_steps=60_000,
    )
    report(result, "◇S")
    assert result.solved and result.all_live_decided

    banner("Perfect detector + rotating coordinator (f < n)")
    result = run_consensus_experiment(
        perfect_consensus_algorithm(locations),
        Perfect(locations),
        proposals=proposals,
        fault_pattern=pattern,
        f=4,
        max_steps=40_000,
    )
    report(result, "P")
    assert result.solved and result.all_live_decided

    banner("Why this matters")
    print(
        "FLP says consensus is unsolvable in a purely asynchronous\n"
        "crash-prone system; both runs above decide because the AFD's\n"
        "events carry exactly enough crash information to break the\n"
        "symmetry (see examples/hook_analysis_demo.py for where)."
    )


if __name__ == "__main__":
    main()
