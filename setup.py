"""Setup shim for legacy editable installs (offline environments without
the ``wheel`` package, where PEP 660 editable wheels cannot be built)."""

from setuptools import setup

setup()
