"""High-level experiment runners.

:func:`run_consensus_experiment` wires a consensus algorithm, a failure
detector, an environment and a fault pattern into a system, runs it to
decision, and checks the run against both specifications — the detector's
T_D (the premise of "solving P using D") and the consensus T_P (the
conclusion).  Experiments E9/E10 and the consensus tests are thin wrappers
over it.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.ioa.actions import Action
from repro.ioa.executions import Execution
from repro.ioa.scheduler import SchedulerPolicy
from repro.core.afd import AFD, CheckResult
from repro.problems.consensus import ConsensusProblem
from repro.system.environment import ScriptedConsensusEnvironment
from repro.system.fault_pattern import FaultPattern
from repro.system.network import System, SystemBuilder
from repro.system.process import DistributedAlgorithm


@dataclass
class ConsensusRunResult:
    """Everything an experiment wants to know about one consensus run."""

    execution: Execution
    decisions: Dict[int, Optional[int]]
    fd_events: List[Action]
    problem_events: List[Action]
    fd_check: CheckResult
    consensus_check: CheckResult
    steps: int
    messages_sent: int
    #: Crashes fired by the fault plan's event-triggered rules, as
    #: (step, location, rule) triples; empty without a plan.
    injected_crashes: tuple = ()

    @property
    def solved(self) -> bool:
        """The defining implication: FD conformance => consensus holds."""
        return (not self.fd_check.ok) or self.consensus_check.ok

    @property
    def all_live_decided(self) -> bool:
        return all(v is not None for v in self.decisions.values())


def run_consensus_experiment(
    algorithm: DistributedAlgorithm,
    afd: AFD,
    proposals: Dict[int, int],
    fault_pattern: FaultPattern,
    f: int,
    max_steps: int = 5000,
    policy: Optional[SchedulerPolicy] = None,
    decision_fn: Optional[Callable] = None,
    min_live_outputs: int = 1,
    instrument=None,
    observer=None,
    metrics=None,
    fault_plan=None,
) -> ConsensusRunResult:
    """Assemble, run, and check one consensus experiment.

    This is the single execution path shared by the demos, the tests and
    the :mod:`repro.runner` engine (an
    :class:`~repro.runner.spec.ExperimentSpec` bottoms out here).

    ``afd`` may be an :class:`~repro.core.afd.AFD` instance or a string
    detector name resolved through
    :func:`repro.detectors.registry.resolve_detector` (e.g. ``"omega"``,
    ``"evs"``).

    ``decision_fn`` extracts a decision from a process state; defaults to
    the ``decision`` staticmethod of the algorithm's process class.

    ``instrument`` is the unified instrumentation hook
    (:mod:`repro.obs.instrument`): its observer half (a
    :class:`repro.obs.trace.Observer`) sees the run's scheduler events —
    a :class:`~repro.obs.trace.TraceRecorder` also gets the run wrapped
    in a ``"consensus-run"`` span and the two checker verdicts recorded
    as ``checker`` events; its metrics half (a
    :class:`repro.obs.metrics.MetricsRegistry`) is attached to the
    composition and channels.  Default None: uninstrumented.
    ``observer=`` / ``metrics=`` are the deprecated spellings.

    ``fault_plan`` injects the channel faults and adversarial crash
    rules of a :class:`~repro.faults.plan.FaultPlan`
    (``SystemBuilder.with_fault_plan``); an unbound plan is bound to
    seed 0 here — callers wanting run-seed-derived faults should bind
    the plan themselves (:class:`~repro.runner.spec.ExperimentSpec`
    does).  Crashes fired by the plan's rules are returned on
    ``result.injected_crashes``.
    """
    from repro.obs.instrument import coerce_instrument, warn_deprecated_kwarg

    if observer is not None:
        warn_deprecated_kwarg("run_consensus_experiment", "observer")
        instrument = (instrument, observer)
    if metrics is not None:
        warn_deprecated_kwarg("run_consensus_experiment", "metrics")
        instrument = (instrument, metrics)
    bundle = coerce_instrument(instrument)
    observer, metrics = bundle.observer, bundle.metrics
    locations = tuple(algorithm.locations)
    if isinstance(afd, str):
        from repro.detectors.registry import resolve_detector

        afd = resolve_detector(afd, locations)
    if decision_fn is None:
        decision_fn = type(algorithm[locations[0]]).decision
    env = ScriptedConsensusEnvironment(proposals)
    builder = (
        SystemBuilder(locations)
        .with_algorithm(algorithm)
        .with_failure_detector(afd.automaton())
        .with_environment(env)
    )
    if bundle:
        builder.with_instrumentation(bundle)
    if fault_plan is not None:
        if not fault_plan.is_bound:
            fault_plan = fault_plan.bound(0)
        builder.with_fault_plan(fault_plan)
    system = builder.build()
    def everyone_settled(state, _step) -> bool:
        """Every location has either decided or actually crashed.

        Judging liveness from the *run state* (not the fault plan) matters:
        a crash scheduled late in the plan may never fire, in which case
        its location is live in the trace and must decide before we stop.
        """
        crashed = system.crashed(state)
        return all(
            i in crashed
            or decision_fn(system.process_state(state, i)) is not None
            for i in locations
        )

    # A TraceRecorder observer gets the whole run timed as one span, so
    # exported decision events carry a non-empty enclosing span.
    span = getattr(observer, "span", None)
    with span("consensus-run") if span is not None else nullcontext():
        execution = system.run(
            max_steps=max_steps,
            fault_pattern=fault_pattern,
            policy=policy,
            stop_when=everyone_settled,
        )
    events = list(execution.actions)
    problem = ConsensusProblem(locations, f=f)
    fd_events = afd.project_events(events)
    problem_events = problem.project_events(events)
    live_in_trace = [
        i
        for i in locations
        if i not in system.crashed(execution.final_state)
    ]
    decisions = {
        i: decision_fn(system.process_state(execution.final_state, i))
        for i in live_in_trace
    }
    fd_check = afd.check_limit(fd_events, min_live_outputs)
    consensus_check = problem.check_conditional(problem_events)
    record = getattr(observer, "record", None)
    if record is not None:
        record("checker", name="fd_check", ok=bool(fd_check))
        record("checker", name="consensus_check", ok=bool(consensus_check))
    return ConsensusRunResult(
        execution=execution,
        decisions=decisions,
        fd_events=fd_events,
        problem_events=problem_events,
        fd_check=fd_check,
        consensus_check=consensus_check,
        steps=len(execution),
        messages_sent=sum(1 for a in events if a.name == "send"),
        injected_crashes=(
            tuple(system.crash_controller.fired)
            if system.crash_controller is not None
            else ()
        ),
    )
