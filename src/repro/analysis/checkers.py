"""High-level experiment runners.

:func:`run_consensus_experiment` wires a consensus algorithm, a failure
detector, an environment and a fault pattern into a system, runs it to
decision, and checks the run against both specifications — the detector's
T_D (the premise of "solving P using D") and the consensus T_P (the
conclusion).  Experiments E9/E10 and the consensus tests are thin wrappers
over it.

Since 1.5.0 this function is itself a thin delegate: it packs its
arguments into an :class:`~repro.runner.spec.ExperimentSpec` and returns
the :class:`ConsensusRunResult` that
:func:`repro.runner.spec.run_spec` keeps on ``result.run`` — one
execution path for demos, tests and the batch engine, documented in
docs/API.md ("one consensus entrypoint").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.ioa.actions import Action
from repro.ioa.executions import Execution
from repro.ioa.scheduler import SchedulerPolicy
from repro.core.afd import AFD, CheckResult
from repro.system.fault_pattern import FaultPattern
from repro.system.process import DistributedAlgorithm


@dataclass
class ConsensusRunResult:
    """Everything an experiment wants to know about one consensus run."""

    execution: Execution
    decisions: Dict[int, Optional[int]]
    fd_events: List[Action]
    problem_events: List[Action]
    fd_check: CheckResult
    consensus_check: CheckResult
    steps: int
    messages_sent: int
    #: Crashes fired by the fault plan's event-triggered rules, as
    #: (step, location, rule) triples; empty without a plan.
    injected_crashes: tuple = ()

    @property
    def solved(self) -> bool:
        """The defining implication: FD conformance => consensus holds."""
        return (not self.fd_check.ok) or self.consensus_check.ok

    @property
    def all_live_decided(self) -> bool:
        return all(v is not None for v in self.decisions.values())


def run_consensus_experiment(
    algorithm: DistributedAlgorithm,
    afd: AFD,
    proposals: Dict[int, int],
    fault_pattern: FaultPattern,
    f: int,
    max_steps: int = 5000,
    policy: Optional[SchedulerPolicy] = None,
    decision_fn: Optional[Callable] = None,
    min_live_outputs: int = 1,
    instrument=None,
    fault_plan=None,
    compiled: Optional[bool] = None,
) -> ConsensusRunResult:
    """Assemble, run, and check one consensus experiment.

    A thin delegate over the :mod:`repro.runner` engine: the arguments
    become an :class:`~repro.runner.spec.ExperimentSpec` and the run
    executes through :func:`repro.runner.spec.run_spec` — the single
    consensus execution path shared by the demos, the tests and the
    batch engine.  Equivalence is exact, not approximate: the spec path
    runs the same builder chain, settlement predicate and checkers (see
    docs/API.md, "one consensus entrypoint").

    ``afd`` may be an :class:`~repro.core.afd.AFD` instance or a string
    detector name resolved through
    :func:`repro.detectors.registry.resolve_detector` (e.g. ``"omega"``,
    ``"evs"``).

    ``decision_fn`` extracts a decision from a process state; defaults to
    the ``decision`` staticmethod of the algorithm's process class.

    ``instrument`` is the unified instrumentation hook
    (:mod:`repro.obs.instrument`): its observer half (a
    :class:`repro.obs.trace.Observer`) sees the run's scheduler events —
    a :class:`~repro.obs.trace.TraceRecorder` also gets the run wrapped
    in a ``"consensus-run"`` span and the two checker verdicts recorded
    as ``checker`` events; its metrics half (a
    :class:`repro.obs.metrics.MetricsRegistry`) is attached to the
    composition and channels.  Default None: uninstrumented.

    ``fault_plan`` injects the channel faults and adversarial crash
    rules of a :class:`~repro.faults.plan.FaultPlan`
    (``SystemBuilder.with_fault_plan``); an unbound plan is bound to
    seed 0 here — callers wanting run-seed-derived faults should bind
    the plan themselves (:class:`~repro.runner.spec.ExperimentSpec`
    does).  Crashes fired by the plan's rules are returned on
    ``result.injected_crashes``.

    ``compiled`` selects the execution engine exactly as
    ``ExperimentSpec(compiled=...)`` does (``None``: process default).
    """
    from repro.runner.spec import ExperimentSpec, run_spec

    if fault_plan is not None and not fault_plan.is_bound:
        fault_plan = fault_plan.bound(0)
    spec = ExperimentSpec(
        detector=afd,
        algorithm=algorithm,
        locations=tuple(algorithm.locations),
        proposals=dict(proposals),
        crashes=fault_pattern,
        f=f,
        max_steps=max_steps,
        min_live_outputs=min_live_outputs,
        fault_plan=fault_plan,
        compiled=compiled,
    )
    result = run_spec(
        spec,
        policy=policy,
        decision_fn=decision_fn,
        instrument=instrument,
        keep=True,
    )
    return result.run
