"""Run statistics: the quantitative series the benchmark harness prints.

The paper has no numeric tables (its evaluation is a set of theorems), so
the benchmark series report *harness* quantities — decision latency in
events, message counts, tree sizes — whose shapes the experiments assert
(e.g. latency grows with n; hook counts are positive; stronger detectors
never lose to weaker ones on solvable instances).
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean, median
from typing import Dict, List, Optional, Sequence

from repro.ioa.actions import Action
from repro.ioa.executions import Execution
from repro.system.fault_pattern import is_crash


@dataclass
class RunStatistics:
    """Event-level statistics of one system execution.

    ``first_decision_index`` and ``last_decision_index`` are 0-based
    positions in the event sequence; the latency properties count events
    *up to and including* the decision, i.e. ``index + 1``.
    """

    total_events: int
    sends: int
    receives: int
    fd_outputs: int
    crashes: int
    decisions: int
    first_decision_index: Optional[int]
    last_decision_index: Optional[int]
    #: Receives in excess of the matching channel's sends of the same
    #: message (0 on reliable channels; positive under duplication).
    duplicate_receives: int = 0
    #: Sends never matched by a receive (dropped, or still in transit
    #: when the run ended; 0 when every channel drained reliably).
    undelivered_sends: int = 0

    @property
    def decision_latency(self) -> Optional[int]:
        """Events until the last decision inclusive (the run's consensus
        latency): ``last_decision_index + 1``, or None if nobody decided."""
        if self.last_decision_index is None:
            return None
        return self.last_decision_index + 1

    @property
    def first_decision_latency(self) -> Optional[int]:
        """Events until the first decision inclusive, or None."""
        if self.first_decision_index is None:
            return None
        return self.first_decision_index + 1

    @property
    def delivered_sends(self) -> int:
        """Sends matched by at least one receive on their channel."""
        return self.sends - self.undelivered_sends

    def to_dict(self) -> Dict[str, Optional[int]]:
        """A JSON-ready dump including the derived latencies."""
        return {
            "total_events": self.total_events,
            "sends": self.sends,
            "receives": self.receives,
            "fd_outputs": self.fd_outputs,
            "crashes": self.crashes,
            "decisions": self.decisions,
            "duplicate_receives": self.duplicate_receives,
            "undelivered_sends": self.undelivered_sends,
            "first_decision_index": self.first_decision_index,
            "last_decision_index": self.last_decision_index,
            "first_decision_latency": self.first_decision_latency,
            "decision_latency": self.decision_latency,
        }


def collect_run_statistics(
    execution: Execution,
    fd_output_name: Optional[str] = None,
) -> RunStatistics:
    """Tally the events of one execution.

    Send/receive accounting does not assume the reliable-channel
    invariant "every receive has a matching prior send": per channel and
    message, receives beyond the send count are tallied as
    ``duplicate_receives`` and unmatched sends as ``undelivered_sends``,
    so statistics stay truthful under fault injection (duplicating or
    lossy channels) instead of silently mis-counting.
    """
    sends = receives = fd_outputs = crashes = decisions = 0
    duplicate_receives = 0
    first_decision = last_decision = None
    # (source, destination) -> message -> sends minus matched receives.
    balance: Dict[tuple, Dict[object, int]] = {}
    for k, action in enumerate(execution.actions):
        # FD outputs are tallied independently of the other buckets: a
        # detector whose output action is named "send"/"receive"/"decide"
        # must still have its events counted as FD outputs (and as
        # sends/receives/decisions), not silently zeroed by an elif chain.
        if fd_output_name is not None and action.name == fd_output_name:
            fd_outputs += 1
        if action.name == "send":
            sends += 1
            if len(action.payload) == 2:
                message, destination = action.payload
                bucket = balance.setdefault(
                    (action.location, destination), {}
                )
                bucket[message] = bucket.get(message, 0) + 1
        elif action.name == "receive":
            receives += 1
            if len(action.payload) == 2:
                message, source = action.payload
                bucket = balance.setdefault(
                    (source, action.location), {}
                )
                outstanding = bucket.get(message, 0)
                if outstanding > 0:
                    bucket[message] = outstanding - 1
                else:
                    duplicate_receives += 1
        elif is_crash(action):
            crashes += 1
        elif action.name == "decide":
            decisions += 1
            if first_decision is None:
                first_decision = k
            last_decision = k
    undelivered = sum(
        count
        for bucket in balance.values()
        for count in bucket.values()
        if count > 0
    )
    return RunStatistics(
        total_events=len(execution),
        sends=sends,
        receives=receives,
        fd_outputs=fd_outputs,
        crashes=crashes,
        decisions=decisions,
        first_decision_index=first_decision,
        last_decision_index=last_decision,
        duplicate_receives=duplicate_receives,
        undelivered_sends=undelivered,
    )


def summarize_series(values: Sequence[float]) -> Dict[str, float]:
    """Mean/median/min/max summary used by the benchmark printers."""
    if not values:
        return {"mean": 0.0, "median": 0.0, "min": 0.0, "max": 0.0}
    return {
        "mean": float(mean(values)),
        "median": float(median(values)),
        "min": float(min(values)),
        "max": float(max(values)),
    }
