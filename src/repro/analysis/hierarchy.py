"""The AFD hierarchy graph (Section 7.1).

Nodes are zoo detectors; a directed edge D -> D' records a registered
reduction witnessing D ⪰ D'.  Theorem 15 makes ⪰ transitive, so strength
queries reduce to reachability.  Known *separations* (D' is not stronger
than D) are recorded as data with their literature source; together with
Corollary 19 they justify 'strictly stronger' claims: if D ⪰ D' and
D' ⪰̸ D then the problems solvable with D strictly contain those solvable
with D'.

:func:`validate_hierarchy` empirically re-checks every registered edge by
running its witness algorithm under a battery of fault patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import networkx as nx

from repro.core.ordering import evaluate_reduction
from repro.detectors.registry import known_reductions, make_detector
from repro.system.fault_pattern import FaultPattern

#: Known non-reductions (source cannot implement target), with citations.
KNOWN_SEPARATIONS: Tuple[Tuple[str, str, str], ...] = (
    ("EvP", "P", "◇P gives no accuracy before stabilization [5]"),
    ("Omega", "P", "Omega is strictly weaker than P [4, 5]"),
    ("Omega", "EvP", "Omega carries no suspect sets [4]"),
    ("antiOmega", "Omega", "anti-Omega is weaker than Omega [31]"),
    ("Sigma", "Omega", "quorums do not elect leaders [8]"),
    ("Omega^2", "Omega", "Omega^k weakens as k grows [23]"),
    ("EvS", "S", "eventual weak accuracy is weaker than weak accuracy [5]"),
    ("EvS", "EvP", "◇S suspects live processes forever at some locations [5]"),
    ("S", "P", "weak accuracy is weaker than strong accuracy [5]"),
    ("EvW", "W", "eventual weak accuracy is weaker than weak accuracy [5]"),
)


def build_hierarchy_graph() -> "nx.DiGraph":
    """The directed graph of registered ⪰ edges over the zoo."""
    graph = nx.DiGraph()
    for name in (
        "P",
        "EvP",
        "S",
        "EvS",
        "Q",
        "W",
        "EvQ",
        "EvW",
        "Omega",
        "antiOmega",
        "Sigma",
        "Omega^1",
        "Omega^2",
        "Psi^1",
        "Psi^2",
    ):
        graph.add_node(name)
    for reduction in known_reductions():
        source, target = reduction.name.split(">=")
        graph.add_edge(source, target, reduction=reduction.name)
    # Self-implementability (Corollary 14): every AFD implements itself.
    for name in list(graph.nodes):
        graph.add_edge(name, name, reduction="Aself")
    return graph


def is_stronger(source: str, target: str) -> bool:
    """Whether ``source ⪰ target`` follows from registered edges and
    transitivity (Theorem 15)."""
    graph = build_hierarchy_graph()
    if source not in graph or target not in graph:
        raise KeyError(f"unknown detector: {source!r} or {target!r}")
    return nx.has_path(graph, source, target)


def is_strictly_stronger(source: str, target: str) -> bool:
    """``source ⪰ target`` is registered and ``target ⪰ source`` is a
    known separation."""
    if not is_stronger(source, target):
        return False
    return any(
        s == target and t == source for (s, t, _why) in KNOWN_SEPARATIONS
    )


def weakest_among(candidates: Sequence[str]) -> List[str]:
    """The candidates that are weakest within the set (Section 7.2):
    D is weakest in a set of AFDs solving a problem iff every member of
    the set is stronger than D (by registered reductions + transitivity).

    Returns the (possibly empty, possibly plural) list of such members.
    """
    graph = build_hierarchy_graph()
    unknown = [c for c in candidates if c not in graph]
    if unknown:
        raise KeyError(f"unknown detectors: {unknown}")
    return [
        d
        for d in candidates
        if all(nx.has_path(graph, other, d) for other in candidates)
    ]


def hierarchy_dot() -> str:
    """The hierarchy graph as Graphviz DOT source (self-loops omitted),
    for inclusion in papers/notes: ``dot -Tsvg`` renders the lattice."""
    graph = build_hierarchy_graph()
    lines = [
        "digraph afd_hierarchy {",
        "  rankdir=BT;",
        '  node [shape=box, fontname="Helvetica"];',
    ]
    for source, target, data in sorted(graph.edges(data=True)):
        if source == target:
            continue
        lines.append(
            f'  "{source}" -> "{target}" '
            f'[label="{data.get("reduction", "")}", fontsize=9];'
        )
    lines.append("}")
    return "\n".join(lines)


@dataclass
class HierarchyValidation:
    """The outcome of empirically validating every registered edge."""

    edges_checked: int = 0
    edges_held: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def all_held(self) -> bool:
        return self.edges_checked > 0 and self.edges_held == self.edges_checked


def validate_hierarchy(
    locations: Sequence[int],
    fault_patterns: Sequence[FaultPattern],
    max_steps: int = 600,
) -> HierarchyValidation:
    """Run every registered reduction under every fault pattern and check
    the ⪰ implication on the resulting traces."""
    validation = HierarchyValidation()
    for reduction in known_reductions():
        source, target, algorithm = reduction.instantiate(locations)
        for pattern in fault_patterns:
            # Message-passing witnesses need more steps: gossip must
            # propagate through the channels before stabilization.
            steps = max_steps * (3 if reduction.needs_channels else 1)
            outcome = evaluate_reduction(
                source,
                target,
                algorithm,
                pattern,
                max_steps=steps,
                include_channels=reduction.needs_channels,
            )
            validation.edges_checked += 1
            if outcome.holds and not outcome.vacuous:
                validation.edges_held += 1
            else:
                validation.failures.append(
                    f"{reduction.name} under {dict(pattern.crashes)}: "
                    f"premise={outcome.premise.ok} "
                    f"conclusion={outcome.conclusion.ok} "
                    f"{outcome.conclusion.reasons[:1]}"
                )
    return validation
