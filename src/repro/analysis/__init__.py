"""Cross-cutting analysis utilities: experiment runners, statistics, and
the AFD hierarchy graph."""

from repro.analysis.checkers import (
    ConsensusRunResult,
    run_consensus_experiment,
)
from repro.analysis.hierarchy import (
    HierarchyValidation,
    build_hierarchy_graph,
    hierarchy_dot,
    is_stronger,
    is_strictly_stronger,
    validate_hierarchy,
    weakest_among,
)
from repro.analysis.stats import (
    RunStatistics,
    collect_run_statistics,
)

__all__ = [
    "ConsensusRunResult",
    "run_consensus_experiment",
    "HierarchyValidation",
    "build_hierarchy_graph",
    "hierarchy_dot",
    "is_stronger",
    "is_strictly_stronger",
    "validate_hierarchy",
    "weakest_among",
    "RunStatistics",
    "collect_run_statistics",
]
