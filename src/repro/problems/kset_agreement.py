"""k-set agreement: at most k distinct decision values.

One of the paper's running examples of a *bounded* problem (Section 7.3);
its weakest failure detector is anti-Omega for k = n-1 [31] and Omega^k in
general [12].  Consensus is the k = 1 case.
"""

from __future__ import annotations

from typing import Sequence

from repro.ioa.actions import Action
from repro.core.afd import CheckResult
from repro.problems.consensus import ConsensusProblem


class KSetAgreementProblem(ConsensusProblem):
    """Like consensus but agreement is relaxed to k distinct decisions.

    Values default to location IDs (the natural k-set-agreement instance
    where everyone proposes their own ID).
    """

    def __init__(
        self,
        locations: Sequence[int],
        f: int,
        k: int,
        values: Sequence[int] = None,
    ):
        if values is None:
            values = tuple(locations)
        super().__init__(locations, f, values)
        if not 1 <= k <= len(locations):
            raise ValueError(f"k must be in [1, n], got {k}")
        self.k = k
        self.name = f"{k}-set-agreement(f={f})"

    def check_agreement(self, t: Sequence[Action]) -> CheckResult:
        decisions = self.decision_values(t)
        if len(decisions) > self.k:
            return CheckResult.failure(
                f"{len(decisions)} distinct decisions "
                f"{sorted(decisions)}, allowed at most {self.k}"
            )
        return CheckResult.success()
