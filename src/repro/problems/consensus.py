"""f-crash-tolerant binary consensus (Section 9.1).

I_P = {propose(v)_i} ∪ I-hat, O_P = {decide(v)_i}; T_P is the set of
sequences that, *whenever* they satisfy environment well-formedness and
f-crash limitation, satisfy crash validity, agreement, validity and
termination.  Every property of Section 9.1 is checked verbatim by the
methods below.

:class:`CentralizedConsensusSolver` is the witness automaton U of the
bounded-problem analysis (Section 7.3 / Theorem 21): it solves consensus,
is crash independent, and has bounded length (at most n decide outputs).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton, State
from repro.ioa.signature import FiniteActionSet, Signature
from repro.core.afd import CheckResult
from repro.core.validity import faulty_locations, live_locations
from repro.problems.base import CrashProblem
from repro.system.environment import DECIDE, PROPOSE, decide_action
from repro.system.fault_pattern import crash_action, is_crash


class ConsensusProblem(CrashProblem):
    """The f-crash-tolerant binary consensus specification."""

    def __init__(
        self,
        locations: Sequence[int],
        f: int,
        values: Sequence[int] = (0, 1),
    ):
        if not 0 <= f <= len(locations) - 1:
            raise ValueError(f"f must be in [0, n-1], got {f}")
        super().__init__(locations, f"consensus(f={f})")
        self.f = f
        self.values = tuple(values)

    # -- Vocabulary ---------------------------------------------------------

    def is_input(self, action: Action) -> bool:
        if is_crash(action) and action.location in self.locations:
            return True
        return (
            action.name == PROPOSE
            and action.location in self.locations
            and len(action.payload) == 1
            and action.payload[0] in self.values
        )

    def is_output(self, action: Action) -> bool:
        return (
            action.name == DECIDE
            and action.location in self.locations
            and len(action.payload) == 1
            and action.payload[0] in self.values
        )

    # -- Individual properties (Section 9.1 verbatim) --------------------------

    def decision_values(self, t: Sequence[Action]) -> Set[int]:
        """The set of decision values of t."""
        return {a.payload[0] for a in t if a.name == DECIDE}

    def check_environment_well_formedness(
        self, t: Sequence[Action]
    ) -> CheckResult:
        """(1) at most one propose per location; (2) none after a crash;
        (3) exactly one at each live location."""
        proposals: Dict[int, int] = {}
        crashed: Set[int] = set()
        for k, a in enumerate(t):
            if is_crash(a):
                crashed.add(a.location)
            elif a.name == PROPOSE:
                if a.location in proposals:
                    return CheckResult.failure(
                        f"second proposal at location {a.location} "
                        f"(index {k})"
                    )
                if a.location in crashed:
                    return CheckResult.failure(
                        f"proposal at crashed location {a.location} "
                        f"(index {k})"
                    )
                proposals[a.location] = a.payload[0]
        for i in live_locations(t, self.locations):
            if i not in proposals:
                return CheckResult.failure(
                    f"live location {i} never proposed"
                )
        return CheckResult.success()

    def check_crash_limitation(self, t: Sequence[Action]) -> CheckResult:
        """At most f locations crash."""
        faulty = faulty_locations(t)
        if len(faulty) > self.f:
            return CheckResult.failure(
                f"{len(faulty)} locations crash but f = {self.f}"
            )
        return CheckResult.success()

    def check_crash_validity(self, t: Sequence[Action]) -> CheckResult:
        """No location decides after crashing."""
        crashed: Set[int] = set()
        for k, a in enumerate(t):
            if is_crash(a):
                crashed.add(a.location)
            elif a.name == DECIDE and a.location in crashed:
                return CheckResult.failure(
                    f"decision at crashed location {a.location} (index {k})"
                )
        return CheckResult.success()

    def check_agreement(self, t: Sequence[Action]) -> CheckResult:
        """No two locations decide differently."""
        decisions = self.decision_values(t)
        if len(decisions) > 1:
            return CheckResult.failure(
                f"conflicting decisions: {sorted(decisions)}"
            )
        return CheckResult.success()

    def check_validity(self, t: Sequence[Action]) -> CheckResult:
        """Every decision value was proposed."""
        proposed = {a.payload[0] for a in t if a.name == PROPOSE}
        stray = self.decision_values(t) - proposed
        if stray:
            return CheckResult.failure(
                f"decision value(s) {sorted(stray)} were never proposed"
            )
        return CheckResult.success()

    def check_termination(self, t: Sequence[Action]) -> CheckResult:
        """At most one decision per location; exactly one at live ones."""
        counts: Dict[int, int] = {}
        for a in t:
            if a.name == DECIDE:
                counts[a.location] = counts.get(a.location, 0) + 1
        for i, c in counts.items():
            if c > 1:
                return CheckResult.failure(
                    f"location {i} decided {c} times"
                )
        for i in live_locations(t, self.locations):
            if counts.get(i, 0) != 1:
                return CheckResult.failure(
                    f"live location {i} never decided"
                )
        return CheckResult.success()

    # -- Assembled specification -----------------------------------------------

    def check_assumptions(self, t: Sequence[Action]) -> CheckResult:
        return self.check_environment_well_formedness(t).merge(
            self.check_crash_limitation(t)
        )

    def check_guarantees(self, t: Sequence[Action]) -> CheckResult:
        return (
            self.check_crash_validity(t)
            .merge(self.check_agreement(t))
            .merge(self.check_validity(t))
            .merge(self.check_termination(t))
        )


class CentralizedConsensusSolver(Automaton):
    """The witness automaton U for consensus (Section 7.3).

    Upon the first proposal, it decides that value at every location that
    has neither crashed nor decided yet.  It solves consensus, is crash
    independent (deleting crash events from any finite trace leaves a
    trace — crashes only shrink the enabled set), and has bounded length
    (at most n outputs).  One task per location keeps it task
    deterministic.
    """

    def __init__(
        self,
        locations: Sequence[int],
        values: Sequence[int] = (0, 1),
    ):
        super().__init__("U-consensus")
        self.locations: Tuple[int, ...] = tuple(locations)
        self.values = tuple(values)
        self._signature = Signature(
            inputs=FiniteActionSet(
                tuple(crash_action(i) for i in self.locations)
                + tuple(
                    Action(PROPOSE, i, (v,))
                    for i in self.locations
                    for v in self.values
                )
            ),
            outputs=FiniteActionSet(
                tuple(
                    decide_action(i, v)
                    for i in self.locations
                    for v in self.values
                )
            ),
        )

    @property
    def signature(self) -> Signature:
        return self._signature

    def initial_state(self) -> State:
        # (chosen value or None, decided locations, crashed locations)
        return (None, frozenset(), frozenset())

    def apply(self, state: State, action: Action) -> State:
        chosen, decided, crashed = state
        if is_crash(action):
            return (chosen, decided, crashed | {action.location})
        if action.name == PROPOSE:
            if chosen is None and action.location not in crashed:
                chosen = action.payload[0]
            return (chosen, decided, crashed)
        if action.name == DECIDE:
            return (chosen, decided | {action.location}, crashed)
        return state

    def enabled_locally(self, state: State) -> Iterable[Action]:
        chosen, decided, crashed = state
        if chosen is None:
            return
        for i in self.locations:
            if i not in decided and i not in crashed:
                yield decide_action(i, chosen)

    def tasks(self) -> Sequence[str]:
        return tuple(f"decide[{i}]" for i in self.locations)

    def task_of(self, action: Action) -> Optional[str]:
        if action.name == DECIDE:
            return f"decide[{action.location}]"
        return None

    def enabled_in_task(self, state: State, task: str) -> Tuple[Action, ...]:
        chosen, decided, crashed = state
        if chosen is None:
            return ()
        for i in self.locations:
            if task == f"decide[{i}]":
                if i not in decided and i not in crashed:
                    return (decide_action(i, chosen),)
                return ()
        return ()
