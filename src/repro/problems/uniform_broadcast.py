"""Uniform reliable broadcast (URB): a long-lived crash problem.

The paper's Section 1 cites URB [1, 19] among the problems whose
weakest-failure-detector analyses motivated restricting detectors to
crash information only.  URB is *not* a bounded problem (Section 7.3):
every broadcast spawns deliveries, so no output bound b exists — the
test suite uses it as the counterpoint to consensus/NBAC/TRB.

Actions: inputs ``urb-bcast(m)_i`` (any location may broadcast) and
crashes; outputs ``urb-deliver(m, src)_i``.  Guarantees, checked on
completed finite runs:

* *integrity* — each (src, m) delivered at most once per location, and
  only if src actually broadcast m;
* *validity* — a live broadcaster delivers its own messages;
* *uniform agreement* — if **any** location (even one that subsequently
  crashed) delivers (src, m), every live location delivers it;
* *crash validity* — no deliveries at crashed locations.
"""

from __future__ import annotations

from typing import Dict, Hashable, Sequence, Set, Tuple

from repro.ioa.actions import Action
from repro.core.afd import CheckResult
from repro.core.validity import live_locations
from repro.problems.base import CrashProblem
from repro.system.fault_pattern import is_crash

URB_BCAST = "urb-bcast"
URB_DELIVER = "urb-deliver"


def urb_bcast_action(location: int, message: Hashable) -> Action:
    """The input ``urb-bcast(m)_i``."""
    return Action(URB_BCAST, location, (message,))


def urb_deliver_action(
    location: int, message: Hashable, source: int
) -> Action:
    """The output ``urb-deliver(m, src)_i``."""
    return Action(URB_DELIVER, location, (message, source))


class UniformBroadcastProblem(CrashProblem):
    """The URB specification."""

    def __init__(self, locations: Sequence[int], f: int):
        super().__init__(locations, f"urb(f={f})")
        self.f = f

    def is_input(self, action: Action) -> bool:
        if is_crash(action) and action.location in self.locations:
            return True
        return (
            action.name == URB_BCAST
            and action.location in self.locations
            and len(action.payload) == 1
        )

    def is_output(self, action: Action) -> bool:
        return (
            action.name == URB_DELIVER
            and action.location in self.locations
            and len(action.payload) == 2
            and action.payload[1] in self.locations
        )

    def check_assumptions(self, t: Sequence[Action]) -> CheckResult:
        crashed = {a.location for a in t if is_crash(a)}
        if len(crashed) > self.f:
            return CheckResult.failure(f"more than f = {self.f} crashes")
        seen: Set[Tuple[int, Hashable]] = set()
        for a in t:
            if a.name == URB_BCAST:
                key = (a.location, a.payload[0])
                if key in seen:
                    return CheckResult.failure(
                        f"location {a.location} broadcast "
                        f"{a.payload[0]!r} twice"
                    )
                seen.add(key)
        return CheckResult.success()

    def check_guarantees(self, t: Sequence[Action]) -> CheckResult:
        broadcasts: Set[Tuple[int, Hashable]] = set()
        deliveries: Dict[Tuple[int, Hashable], Set[int]] = {}
        crashed: Set[int] = set()
        for k, a in enumerate(t):
            if is_crash(a):
                crashed.add(a.location)
            elif a.name == URB_BCAST:
                broadcasts.add((a.location, a.payload[0]))
            elif a.name == URB_DELIVER:
                message, source = a.payload
                key = (source, message)
                if a.location in crashed:
                    return CheckResult.failure(
                        f"delivery at crashed location {a.location} "
                        f"(index {k})"
                    )
                if key not in broadcasts:
                    return CheckResult.failure(
                        f"delivered {message!r} from {source}, which was "
                        "never broadcast (integrity)"
                    )
                receivers = deliveries.setdefault(key, set())
                if a.location in receivers:
                    return CheckResult.failure(
                        f"location {a.location} delivered {key} twice "
                        "(integrity)"
                    )
                receivers.add(a.location)
        live = live_locations(t, self.locations)
        # Validity: live broadcasters deliver their own messages.
        for (source, message) in broadcasts:
            if source in live and source not in deliveries.get(
                (source, message), set()
            ):
                return CheckResult.failure(
                    f"live broadcaster {source} never delivered its own "
                    f"message {message!r} (validity)"
                )
        # Uniform agreement: anyone delivered => all live delivered.
        for key, receivers in deliveries.items():
            missing = live - receivers
            if receivers and missing:
                return CheckResult.failure(
                    f"{key} was delivered by {sorted(receivers)} but not "
                    f"by live location(s) {sorted(missing)} "
                    "(uniform agreement)"
                )
        return CheckResult.success()
