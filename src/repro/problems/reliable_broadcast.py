"""Terminating reliable broadcast (TRB) for a designated sender.

Inputs: ``bcast(m)_s`` at the sender s and crashes; outputs
``deliver(x)_i`` where x is a message or the placeholder ``SILENT``.
Guarantees:

* *termination* — every live location delivers exactly one value;
* *agreement* — all deliveries carry the same value;
* *validity* — if the sender is live and broadcasts m, the delivered
  value is m; SILENT may be delivered only if the sender is faulty;
* *crash validity* — no delivery at a crashed location.

TRB appears in the paper's list of bounded problems (Section 7.3).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set

from repro.ioa.actions import Action
from repro.core.afd import CheckResult
from repro.core.validity import faulty_locations, live_locations
from repro.problems.base import CrashProblem
from repro.system.fault_pattern import is_crash

BCAST = "bcast"
DELIVER = "deliver"
SILENT = "<silent>"


def bcast_action(sender: int, message) -> Action:
    return Action(BCAST, sender, (message,))


def deliver_action(location: int, value) -> Action:
    return Action(DELIVER, location, (value,))


class ReliableBroadcastProblem(CrashProblem):
    """The TRB specification for a designated sender."""

    def __init__(self, locations: Sequence[int], sender: int, f: int):
        if sender not in locations:
            raise ValueError(f"sender {sender} not among {locations}")
        super().__init__(locations, f"trb(sender={sender},f={f})")
        self.sender = sender
        self.f = f

    def is_input(self, action: Action) -> bool:
        if is_crash(action) and action.location in self.locations:
            return True
        return action.name == BCAST and action.location == self.sender

    def is_output(self, action: Action) -> bool:
        return (
            action.name == DELIVER and action.location in self.locations
        )

    def check_assumptions(self, t: Sequence[Action]) -> CheckResult:
        if len(faulty_locations(t)) > self.f:
            return CheckResult.failure(f"more than f = {self.f} crashes")
        bcasts = [a for a in t if a.name == BCAST]
        if len(bcasts) > 1:
            return CheckResult.failure("sender broadcast more than once")
        if self.sender in live_locations(t, self.locations) and not bcasts:
            return CheckResult.failure("live sender never broadcast")
        return CheckResult.success()

    def check_guarantees(self, t: Sequence[Action]) -> CheckResult:
        broadcast: Optional[object] = None
        deliveries: Dict[int, object] = {}
        crashed: Set[int] = set()
        for k, a in enumerate(t):
            if is_crash(a):
                crashed.add(a.location)
            elif a.name == BCAST:
                broadcast = a.payload[0]
            elif a.name == DELIVER:
                if a.location in crashed:
                    return CheckResult.failure(
                        f"delivery at crashed location {a.location} "
                        f"(index {k})"
                    )
                if a.location in deliveries:
                    return CheckResult.failure(
                        f"second delivery at location {a.location} "
                        f"(index {k})"
                    )
                deliveries[a.location] = a.payload[0]
        values = set(deliveries.values())
        if len(values) > 1:
            return CheckResult.failure(
                f"conflicting deliveries: {sorted(map(str, values))}"
            )
        sender_live = self.sender in live_locations(t, self.locations)
        if values:
            value = next(iter(values))
            if value == SILENT and sender_live:
                return CheckResult.failure(
                    "delivered SILENT although the sender is live"
                )
            if value != SILENT and broadcast is not None and value != broadcast:
                return CheckResult.failure(
                    f"delivered {value!r} but the sender broadcast "
                    f"{broadcast!r}"
                )
            if value != SILENT and broadcast is None:
                return CheckResult.failure(
                    f"delivered {value!r} but nothing was broadcast"
                )
        for i in live_locations(t, self.locations):
            if i not in deliveries:
                return CheckResult.failure(
                    f"live location {i} never delivered"
                )
        return CheckResult.success()
