"""Crash problems (Section 3.1) and their specifications.

Each module defines a problem as executable trace checkers over the
problem's action vocabulary, plus (where the bounded-problem analysis of
Section 7.3 needs one) a centralized witness automaton U that solves the
problem, is crash independent, and has bounded length.
"""

from repro.problems.base import CrashProblem
from repro.problems.consensus import (
    CentralizedConsensusSolver,
    ConsensusProblem,
)
from repro.problems.kset_agreement import KSetAgreementProblem
from repro.problems.leader_election import LeaderElectionProblem
from repro.problems.atomic_commit import AtomicCommitProblem
from repro.problems.reliable_broadcast import ReliableBroadcastProblem
from repro.problems.uniform_broadcast import (
    UniformBroadcastProblem,
    urb_bcast_action,
    urb_deliver_action,
)
from repro.problems.bounded import (
    BoundedProblemAnalysis,
    check_bounded_length,
    check_crash_independence,
    find_quiescent_execution,
    strip_crash_events,
)

__all__ = [
    "CrashProblem",
    "CentralizedConsensusSolver",
    "ConsensusProblem",
    "KSetAgreementProblem",
    "LeaderElectionProblem",
    "AtomicCommitProblem",
    "ReliableBroadcastProblem",
    "UniformBroadcastProblem",
    "urb_bcast_action",
    "urb_deliver_action",
    "BoundedProblemAnalysis",
    "check_bounded_length",
    "check_crash_independence",
    "find_quiescent_execution",
    "strip_crash_events",
]
