"""Non-blocking atomic commit (NBAC): a bounded problem (Section 7.3).

Inputs: ``vote(yes|no)_i`` and crashes; outputs ``commit_i`` / ``abort_i``.
Guarantees:

* *agreement* — no location commits while another aborts;
* *commit-validity* — commit only if every location voted yes;
* *abort-validity* — abort only if some location voted no or crashed;
* *termination* — every live location outputs exactly one verdict;
* *crash validity* — no verdict at a crashed location.

The weakest failure detector for NBAC is studied in [17, 18]; the paper
cites NBAC as a problem whose weakest-detector story motivated restricting
attention to detectors that convey information about crashes alone.
"""

from __future__ import annotations

from typing import Dict, Sequence, Set

from repro.ioa.actions import Action
from repro.core.afd import CheckResult
from repro.core.validity import faulty_locations, live_locations
from repro.problems.base import CrashProblem
from repro.system.fault_pattern import is_crash

VOTE = "vote"
COMMIT = "commit"
ABORT = "abort"

YES = 1
NO = 0


def vote_action(location: int, vote: int) -> Action:
    """The input ``vote(v)_i`` with v in {YES, NO}."""
    return Action(VOTE, location, (vote,))


def commit_action(location: int) -> Action:
    return Action(COMMIT, location)


def abort_action(location: int) -> Action:
    return Action(ABORT, location)


class AtomicCommitProblem(CrashProblem):
    """The NBAC specification."""

    def __init__(self, locations: Sequence[int], f: int):
        super().__init__(locations, f"nbac(f={f})")
        self.f = f

    def is_input(self, action: Action) -> bool:
        if is_crash(action) and action.location in self.locations:
            return True
        return (
            action.name == VOTE
            and action.location in self.locations
            and len(action.payload) == 1
            and action.payload[0] in (YES, NO)
        )

    def is_output(self, action: Action) -> bool:
        return (
            action.name in (COMMIT, ABORT)
            and action.location in self.locations
        )

    def check_assumptions(self, t: Sequence[Action]) -> CheckResult:
        if len(faulty_locations(t)) > self.f:
            return CheckResult.failure(
                f"more than f = {self.f} crashes"
            )
        votes: Dict[int, int] = {}
        for a in t:
            if a.name == VOTE:
                if a.location in votes:
                    return CheckResult.failure(
                        f"location {a.location} voted twice"
                    )
                votes[a.location] = a.payload[0]
        for i in live_locations(t, self.locations):
            if i not in votes:
                return CheckResult.failure(f"live location {i} never voted")
        return CheckResult.success()

    def check_guarantees(self, t: Sequence[Action]) -> CheckResult:
        votes: Dict[int, int] = {}
        verdicts: Dict[int, str] = {}
        crashed: Set[int] = set()
        for k, a in enumerate(t):
            if is_crash(a):
                crashed.add(a.location)
            elif a.name == VOTE:
                votes.setdefault(a.location, a.payload[0])
            elif a.name in (COMMIT, ABORT):
                if a.location in crashed:
                    return CheckResult.failure(
                        f"verdict at crashed location {a.location} "
                        f"(index {k})"
                    )
                if a.location in verdicts:
                    return CheckResult.failure(
                        f"second verdict at location {a.location} (index {k})"
                    )
                verdicts[a.location] = a.name
        kinds = set(verdicts.values())
        if len(kinds) > 1:
            return CheckResult.failure(
                f"some locations commit while others abort: {verdicts}"
            )
        if kinds == {COMMIT}:
            non_yes = [i for i in self.locations if votes.get(i) != YES]
            if non_yes:
                return CheckResult.failure(
                    f"commit although locations {non_yes} did not vote yes"
                )
        if kinds == {ABORT}:
            some_no = any(v == NO for v in votes.values())
            some_crash = bool(crashed)
            if not (some_no or some_crash):
                return CheckResult.failure(
                    "abort although all locations voted yes and none crashed"
                )
        for i in live_locations(t, self.locations):
            if i not in verdicts:
                return CheckResult.failure(
                    f"live location {i} never output a verdict"
                )
        return CheckResult.success()
