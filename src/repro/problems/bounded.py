"""Bounded problems and the constructions of Theorem 21 (Sections 7.3–7.4).

A crash problem P is *bounded* iff some automaton U solves P, is *crash
independent* (deleting the crash events from any finite trace leaves a
trace of U) and has *bounded length* (at most b output events in any
trace).  Theorem 21: a bounded problem that is unsolvable in E has no
representative AFD in E.

The proof is a chain of constructions on concrete executions, and this
module makes each executable:

* :func:`check_bounded_length` — Proposition 22's ingredient: every run of
  U has at most b outputs;
* :func:`check_crash_independence` — strip the crash events from a run of
  U and replay the remainder; it must still be applicable;
* :func:`find_quiescent_execution` — Lemma 23: extend a finished run by
  delivering every in-transit message, reaching a state with empty
  channels after which no problem outputs occur;
* :func:`strip_crash_events` + replay — Lemma 24: the crash-free variant
  of the quiescent execution is itself an execution with the same
  no-more-outputs property.

Experiment E15 drives these against the consensus witness automaton and a
full distributed system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton, State
from repro.ioa.executions import Execution, apply_schedule
from repro.ioa.scheduler import (
    Injection,
    RoundRobinPolicy,
    Scheduler,
    SchedulerPolicy,
)
from repro.core.afd import CheckResult
from repro.system.fault_pattern import is_crash


def strip_crash_events(actions: Sequence[Action]) -> List[Action]:
    """Delete exactly the crash events (the t_0 of Lemma 24)."""
    return [a for a in actions if not is_crash(a)]


def check_bounded_length(
    automaton: Automaton,
    is_output: Callable[[Action], bool],
    bound: int,
    runs: Iterable[Tuple[int, Sequence[Injection]]],
) -> CheckResult:
    """Run ``automaton`` under each (max_steps, injections) scenario and
    verify no run exceeds ``bound`` output events."""
    for k, (max_steps, injections) in enumerate(runs):
        scheduler = Scheduler()
        execution = scheduler.run(
            automaton, max_steps=max_steps, injections=injections
        )
        outputs = [a for a in execution.actions if is_output(a)]
        if len(outputs) > bound:
            return CheckResult.failure(
                f"run #{k} produced {len(outputs)} outputs, bound is {bound}"
            )
    return CheckResult.success()


def check_crash_independence(
    automaton: Automaton, execution: Execution
) -> CheckResult:
    """Replay the execution's schedule with crash events deleted.

    Crash independence demands the crash-free schedule be applicable to
    the automaton from its initial state.
    """
    stripped = strip_crash_events(execution.actions)
    try:
        apply_schedule(automaton, stripped)
    except ValueError as error:
        return CheckResult.failure(
            f"crash-free replay failed: {error}"
        )
    return CheckResult.success()


class MaskedRoundRobinPolicy(SchedulerPolicy):
    """Round-robin over the tasks for which ``allowed(task)`` holds.

    Used to quiesce a system 'modulo' components that never stop (the
    failure-detector automaton keeps outputting forever; Lemma 23 only
    needs the algorithm-and-channel part to drain)."""

    def __init__(self, allowed: Callable[[str], bool]):
        self._allowed = allowed
        self._inner = RoundRobinPolicy()

    def reset(self) -> None:
        self._inner.reset()

    def choose(self, automaton, state, step):
        tasks = [t for t in automaton.tasks() if self._allowed(t)]
        if not tasks:
            return None
        n = len(tasks)
        for offset in range(n):
            task = tasks[(self._inner._cursor + offset) % n]
            enabled = automaton.enabled_in_task(state, task)
            if enabled:
                self._inner._cursor = (
                    self._inner._cursor + offset + 1
                ) % n
                return min(enabled)
        return None


@dataclass
class QuiescenceReport:
    """The result of the Lemma 23 construction on a concrete run."""

    execution: Execution
    quiescent: bool
    channels_empty: bool
    outputs_before: int
    outputs_in_probe: int

    @property
    def lemma23_holds(self) -> bool:
        """Quiescent final state, empty channels, and the probe extension
        produced no further problem outputs."""
        return (
            self.quiescent
            and self.channels_empty
            and self.outputs_in_probe == 0
        )


def find_quiescent_execution(
    composition: Automaton,
    is_output: Callable[[Action], bool],
    injections: Sequence[Injection] = (),
    max_steps: int = 3000,
    probe_steps: int = 300,
    allowed_task: Optional[Callable[[str], bool]] = None,
    channels_empty: Optional[Callable[[State], bool]] = None,
    settle_when: Optional[Callable[[State, int], bool]] = None,
) -> QuiescenceReport:
    """Lemma 23, executably, in two phases.

    Phase 1 (only when ``settle_when`` is given): run the *full* system —
    failure detector included — until ``settle_when(state, step)`` holds;
    this reproduces Proposition 22's maximal-output execution alpha_f.
    Phase 2: continue under a scheduler masked to ``allowed_task`` (which
    excludes never-quiescing components such as detectors) until nothing
    allowed is enabled — the message-draining extension to alpha_q.
    Finally, probe with the full scheduler and count problem outputs:
    Lemma 23 claims the probe finds none.
    """
    allowed = allowed_task if allowed_task is not None else (lambda _t: True)
    start_state = None
    prefix = None
    if settle_when is not None:
        full_scheduler = Scheduler()
        prefix = full_scheduler.run(
            composition,
            max_steps=max_steps,
            injections=injections,
            stop_when=settle_when,
        )
        start_state = prefix.final_state
        injections = ()
    scheduler = Scheduler(MaskedRoundRobinPolicy(allowed))
    execution = scheduler.run(
        composition,
        max_steps=max_steps,
        injections=injections,
        start=start_state,
    )
    if prefix is not None:
        execution = prefix.concat(execution)
    final = execution.final_state
    still_enabled = [
        t
        for t in composition.tasks()
        if allowed(t) and composition.task_enabled(final, t)
    ]
    quiescent = not still_enabled
    empty = channels_empty(final) if channels_empty is not None else True
    # Probe: extend with the full (unmasked) scheduler and count outputs.
    probe_scheduler = Scheduler()
    probe = probe_scheduler.run(
        composition, max_steps=probe_steps, start=final
    )
    return QuiescenceReport(
        execution=execution,
        quiescent=quiescent,
        channels_empty=empty,
        outputs_before=sum(1 for a in execution.actions if is_output(a)),
        outputs_in_probe=sum(1 for a in probe.actions if is_output(a)),
    )


@dataclass
class BoundedProblemAnalysis:
    """Bundles the Theorem 21 ingredient checks for one witness automaton.

    Parameters
    ----------
    automaton:
        The candidate witness U.
    is_output:
        Membership predicate for O_P.
    bound:
        The claimed output bound b.
    """

    automaton: Automaton
    is_output: Callable[[Action], bool]
    bound: int

    def verify(
        self,
        runs: Iterable[Tuple[int, Sequence[Injection]]],
    ) -> CheckResult:
        """Check bounded length across ``runs`` and crash independence on
        each of them."""
        runs = list(runs)
        result = check_bounded_length(
            self.automaton, self.is_output, self.bound, runs
        )
        if not result:
            return result
        for max_steps, injections in runs:
            execution = Scheduler().run(
                self.automaton, max_steps=max_steps, injections=injections
            )
            sub = check_crash_independence(self.automaton, execution)
            if not sub:
                return sub
        return CheckResult.success()
