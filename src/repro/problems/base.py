"""Problems, distributed problems, and crash problems (Section 3.1).

A problem P is a triple (I_P, O_P, T_P) of input actions, output actions
and admissible traces, with the *solvability* requirement that some
automaton with that signature has all its fair traces inside T_P.  A crash
problem additionally has every ``crash_i`` among its inputs.

Concretely a :class:`CrashProblem` carries membership predicates for I_P
and O_P and a trace checker for T_P (evaluated on completed finite runs,
like the AFD checkers).  The conditional shape shared by the paper's
specifications — "if the trace satisfies the environment assumptions, then
it satisfies the guarantees" — is captured by
:meth:`CrashProblem.check_conditional`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Sequence, Tuple

from repro.ioa.actions import Action
from repro.core.afd import CheckResult
from repro.system.fault_pattern import is_crash


class CrashProblem(ABC):
    """Base class for crash-problem specifications."""

    def __init__(self, locations: Sequence[int], name: str):
        self.locations: Tuple[int, ...] = tuple(locations)
        self.name = name

    # -- Vocabulary ---------------------------------------------------------

    @abstractmethod
    def is_input(self, action: Action) -> bool:
        """Whether ``action`` is in I_P (crash actions always are)."""

    @abstractmethod
    def is_output(self, action: Action) -> bool:
        """Whether ``action`` is in O_P."""

    def is_event(self, action: Action) -> bool:
        return self.is_input(action) or self.is_output(action)

    def project_events(self, t: Sequence[Action]) -> List[Action]:
        """``t | (I_P ∪ O_P)``."""
        return [a for a in t if self.is_event(a)]

    # -- Membership ------------------------------------------------------------

    @abstractmethod
    def check_assumptions(self, t: Sequence[Action]) -> CheckResult:
        """The spec's environment-side preconditions (e.g. environment
        well-formedness, f-crash limitation for consensus)."""

    @abstractmethod
    def check_guarantees(self, t: Sequence[Action]) -> CheckResult:
        """The spec's guarantees (e.g. agreement, validity, termination)."""

    def check_conditional(self, t: Sequence[Action]) -> CheckResult:
        """Membership in T_P for conditionally-specified problems: if the
        assumptions hold, the guarantees must; otherwise anything goes."""
        assumptions = self.check_assumptions(t)
        if not assumptions.ok:
            return CheckResult.success()
        return self.check_guarantees(t)

    def __repr__(self) -> str:
        return f"<CrashProblem {self.name} over {self.locations}>"


def crashes_in(t: Sequence[Action]) -> List[Action]:
    """The crash events of a trace."""
    return [a for a in t if is_crash(a)]
