"""Terminating leader election: a bounded problem (Section 7.3).

Each location outputs at most one ``leader(l)_i`` event; live locations
output exactly one; all outputs name the same location; no location
announces after crashing.  Validity is the classic one-shot form: the
elected location must not have been crashed *from the very start* (its
crash, if any, must not precede every other event) — a process that
participates and then crashes mid-protocol may legitimately win, exactly
as a consensus-based election can decide a proposer that crashed after
proposing.  (Electing a *live* leader repeatedly is the job of the Omega
AFD, not of the one-shot problem.)
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set

from repro.ioa.actions import Action
from repro.core.afd import CheckResult
from repro.core.validity import live_locations
from repro.problems.base import CrashProblem
from repro.system.fault_pattern import is_crash

LEADER = "leader"


def leader_action(location: int, leader: int) -> Action:
    """The output ``leader(l)_i``."""
    return Action(LEADER, location, (leader,))


class LeaderElectionProblem(CrashProblem):
    """The terminating-leader-election specification."""

    def __init__(self, locations: Sequence[int], f: int):
        super().__init__(locations, f"leader-election(f={f})")
        self.f = f

    def is_input(self, action: Action) -> bool:
        return is_crash(action) and action.location in self.locations

    def is_output(self, action: Action) -> bool:
        return (
            action.name == LEADER
            and action.location in self.locations
            and len(action.payload) == 1
            and action.payload[0] in self.locations
        )

    def check_assumptions(self, t: Sequence[Action]) -> CheckResult:
        faulty = {a.location for a in t if is_crash(a)}
        if len(faulty) > self.f:
            return CheckResult.failure(
                f"{len(faulty)} crashes exceed f = {self.f}"
            )
        return CheckResult.success()

    def check_guarantees(self, t: Sequence[Action]) -> CheckResult:
        counts: Dict[int, int] = {}
        named: Set[int] = set()
        crashed: Set[int] = set()
        # Validity: the winner must not have been dead from the start.
        initially_dead: Set[int] = set()
        for a in t:
            if is_crash(a):
                initially_dead.add(a.location)
            else:
                break
        for k, a in enumerate(t):
            if is_crash(a):
                crashed.add(a.location)
            elif a.name == LEADER:
                counts[a.location] = counts.get(a.location, 0) + 1
                named.add(a.payload[0])
                if a.payload[0] in initially_dead:
                    return CheckResult.failure(
                        f"elected {a.payload[0]}, which was crashed "
                        "before any other event occurred"
                    )
                if a.location in crashed:
                    return CheckResult.failure(
                        f"election output at crashed location "
                        f"{a.location} (index {k})"
                    )
        if len(named) > 1:
            return CheckResult.failure(
                f"conflicting leaders elected: {sorted(named)}"
            )
        for i, c in counts.items():
            if c > 1:
                return CheckResult.failure(f"location {i} elected {c} times")
        for i in live_locations(t, self.locations):
            if counts.get(i, 0) != 1:
                return CheckResult.failure(
                    f"live location {i} never elected a leader"
                )
        return CheckResult.success()
