"""Content-addressed result caching and sharded sweep execution.

Two layers over the experiment engine's determinism contract:

:mod:`repro.cache.store`
    :class:`ResultStore` — an on-disk store of pickled
    ``ExperimentResult`` objects keyed by the SHA-256 of the spec
    fingerprint (the run ledger's key), with integrity digests, atomic
    writes, and automatic version/engine invalidation.  Wired into the
    engine as ``BatchRunner(cache=...)``: a batch partitions into
    hits/misses, executes only the misses, and reassembles in spec
    order.
:mod:`repro.cache.shard`
    :func:`shard_manifest` / :func:`run_sharded` — deterministic shard
    partitions of a sweep and worker processes that each pull a shard
    and share one store, the single-machine form of the multi-machine
    work-queue backend.

The byte-identity contract's third leg lives here: cached-vs-recomputed
results are byte-identical (``tests/cache/``, CI job ``cache-smoke``),
alongside the existing serial-vs-parallel and interpreted-vs-compiled
legs.  See ``docs/CACHE.md``.
"""

from repro.cache.shard import (
    SHARD_SCHEMA,
    ShardManifest,
    run_sharded,
    shard_manifest,
)
from repro.cache.store import (
    CACHE_SCHEMA,
    ENGINE_REVISION,
    ResultStore,
    cacheable,
)

__all__ = [
    "CACHE_SCHEMA",
    "ENGINE_REVISION",
    "ResultStore",
    "SHARD_SCHEMA",
    "ShardManifest",
    "cacheable",
    "run_sharded",
    "shard_manifest",
]
