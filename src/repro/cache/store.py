"""The content-addressed result store: never run the same spec twice.

The atlas/chaos workloads are "millions of runs" sweeps, and every run
is a pure function of its :class:`~repro.runner.spec.ExperimentSpec`
(the engine's determinism contract).  That makes results cacheable by
*content address*: the store keys each
:class:`~repro.runner.spec.ExperimentResult` by
``sha256(canonical_json(spec_fingerprint(spec)))`` — exactly the key the
run ledger (:mod:`repro.obs.ledger`) already records — so a re-run, a
CI sweep, or another worker machine sharing the store directory only
executes cells it has never seen.

Store layout (``docs/CACHE.md``)::

    STORE_DIR/
      objects/<hh>/<64-hex>.pkl    # hh = first two hex digits of the key

Each object file is the pickle of one *entry* dict::

    {"schema": "repro.cache/1",
     "key": "sha256:<hex>",          # digest of the identity below
     "identity": {...},              # the canonical JSON-ready preimage
     "repro_version": "1.6.0",
     "engine": "step-loop/1",
     "payload_sha256": "sha256:<hex>",  # digest of the payload bytes
     "payload": b"..."}              # the pickled result, verbatim

``payload_sha256`` is the integrity digest: a torn write, bit rot, or a
hand-edited file reads back as a *miss* (and is evicted), never as a
silently wrong result.  Entries are written atomically (temp file +
``os.replace``), so any number of worker processes — or machines over a
shared filesystem — can populate one store concurrently.

Invalidation is spec-level and automatic:

* the key *is* the spec fingerprint, so changing any behavior-determining
  field (seed, detector kwargs, fault plan, step budget, ...) is a new
  cell;
* entries record the library version and the engine revision that
  produced them; a store read by a different ``repro_version`` (or after
  an intentional :data:`ENGINE_REVISION` bump) treats the stale entries
  as misses and evicts them.

Hit/miss/evict traffic flows through the existing cache telemetry
(:func:`repro.obs.prof.cache_counter`, name ``store.results``), so
profiles and ledgers report store behavior exactly like the hot-path
memos.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from typing import Any, Dict, List, Optional

from repro import __version__
from repro.obs.ledger import digest, spec_digest, spec_fingerprint
from repro.obs.prof import CacheCounter, cache_counter

#: The store entry schema identifier.
CACHE_SCHEMA = "repro.cache/1"

#: The execution-engine revision recorded in every entry.  Bump this
#: when an engine change is *intended* to produce different results for
#: unchanged specs (it never has so far: the compiled and interpreted
#: engines are byte-identical twins, which is why the engine tag is one
#: revision string rather than an engine name).
ENGINE_REVISION = "step-loop/1"

#: The telemetry name store probes are booked under.
STORE_COUNTER = "store.results"


def cacheable(spec: Any) -> bool:
    """Whether ``spec``'s result may be served from / stored in a cache.

    Spec fingerprints deliberately exclude instrumentation flags (tracing
    and profiling never change executions), so an instrumented spec and
    its plain twin share a key.  Serving a plain cached result to a run
    that asked for a trace/profile would silently drop the requested
    observability — instrumented specs therefore bypass the cache in
    both directions and always execute.
    """
    return not (
        getattr(spec, "instrument", False)
        or getattr(spec, "profile", False)
        or getattr(spec, "record_steps", False)
    )


class ResultStore:
    """An on-disk content-addressed store of pickled experiment results.

    Parameters
    ----------
    root:
        The store directory; created lazily on first write.
    repro_version / engine:
        The provenance pair stamped into written entries and demanded of
        read ones (defaults: the library's ``__version__`` and
        :data:`ENGINE_REVISION`).  A mismatched entry reads as a miss
        and is evicted — stale results never leak across versions.

    Examples
    --------
    >>> import tempfile
    >>> from repro.runner import ExperimentSpec
    >>> spec = ExperimentSpec(detector="omega", locations=(0, 1, 2),
    ...                       problem="detector-trace", max_steps=40)
    >>> store = ResultStore(tempfile.mkdtemp())
    >>> store.get(spec) is None
    True
    >>> key = store.put(spec, spec.run())
    >>> store.get(spec).fd_ok
    True
    """

    def __init__(
        self,
        root: str,
        repro_version: Optional[str] = None,
        engine: str = ENGINE_REVISION,
    ):
        self.root = str(root)
        self.repro_version = repro_version or __version__
        self.engine = engine
        self.counter: CacheCounter = cache_counter(STORE_COUNTER)

    # -- Layout -----------------------------------------------------------

    def object_path(self, key: str) -> str:
        """The object file holding ``key`` (``sha256:<hex>``)."""
        hexdigest = key.split(":", 1)[1]
        return os.path.join(
            self.root, "objects", hexdigest[:2], hexdigest + ".pkl"
        )

    def key_for(self, spec: Any) -> str:
        """The content address of one spec: ``digest(spec_fingerprint(spec))``."""
        return spec_digest(spec)

    # -- Generic object layer --------------------------------------------

    def put_object(self, identity: Dict[str, Any], payload: Any) -> str:
        """Store ``payload`` under ``digest(identity)``; returns the key.

        ``identity`` must be the canonical JSON-ready preimage of the
        key (a spec fingerprint, a bench identity, ...).  The write is
        atomic: concurrent writers of the same key are safe, last writer
        wins with identical content by construction.
        """
        key = digest(identity)
        payload_bytes = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        entry = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "identity": identity,
            "repro_version": self.repro_version,
            "engine": self.engine,
            "payload_sha256": "sha256:"
            + hashlib.sha256(payload_bytes).hexdigest(),
            "payload": payload_bytes,
        }
        path = self.object_path(key)
        parent = os.path.dirname(path)
        os.makedirs(parent, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fp:
                fp.write(pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL))
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return key

    def get_object(self, key: str) -> Optional[Any]:
        """The payload stored under ``key``, or ``None`` (a miss).

        Every probe is booked on the ``store.results`` cache counter.
        Corrupted, stale-version, and stale-engine entries are evicted
        (deleted and counted) and read as misses — the store self-heals
        rather than serving doubtful bytes.
        """
        entry = self._load_entry(key)
        if entry is None:
            self.counter.misses += 1
            return None
        problems = self._entry_problems(key, entry)
        if problems:
            self._evict(key)
            self.counter.misses += 1
            return None
        self.counter.hits += 1
        return pickle.loads(entry["payload"])

    def has(self, key: str) -> bool:
        """Whether ``key`` resolves to a valid, current entry (no
        counter traffic, no eviction)."""
        entry = self._load_entry(key)
        return entry is not None and not self._entry_problems(key, entry)

    # -- Spec layer -------------------------------------------------------

    def put(self, spec: Any, result: Any) -> str:
        """Store one executed spec's result; returns its key."""
        return self.put_object(spec_fingerprint(spec), result)

    def get(self, spec: Any) -> Optional[Any]:
        """The cached :class:`ExperimentResult` for ``spec``, or ``None``."""
        return self.get_object(self.key_for(spec))

    # -- Maintenance ------------------------------------------------------

    def keys(self) -> List[str]:
        """Every stored key, sorted (valid or not — see :meth:`verify`)."""
        objects = os.path.join(self.root, "objects")
        found: List[str] = []
        try:
            prefixes = sorted(os.listdir(objects))
        except OSError:
            return []
        for prefix in prefixes:
            bucket = os.path.join(objects, prefix)
            try:
                names = sorted(os.listdir(bucket))
            except OSError:
                continue
            found.extend(
                "sha256:" + name[: -len(".pkl")]
                for name in names
                if name.endswith(".pkl")
            )
        return found

    def __len__(self) -> int:
        return len(self.keys())

    def verify(self) -> List[str]:
        """Integrity problems across the whole store (empty == clean).

        Unlike :meth:`get_object`, verification neither evicts nor
        counts — it is the inspection tool, not the read path.
        """
        problems: List[str] = []
        for key in self.keys():
            entry = self._load_entry(key)
            if entry is None:
                problems.append(f"{key}: unreadable object file")
                continue
            problems.extend(
                f"{key}: {problem}"
                for problem in self._entry_problems(key, entry)
            )
        return problems

    def stats(self) -> Dict[str, Any]:
        """The process-wide ``store.results`` counter as a dict."""
        return self.counter.as_dict()

    # -- Internals --------------------------------------------------------

    def _load_entry(self, key: str) -> Optional[Dict[str, Any]]:
        try:
            with open(self.object_path(key), "rb") as fp:
                entry = pickle.load(fp)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            return None
        return entry if isinstance(entry, dict) else None

    def _entry_problems(self, key: str, entry: Dict[str, Any]) -> List[str]:
        problems: List[str] = []
        if entry.get("schema") != CACHE_SCHEMA:
            problems.append(
                f"unknown schema {entry.get('schema')!r} "
                f"(expected {CACHE_SCHEMA!r})"
            )
            return problems
        if entry.get("repro_version") != self.repro_version:
            problems.append(
                f"stale repro_version {entry.get('repro_version')!r} "
                f"(store reader is {self.repro_version!r})"
            )
        if entry.get("engine") != self.engine:
            problems.append(
                f"stale engine {entry.get('engine')!r} "
                f"(store reader is {self.engine!r})"
            )
        identity = entry.get("identity")
        if not isinstance(identity, dict) or digest(identity) != key:
            problems.append("identity does not hash to the object's key")
        payload = entry.get("payload")
        if not isinstance(payload, bytes):
            problems.append("payload missing or not bytes")
        else:
            actual = "sha256:" + hashlib.sha256(payload).hexdigest()
            if actual != entry.get("payload_sha256"):
                problems.append(
                    "payload bytes do not match the integrity digest "
                    "(torn write or corruption)"
                )
        return problems

    def _evict(self, key: str) -> None:
        try:
            os.unlink(self.object_path(key))
        except OSError:
            return
        self.counter.evictions += 1
