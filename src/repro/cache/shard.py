"""Sharded sweep execution: worker processes pulling shards of one sweep.

:class:`~repro.runner.batch.BatchRunner` fans *runs* over a pool, which
is the right grain for one machine.  The atlas-scale sweeps want a
coarser unit that can also cross machines: a **shard manifest** — a
deterministic partition of a sweep's specs into N shards, each named by
the content addresses of its cells — and workers that each pull one
shard, probe the shared :class:`~repro.cache.store.ResultStore` for
cells some other worker (or an earlier sweep) already produced, execute
only the misses, and publish results back into the store.  The manifest
is plain canonical JSON (schema ``repro.shard/1``), so a future
multi-machine dispatcher only has to hand out shard indices.

Determinism: shard ``k`` of ``n`` owns spec indices ``k, k+n, k+2n, ...``
(round-robin in spec order), a pure function of the spec list, so every
process — and every machine — derives the identical manifest from the
identical sweep.  Results are reassembled in spec order, and the hard
byte-identity contract extends to this path: serial, fork-pool, sharded
cold, and sharded warm runs all produce the same rows
(``tests/cache/test_shard.py``).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cache.store import ResultStore, cacheable
from repro.obs.ledger import canonical_json, spec_digest
from repro.runner.batch import BatchResult, parallel_map
from repro.runner.spec import ExperimentResult, ExperimentSpec

#: The shard manifest schema identifier.
SHARD_SCHEMA = "repro.shard/1"


@dataclass(frozen=True)
class ShardManifest:
    """A deterministic partition of one sweep into worker-sized shards.

    ``keys[i]`` is the content address of spec ``i`` (the store key);
    ``assignment[s]`` lists the spec indices shard ``s`` owns.  The
    manifest never contains the specs themselves — it is the *dispatch*
    document; workers are handed the picklable specs separately (same
    process group) or rebuild them from the sweep definition (future
    multi-machine backends).
    """

    total: int
    keys: Tuple[str, ...]
    assignment: Tuple[Tuple[int, ...], ...]

    @property
    def shard_count(self) -> int:
        return len(self.assignment)

    def to_doc(self) -> Dict[str, Any]:
        """The canonical JSON-ready manifest document."""
        return {
            "schema": SHARD_SCHEMA,
            "total": self.total,
            "shard_count": self.shard_count,
            "keys": list(self.keys),
            "shards": [
                {
                    "index": index,
                    "specs": list(indices),
                    "keys": [self.keys[i] for i in indices],
                }
                for index, indices in enumerate(self.assignment)
            ],
        }

    def write(self, path: str) -> str:
        """Persist the manifest as canonical JSON; returns ``path``."""
        with open(path, "w", encoding="utf-8") as fp:
            fp.write(canonical_json(self.to_doc()) + "\n")
        return path

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "ShardManifest":
        if doc.get("schema") != SHARD_SCHEMA:
            raise ValueError(
                f"unknown shard manifest schema {doc.get('schema')!r} "
                f"(expected {SHARD_SCHEMA!r})"
            )
        return cls(
            total=int(doc["total"]),
            keys=tuple(doc["keys"]),
            assignment=tuple(
                tuple(shard["specs"]) for shard in doc["shards"]
            ),
        )

    @classmethod
    def load(cls, path: str) -> "ShardManifest":
        with open(path, "r", encoding="utf-8") as fp:
            return cls.from_doc(json.load(fp))


def shard_manifest(
    specs: Sequence[ExperimentSpec], shards: int
) -> ShardManifest:
    """Split ``specs`` into ``shards`` deterministic round-robin shards.

    Every spec index lands in exactly one shard (``i -> i mod shards``),
    the partition is a pure function of the spec list, and shard sizes
    differ by at most one.  ``shards`` is clamped to the spec count so
    no shard is empty (a 3-run sweep over 8 workers yields 3 shards).
    """
    specs = list(specs)
    if shards <= 0:
        raise ValueError(f"shards must be positive, got {shards}")
    if not specs:
        raise ValueError(
            "shard_manifest() got an empty spec list; sharding a sweep "
            "that runs nothing is a caller bug (sweep() now refuses to "
            "produce empty grids)"
        )
    count = min(shards, len(specs))
    return ShardManifest(
        total=len(specs),
        keys=tuple(spec_digest(spec) for spec in specs),
        assignment=tuple(
            tuple(range(s, len(specs), count)) for s in range(count)
        ),
    )


def _run_shard(
    item: Tuple[str, str, str, List[Tuple[int, ExperimentSpec]]],
) -> Tuple[List[int], List[ExperimentResult], int, int]:
    """Worker entry: pull one shard, serve hits from the shared store,
    execute and publish the misses.

    Takes ``(store_root, repro_version, engine, [(spec_index, spec)...])``
    — plain picklable data — and returns
    ``(spec_indices, results, hits, misses)`` in shard order.
    """
    from repro.runner.batch import _execute_spec

    store_root, repro_version, engine, indexed_specs = item
    store = ResultStore(store_root, repro_version=repro_version, engine=engine)
    indices: List[int] = []
    results: List[ExperimentResult] = []
    hits = 0
    misses = 0
    for index, spec in indexed_specs:
        cached = store.get(spec) if cacheable(spec) else None
        if cached is not None:
            hits += 1
            result = cached
        else:
            misses += 1
            result = _execute_spec(spec)
            if result.error is None and result.run is None and cacheable(spec):
                store.put(spec, result)
        indices.append(index)
        results.append(result)
    return indices, results, hits, misses


def run_sharded(
    specs: Sequence[ExperimentSpec],
    store: Any,
    shards: Optional[int] = None,
    jobs: Optional[int] = None,
    mp_context: Optional[str] = None,
) -> BatchResult:
    """Execute a sweep as store-sharing shard workers; results in spec order.

    Parameters
    ----------
    specs:
        The sweep (typically ``sweep(...)`` output).
    store:
        A :class:`~repro.cache.store.ResultStore` or its directory path —
        the single store every worker reads and writes.
    shards:
        Shard count; default ``jobs`` (one shard per worker).
    jobs:
        Worker processes; default :func:`repro.runner.batch.default_jobs`.
    mp_context:
        Explicit multiprocessing start method, as in
        :class:`~repro.runner.batch.BatchRunner`.

    Returns a :class:`~repro.runner.batch.BatchResult` whose
    ``cache_hits``/``cache_misses`` tally the store traffic across all
    shards.  Byte-identity holds by construction: each cell is either
    the deterministic output of :func:`~repro.runner.spec.run_spec` or
    that same output round-tripped through the store.
    """
    from repro.runner.batch import default_jobs

    specs = list(specs)
    if not isinstance(store, ResultStore):
        store = ResultStore(str(store))
    jobs = default_jobs() if jobs is None or jobs <= 0 else int(jobs)
    manifest = shard_manifest(specs, shards if shards else jobs)
    start = time.perf_counter()
    shard_items = [
        (
            store.root,
            store.repro_version,
            store.engine,
            [(i, specs[i]) for i in indices],
        )
        for indices in manifest.assignment
    ]
    outcomes = parallel_map(
        _run_shard, shard_items, jobs=jobs, mp_context=mp_context
    )
    ordered: List[Optional[ExperimentResult]] = [None] * len(specs)
    hits = 0
    misses = 0
    for indices, results, shard_hits, shard_misses in outcomes:
        hits += shard_hits
        misses += shard_misses
        for index, result in zip(indices, results):
            ordered[index] = result
    assert all(result is not None for result in ordered)
    return BatchResult(
        results=[result for result in ordered if result is not None],
        jobs=jobs,
        wall_s=time.perf_counter() - start,
        cache_hits=hits,
        cache_misses=misses,
    )
