"""Deterministic seed derivation for fanned-out experiment runs.

A batch of seeded runs must produce the same per-run seeds whether it
executes serially or across worker processes, on any platform and under
any ``PYTHONHASHSEED``.  Python's built-in ``hash`` is salted per
process, so derivation goes through SHA-256 of a canonical repr instead:
``derive_seed(base, *components)`` is a pure function of its arguments.
"""

from __future__ import annotations

import hashlib
from typing import List

#: Derived seeds live in [0, 2**63): positive, and exactly representable
#: everywhere (json, numpy int64, sqlite).
_SEED_BITS = 63


def derive_seed(base: int, *components) -> int:
    """A stable 63-bit seed derived from ``base`` and any components.

    Examples
    --------
    >>> derive_seed(7, 0) == derive_seed(7, 0)
    True
    >>> derive_seed(7, 0) != derive_seed(7, 1)
    True
    """
    material = repr((int(base),) + components).encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big") >> (64 - _SEED_BITS)


def derive_seeds(base: int, count: int, *components) -> List[int]:
    """``count`` distinct seeds derived from ``base`` (indexes 0..count-1)."""
    return [derive_seed(base, *components, index) for index in range(count)]
