"""`BatchRunner`: execute many specs, serially or across processes.

The runner is the multi-core lever for the repository's sweeps: every
seeded run described by an :class:`~repro.runner.spec.ExperimentSpec` is
independent, so a batch fans out over ``multiprocessing`` workers with
no shared state — each worker rebuilds its run from the picklable spec,
which is exactly what makes the parallel results provably identical to
the serial ones (see ``tests/runner/test_determinism.py``).

Also home to :func:`parallel_map`, the deterministic ordered map the
benchmark kernels use for work that is not a single spec (tree builds,
closure checks, reduction validations): same fan-out, same
order-preservation, arbitrary picklable ``fn``.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.runner.spec import ExperimentResult, ExperimentSpec, run_spec


def default_jobs() -> int:
    """The host's usable CPU count (affinity-aware where available)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _mp_context(name: Optional[str] = None):
    """Prefer fork (cheap, inherits sys.path); fall back to the default."""
    if name is not None:
        return multiprocessing.get_context(name)
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: int = 1,
    mp_context: Optional[str] = None,
) -> List[Any]:
    """``[fn(x) for x in items]``, fanned out over ``jobs`` processes.

    Order-preserving and deterministic: the result list matches the
    serial comprehension element-for-element regardless of worker
    scheduling.  ``fn`` and every item must be picklable (module-level
    functions; no closures) when ``jobs > 1``.  ``jobs <= 1`` or fewer
    than two items short-circuits to the serial loop — no pool, no
    pickling requirement.
    """
    items = list(items)
    jobs = max(1, int(jobs))
    if jobs <= 1 or len(items) < 2:
        return [fn(item) for item in items]
    ctx = _mp_context(mp_context)
    with ctx.Pool(processes=min(jobs, len(items))) as pool:
        return pool.map(fn, items, chunksize=1)


def _execute_spec(spec: ExperimentSpec) -> ExperimentResult:
    """Worker entry: run one spec, capturing failures into the result."""
    try:
        return run_spec(spec)
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed
        return ExperimentResult(
            label=spec.label,
            problem=spec.problem,
            seed=spec.seed,
            error=f"{type(exc).__name__}: {exc}",
        )


@dataclass
class BatchResult:
    """All results of one batch, plus how the batch ran.

    ``cache_hits``/``cache_misses`` partition the batch when a result
    cache was attached (``BatchRunner(cache=...)`` or
    :func:`repro.cache.shard.run_sharded`); both stay 0 on uncached
    batches.
    """

    results: List[ExperimentResult] = field(default_factory=list)
    jobs: int = 1
    wall_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def failures(self) -> List[ExperimentResult]:
        return [r for r in self.results if r.error is not None]

    @property
    def ok(self) -> bool:
        return not self.failures

    def raise_on_error(self) -> "BatchResult":
        if self.failures:
            first = self.failures[0]
            raise RuntimeError(
                f"{len(self.failures)}/{len(self.results)} runs failed; "
                f"first: [{first.label}] {first.error}"
            )
        return self

    def rows(self) -> List[List[Any]]:
        """One standard series row per run (label, seed, verdict, cost)."""
        return [r.row() for r in self.results]

    def reports(self) -> List[Dict[str, Any]]:
        """The serialized RunReports of the instrumented runs."""
        return [r.report for r in self.results if r.report is not None]

    def to_bench_artifact(
        self,
        bench_id: str,
        title: str,
        header: Optional[Sequence[str]] = None,
        quick: bool = False,
    ) -> Dict[str, Any]:
        """The batch as a schema-valid ``repro.bench/1`` document."""
        from repro.obs.schema import make_bench_artifact

        return make_bench_artifact(
            bench_id=bench_id,
            title=title,
            rows=self.rows(),
            header=header or ["label", "seed", "solved", "steps", "messages"],
            timings={"batch_wall_s": self.wall_s},
            metrics={"jobs": self.jobs, "runs": len(self.results)},
            quick=quick,
        )


class _ProgressSink:
    """Where sweep-progress events go: a JSONL file or a callable.

    Events are flat JSON objects.  Per completed run::

        {"event": "run", "completed": 3, "total": 40, "label": "...",
         "seed": 7, "ok": true, "elapsed_s": 0.81, "runs_per_s": 3.7}

    and one terminal summary::

        {"event": "batch-end", "runs": 40, "errors": 0,
         "elapsed_s": 9.6, "runs_per_s": 4.2, "jobs": 4}

    ``elapsed_s``/``runs_per_s`` are wall-clock observations — telemetry
    about the sweep, never part of any result or series.

    A file sink holds **one** buffered handle for its whole lifetime
    (opened truncating — one file per sweep, not an unbounded accretion)
    and flushes per event so the file is tailable mid-sweep; close it
    explicitly (:meth:`close`, or use the sink as a context manager).
    Reopening the file per event would cost O(runs) file opens on large
    sweeps for byte-identical output.
    """

    def __init__(self, target: Any):
        self._fn: Optional[Callable[[Dict[str, Any]], Any]] = None
        self._fp: Optional[Any] = None
        if callable(target):
            self._fn = target
        else:
            path = str(target)
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
            self._fp = open(path, "w", encoding="utf-8")

    def emit(self, event: Dict[str, Any]) -> None:
        if self._fn is not None:
            self._fn(event)
            return
        assert self._fp is not None
        self._fp.write(json.dumps(event, sort_keys=True) + "\n")
        self._fp.flush()

    def close(self) -> None:
        if self._fp is not None:
            self._fp.close()

    def __enter__(self) -> "_ProgressSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class BatchRunner:
    """Run experiment specs serially (``jobs=1``) or across processes.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` (default) runs in-process, ``0``/None
        means :func:`default_jobs` (the machine's usable cores).
    instrument:
        The unified instrumentation hook; its metrics half receives
        batch-level counters (``batch.runs``, ``batch.failures``) and a
        ``batch.wall_s`` histogram.  Per-run instrumentation is the
        spec's own ``instrument`` flag — per-run recorders cannot be
        shared across processes.
    progress:
        Sweep-progress telemetry: ``None`` (default, zero overhead), a
        file path (one JSON event per line: runs completed, errors,
        throughput — see :class:`_ProgressSink`), or a callable invoked
        with each event dict.  Progress changes *reporting order only*:
        results still come back in spec order and are byte-identical to
        an untracked batch.
    cache:
        A content-addressed result cache: a
        :class:`~repro.cache.store.ResultStore` or its directory path.
        The batch partitions into hits (served from the store — zero
        kernel executions) and misses (executed, then published back),
        reassembled in spec order; by the determinism contract the
        results are byte-identical to an uncached batch.  Failed runs
        are never cached, and instrumented/profiled specs bypass the
        cache entirely (:func:`repro.cache.store.cacheable`).
    mp_context:
        Explicit multiprocessing start method (``"fork"``/``"spawn"``);
        default picks fork where available.

    Examples
    --------
    >>> from repro.runner import ExperimentSpec, BatchRunner
    >>> spec = ExperimentSpec(
    ...     detector="omega", locations=(0, 1, 2), problem="detector-trace",
    ...     max_steps=30)
    >>> batch = BatchRunner(jobs=1).run([spec])
    >>> batch.results[0].fd_ok
    True
    """

    def __init__(
        self,
        jobs: Optional[int] = 1,
        instrument=None,
        progress=None,
        cache=None,
        mp_context: Optional[str] = None,
    ):
        from repro.obs.instrument import coerce_instrument

        self.jobs = default_jobs() if not jobs else max(1, int(jobs))
        self.mp_context = mp_context
        self.progress = progress
        self.cache = self._coerce_cache(cache)
        self._metrics = coerce_instrument(instrument).metrics

    @staticmethod
    def _coerce_cache(cache):
        if cache is None:
            return None
        from repro.cache.store import ResultStore

        if isinstance(cache, ResultStore):
            return cache
        return ResultStore(str(cache))

    def attach_metrics(self, registry) -> "BatchRunner":
        """Record batch-level metrics into ``registry``; returns self."""
        self._metrics = registry
        return self

    def run(
        self,
        specs: Iterable[ExperimentSpec],
        raise_on_error: bool = False,
    ) -> BatchResult:
        """Execute every spec; results come back in spec order.

        In-run exceptions are captured per-result (``result.error``)
        unless ``raise_on_error`` is set.  With a cache attached, only
        the store misses execute; hits are served from the store and the
        batch is reassembled in spec order either way.
        """
        specs = list(specs)
        start = time.perf_counter()
        hit_results: Dict[int, ExperimentResult] = {}
        if self.cache is not None:
            hit_results = self._collect_cache_hits(specs)
        miss_indexed = [
            (k, spec)
            for k, spec in enumerate(specs)
            if k not in hit_results
        ]
        miss_specs = [spec for _, spec in miss_indexed]
        if self.progress is None:
            executed = parallel_map(
                _execute_spec,
                miss_specs,
                jobs=self.jobs,
                mp_context=self.mp_context,
            )
        else:
            executed = self._run_tracked(
                miss_specs,
                start,
                cache_hits=len(hit_results) if self.cache is not None else None,
            )
        if self.cache is not None:
            from repro.cache.store import cacheable

            for (_k, spec), result in zip(miss_indexed, executed):
                if (
                    result.error is None
                    and result.run is None
                    and cacheable(spec)
                ):
                    self.cache.put(spec, result)
        miss_iter = iter(executed)
        results = [
            hit_results[k] if k in hit_results else next(miss_iter)
            for k in range(len(specs))
        ]
        batch = BatchResult(
            results=results,
            jobs=self.jobs,
            wall_s=time.perf_counter() - start,
            cache_hits=len(hit_results),
            cache_misses=len(miss_specs) if self.cache is not None else 0,
        )
        if self._metrics is not None:
            self._metrics.counter("batch.runs").inc(len(batch.results))
            self._metrics.counter("batch.failures").inc(len(batch.failures))
            self._metrics.histogram("batch.wall_s").observe(batch.wall_s)
        if raise_on_error:
            batch.raise_on_error()
        return batch

    def _collect_cache_hits(
        self, specs: List[ExperimentSpec]
    ) -> Dict[int, ExperimentResult]:
        """Probe the cache for every cacheable spec; returns index -> hit."""
        from repro.cache.store import cacheable

        hits: Dict[int, ExperimentResult] = {}
        for k, spec in enumerate(specs):
            if not cacheable(spec):
                continue
            cached = self.cache.get(spec)
            if cached is not None:
                hits[k] = cached
        return hits

    def _run_tracked(
        self,
        specs: List[ExperimentSpec],
        start: float,
        cache_hits: Optional[int] = None,
    ) -> List[ExperimentResult]:
        """Execute with per-run progress events (results in spec order).

        The parallel path streams through ``Pool.imap`` — same ordered
        results as ``Pool.map``, but each arrives as it (and all its
        predecessors) completes, so the sink sees the sweep move instead
        of one burst at the end.  ``cache_hits`` (set iff a cache is
        attached) is announced up front as a ``cache`` event; the per-run
        ``completed``/``total`` numbers then count *executed* runs only.
        """
        with _ProgressSink(self.progress) as sink:
            if cache_hits is not None:
                sink.emit(
                    {
                        "event": "cache",
                        "hits": cache_hits,
                        "misses": len(specs),
                        "total": cache_hits + len(specs),
                    }
                )
            return self._run_tracked_into(sink, specs, start)

    def _run_tracked_into(
        self,
        sink: "_ProgressSink",
        specs: List[ExperimentSpec],
        start: float,
    ) -> List[ExperimentResult]:
        results: List[ExperimentResult] = []
        errors = 0

        def track(result: ExperimentResult) -> None:
            nonlocal errors
            results.append(result)
            if result.error is not None:
                errors += 1
            elapsed = time.perf_counter() - start
            sink.emit(
                {
                    "event": "run",
                    "completed": len(results),
                    "total": len(specs),
                    "label": result.label,
                    "seed": result.seed,
                    "ok": result.error is None,
                    "errors": errors,
                    "elapsed_s": round(elapsed, 6),
                    "runs_per_s": (
                        round(len(results) / elapsed, 3) if elapsed > 0 else None
                    ),
                }
            )

        if self.jobs <= 1 or len(specs) < 2:
            for spec in specs:
                track(_execute_spec(spec))
        else:
            ctx = _mp_context(self.mp_context)
            with ctx.Pool(processes=min(self.jobs, len(specs))) as pool:
                for result in pool.imap(_execute_spec, specs, chunksize=1):
                    track(result)
        elapsed = time.perf_counter() - start
        sink.emit(
            {
                "event": "batch-end",
                "runs": len(results),
                "errors": errors,
                "elapsed_s": round(elapsed, 6),
                "runs_per_s": (
                    round(len(results) / elapsed, 3) if elapsed > 0 else None
                ),
                "jobs": self.jobs,
            }
        )
        return results

    def map(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> List[Any]:
        """:func:`parallel_map` with this runner's jobs/context."""
        return parallel_map(
            fn, items, jobs=self.jobs, mp_context=self.mp_context
        )
