"""`ExperimentSpec`: one seeded experiment run, fully described by data.

A spec carries everything needed to reproduce one run — algorithm,
detector, problem, locations, proposals, fault pattern, seed, step
budget, instrumentation config — as plain (picklable) values, so the
same spec object can execute in this process or be shipped to a
``multiprocessing`` worker and produce an *identical* trace either way.
Determinism is the contract: :func:`run_spec` reconstructs every stateful
piece (policy RNG, automata, recorders) from the spec alone.

The executable problems:

``"consensus"``
    The full Figure-1 system — algorithm + detector + channels + crash
    automaton + scripted environment — run to settlement and checked
    against both T_D and the consensus specification.  This module *is*
    the canonical execution path:
    :func:`repro.analysis.checkers.run_consensus_experiment` (the
    spelling the demos and tests use) is a thin delegate over
    ``ExperimentSpec(...).run()``.
``"detector-trace"``
    Just the detector automaton under a crash plan — the generate-and-
    check workload of the zoo experiments (E1-E4).  ``fd_ok`` is the
    T_D membership verdict.
``"timed-detector"``
    A timed *implementation* (:mod:`repro.timed`) — heartbeat,
    ping/pong, or leader-lease — run on the discrete-virtual-time
    network under the spec's crash plan, fault plan, and ``timed=``
    timing parameters.  ``fd_ok`` is the conformance verdict of the
    implementation's **target** AFD's validity oracle over the emitted
    trace, and ``result.conformance`` carries the localized verdict
    (first violating index + reason) — the implementation→axioms loop.

Either problem can execute on the *compiled* engine
(``compiled=True`` / ``REPRO_COMPILED=1``): the spec's system is
lowered once into interned-id tables (:func:`repro.compiled.system.
compile_spec`, cached by spec fingerprint) and runs replay them —
traces, decisions and verdicts are byte-identical to the interpreted
path, which stays the oracle.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.runner.seeds import derive_seed

PROBLEMS = ("consensus", "detector-trace", "timed-detector")
POLICIES = ("round-robin", "random")


@dataclass
class ExperimentSpec:
    """A complete, picklable description of one seeded run.

    Parameters
    ----------
    detector:
        An :class:`~repro.core.afd.AFD` instance, a factory callable
        ``(locations, **detector_kwargs) -> AFD``, or a string name
        resolved through :func:`repro.detectors.registry.resolve_detector`
        (``"omega"``, ``"omega-k"`` + ``detector_kwargs={"k": 2}``, ...).
    algorithm:
        A :class:`~repro.system.process.DistributedAlgorithm` or a factory
        callable ``(locations, **algorithm_kwargs)``.  Required for the
        ``"consensus"`` problem; unused by ``"detector-trace"``.  For the
        parallel path prefer module-level factories (picklable).
    locations:
        The location set.
    proposals:
        Consensus proposals per location; default alternating 0/1.
    crashes:
        The fault pattern: a ``{location: crash_step}`` mapping or a
        :class:`~repro.system.fault_pattern.FaultPattern`.
    f:
        The problem's resilience parameter.
    seed / policy:
        ``policy="round-robin"`` (default) is fully deterministic and
        ignores the seed; ``policy="random"`` uses a
        :class:`~repro.ioa.scheduler.RandomPolicy` seeded with ``seed``.
    max_steps:
        Step budget for the run.
    instrument:
        ``False`` (default): uninstrumented, zero overhead.  ``True``:
        the run records a canonical trace, a metrics registry, and a
        :class:`~repro.obs.report.RunReport` into the result.
    profile:
        ``True`` attaches a :class:`~repro.obs.prof.StepProfiler` to the
        run and stores its summary (schema ``repro.profile/1``: phase
        calls/wall time, cache hit rates) in ``result.profile``.  The
        execution itself is byte-identical either way — profiling books
        costs, it never changes schedules.  Independent of
        ``instrument`` (a profile without a trace is the cheap way to
        ask "where did the time go").
    fault_plan:
        An optional :class:`~repro.faults.plan.FaultPlan` of injected
        channel faults and adversarial crash rules (``"consensus"``
        problem only).  An *unbound* plan (``seed=None``) is bound to
        ``derive_seed(spec.seed, "fault-plan")`` at run time, so a seed
        sweep varies the fault schedule per run; ``None`` (default)
        keeps the model's reliable channels — provably zero overhead.
        Supported by the ``"consensus"`` and ``"timed-detector"``
        problems (the timed network consumes the plan's channel knobs
        and ``"at-step"`` crash rules directly).
    timed:
        Timing parameters for the ``"timed-detector"`` problem: a
        :class:`~repro.timed.params.TimedParams`, a mapping of overrides
        (``{"timeout": 4, "delay": {"jitter": 2}}``), or ``None`` for
        the defaults.  For this problem ``detector`` names the timed
        *implementation* (``"heartbeat"``, ``"ping-pong"``,
        ``"leader-lease"``; aliases accepted and canonicalized), and the
        resolved params join :meth:`meta` — and therefore the run-ledger
        / result-cache identity.
    compiled:
        ``True`` executes on the compiled engine (:mod:`repro.compiled`):
        the spec's system is built and lowered once per fingerprint and
        reused across runs.  ``False`` forces the interpreted engine;
        ``None`` (default) defers to the process default
        (:func:`repro.compiled.config.set_compiled_default`,
        ``REPRO_COMPILED=1``).  Results are byte-identical either way;
        the flag is deliberately *not* part of :meth:`meta`, so
        artifacts regenerated on either engine compare clean.
    label:
        Free-form identity used in batch rows and artifacts.
    """

    detector: Any
    locations: Tuple[int, ...]
    algorithm: Any = None
    proposals: Optional[Mapping[int, Any]] = None
    crashes: Any = None
    f: int = 1
    problem: str = "consensus"
    algorithm_kwargs: Dict[str, Any] = field(default_factory=dict)
    detector_kwargs: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    policy: str = "round-robin"
    max_steps: int = 5000
    min_live_outputs: int = 1
    instrument: bool = False
    profile: bool = False
    record_steps: bool = False
    fault_plan: Any = None
    timed: Any = None
    compiled: Optional[bool] = None
    label: str = ""

    def __post_init__(self) -> None:
        self.locations = tuple(self.locations)
        if self.problem not in PROBLEMS:
            raise ValueError(
                f"unknown problem {self.problem!r}; supported: {PROBLEMS}"
            )
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; supported: {POLICIES}"
            )
        if self.problem == "consensus" and self.algorithm is None:
            raise ValueError('problem "consensus" requires an algorithm')
        if self.fault_plan is not None and self.problem not in (
            "consensus",
            "timed-detector",
        ):
            raise ValueError(
                'fault_plan is only supported for the "consensus" and '
                '"timed-detector" problems (detector-trace runs have no '
                "channels to fault)"
            )
        if self.timed is not None and self.problem != "timed-detector":
            raise ValueError(
                'timed= is only meaningful for problem "timed-detector"'
            )
        if self.problem == "timed-detector":
            if self.detector_kwargs:
                raise ValueError(
                    "timed-detector runs take their knobs via timed=, "
                    "not detector_kwargs"
                )
            from repro.timed.registry import resolve_implementation

            if not isinstance(self.detector, str):
                raise ValueError(
                    'problem "timed-detector" names its implementation '
                    "by string (see repro.timed.registry); got "
                    f"{type(self.detector).__name__}"
                )
            self.detector = resolve_implementation(self.detector)
            self.resolve_timed()  # fail fast on bad timing params
        if not self.label:
            det = (
                self.detector
                if isinstance(self.detector, str)
                else getattr(self.detector, "name", None)
                or getattr(self.detector, "__name__", type(self.detector).__name__)
            )
            self.label = f"{self.problem}:{det}:n{len(self.locations)}:s{self.seed}"

    # -- Resolution ---------------------------------------------------------

    def resolve_afd(self):
        """The instantiated AFD this spec names.

        For the ``"timed-detector"`` problem this is the *target* AFD of
        the named implementation — the specification its traces are
        judged against, not an automaton that generates them.
        """
        if self.problem == "timed-detector":
            from repro.timed.registry import target_afd

            return target_afd(self.detector, self.locations)
        from repro.detectors.registry import resolve_detector

        return resolve_detector(
            self.detector, self.locations, **self.detector_kwargs
        )

    def resolve_timed(self):
        """The effective :class:`~repro.timed.params.TimedParams`."""
        from repro.timed.params import TimedParams

        return TimedParams.coerce(self.timed)

    def resolve_algorithm(self):
        """The instantiated algorithm (factories are called here)."""
        from repro.system.process import DistributedAlgorithm

        if isinstance(self.algorithm, DistributedAlgorithm):
            return self.algorithm
        if callable(self.algorithm):
            return self.algorithm(self.locations, **self.algorithm_kwargs)
        raise TypeError(
            "algorithm must be a DistributedAlgorithm or a factory "
            f"callable; got {type(self.algorithm).__name__}"
        )

    def fault_pattern(self):
        """The spec's crash plan as a FaultPattern."""
        from repro.system.fault_pattern import FaultPattern

        if self.crashes is None:
            return FaultPattern({}, self.locations)
        if isinstance(self.crashes, FaultPattern):
            return self.crashes
        return FaultPattern(dict(self.crashes), self.locations)

    def resolve_fault_plan(self):
        """The effective (bound) fault plan, or ``None``.

        An unbound plan inherits the run's randomness: its seed becomes
        ``derive_seed(self.seed, "fault-plan")``, a distinct stream from
        the scheduler policy's, so faults and scheduling never share
        draws and each stays independently reproducible.
        """
        if self.fault_plan is None:
            return None
        if self.fault_plan.is_bound:
            return self.fault_plan
        return self.fault_plan.bound(derive_seed(self.seed, "fault-plan"))

    def build_policy(self):
        """A fresh policy instance (None means the scheduler default)."""
        if self.policy == "random":
            from repro.ioa.scheduler import RandomPolicy

            return RandomPolicy(seed=self.seed)
        return None

    def effective_proposals(self) -> Dict[int, Any]:
        if self.proposals is not None:
            return dict(self.proposals)
        return {i: k % 2 for k, i in enumerate(self.locations)}

    # -- Derivation ---------------------------------------------------------

    def derive(self, *components, **overrides) -> "ExperimentSpec":
        """A copy with a seed derived from this spec's seed + components.

        The derived copy gets ``seed=derive_seed(self.seed, *components)``
        and a label suffixed with the components; ``overrides`` replace
        any other fields.
        """
        seed = derive_seed(self.seed, *components)
        suffix = ".".join(str(c) for c in components)
        overrides.setdefault("seed", seed)
        overrides.setdefault(
            "label", f"{self.label}#{suffix}" if suffix else self.label
        )
        return dataclasses.replace(self, **overrides)

    def meta(self) -> Dict[str, Any]:
        """JSON-ready identity of this spec (for reports/artifacts)."""
        det = (
            self.detector
            if isinstance(self.detector, str)
            else getattr(self.detector, "name", type(self.detector).__name__)
        )
        out = {
            "label": self.label,
            "problem": self.problem,
            "detector": str(det),
            "locations": list(self.locations),
            "crashes": {
                str(k): v for k, v in self.fault_pattern().crashes.items()
            },
            "f": self.f,
            "seed": self.seed,
            "policy": self.policy,
            "max_steps": self.max_steps,
        }
        if self.fault_plan is not None:
            out["fault_plan"] = self.resolve_fault_plan().summary()
        if self.problem == "timed-detector":
            # Full timing identity: timed runs are defined by it, and
            # via meta() it reaches the ledger / result-cache key.
            out["timed"] = self.resolve_timed().summary()
        return out

    def run(self) -> "ExperimentResult":
        """Execute this spec in-process (see :func:`run_spec`)."""
        return run_spec(self)


@dataclass
class ExperimentResult:
    """The picklable outcome of one executed spec.

    ``trace`` is the canonical JSONL trace (no wall-clock fields) when the
    spec asked for instrumentation — identical for identical specs no
    matter where the run executed.  ``report`` is the serialized
    :class:`~repro.obs.report.RunReport`.  ``profile`` is the
    ``repro.profile/1`` summary when the spec asked for profiling (its
    counter/cache halves are deterministic; wall times are not).
    ``error`` carries the repr of an in-run exception when the batch
    runner is asked not to raise.

    ``run`` holds the in-process
    :class:`~repro.analysis.checkers.ConsensusRunResult` (execution,
    projected events, checker objects) when the run was asked to keep it
    (``run_spec(..., keep=True)``); it is ``None`` — and the result
    stays picklable — otherwise.
    """

    label: str
    problem: str
    seed: int
    solved: Optional[bool] = None
    all_live_decided: Optional[bool] = None
    fd_ok: Optional[bool] = None
    consensus_ok: Optional[bool] = None
    decisions: Dict[int, Any] = field(default_factory=dict)
    steps: int = 0
    messages_sent: int = 0
    wall_s: float = 0.0
    report: Optional[Dict[str, Any]] = None
    trace: Optional[List[str]] = None
    profile: Optional[Dict[str, Any]] = None
    conformance: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    run: Optional[Any] = field(default=None, repr=False, compare=False)

    @property
    def ok(self) -> bool:
        return self.error is None

    def row(self) -> List[Any]:
        """The standard series row: label, seed, verdicts, cost."""
        return [
            self.label,
            self.seed,
            self.solved,
            self.steps,
            self.messages_sent,
        ]


def run_spec(
    spec: ExperimentSpec,
    *,
    policy=None,
    decision_fn=None,
    instrument=None,
    keep: bool = False,
) -> ExperimentResult:
    """Execute one spec and summarize it; deterministic given the spec.

    This is the function batch workers call; everything stateful (policy
    RNG, automata, recorders) is rebuilt here from the spec's data so a
    worker-process run is indistinguishable from an in-process one.

    The keyword-only extras exist for in-process callers (the
    :func:`~repro.analysis.checkers.run_consensus_experiment` delegate
    first among them) and are not part of the picklable contract:
    ``policy`` overrides the spec-built scheduler policy with a live
    instance, ``decision_fn`` overrides the algorithm's decision
    extractor, ``instrument`` attaches a caller-owned instrumentation
    bundle *instead of* the spec-built one (so ``result.trace`` /
    ``result.report`` stay unset — the caller owns the recorder), and
    ``keep=True`` retains the full in-process
    :class:`~repro.analysis.checkers.ConsensusRunResult` on
    ``result.run``.
    """
    start = time.perf_counter()
    recorder = None
    registry = None
    profiler = None
    if instrument is None:
        if spec.instrument:
            from repro.obs.instrument import Instrumentation
            from repro.obs.metrics import MetricsRegistry
            from repro.obs.trace import TraceRecorder

            afd_probe = spec.resolve_afd()
            recorder = TraceRecorder(
                fd_output_name=afd_probe.output_name,
                record_steps=spec.record_steps,
            )
            registry = MetricsRegistry()
            instrument = Instrumentation(observer=recorder, metrics=registry)
        if spec.profile:
            from repro.obs.instrument import Instrumentation
            from repro.obs.prof import StepProfiler

            profiler = StepProfiler()
            instrument = Instrumentation(
                observer=recorder, metrics=registry, profiler=profiler
            )

    if spec.problem == "detector-trace":
        result = _run_detector_trace(spec, instrument)
    elif spec.problem == "timed-detector":
        result = _run_timed(spec, instrument)
    else:
        result = _run_consensus(
            spec,
            instrument,
            policy=policy,
            decision_fn=decision_fn,
            keep=keep,
        )

    result.wall_s = time.perf_counter() - start
    if profiler is not None:
        result.profile = profiler.summary()
    if recorder is not None:
        from repro.obs.report import build_run_report

        result.trace = recorder.canonical_jsonl_lines()
        result.report = build_run_report(
            recorder=recorder,
            metrics=registry,
            meta=spec.meta(),
            wall_s=result.wall_s,
        ).to_dict()
    return result


def _run_consensus(
    spec,
    instrument,
    *,
    policy=None,
    decision_fn=None,
    keep: bool = False,
) -> ExperimentResult:
    """Assemble, run, and check one consensus experiment.

    The single consensus execution path — demos, tests, the batch
    engine and :func:`~repro.analysis.checkers.run_consensus_experiment`
    all bottom out here.  On the interpreted engine the system is built
    fresh (with any instrumentation attached at build time); on the
    compiled engine the fingerprint-cached
    :class:`~repro.compiled.system.CompiledSystem` is reused and the
    instrumentation rides the run (``System.run(instrument=...)``).
    Both engines then share everything else verbatim: settlement
    predicate, span wrapping, projections, T_D and consensus checks.
    """
    from contextlib import nullcontext

    from repro.analysis.checkers import ConsensusRunResult
    from repro.compiled.config import resolve_compiled
    from repro.obs.instrument import coerce_instrument
    from repro.problems.consensus import ConsensusProblem

    bundle = coerce_instrument(instrument)
    observer = bundle.observer
    compiled = resolve_compiled(spec.compiled)
    if compiled:
        from repro.compiled.system import compile_spec

        compiled_system = compile_spec(spec)
        system = compiled_system.system
        algorithm = compiled_system.algorithm
        afd = compiled_system.afd
    else:
        from repro.system.environment import ScriptedConsensusEnvironment
        from repro.system.network import SystemBuilder

        algorithm = spec.resolve_algorithm()
        afd = spec.resolve_afd()
        builder = (
            SystemBuilder(spec.locations)
            .with_algorithm(algorithm)
            .with_failure_detector(afd.automaton())
            .with_environment(
                ScriptedConsensusEnvironment(spec.effective_proposals())
            )
        )
        if bundle:
            builder.with_instrumentation(bundle)
        plan = spec.resolve_fault_plan()
        if plan is not None:
            builder.with_fault_plan(plan)
        system = builder.build()
    locations = tuple(algorithm.locations)
    if decision_fn is None:
        decision_fn = type(algorithm[locations[0]]).decision
    if policy is None:
        policy = spec.build_policy()

    def everyone_settled(state, _step) -> bool:
        """Every location has either decided or actually crashed.

        Judging liveness from the *run state* (not the fault plan)
        matters: a crash scheduled late in the plan may never fire, in
        which case its location is live in the trace and must decide
        before we stop.
        """
        crashed = system.crashed(state)
        return all(
            i in crashed
            or decision_fn(system.process_state(state, i)) is not None
            for i in locations
        )

    # A TraceRecorder observer gets the whole run timed as one span, so
    # exported decision events carry a non-empty enclosing span.
    span = getattr(observer, "span", None)
    with span("consensus-run") if span is not None else nullcontext():
        execution = system.run(
            max_steps=spec.max_steps,
            fault_pattern=spec.fault_pattern(),
            policy=policy,
            stop_when=everyone_settled,
            instrument=bundle if compiled and bundle else None,
            compiled=compiled,
        )
    events = list(execution.actions)
    problem = ConsensusProblem(locations, f=spec.f)
    fd_events = afd.project_events(events)
    problem_events = problem.project_events(events)
    live_in_trace = [
        i
        for i in locations
        if i not in system.crashed(execution.final_state)
    ]
    decisions = {
        i: decision_fn(system.process_state(execution.final_state, i))
        for i in live_in_trace
    }
    fd_check = afd.check_limit(fd_events, spec.min_live_outputs)
    consensus_check = problem.check_conditional(problem_events)
    record = getattr(observer, "record", None)
    if record is not None:
        record("checker", name="fd_check", ok=bool(fd_check))
        record("checker", name="consensus_check", ok=bool(consensus_check))
    outcome = ConsensusRunResult(
        execution=execution,
        decisions=decisions,
        fd_events=fd_events,
        problem_events=problem_events,
        fd_check=fd_check,
        consensus_check=consensus_check,
        steps=len(execution),
        messages_sent=sum(1 for a in events if a.name == "send"),
        injected_crashes=(
            tuple(system.crash_controller.fired)
            if system.crash_controller is not None
            else ()
        ),
    )
    return ExperimentResult(
        label=spec.label,
        problem=spec.problem,
        seed=spec.seed,
        solved=outcome.solved,
        all_live_decided=outcome.all_live_decided,
        fd_ok=bool(outcome.fd_check),
        consensus_ok=bool(outcome.consensus_check),
        decisions=dict(outcome.decisions),
        steps=outcome.steps,
        messages_sent=outcome.messages_sent,
        run=outcome if keep else None,
    )


def _run_detector_trace(spec, instrument) -> ExperimentResult:
    from repro.compiled.config import resolve_compiled
    from repro.ioa.scheduler import Scheduler

    compiled = resolve_compiled(spec.compiled)
    if compiled:
        from repro.compiled.system import compile_spec

        compiled_system = compile_spec(spec)
        afd = compiled_system.afd
        automaton = compiled_system.automaton
    else:
        afd = spec.resolve_afd()
        automaton = afd.automaton()
    execution = Scheduler(
        spec.build_policy(), instrument=instrument, compiled=compiled
    ).run(
        automaton,
        max_steps=spec.max_steps,
        injections=spec.fault_pattern().injections(),
    )
    events = list(execution.actions)
    fd_ok = bool(afd.check_limit(events, spec.min_live_outputs))
    return ExperimentResult(
        label=spec.label,
        problem=spec.problem,
        seed=spec.seed,
        fd_ok=fd_ok,
        solved=fd_ok,
        steps=len(events),
        messages_sent=sum(1 for a in events if a.name == "send"),
    )


def _run_timed(spec, instrument) -> ExperimentResult:
    """Run one timed implementation and judge its trace for conformance.

    The whole timed system (processes + virtual clock + network) is a
    single automaton, so the plain scheduler executes it — including on
    the compiled engine via the generic
    :func:`~repro.compiled.tables.compile_automaton` bridge, which
    ``Scheduler(compiled=True)`` applies to any hashable-state
    automaton.  Crashes come from the spec's fault pattern plus any
    ``"at-step"`` crash rules of the fault plan (the event-triggered
    rules need the consensus runner's controller and are rejected
    here); channel drops/duplicates come from the plan via the timed
    network's decision streams.  The trace — crash events + fd outputs
    — is judged by :class:`~repro.faults.oracles.AfdValidityOracle`
    against the implementation's target AFD, and the localized verdict
    lands in ``result.conformance``.
    """
    from repro.compiled.config import resolve_compiled
    from repro.faults.oracles import AfdValidityOracle
    from repro.ioa.scheduler import Injection, Scheduler
    from repro.system.fault_pattern import crash_action
    from repro.timed.registry import build_automaton

    compiled = resolve_compiled(spec.compiled)
    plan = spec.resolve_fault_plan()
    automaton = build_automaton(
        spec.detector,
        spec.locations,
        params=spec.resolve_timed(),
        seed=derive_seed(spec.seed, "timed-net"),
        plan=plan,
    )
    injections = list(spec.fault_pattern().injections())
    if plan is not None:
        for rule in plan.crash_rules:
            if rule.trigger != "at-step":
                raise ValueError(
                    f"timed-detector runs support only at-step crash "
                    f"rules; got {rule.trigger!r} (event-triggered rules "
                    "need the consensus runner's crash controller)"
                )
            injections.append(Injection(rule.param, crash_action(rule.location)))
    execution = Scheduler(
        spec.build_policy(), instrument=instrument, compiled=compiled
    ).run(automaton, max_steps=spec.max_steps, injections=injections)
    trace = list(execution.trace(automaton))
    verdict = AfdValidityOracle(
        automaton.afd(), spec.min_live_outputs
    ).check(trace)
    return ExperimentResult(
        label=spec.label,
        problem=spec.problem,
        seed=spec.seed,
        fd_ok=verdict.ok,
        solved=verdict.ok,
        steps=len(execution),
        messages_sent=automaton.messages_sent(execution.final_state),
        conformance=verdict.to_dict(),
    )
