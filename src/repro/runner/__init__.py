"""The parallel seeded experiment engine.

One :class:`ExperimentSpec` fully describes one run as plain data;
:func:`sweep` expands a base spec over seeds x fault patterns x detector
parameters; :class:`BatchRunner` executes specs serially or fanned out
across ``multiprocessing`` workers.  The contract throughout is
determinism: the same spec produces an identical (canonical) trace
whether it runs in this process or in a worker — see
``tests/runner/test_determinism.py`` for the enforced property.

Quickstart
----------
>>> from repro.runner import ExperimentSpec, BatchRunner, sweep
>>> base = ExperimentSpec(detector="omega", locations=(0, 1, 2),
...                       problem="detector-trace", max_steps=60)
>>> batch = BatchRunner(jobs=1).run(sweep(base, fault_patterns=[{}, {0: 5}]))
>>> [r.fd_ok for r in batch]
[True, True]
"""

from repro.runner.batch import (
    BatchResult,
    BatchRunner,
    default_jobs,
    parallel_map,
)
from repro.runner.seeds import derive_seed, derive_seeds
from repro.runner.spec import ExperimentResult, ExperimentSpec, run_spec
from repro.runner.sweep import sweep

__all__ = [
    "BatchResult",
    "BatchRunner",
    "ExperimentResult",
    "ExperimentSpec",
    "default_jobs",
    "derive_seed",
    "derive_seeds",
    "parallel_map",
    "run_spec",
    "sweep",
]
