"""The sweep expander: one base spec -> the full experiment grid.

Every empirical claim in the paper is validated by sweeping seeded runs
over fault patterns (and sometimes detector parameters).  ``sweep()``
expands a base :class:`~repro.runner.spec.ExperimentSpec` into the
cartesian product

    detector_params x fault_patterns x seeds

with a stable, collision-free derived seed and a readable label per
variant, ready for :class:`~repro.runner.batch.BatchRunner`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, List, Mapping, Optional, Sequence, Union

from repro.runner.seeds import derive_seed
from repro.runner.spec import ExperimentSpec


def sweep(
    base: ExperimentSpec,
    seeds: Union[int, Iterable[int], None] = None,
    fault_patterns: Optional[Sequence[Any]] = None,
    detector_params: Optional[Sequence[Mapping[str, Any]]] = None,
    fault_plans: Optional[Sequence[Any]] = None,
    timed_params: Optional[Sequence[Any]] = None,
) -> List[ExperimentSpec]:
    """Expand ``base`` over seeds x fault patterns x detector params
    (x fault plans x timed params, when those grids are requested).

    Parameters
    ----------
    seeds:
        An iterable of explicit seeds, or an int ``n`` meaning ``n``
        seeds derived from ``base.seed`` (distinct by construction, and
        identical across serial/parallel execution and across machines).
        ``None`` keeps just ``base.seed``.  ``seeds <= 0``, an empty
        iterable, and duplicate explicit seeds all raise ``ValueError``:
        the first two would expand to a grid that runs nothing, the last
        to byte-identical specs/labels that collide in series rows and
        alias content-addressed cache keys.
    fault_patterns:
        Crash plans (``{location: step}`` mappings or ``FaultPattern``
        instances).  ``None`` keeps the base's plan.
    detector_params:
        Keyword-argument dicts merged over ``base.detector_kwargs``
        (e.g. ``[{"k": 1}, {"k": 2}]`` for an ``"omega-k"`` family
        sweep).  ``None`` keeps the base's kwargs.
    fault_plans:
        :class:`~repro.faults.plan.FaultPlan` chaos descriptions
        (``None`` entries meaning "no plan" are allowed in the list).
        ``None`` keeps the base's ``fault_plan`` — and, crucially, the
        pre-chaos derived-seed formula, so grids that never mention
        fault plans produce exactly the specs (and artifacts) they did
        before this axis existed.
    timed_params:
        Timing-parameter overrides for ``"timed-detector"`` grids
        (timeout x heartbeat-period x partial-synchrony-window):
        mappings merged over the base spec's ``timed`` value via
        :meth:`~repro.timed.params.TimedParams.merged`, or readymade
        :class:`~repro.timed.params.TimedParams` instances.  ``None``
        keeps the base's timing — and the pre-timed derived-seed
        formula, byte for byte.  An empty list and overrides that merge
        to duplicate effective params both raise ``ValueError`` (the
        same empty-grid / cache-key-aliasing failure modes as the other
        axes); requires ``base.problem == "timed-detector"``.

    Examples
    --------
    >>> base = ExperimentSpec(detector="omega", locations=(0, 1, 2),
    ...                       problem="detector-trace", seed=7)
    >>> variants = sweep(base, seeds=3, fault_patterns=[{}, {0: 5}])
    >>> len(variants)
    6
    >>> len({v.seed for v in variants})
    6
    """
    if seeds is None:
        seed_list: List[int] = [base.seed]
        explicit_seeds = True
    elif isinstance(seeds, int):
        if seeds <= 0:
            # A zero/negative count would expand to an empty grid that
            # runs nothing and "succeeds" — fail loudly instead.
            raise ValueError(
                f"sweep(seeds={seeds}) would produce an empty grid; "
                "pass seeds=None to keep base.seed, or a positive count"
            )
        seed_list = list(range(seeds))
        explicit_seeds = False
    else:
        seed_list = [int(s) for s in seeds]
        explicit_seeds = True
        if not seed_list:
            raise ValueError(
                "sweep(seeds=[]) would produce an empty grid; "
                "pass seeds=None to keep base.seed"
            )
        duplicates = sorted(
            {s for s in seed_list if seed_list.count(s) > 1}
        )
        if duplicates:
            # Explicit seeds become the run seeds verbatim, so repeats
            # yield byte-identical specs *and labels*: the rows collide
            # in every series and alias any cache keyed on spec identity.
            raise ValueError(
                f"sweep() got duplicate explicit seeds {duplicates}; "
                "each seed expands to an identical spec and label, which "
                "collides in series rows and aliases content-addressed "
                "cache keys — pass distinct seeds (or an int count for "
                "derived ones)"
            )
    if timed_params is not None and base.problem != "timed-detector":
        raise ValueError(
            "sweep(timed_params=...) requires a timed-detector base "
            f"spec; base.problem is {base.problem!r}"
        )
    if timed_params is not None:
        from repro.timed.params import TimedParams

        base_timed = TimedParams.coerce(base.timed)
        timed_list = [
            entry
            if isinstance(entry, TimedParams)
            else base_timed.merged(entry)
            for entry in timed_params
        ]
        collisions = sorted(
            {
                ti
                for ti, entry in enumerate(timed_list)
                if timed_list.count(entry) > 1
            }
        )
        if collisions:
            # Duplicate effective params run byte-identical experiments
            # under different derived seeds: the grid silently measures
            # the same point twice and its conformance-rate series
            # double-counts it — reject, mirroring the duplicate-seed
            # rule.
            raise ValueError(
                f"sweep() got timed_params entries at indices "
                f"{collisions} that merge to identical effective "
                "TimedParams; each grid point must differ (drop the "
                "repeats, or vary a knob)"
            )
    else:
        timed_list = [None]
    patterns = list(fault_patterns) if fault_patterns is not None else [base.crashes]
    params = (
        [dict(p) for p in detector_params]
        if detector_params is not None
        else [dict(base.detector_kwargs)]
    )
    plans = list(fault_plans) if fault_plans is not None else [base.fault_plan]
    for axis_name, axis in (
        ("fault_patterns", patterns),
        ("detector_params", params),
        ("fault_plans", plans),
        ("timed_params", timed_list),
    ):
        if not axis:
            # Same silent-empty failure mode as seeds=0: an explicitly
            # empty axis zeroes the whole cartesian product.
            raise ValueError(
                f"sweep({axis_name}=[]) would produce an empty grid; "
                f"pass {axis_name}=None to keep the base's value"
            )

    variants: List[ExperimentSpec] = []
    for di, kwargs in enumerate(params):
        merged = {**base.detector_kwargs, **kwargs}
        for pi, pattern in enumerate(patterns):
            for fi, plan in enumerate(plans):
                for ti, timed in enumerate(timed_list):
                    for si, seed in enumerate(seed_list):
                        # The chaos and timed axes extend the derived-
                        # seed coordinates only when used: without
                        # fault_plans= / timed_params= the formula is
                        # the pre-existing one, byte for byte, so
                        # existing grids (and their committed
                        # artifacts) are untouched.
                        if explicit_seeds:
                            run_seed = seed
                        else:
                            coords: List[Any] = [di, pi]
                            if fault_plans is not None:
                                coords += ["fpl", fi]
                            if timed_params is not None:
                                coords += ["tmd", ti]
                            coords.append(si)
                            run_seed = derive_seed(base.seed, *coords)
                        label = base.label
                        if len(params) > 1:
                            label += f"|{_param_tag(kwargs)}"
                        if len(patterns) > 1:
                            label += f"|fp{pi}"
                        if len(plans) > 1:
                            label += f"|ch{fi}"
                        if len(timed_list) > 1:
                            label += f"|tm{ti}"
                        if len(seed_list) > 1:
                            label += f"|s{run_seed}"
                        overrides: dict = dict(
                            detector_kwargs=merged,
                            crashes=pattern,
                            fault_plan=plan,
                            seed=run_seed,
                            label=label,
                        )
                        if timed is not None:
                            overrides["timed"] = timed
                        variants.append(
                            dataclasses.replace(base, **overrides)
                        )
    return variants


def _param_tag(kwargs: Mapping[str, Any]) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(kwargs.items())) or "base"
