"""The sweep expander: one base spec -> the full experiment grid.

Every empirical claim in the paper is validated by sweeping seeded runs
over fault patterns (and sometimes detector parameters).  ``sweep()``
expands a base :class:`~repro.runner.spec.ExperimentSpec` into the
cartesian product

    detector_params x fault_patterns x seeds

with a stable, collision-free derived seed and a readable label per
variant, ready for :class:`~repro.runner.batch.BatchRunner`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, List, Mapping, Optional, Sequence, Union

from repro.runner.seeds import derive_seed
from repro.runner.spec import ExperimentSpec


def sweep(
    base: ExperimentSpec,
    seeds: Union[int, Iterable[int], None] = None,
    fault_patterns: Optional[Sequence[Any]] = None,
    detector_params: Optional[Sequence[Mapping[str, Any]]] = None,
) -> List[ExperimentSpec]:
    """Expand ``base`` over seeds x fault patterns x detector params.

    Parameters
    ----------
    seeds:
        An iterable of explicit seeds, or an int ``n`` meaning ``n``
        seeds derived from ``base.seed`` (distinct by construction, and
        identical across serial/parallel execution and across machines).
        ``None`` keeps just ``base.seed``.
    fault_patterns:
        Crash plans (``{location: step}`` mappings or ``FaultPattern``
        instances).  ``None`` keeps the base's plan.
    detector_params:
        Keyword-argument dicts merged over ``base.detector_kwargs``
        (e.g. ``[{"k": 1}, {"k": 2}]`` for an ``"omega-k"`` family
        sweep).  ``None`` keeps the base's kwargs.

    Examples
    --------
    >>> base = ExperimentSpec(detector="omega", locations=(0, 1, 2),
    ...                       problem="detector-trace", seed=7)
    >>> variants = sweep(base, seeds=3, fault_patterns=[{}, {0: 5}])
    >>> len(variants)
    6
    >>> len({v.seed for v in variants})
    6
    """
    if seeds is None:
        seed_list: List[int] = [base.seed]
        explicit_seeds = True
    elif isinstance(seeds, int):
        seed_list = list(range(seeds))
        explicit_seeds = False
    else:
        seed_list = [int(s) for s in seeds]
        explicit_seeds = True
    patterns = list(fault_patterns) if fault_patterns is not None else [base.crashes]
    params = (
        [dict(p) for p in detector_params]
        if detector_params is not None
        else [dict(base.detector_kwargs)]
    )

    variants: List[ExperimentSpec] = []
    for di, kwargs in enumerate(params):
        merged = {**base.detector_kwargs, **kwargs}
        for pi, pattern in enumerate(patterns):
            for si, seed in enumerate(seed_list):
                run_seed = (
                    seed
                    if explicit_seeds
                    else derive_seed(base.seed, di, pi, si)
                )
                label = base.label
                if len(params) > 1:
                    label += f"|{_param_tag(kwargs)}"
                if len(patterns) > 1:
                    label += f"|fp{pi}"
                if len(seed_list) > 1:
                    label += f"|s{run_seed}"
                variants.append(
                    dataclasses.replace(
                        base,
                        detector_kwargs=merged,
                        crashes=pattern,
                        seed=run_seed,
                        label=label,
                    )
                )
    return variants


def _param_tag(kwargs: Mapping[str, Any]) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(kwargs.items())) or "base"
