"""The sweep expander: one base spec -> the full experiment grid.

Every empirical claim in the paper is validated by sweeping seeded runs
over fault patterns (and sometimes detector parameters).  ``sweep()``
expands a base :class:`~repro.runner.spec.ExperimentSpec` into the
cartesian product

    detector_params x fault_patterns x seeds

with a stable, collision-free derived seed and a readable label per
variant, ready for :class:`~repro.runner.batch.BatchRunner`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, List, Mapping, Optional, Sequence, Union

from repro.runner.seeds import derive_seed
from repro.runner.spec import ExperimentSpec


def sweep(
    base: ExperimentSpec,
    seeds: Union[int, Iterable[int], None] = None,
    fault_patterns: Optional[Sequence[Any]] = None,
    detector_params: Optional[Sequence[Mapping[str, Any]]] = None,
    fault_plans: Optional[Sequence[Any]] = None,
) -> List[ExperimentSpec]:
    """Expand ``base`` over seeds x fault patterns x detector params
    (x fault plans, when chaos grids are requested).

    Parameters
    ----------
    seeds:
        An iterable of explicit seeds, or an int ``n`` meaning ``n``
        seeds derived from ``base.seed`` (distinct by construction, and
        identical across serial/parallel execution and across machines).
        ``None`` keeps just ``base.seed``.  ``seeds <= 0``, an empty
        iterable, and duplicate explicit seeds all raise ``ValueError``:
        the first two would expand to a grid that runs nothing, the last
        to byte-identical specs/labels that collide in series rows and
        alias content-addressed cache keys.
    fault_patterns:
        Crash plans (``{location: step}`` mappings or ``FaultPattern``
        instances).  ``None`` keeps the base's plan.
    detector_params:
        Keyword-argument dicts merged over ``base.detector_kwargs``
        (e.g. ``[{"k": 1}, {"k": 2}]`` for an ``"omega-k"`` family
        sweep).  ``None`` keeps the base's kwargs.
    fault_plans:
        :class:`~repro.faults.plan.FaultPlan` chaos descriptions
        (``None`` entries meaning "no plan" are allowed in the list).
        ``None`` keeps the base's ``fault_plan`` — and, crucially, the
        pre-chaos derived-seed formula, so grids that never mention
        fault plans produce exactly the specs (and artifacts) they did
        before this axis existed.

    Examples
    --------
    >>> base = ExperimentSpec(detector="omega", locations=(0, 1, 2),
    ...                       problem="detector-trace", seed=7)
    >>> variants = sweep(base, seeds=3, fault_patterns=[{}, {0: 5}])
    >>> len(variants)
    6
    >>> len({v.seed for v in variants})
    6
    """
    if seeds is None:
        seed_list: List[int] = [base.seed]
        explicit_seeds = True
    elif isinstance(seeds, int):
        if seeds <= 0:
            # A zero/negative count would expand to an empty grid that
            # runs nothing and "succeeds" — fail loudly instead.
            raise ValueError(
                f"sweep(seeds={seeds}) would produce an empty grid; "
                "pass seeds=None to keep base.seed, or a positive count"
            )
        seed_list = list(range(seeds))
        explicit_seeds = False
    else:
        seed_list = [int(s) for s in seeds]
        explicit_seeds = True
        if not seed_list:
            raise ValueError(
                "sweep(seeds=[]) would produce an empty grid; "
                "pass seeds=None to keep base.seed"
            )
        duplicates = sorted(
            {s for s in seed_list if seed_list.count(s) > 1}
        )
        if duplicates:
            # Explicit seeds become the run seeds verbatim, so repeats
            # yield byte-identical specs *and labels*: the rows collide
            # in every series and alias any cache keyed on spec identity.
            raise ValueError(
                f"sweep() got duplicate explicit seeds {duplicates}; "
                "each seed expands to an identical spec and label, which "
                "collides in series rows and aliases content-addressed "
                "cache keys — pass distinct seeds (or an int count for "
                "derived ones)"
            )
    patterns = list(fault_patterns) if fault_patterns is not None else [base.crashes]
    params = (
        [dict(p) for p in detector_params]
        if detector_params is not None
        else [dict(base.detector_kwargs)]
    )
    plans = list(fault_plans) if fault_plans is not None else [base.fault_plan]
    for axis_name, axis in (
        ("fault_patterns", patterns),
        ("detector_params", params),
        ("fault_plans", plans),
    ):
        if not axis:
            # Same silent-empty failure mode as seeds=0: an explicitly
            # empty axis zeroes the whole cartesian product.
            raise ValueError(
                f"sweep({axis_name}=[]) would produce an empty grid; "
                f"pass {axis_name}=None to keep the base's value"
            )

    variants: List[ExperimentSpec] = []
    for di, kwargs in enumerate(params):
        merged = {**base.detector_kwargs, **kwargs}
        for pi, pattern in enumerate(patterns):
            for fi, plan in enumerate(plans):
                for si, seed in enumerate(seed_list):
                    # The chaos axis extends the derived-seed coordinates
                    # only when it is used: without fault_plans= the
                    # formula is the pre-chaos one, byte for byte, so
                    # existing grids (and their committed artifacts) are
                    # untouched.
                    if explicit_seeds:
                        run_seed = seed
                    elif fault_plans is None:
                        run_seed = derive_seed(base.seed, di, pi, si)
                    else:
                        run_seed = derive_seed(
                            base.seed, di, pi, "fpl", fi, si
                        )
                    label = base.label
                    if len(params) > 1:
                        label += f"|{_param_tag(kwargs)}"
                    if len(patterns) > 1:
                        label += f"|fp{pi}"
                    if len(plans) > 1:
                        label += f"|ch{fi}"
                    if len(seed_list) > 1:
                        label += f"|s{run_seed}"
                    variants.append(
                        dataclasses.replace(
                            base,
                            detector_kwargs=merged,
                            crashes=pattern,
                            fault_plan=plan,
                            seed=run_seed,
                            label=label,
                        )
                    )
    return variants


def _param_tag(kwargs: Mapping[str, Any]) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(kwargs.items())) or "base"
