"""Seeded fault injection (chaos) and trace-conformance oracles.

The paper's model (Section 2, Figure 1) assumes reliable FIFO channels
and crashes that only stop processes.  This package deliberately steps
*outside* that model to map its boundary:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, a picklable, seeded
  description of the faults to inject (per-channel drop / duplicate /
  reorder / delay, plus event-triggered adversarial crash rules);
* :mod:`repro.faults.channels` — drop-in faulty replacements for the
  reliable channel automata, every decision derived from the plan seed;
* :mod:`repro.faults.adversary` — the crash-rule controller that
  watches a run and crashes locations in reaction to it;
* :mod:`repro.faults.oracles` — composable trace-conformance checkers
  (channel integrity, crash validity, AFD validity, consensus), each
  returning a structured verdict with the first violating trace index.

Wire a plan into a run with ``SystemBuilder.with_fault_plan(plan)`` or
``ExperimentSpec(fault_plan=plan)``; an inert plan (all-zero
probabilities, no crash rules) is provably identical to no plan — the
builder keeps the reliable channels.  See ``docs/CHAOS.md``.
"""

from repro.faults.adversary import CrashRuleController
from repro.faults.channels import (
    ChaosChannel,
    DelayingChannel,
    DuplicatingChannel,
    LossyChannel,
    ReorderingChannel,
    make_faulty_channels,
)
from repro.faults.oracles import (
    AfdValidityOracle,
    ConformanceReport,
    ConsensusAgreementOracle,
    ConsensusTerminationOracle,
    ConsensusValidityOracle,
    CrashValidityOracle,
    FifoOracle,
    NoDuplicationOracle,
    NoLossOracle,
    OracleVerdict,
    TraceOracle,
    channel_integrity_oracles,
    consensus_oracles,
    run_oracles,
)
from repro.faults.plan import ChannelFaults, CrashRule, FaultPlan

__all__ = [
    "AfdValidityOracle",
    "ChannelFaults",
    "ChaosChannel",
    "ConformanceReport",
    "ConsensusAgreementOracle",
    "ConsensusTerminationOracle",
    "ConsensusValidityOracle",
    "CrashRule",
    "CrashRuleController",
    "CrashValidityOracle",
    "DelayingChannel",
    "DuplicatingChannel",
    "FaultPlan",
    "FifoOracle",
    "LossyChannel",
    "NoDuplicationOracle",
    "NoLossOracle",
    "OracleVerdict",
    "ReorderingChannel",
    "TraceOracle",
    "channel_integrity_oracles",
    "consensus_oracles",
    "make_faulty_channels",
    "run_oracles",
]
