"""Fault plans: seeded, picklable descriptions of injected faults.

The paper's model (Section 2, Figure 1) assumes reliable FIFO channels
and a crash automaton that only stops processes.  A :class:`FaultPlan`
describes a deliberate departure from that model: per-channel message
drop/duplicate/reorder/delay faults (probabilistic or scheduled on
explicit send indices) plus adversarial crash rules that trigger on run
events (e.g. "crash the current Omega leader the step after it is first
elected").

Plans are plain frozen dataclasses of hashable values, so they pickle,
compare by value, and ship to ``multiprocessing`` workers unchanged.
Every probabilistic decision a plan induces is derived from its seed via
:func:`repro.runner.seeds.derive_seed` — a pure function of the seed and
the decision's coordinates — so a chaos run is exactly as reproducible
as a fault-free one: same plan, same trace, in any process on any
machine.

A plan whose seed is ``None`` is *unbound*: the experiment engine binds
it to the run's seed (``derive_seed(spec.seed, "fault-plan")``), so a
seed sweep automatically varies the injected faults per run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.runner.seeds import derive_seed

#: Recognized crash-rule triggers (see :class:`CrashRule`).
CRASH_TRIGGERS = (
    "at-step",
    "on-first-fd-output",
    "on-first-decision",
    "on-send-count",
)


@dataclass(frozen=True)
class ChannelFaults:
    """The fault configuration of one channel (or the plan's default).

    Probabilities are per *send* event: each send on the channel draws
    its fate (drop / duplicate / reorder / delay) independently and
    deterministically from the plan seed and the send's index.  The
    ``*_sends`` tuples schedule the same faults on explicit 0-based send
    indices, for tests and adversarial scenarios that need a fault at an
    exact point.

    ``max_delay`` bounds the delay (in channel-local tick steps) a
    delayed message waits before becoming deliverable; delivery order is
    never changed by delays (head-of-line blocking), so a pure delay
    fault preserves every channel-integrity property and only costs
    steps.
    """

    drop_p: float = 0.0
    duplicate_p: float = 0.0
    reorder_p: float = 0.0
    delay_p: float = 0.0
    max_delay: int = 0
    drop_sends: Tuple[int, ...] = ()
    duplicate_sends: Tuple[int, ...] = ()
    reorder_sends: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop_p", "duplicate_p", "reorder_p", "delay_p"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {self.max_delay}")
        if self.delay_p > 0.0 and self.max_delay < 1:
            raise ValueError("delay_p > 0 requires max_delay >= 1")
        for name in ("drop_sends", "duplicate_sends", "reorder_sends"):
            object.__setattr__(self, name, tuple(getattr(self, name)))

    @property
    def is_inert(self) -> bool:
        """Whether this configuration can never inject a fault."""
        return (
            self.drop_p == 0.0
            and self.duplicate_p == 0.0
            and self.reorder_p == 0.0
            and self.delay_p == 0.0
            and not self.drop_sends
            and not self.duplicate_sends
            and not self.reorder_sends
        )

    def summary(self) -> Dict[str, Any]:
        """A JSON-ready description (only the non-default knobs)."""
        out: Dict[str, Any] = {}
        for name in ("drop_p", "duplicate_p", "reorder_p", "delay_p"):
            if getattr(self, name):
                out[name] = getattr(self, name)
        if self.max_delay:
            out["max_delay"] = self.max_delay
        for name in ("drop_sends", "duplicate_sends", "reorder_sends"):
            if getattr(self, name):
                out[name] = list(getattr(self, name))
        return out


@dataclass(frozen=True)
class CrashRule:
    """An adversarial, event-triggered crash.

    Unlike a :class:`~repro.system.fault_pattern.FaultPattern` entry
    (a crash at a fixed global step), a rule *arms* when its trigger
    event occurs in the run and fires ``delay`` steps later, through the
    scheduler policy (see
    :class:`~repro.faults.adversary.CrashRuleController`).

    Triggers
    --------
    ``"at-step"``
        Arms at run start; fires at step ``param``.  ``location`` is
        required (equivalent to a fault-pattern entry, provided so a
        plan can be self-contained).
    ``"on-first-fd-output"``
        Arms on the first failure-detector output of the run.  The
        target defaults to the output's payload head — for Omega-style
        detectors, the elected leader — so the canonical adversary
        "crash the leader the step after it is first elected" is
        ``CrashRule("on-first-fd-output")``.
    ``"on-first-decision"``
        Arms on the first ``decide`` event; target defaults to the
        decider.  Exercises crash-validity and agreement under the
        worst-case "first decider dies immediately" schedule.
    ``"on-send-count"``
        Arms when ``location`` has performed ``param`` sends (crash a
        process mid-protocol).  ``location`` and ``param`` required.

    ``delay`` must be >= 1: the crash fires strictly after the step of
    the trigger event.
    """

    trigger: str
    location: Optional[int] = None
    param: Optional[int] = None
    delay: int = 1

    def __post_init__(self) -> None:
        if self.trigger not in CRASH_TRIGGERS:
            raise ValueError(
                f"unknown trigger {self.trigger!r}; "
                f"supported: {CRASH_TRIGGERS}"
            )
        if self.delay < 1:
            raise ValueError(f"delay must be >= 1, got {self.delay}")
        if self.trigger == "at-step":
            if self.location is None or self.param is None:
                raise ValueError('"at-step" needs location= and param=')
        if self.trigger == "on-send-count":
            if self.location is None or self.param is None:
                raise ValueError(
                    '"on-send-count" needs location= and param='
                )

    def summary(self) -> Dict[str, Any]:
        """A JSON-ready description of this rule."""
        out: Dict[str, Any] = {"trigger": self.trigger, "delay": self.delay}
        if self.location is not None:
            out["location"] = self.location
        if self.param is not None:
            out["param"] = self.param
        return out


ChannelKey = Tuple[int, int]


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seed-derived chaos description for one run.

    Parameters
    ----------
    seed:
        Root of every probabilistic fault decision.  ``None`` (default)
        means *unbound*: the engine derives the effective seed from the
        run's seed, so sweeping seeds sweeps fault schedules too.  Bind
        explicitly with :meth:`bound` / :meth:`derive` when a fixed
        schedule must repeat across runs.
    default:
        The :class:`ChannelFaults` applied to every channel without a
        per-channel override.
    per_channel:
        ``(source, destination) -> ChannelFaults`` overrides.  Accepts a
        mapping; stored as a sorted tuple of pairs so the plan stays
        hashable and order-independent.
    crash_rules:
        Event-triggered adversarial crashes (:class:`CrashRule`).

    Examples
    --------
    >>> plan = FaultPlan.uniform(drop_p=0.1, seed=7)
    >>> plan.for_channel(0, 1).drop_p
    0.1
    >>> plan.is_inert
    False
    >>> FaultPlan().is_inert
    True
    """

    seed: Optional[int] = None
    default: ChannelFaults = field(default_factory=ChannelFaults)
    per_channel: Any = ()
    crash_rules: Tuple[CrashRule, ...] = ()

    def __post_init__(self) -> None:
        items: Iterable
        if isinstance(self.per_channel, Mapping):
            items = self.per_channel.items()
        else:
            items = self.per_channel
        normalized = tuple(
            sorted(((int(s), int(d)), faults) for (s, d), faults in items)
        )
        for key, faults in normalized:
            if not isinstance(faults, ChannelFaults):
                raise TypeError(
                    f"per_channel[{key}] must be a ChannelFaults, "
                    f"got {type(faults).__name__}"
                )
        object.__setattr__(self, "per_channel", normalized)
        object.__setattr__(self, "crash_rules", tuple(self.crash_rules))

    # -- Construction helpers ----------------------------------------------

    @staticmethod
    def inert() -> "FaultPlan":
        """The plan that injects nothing (provably equivalent to no plan)."""
        return FaultPlan()

    @staticmethod
    def uniform(seed: Optional[int] = None, **faults: Any) -> "FaultPlan":
        """A plan applying the same :class:`ChannelFaults` knobs to every
        channel: ``FaultPlan.uniform(drop_p=0.1, seed=3)``."""
        return FaultPlan(seed=seed, default=ChannelFaults(**faults))

    # -- Seed plumbing ------------------------------------------------------

    @property
    def is_bound(self) -> bool:
        """Whether the plan carries a concrete seed."""
        return self.seed is not None

    def bound(self, seed: int) -> "FaultPlan":
        """This plan with ``seed`` filled in (no-op when already bound)."""
        if self.seed is not None:
            return self
        return replace(self, seed=int(seed))

    def derive(self, *components) -> "FaultPlan":
        """A copy whose seed is ``derive_seed(seed, *components)``.

        Requires a bound plan; use :meth:`bound` first otherwise.
        """
        if self.seed is None:
            raise ValueError("cannot derive from an unbound plan")
        return replace(self, seed=derive_seed(self.seed, *components))

    def channel_seed(self, source: int, destination: int) -> int:
        """The per-channel decision seed (stable across processes)."""
        if self.seed is None:
            raise ValueError(
                "plan is unbound; bind it to a run seed first "
                "(FaultPlan.bound / ExperimentSpec handles this)"
            )
        return derive_seed(self.seed, "chan", source, destination)

    # -- Queries ------------------------------------------------------------

    def for_channel(self, source: int, destination: int) -> ChannelFaults:
        """The fault configuration of channel ``source -> destination``."""
        for key, faults in self.per_channel:
            if key == (source, destination):
                return faults
        return self.default

    @property
    def channels_inert(self) -> bool:
        """Whether no channel can ever see an injected fault."""
        return self.default.is_inert and all(
            faults.is_inert for _key, faults in self.per_channel
        )

    @property
    def is_inert(self) -> bool:
        """Whether the whole plan is a no-op (channels and crash rules).

        The system builder keeps the reliable channel automata when this
        holds, so an inert plan is *provably* identical to no plan.
        """
        return self.channels_inert and not self.crash_rules

    def summary(self) -> Dict[str, Any]:
        """A JSON-ready identity for run reports and artifacts."""
        return {
            "seed": self.seed,
            "default": self.default.summary(),
            "per_channel": {
                f"{s}->{d}": faults.summary()
                for (s, d), faults in self.per_channel
            },
            "crash_rules": [r.summary() for r in self.crash_rules],
        }
