"""Faulty channel automata: drop-in replacements for the reliable FIFO
channel that deterministically inject message faults.

:class:`ChaosChannel` realizes one channel's
:class:`~repro.faults.plan.ChannelFaults` under a derived seed.  It keeps
the reliable channel's name, signature and task structure (so a zero-
probability chaos channel produces *byte-identical* traces to
:class:`~repro.system.channel.ChannelAutomaton` — the property tests
enforce this), and stays a pure state machine: every fault decision is a
function of the channel seed and the send's index, never of wall time or
shared RNG state, so chaos runs are exactly as reproducible as fault-free
ones.

State is ``(entries, sends_seen)`` where ``entries`` is a tuple of
``(message, remaining_delay)`` pairs, head first.  Delivery is strictly
head-of-line: delays never change order (they only make the channel tick
through an internal ``chan-tick`` action until the head matures), so

* *drops* violate exactly no-loss,
* *duplicates* violate exactly no-duplication,
* *reorders* violate exactly FIFO order,
* *delays* violate nothing (they cost steps),

which is what lets the oracle negative tests pin each fault type to the
one oracle that must catch it.

Every injected fault is recorded through the metrics half of the
``instrument=`` convention as ``faults.<kind>.<channel name>`` counters.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.faults.plan import ChannelFaults, FaultPlan
from repro.ioa.actions import Action
from repro.ioa.automaton import State
from repro.ioa.signature import FiniteActionSet, Signature
from repro.runner.seeds import derive_seed
from repro.system.channel import ChannelAutomaton, SEND, RECEIVE, receive_action

#: The internal maturation action of a delaying channel.
TICK = "chan-tick"

_TWO_63 = float(2**63)


def tick_action(source: int, destination: int) -> Action:
    """The internal ``chan-tick`` action of channel ``source->destination``.

    Located at the destination (where delivery would happen) and carrying
    the source so every channel's tick is distinct — internal actions of
    one component must not appear in any other component's signature.
    """
    return Action(TICK, destination, (source,))


class ChaosChannel(ChannelAutomaton):
    """A channel ``C_{i,j}`` that injects the faults of one
    :class:`~repro.faults.plan.ChannelFaults` configuration.

    Parameters
    ----------
    source, destination:
        The channel's endpoints.
    faults:
        The fault configuration this channel realizes.
    seed:
        The channel's decision seed — normally
        :meth:`FaultPlan.channel_seed`, so decisions are stable across
        processes and machines.
    instrument:
        The unified instrumentation hook; only the metrics half applies
        (fault counters plus the reliable channel's depth/sends series).
    """

    def __init__(
        self,
        source: int,
        destination: int,
        faults: ChannelFaults,
        seed: int = 0,
        instrument=None,
    ):
        super().__init__(source, destination, instrument=instrument)
        self.faults = faults
        self.seed = int(seed)
        self._tick = tick_action(source, destination)
        base = self._signature
        self._signature = Signature(
            inputs=base.inputs,
            outputs=base.outputs,
            internals=FiniteActionSet((self._tick,)),
        )

    # -- Seeded fault decisions (pure functions of (seed, send index)) -----

    def _uniform(self, kind: str, index: int) -> float:
        """A deterministic uniform draw in [0, 1) for one decision."""
        return derive_seed(self.seed, kind, index) / _TWO_63

    def will_drop(self, index: int) -> bool:
        """Whether send number ``index`` is dropped."""
        f = self.faults
        if index in f.drop_sends:
            return True
        return bool(f.drop_p) and self._uniform("drop", index) < f.drop_p

    def will_duplicate(self, index: int) -> bool:
        """Whether send number ``index`` is enqueued twice."""
        f = self.faults
        if index in f.duplicate_sends:
            return True
        return (
            bool(f.duplicate_p)
            and self._uniform("dup", index) < f.duplicate_p
        )

    def will_reorder(self, index: int) -> bool:
        """Whether send number ``index`` cuts into the queue."""
        f = self.faults
        if index in f.reorder_sends:
            return True
        return (
            bool(f.reorder_p) and self._uniform("reorder", index) < f.reorder_p
        )

    def reorder_slot(self, index: int, queue_len: int) -> int:
        """The queue position a reordered send is inserted at (< tail)."""
        return derive_seed(self.seed, "slot", index) % queue_len

    def delay_of(self, index: int) -> int:
        """The delivery delay (ticks) assigned to send number ``index``."""
        f = self.faults
        if not f.delay_p or self._uniform("delay", index) >= f.delay_p:
            return 0
        return 1 + derive_seed(self.seed, "lag", index) % f.max_delay

    # -- Automaton interface -------------------------------------------------

    def initial_state(self) -> State:
        return ((), 0)

    def transit_view(self, state: State) -> Tuple:
        entries, _seen = state
        return tuple(message for message, _delay in entries)

    def _count_fault(self, kind: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(f"faults.{kind}.{self.name}").inc()

    def apply(self, state: State, action: Action) -> State:
        entries, seen = state
        if action.name == SEND:
            index = seen
            seen += 1
            if self.will_drop(index):
                self._count_fault("dropped")
                return (entries, seen)
            entry = (action.payload[0], self.delay_of(index))
            if entry[1]:
                self._count_fault("delayed")
            if self.will_reorder(index) and entries:
                slot = self.reorder_slot(index, len(entries))
                entries = entries[:slot] + (entry,) + entries[slot:]
                self._count_fault("reordered")
            else:
                entries = entries + (entry,)
            if self.will_duplicate(index):
                entries = entries + (entry,)
                self._count_fault("duplicated")
            if self._metrics is not None:
                self._metrics.counter(f"channel.sends.{self.name}").inc()
                self._metrics.histogram(
                    f"channel.depth.{self.name}"
                ).observe(len(entries))
            return (entries, seen)
        if action.name == RECEIVE:
            if (
                not entries
                or entries[0][1] != 0
                or entries[0][0] != action.payload[0]
            ):
                raise ValueError(
                    f"receive of {action.payload[0]!r} not enabled on "
                    f"{self.name}; head is "
                    f"{entries[0] if entries else 'empty'}"
                )
            entries = entries[1:]
            if self._metrics is not None:
                self._metrics.histogram(
                    f"channel.depth.{self.name}"
                ).observe(len(entries))
            return (entries, seen)
        if action.name == TICK:
            if not entries or entries[0][1] == 0:
                raise ValueError(f"tick not enabled on {self.name}")
            entries = tuple(
                (message, delay - 1 if delay else 0)
                for message, delay in entries
            )
            return (entries, seen)
        raise ValueError(f"channel {self.name} cannot perform {action}")

    def enabled_locally(self, state: State) -> Iterable[Action]:
        entries, _seen = state
        if not entries:
            return
        message, delay = entries[0]
        if delay:
            yield self._tick
        else:
            yield receive_action(self.destination, message, self.source)

    def enabled(self, state: State, action: Action) -> bool:
        if self._signature.is_input(action):
            return True
        entries, _seen = state
        if not entries:
            return False
        message, delay = entries[0]
        if action == self._tick:
            return bool(delay)
        return (
            action.name == RECEIVE
            and delay == 0
            and action in self._signature.outputs
            and action.payload[0] == message
        )


class LossyChannel(ChaosChannel):
    """A channel that drops sends (violates no-loss only)."""

    def __init__(
        self,
        source: int,
        destination: int,
        drop_p: float = 0.0,
        drop_sends: Sequence[int] = (),
        seed: int = 0,
        instrument=None,
    ):
        super().__init__(
            source,
            destination,
            ChannelFaults(drop_p=drop_p, drop_sends=tuple(drop_sends)),
            seed=seed,
            instrument=instrument,
        )


class DuplicatingChannel(ChaosChannel):
    """A channel that enqueues some sends twice (violates no-duplication
    only: both copies are delivered in place, so order is preserved)."""

    def __init__(
        self,
        source: int,
        destination: int,
        duplicate_p: float = 0.0,
        duplicate_sends: Sequence[int] = (),
        seed: int = 0,
        instrument=None,
    ):
        super().__init__(
            source,
            destination,
            ChannelFaults(
                duplicate_p=duplicate_p,
                duplicate_sends=tuple(duplicate_sends),
            ),
            seed=seed,
            instrument=instrument,
        )


class ReorderingChannel(ChaosChannel):
    """A channel where some sends cut into the queue (violates FIFO only)."""

    def __init__(
        self,
        source: int,
        destination: int,
        reorder_p: float = 0.0,
        reorder_sends: Sequence[int] = (),
        seed: int = 0,
        instrument=None,
    ):
        super().__init__(
            source,
            destination,
            ChannelFaults(
                reorder_p=reorder_p, reorder_sends=tuple(reorder_sends)
            ),
            seed=seed,
            instrument=instrument,
        )


class DelayingChannel(ChaosChannel):
    """A channel that holds some messages for a bounded number of internal
    ticks before delivery.  Head-of-line blocking preserves order, so this
    violates no safety property — it only stretches runs."""

    def __init__(
        self,
        source: int,
        destination: int,
        delay_p: float = 1.0,
        max_delay: int = 1,
        seed: int = 0,
        instrument=None,
    ):
        super().__init__(
            source,
            destination,
            ChannelFaults(delay_p=delay_p, max_delay=max_delay),
            seed=seed,
            instrument=instrument,
        )


def make_faulty_channels(
    locations: Sequence[int], plan: FaultPlan
) -> List[ChaosChannel]:
    """One :class:`ChaosChannel` per ordered pair, configured by ``plan``.

    The plan must be bound (carry a concrete seed); the experiment engine
    binds unbound plans to the run seed before building the system.
    """
    if not plan.is_bound:
        raise ValueError(
            "fault plan is unbound; call plan.bound(seed) first"
        )
    return [
        ChaosChannel(
            i,
            j,
            plan.for_channel(i, j),
            seed=plan.channel_seed(i, j),
        )
        for i in locations
        for j in locations
        if i != j
    ]
