"""Trace-conformance oracles: structured checkers over recorded runs.

Each oracle examines one property of an action sequence (normally
``execution.actions`` of a system run) and returns an
:class:`OracleVerdict` carrying the **first violating trace index** — the
0-based position of the earliest action that witnesses the violation.
Liveness properties (no-loss without an in-transit excuse, termination)
have no single violating action; their verdicts use ``len(actions)`` as
the index, marking "the run ended without the required event".

The oracles are deliberately *orthogonal*: each fault type trips exactly
the oracle that names its property and no other (the negative-test suite
in ``tests/faults`` enforces this pairing):

=========================  ===========================================
oracle                     violated by
=========================  ===========================================
:class:`NoLossOracle`      dropped messages (``drop_p``)
:class:`NoDuplicationOracle`  duplicated messages (``duplicate_p``)
:class:`FifoOracle`        reordered messages (``reorder_p``)
:class:`CrashValidityOracle`  unplanned crashes, post-crash activity
:class:`AfdValidityOracle`    detector outputs violating T_D
:class:`ConsensusAgreementOracle`   conflicting decisions
:class:`ConsensusValidityOracle`    deciding an unproposed value
:class:`ConsensusTerminationOracle` live location never decides /
                           decides twice
=========================  ===========================================

Delays (``delay_p``) violate nothing: delivery order is preserved and
every held message is still in transit, so a delayed run is clean under
every oracle here — that, too, is asserted by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.afd import AFD
from repro.ioa.actions import Action
from repro.system.channel import RECEIVE, SEND
from repro.system.environment import DECIDE, PROPOSE
from repro.system.fault_pattern import is_crash


@dataclass(frozen=True)
class OracleVerdict:
    """One oracle's judgement of one trace.

    ``violation_index`` is the 0-based index of the first action
    witnessing the violation; for liveness failures (nothing *happened*
    that should have) it is ``len(actions)``.  ``None`` when ok.
    """

    oracle: str
    ok: bool
    violation_index: Optional[int] = None
    reason: str = ""

    def __bool__(self) -> bool:
        return self.ok

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"oracle": self.oracle, "ok": self.ok}
        if not self.ok:
            out["violation_index"] = self.violation_index
            out["reason"] = self.reason
        return out


@dataclass(frozen=True)
class ConformanceReport:
    """The combined verdicts of a run through several oracles."""

    verdicts: Tuple[OracleVerdict, ...]

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    def __bool__(self) -> bool:
        return self.ok

    @property
    def failures(self) -> Tuple[OracleVerdict, ...]:
        return tuple(v for v in self.verdicts if not v.ok)

    def verdict(self, oracle_name: str) -> OracleVerdict:
        for v in self.verdicts:
            if v.oracle == oracle_name:
                return v
        raise KeyError(f"no verdict from oracle {oracle_name!r}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "verdicts": [v.to_dict() for v in self.verdicts],
        }


class TraceOracle:
    """Base class: a named checker of one property of a trace."""

    name: str = "oracle"

    def check(self, actions: Sequence[Action]) -> OracleVerdict:
        raise NotImplementedError

    def _ok(self) -> OracleVerdict:
        return OracleVerdict(self.name, True)

    def _fail(self, index: int, reason: str) -> OracleVerdict:
        return OracleVerdict(self.name, False, index, reason)


ChannelKey = Tuple[int, int]


def _channel_of(action: Action) -> Optional[ChannelKey]:
    """The (source, destination) key of a send/receive action, else None."""
    if action.name == SEND and len(action.payload) == 2:
        return (action.location, action.payload[1])
    if action.name == RECEIVE and len(action.payload) == 2:
        return (action.payload[1], action.location)
    return None


class NoLossOracle(TraceOracle):
    """Every sent message is eventually received (or still in transit).

    ``final_in_transit`` maps ``(source, destination)`` to the messages
    still queued when the run ended (see
    :func:`repro.system.channel.messages_in_transit`); those sends are
    excused.  Without it, any undelivered send is a violation — use that
    mode only on runs expected to drain their channels.

    Loss is a liveness violation (the receive never happened), so the
    reported index is the *send* whose message went missing — the
    earliest send that can be matched to neither a receive nor a
    still-in-transit message on its channel.
    """

    name = "no-loss"

    def __init__(
        self,
        final_in_transit: Optional[Mapping[ChannelKey, Sequence[Any]]] = None,
    ):
        self.final_in_transit = (
            {k: list(v) for k, v in final_in_transit.items()}
            if final_in_transit is not None
            else {}
        )

    def check(self, actions: Sequence[Action]) -> OracleVerdict:
        sends: Dict[ChannelKey, List[Tuple[int, Any]]] = {}
        receives: Dict[ChannelKey, Dict[Any, int]] = {}
        for k, a in enumerate(actions):
            key = _channel_of(a)
            if key is None:
                continue
            if a.name == SEND:
                sends.setdefault(key, []).append((k, a.payload[0]))
            else:
                bucket = receives.setdefault(key, {})
                bucket[a.payload[0]] = bucket.get(a.payload[0], 0) + 1
        for key in sorted(sends):
            remaining = dict(receives.get(key, {}))
            transit: Dict[Any, int] = {}
            for message in self.final_in_transit.get(key, ()):
                transit[message] = transit.get(message, 0) + 1
            for index, message in sends[key]:
                if remaining.get(message, 0) > 0:
                    remaining[message] -= 1
                elif transit.get(message, 0) > 0:
                    transit[message] -= 1
                else:
                    return self._fail(
                        index,
                        f"message {message!r} sent on {key[0]}->{key[1]} "
                        f"(trace index {index}) was neither received nor "
                        f"in transit at the end of the run",
                    )
        return self._ok()


class NoDuplicationOracle(TraceOracle):
    """No message is received more often than it was sent.

    Walks the trace in order keeping per-channel send/receive tallies
    per message value; the first receive that exceeds its sends is the
    violation (this also catches receives of never-sent messages).
    """

    name = "no-duplication"

    def check(self, actions: Sequence[Action]) -> OracleVerdict:
        sent: Dict[ChannelKey, Dict[Any, int]] = {}
        received: Dict[ChannelKey, Dict[Any, int]] = {}
        for k, a in enumerate(actions):
            key = _channel_of(a)
            if key is None:
                continue
            message = a.payload[0]
            if a.name == SEND:
                bucket = sent.setdefault(key, {})
                bucket[message] = bucket.get(message, 0) + 1
            else:
                bucket = received.setdefault(key, {})
                count = bucket.get(message, 0) + 1
                if count > sent.get(key, {}).get(message, 0):
                    return self._fail(
                        k,
                        f"receive #{count} of message {message!r} on "
                        f"{key[0]}->{key[1]} exceeds its "
                        f"{sent.get(key, {}).get(message, 0)} send(s)",
                    )
                bucket[message] = count
        return self._ok()


class FifoOracle(TraceOracle):
    """Messages are received in the order they were sent (per channel).

    Each receive is matched to the earliest *unmatched* send of the same
    message on its channel (falling back to the earliest send when all
    are matched — a duplicate, which is :class:`NoDuplicationOracle`'s
    business, delivered in place); receives of never-sent messages are
    skipped for the same reason.  A violation is a receive whose matched
    send precedes an already-delivered later send — possible only if the
    channel reordered.
    """

    name = "fifo"

    def check(self, actions: Sequence[Action]) -> OracleVerdict:
        send_positions: Dict[ChannelKey, Dict[Any, List[int]]] = {}
        counts: Dict[ChannelKey, int] = {}
        matched: Dict[ChannelKey, Dict[Any, int]] = {}
        watermark: Dict[ChannelKey, int] = {}
        for k, a in enumerate(actions):
            key = _channel_of(a)
            if key is None:
                continue
            message = a.payload[0]
            if a.name == SEND:
                position = counts.get(key, 0)
                counts[key] = position + 1
                send_positions.setdefault(key, {}).setdefault(
                    message, []
                ).append(position)
                continue
            positions = send_positions.get(key, {}).get(message)
            if not positions:
                continue  # never sent: no-duplication's violation
            used = matched.setdefault(key, {})
            cursor = used.get(message, 0)
            if cursor < len(positions):
                position = positions[cursor]
                used[message] = cursor + 1
            else:
                position = positions[0]  # duplicate of an earlier send
            if position < watermark.get(key, -1):
                return self._fail(
                    k,
                    f"message {message!r} (send #{position} on "
                    f"{key[0]}->{key[1]}) received after send "
                    f"#{watermark[key]} was already delivered",
                )
            watermark[key] = max(watermark.get(key, -1), position)
        return self._ok()


class CrashValidityOracle(TraceOracle):
    """Crashes match the plan, and crashed locations go silent.

    ``allowed`` is the set of locations the fault pattern / crash rules
    may crash; ``None`` allows any.  After a location's crash event, any
    *output activity attributable to that location's process* — a send,
    a propose, or a decision — is a "zombie" violation.  Receives are
    exempt: ``receive(m, i)_j`` is the *channel's* output, and channels
    legitimately deliver to crashed locations.  Failure-detector outputs
    at crashed locations are :class:`AfdValidityOracle`'s business (AFD
    validity, Section 3.1), not this oracle's.
    """

    name = "crash-validity"

    def __init__(self, allowed: Optional[Iterable[int]] = None):
        self.allowed = frozenset(allowed) if allowed is not None else None

    def check(self, actions: Sequence[Action]) -> OracleVerdict:
        crashed: set = set()
        for k, a in enumerate(actions):
            if is_crash(a):
                if (
                    self.allowed is not None
                    and a.location not in self.allowed
                ):
                    return self._fail(
                        k,
                        f"crash at location {a.location} not in the "
                        f"allowed set {sorted(self.allowed)}",
                    )
                crashed.add(a.location)
            elif (
                a.name in (SEND, PROPOSE, DECIDE)
                and a.location in crashed
            ):
                return self._fail(
                    k,
                    f"{a.name} at location {a.location} after its crash",
                )
        return self._ok()


class AfdValidityOracle(TraceOracle):
    """The detector's output events form a valid member of T_D.

    Delegates membership to :meth:`AFD.check_limit` over the trace's
    projection onto I-hat ∪ O_D, then localizes the violation.  Safety
    failures are localized *exactly*: because :meth:`AFD.check_safety`
    is prefix-monotone (a safe trace has only safe prefixes), a binary
    search over prefixes finds the unique event whose arrival first
    makes the trace unsafe — covering not just malformed outputs and
    outputs after a same-location crash but every ``extra_safety``
    property an AFD declares (e.g. P's premature suspicion of a
    live-but-slow peer in a timed run).  Pure liveness failures (too
    few outputs, no stabilization witness) have no violating event and
    report ``len(actions)``.
    """

    name = "afd-validity"

    def __init__(self, afd: AFD, min_live_outputs: int = 1):
        self.afd = afd
        self.min_live_outputs = min_live_outputs

    def check(self, actions: Sequence[Action]) -> OracleVerdict:
        projected: List[Tuple[int, Action]] = [
            (k, a) for k, a in enumerate(actions) if self.afd.is_event(a)
        ]
        events = [a for _k, a in projected]
        result = self.afd.check_limit(events, self.min_live_outputs)
        if result.ok:
            return self._ok()
        reason = "; ".join(result.reasons) or "T_D membership failed"
        if events and not self.afd.check_safety(events):
            # Prefix-monotone safety: binary-search the minimal failing
            # prefix; its last event is the exact violation.
            lo, hi = 0, len(events) - 1
            while lo < hi:
                mid = (lo + hi) // 2
                if self.afd.check_safety(events[: mid + 1]):
                    lo = mid + 1
                else:
                    hi = mid
            return self._fail(projected[lo][0], reason)
        return self._fail(len(actions), reason)


class ConsensusAgreementOracle(TraceOracle):
    """No two decisions disagree (uniform agreement)."""

    name = "consensus-agreement"

    def check(self, actions: Sequence[Action]) -> OracleVerdict:
        first_value = None
        first_index = None
        for k, a in enumerate(actions):
            if a.name != DECIDE:
                continue
            value = a.payload[0]
            if first_value is None:
                first_value, first_index = value, k
            elif value != first_value:
                return self._fail(
                    k,
                    f"decide({value!r}) at location {a.location} disagrees "
                    f"with decide({first_value!r}) at trace index "
                    f"{first_index}",
                )
        return self._ok()


class ConsensusValidityOracle(TraceOracle):
    """Every decided value was proposed by some location."""

    name = "consensus-validity"

    def check(self, actions: Sequence[Action]) -> OracleVerdict:
        proposed: set = set()
        for k, a in enumerate(actions):
            if a.name == PROPOSE:
                proposed.add(a.payload[0])
            elif a.name == DECIDE and a.payload[0] not in proposed:
                return self._fail(
                    k,
                    f"decide({a.payload[0]!r}) at location {a.location} "
                    f"but only {sorted(map(repr, proposed))} were proposed",
                )
        return self._ok()


class ConsensusTerminationOracle(TraceOracle):
    """Every live location decides exactly once.

    ``locations`` is the full location set; live = no crash event in the
    trace.  A second decision at one location is a safety violation at
    its index; a live location that never decides is a liveness
    violation at ``len(actions)``.
    """

    name = "consensus-termination"

    def __init__(self, locations: Sequence[int]):
        self.locations = tuple(locations)

    def check(self, actions: Sequence[Action]) -> OracleVerdict:
        decided: set = set()
        crashed: set = set()
        for k, a in enumerate(actions):
            if is_crash(a):
                crashed.add(a.location)
            elif a.name == DECIDE:
                if a.location in decided:
                    return self._fail(
                        k, f"location {a.location} decided twice"
                    )
                decided.add(a.location)
        missing = [
            i
            for i in self.locations
            if i not in crashed and i not in decided
        ]
        if missing:
            return self._fail(
                len(actions),
                f"live location(s) {missing} never decided",
            )
        return self._ok()


def channel_integrity_oracles(
    final_in_transit: Optional[Mapping[ChannelKey, Sequence[Any]]] = None,
) -> Tuple[TraceOracle, ...]:
    """The reliable-FIFO-channel property bundle (Section 4.3)."""
    return (
        NoLossOracle(final_in_transit),
        NoDuplicationOracle(),
        FifoOracle(),
    )


def consensus_oracles(locations: Sequence[int]) -> Tuple[TraceOracle, ...]:
    """The consensus-specification bundle (agreement/validity/termination)."""
    return (
        ConsensusAgreementOracle(),
        ConsensusValidityOracle(),
        ConsensusTerminationOracle(locations),
    )


def run_oracles(
    actions: Sequence[Action], oracles: Iterable[TraceOracle]
) -> ConformanceReport:
    """Check one trace against several oracles; never short-circuits, so
    the report shows every violated property at once."""
    return ConformanceReport(
        verdicts=tuple(oracle.check(actions) for oracle in oracles)
    )
