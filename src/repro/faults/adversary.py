"""Adversarial, event-triggered crash injection.

A :class:`~repro.system.fault_pattern.FaultPattern` crashes locations at
*fixed global steps*, chosen before the run starts.  The
:class:`~repro.faults.plan.CrashRule` triggers of a fault plan need a
stronger adversary — one that watches the run and reacts to it ("crash
the current Omega leader the step after it is first elected").

:class:`CrashRuleController` implements that adversary with the two
hooks the engine already exposes:

* as an :class:`~repro.obs.trace.Observer` it watches every fired action
  and *arms* rules whose trigger event just occurred (recording the
  target location and the step the crash becomes due);
* :meth:`wrap` turns any :class:`~repro.ioa.scheduler.SchedulerPolicy`
  into one that fires the due crash instead of consulting the wrapped
  policy.  Crash actions are enabled in every state (the crash automaton
  has no fairness obligation), so preempting one turn never violates the
  scheduler's contract, and the run stays deterministic: rule firing is
  a pure function of the trace prefix.

Fired crashes are recorded on :attr:`CrashRuleController.fired` (and as
ordinary ``crash`` events in any attached trace), so oracles can check
crash validity against what the adversary actually did.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.faults.plan import CrashRule
from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton, State
from repro.ioa.scheduler import RoundRobinPolicy, SchedulerPolicy
from repro.obs.trace import Observer, SEND, DECIDE
from repro.system.fault_pattern import crash_action


class CrashRuleController(Observer):
    """Watches a run and fires :class:`CrashRule` crashes when due.

    Parameters
    ----------
    rules:
        The rules to enforce (typically ``plan.crash_rules``).
    fd_output_name:
        The failure detector's output action name (e.g. ``"fd-omega"``);
        required for ``"on-first-fd-output"`` rules to see their trigger.

    Notes
    -----
    Attach the controller to the run as (part of) its observer *and*
    wrap the scheduling policy with :meth:`wrap`; the system builder's
    fault-plan wiring does both.  Each rule fires at most once.  A rule
    whose trigger never occurs — or that comes due only after the run
    ends or quiesces — never fires; :attr:`fired` records what actually
    happened as ``(step, location, rule)`` triples.
    """

    def __init__(
        self,
        rules: Sequence[CrashRule],
        fd_output_name: Optional[str] = None,
    ):
        self.rules: Tuple[CrashRule, ...] = tuple(rules)
        self.fd_output_name = fd_output_name
        self.fired: List[Tuple[int, int, CrashRule]] = []
        #: rule index -> (step the crash becomes due, target location)
        self._armed = {}
        self._done = set()
        self._send_counts = {}

    # -- Observer protocol (trigger detection) ------------------------------

    def on_run_start(self, automaton, max_steps: int) -> None:
        self.fired = []
        self._done = set()
        self._send_counts = {}
        self._armed = {
            idx: (rule.param, rule.location)
            for idx, rule in enumerate(self.rules)
            if rule.trigger == "at-step"
        }

    def on_action(self, step: int, action: Action, injected: bool) -> None:
        name = action.name
        if name == SEND:
            count = self._send_counts.get(action.location, 0) + 1
            self._send_counts[action.location] = count
            for idx, rule in enumerate(self.rules):
                if (
                    rule.trigger == "on-send-count"
                    and self._idle(idx)
                    and rule.location == action.location
                    and count == rule.param
                ):
                    self._armed[idx] = (step + rule.delay, rule.location)
        elif name == DECIDE:
            for idx, rule in enumerate(self.rules):
                if rule.trigger == "on-first-decision" and self._idle(idx):
                    target = (
                        rule.location
                        if rule.location is not None
                        else action.location
                    )
                    self._armed[idx] = (step + rule.delay, target)
        elif self.fd_output_name is not None and name == self.fd_output_name:
            for idx, rule in enumerate(self.rules):
                if rule.trigger == "on-first-fd-output" and self._idle(idx):
                    target = rule.location
                    if target is None:
                        # The payload head of an fd output is the detector's
                        # verdict; for Omega-style detectors it is the
                        # elected leader — the canonical adversary target.
                        target = (
                            action.payload[0]
                            if action.payload
                            else action.location
                        )
                    self._armed[idx] = (step + rule.delay, target)

    def _idle(self, idx: int) -> bool:
        return idx not in self._armed and idx not in self._done

    # -- Firing --------------------------------------------------------------

    def due(self, step: int) -> Optional[Action]:
        """The crash action due at ``step``, if any (consumes the rule)."""
        for idx in sorted(self._armed):
            fire_step, target = self._armed[idx]
            if fire_step is not None and target is not None and fire_step <= step:
                del self._armed[idx]
                self._done.add(idx)
                self.fired.append((step, target, self.rules[idx]))
                return crash_action(target)
        return None

    def crashed_locations(self) -> Tuple[int, ...]:
        """Locations this controller has crashed, in firing order."""
        return tuple(target for _step, target, _rule in self.fired)

    def wrap(self, policy: Optional[SchedulerPolicy] = None) -> SchedulerPolicy:
        """A policy that fires due crashes, else defers to ``policy``
        (default round-robin — the scheduler's own default)."""
        return _RuleDrivenPolicy(self, policy or RoundRobinPolicy())


class _RuleDrivenPolicy(SchedulerPolicy):
    """Fires the controller's due crash; otherwise the inner policy runs.

    The scheduler applies policy-chosen actions directly; crash actions
    are enabled in every state, so preemption is always legal.  When the
    inner policy has nothing enabled the turn still returns the due
    crash, so an armed rule can fire into an otherwise-quiescent system.
    """

    def __init__(self, controller: CrashRuleController, inner: SchedulerPolicy):
        self.controller = controller
        self.inner = inner

    def reset(self) -> None:
        self.inner.reset()

    def choose(
        self, automaton: Automaton, state: State, step: int
    ) -> Optional[Action]:
        due = self.controller.due(step)
        if due is not None:
            return due
        return self.inner.choose(automaton, state, step)
