"""Timing parameters for the discrete-virtual-time detector layer.

Everything here is a plain frozen dataclass of hashable values: the
parameters pickle, compare by value, hash, and serialize to JSON via
:meth:`summary` — which is how they enter ``ExperimentSpec.meta()`` and
therefore the run ledger / result-cache fingerprint.  Time is an integer
tick counter owned by the timed automaton; no wall clock exists anywhere
in this layer (REPRO001-clean by construction).

:class:`DelayModel` describes one channel-delay distribution.  Bounded
mode (``growth == 0``) draws each message's delay uniformly from
``[base, base + jitter]`` (``post_jitter`` after the global
stabilization tick ``gst`` — the classic partial-synchrony window).
Unbounded mode (``growth >= 2``) adds ``growth ** send_index`` ticks to
the ``index``-th send of a channel, so consecutive message delays
outgrow *any* fixed or adaptively-bumped timeout — the timing regime
under which no heartbeat implementation can realize ◇P.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Optional

from repro.runner.seeds import derive_seed


@dataclass(frozen=True)
class DelayModel:
    """A seed-deterministic per-channel message-delay distribution.

    Parameters
    ----------
    base:
        Minimum delivery delay in ticks (>= 1: a message sent at tick t
        is never delivered before t + 1).
    jitter:
        Extra uniform delay in ``[0, jitter]`` ticks, drawn per send via
        :func:`~repro.runner.seeds.derive_seed` — the same draw on any
        machine at any job count.
    gst:
        Global stabilization tick.  Before ``gst`` the jitter bound is
        ``jitter``; from ``gst`` on it is ``post_jitter`` (a partial
        synchrony window in the Dwork–Lynch–Stockmeyer sense).
    post_jitter:
        Jitter bound after ``gst``; ``None`` keeps ``jitter`` (i.e. no
        synchrony change at ``gst``).
    growth:
        ``0`` for bounded delays.  An integer ``>= 2`` makes the model
        *unbounded*: the ``index``-th send of a channel waits an extra
        ``growth ** index`` ticks, so delays grow without bound.
    """

    base: int = 1
    jitter: int = 0
    gst: int = 0
    post_jitter: Optional[int] = None
    growth: int = 0

    def __post_init__(self) -> None:
        if self.base < 1:
            raise ValueError(f"base delay must be >= 1 tick, got {self.base}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        if self.gst < 0:
            raise ValueError(f"gst must be >= 0, got {self.gst}")
        if self.post_jitter is not None and self.post_jitter < 0:
            raise ValueError(
                f"post_jitter must be >= 0, got {self.post_jitter}"
            )
        if self.growth != 0 and self.growth < 2:
            raise ValueError(
                "growth must be 0 (bounded) or an integer >= 2 "
                f"(unbounded), got {self.growth}"
            )

    @property
    def bounded(self) -> bool:
        """Whether every delay this model can draw is bounded."""
        return self.growth == 0

    @property
    def max_total(self) -> int:
        """The worst-case delay of a bounded model, in ticks.

        For partial-synchrony models this is the *pre-gst* bound (the
        post-gst bound is ``base + post_jitter``).  Unbounded models
        have no bound; asking for one is a caller bug.
        """
        if not self.bounded:
            raise ValueError("an unbounded delay model has no max_total")
        return self.base + max(self.jitter, self.post_jitter or 0)

    def delay_of(self, channel_seed: int, index: int, now: int) -> int:
        """The delay (ticks) of the ``index``-th send on a channel.

        A pure function of ``(channel_seed, index, now)`` — reproducible
        across processes and machines.  ``now`` only selects which side
        of ``gst`` the send falls on.
        """
        jitter = self.jitter
        if self.post_jitter is not None and now >= self.gst:
            jitter = self.post_jitter
        extra = 0
        if jitter:
            extra = derive_seed(channel_seed, "lag", index) % (jitter + 1)
        if self.growth:
            # Exact integer power: unbounded delays must not saturate.
            extra += self.growth ** index
        return self.base + extra

    def summary(self) -> Dict[str, Any]:
        """A JSON-ready description (only the non-default knobs)."""
        out: Dict[str, Any] = {"base": self.base}
        if self.jitter:
            out["jitter"] = self.jitter
        if self.gst:
            out["gst"] = self.gst
        if self.post_jitter is not None:
            out["post_jitter"] = self.post_jitter
        if self.growth:
            out["growth"] = self.growth
        return out


@dataclass(frozen=True)
class TimedParams:
    """The timing knobs of one timed-detector run.

    One value object covers all three registered implementations; each
    reads the knobs it cares about (the heartbeat detector ignores
    ``query_period``, the ping/pong detector ignores
    ``heartbeat_period`` and ``lease``).

    Parameters
    ----------
    heartbeat_period:
        Ticks between heartbeat broadcasts (heartbeat / leader-lease).
    timeout:
        Initial suspicion timeout in ticks: a peer quiet for more than
        ``timeout`` ticks (heartbeat) — or a ping unanswered for more
        than ``timeout`` ticks (ping/pong) — becomes suspected.
    timeout_bump:
        Adaptive increment: when a heartbeat-style suspicion proves
        false (a message from the suspect arrives), that peer's timeout
        grows by this much.  ``0`` disables adaptation.
    query_period:
        Ticks between ping rounds (ping/pong only).
    lease:
        The *leader's* suspicion threshold in the leader-lease detector:
        the current leader is only demoted after ``lease`` ticks of
        silence, damping leadership changes relative to plain peers.
    delay:
        The channel :class:`DelayModel`.
    """

    heartbeat_period: int = 2
    timeout: int = 6
    timeout_bump: int = 2
    query_period: int = 4
    lease: int = 10
    delay: DelayModel = field(default_factory=DelayModel)

    def __post_init__(self) -> None:
        for name in ("heartbeat_period", "timeout", "query_period", "lease"):
            value = getattr(self, name)
            if value < 1:
                raise ValueError(f"{name} must be >= 1 tick, got {value}")
        if self.timeout_bump < 0:
            raise ValueError(
                f"timeout_bump must be >= 0, got {self.timeout_bump}"
            )
        if not isinstance(self.delay, DelayModel):
            raise TypeError(
                "delay must be a DelayModel, "
                f"got {type(self.delay).__name__}"
            )

    # -- Construction --------------------------------------------------------

    @staticmethod
    def coerce(value: Any) -> "TimedParams":
        """Normalize whatever names timed params into a TimedParams.

        ``None`` -> defaults; an instance passes through; a mapping is
        merged over the defaults (``{"timeout": 4}``,
        ``{"delay": {"jitter": 2}}``).
        """
        if value is None:
            return TimedParams()
        if isinstance(value, TimedParams):
            return value
        if isinstance(value, Mapping):
            return TimedParams().merged(value)
        raise TypeError(
            "timed params must be a TimedParams, a mapping of overrides, "
            f"or None; got {type(value).__name__}"
        )

    def merged(self, overrides: Mapping[str, Any]) -> "TimedParams":
        """A copy with ``overrides`` applied.

        ``"delay"`` accepts a :class:`DelayModel` or a mapping of
        :class:`DelayModel` overrides (merged over *this* value's delay
        model).  Unknown keys raise ``ValueError`` naming the valid
        ones, so sweep-grid typos fail loudly instead of silently
        running the defaults.
        """
        valid = {f.name for f in fields(self)}
        unknown = sorted(set(overrides) - valid)
        if unknown:
            raise ValueError(
                f"unknown timed param(s) {unknown}; valid keys: "
                + ", ".join(sorted(valid))
            )
        merged = dict(overrides)
        if "delay" in merged and not isinstance(merged["delay"], DelayModel):
            delay_overrides = merged["delay"]
            if not isinstance(delay_overrides, Mapping):
                raise TypeError(
                    'timed param "delay" must be a DelayModel or a '
                    f"mapping, got {type(delay_overrides).__name__}"
                )
            delay_valid = {f.name for f in fields(DelayModel)}
            delay_unknown = sorted(set(delay_overrides) - delay_valid)
            if delay_unknown:
                raise ValueError(
                    f"unknown delay param(s) {delay_unknown}; valid "
                    "keys: " + ", ".join(sorted(delay_valid))
                )
            merged["delay"] = replace(self.delay, **delay_overrides)
        return replace(self, **merged)

    # -- Identity ------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """The JSON-ready identity of these params.

        Every field appears (timed runs are *defined* by their timing
        assumptions, so nothing is elided), making the dict a stable
        component of ``spec_fingerprint`` — change a timeout, change the
        cache key.
        """
        return {
            "heartbeat_period": self.heartbeat_period,
            "timeout": self.timeout,
            "timeout_bump": self.timeout_bump,
            "query_period": self.query_period,
            "lease": self.lease,
            "delay": self.delay.summary(),
        }
