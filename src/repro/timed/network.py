"""The timed message transport: seed-deterministic delays + fault plans.

:class:`TimedNetwork` is *not* an automaton — it is the pure-function
transport embedded in a :class:`~repro.timed.automaton.
TimedDetectorAutomaton`.  The network object itself is immutable
configuration (channels, delay model, fault plan, seed); the queue
contents live in the automaton's state as nested tuples, and every
method is a pure function ``state -> state`` so the enclosing automaton
keeps the Section-2 purity contract (REPROC04).

Composability with the PR 4 chaos machinery: when a bound
:class:`~repro.faults.plan.FaultPlan` is attached, each send consults
``plan.for_channel(src, dst)`` and draws its drop/duplicate fate from
``derive_seed(plan.channel_seed(src, dst), kind, index)`` — the exact
decision stream :class:`~repro.faults.channels.ChaosChannel` uses, so a
plan injects the *same* per-send faults whether its channel is a
message-automaton or this timed transport.  A network partition is a
cut-set of channels at ``drop_p=1.0`` (a dropped message and an
infinitely delayed one are indistinguishable to an asynchronous
observer).  ``reorder_p``/``delay_p`` knobs are ignored here: the timed
transport has its own delay distribution, and reordering already
emerges from per-message jitter.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.runner.seeds import derive_seed
from repro.timed.params import DelayModel

#: One queued message: (arrival tick, send sequence, payload).  The
#: sequence number makes ordering total and deterministic when several
#: messages share an arrival tick.
Flight = Tuple[int, int, Hashable]

#: One channel's transport state: (sends so far, queued messages).
ChannelState = Tuple[int, Tuple[Flight, ...]]

#: The whole network's state: one ChannelState per channel, in the
#: network's canonical channel order.
NetState = Tuple[ChannelState, ...]

_TWO_63 = float(2**63)


class TimedNetwork:
    """The virtual-time transport over a full location mesh.

    Parameters
    ----------
    locations:
        The location set; one directed channel per ordered pair.
    delay:
        The :class:`~repro.timed.params.DelayModel` every channel draws
        delivery delays from.
    seed:
        Root of the delay-draw streams (``derive_seed(seed, "chan", src,
        dst)`` per channel).
    plan:
        An optional **bound** :class:`~repro.faults.plan.FaultPlan`;
        its per-channel ``drop_p``/``drop_sends``/``duplicate_p``/
        ``duplicate_sends`` knobs apply to every send.
    """

    def __init__(
        self,
        locations: Sequence[int],
        delay: DelayModel,
        seed: int,
        plan: Optional[Any] = None,
    ):
        self.locations = tuple(locations)
        self.delay = delay
        self.seed = int(seed)
        if plan is not None and not plan.is_bound:
            raise ValueError(
                "TimedNetwork needs a bound FaultPlan; bind it to a run "
                "seed first (ExperimentSpec.resolve_fault_plan does this)"
            )
        self.plan = plan
        self.channels: Tuple[Tuple[int, int], ...] = tuple(
            (src, dst)
            for src in self.locations
            for dst in self.locations
            if src != dst
        )
        self._channel_index: Dict[Tuple[int, int], int] = {
            chan: k for k, chan in enumerate(self.channels)
        }
        self._delay_seeds = tuple(
            derive_seed(self.seed, "chan", src, dst)
            for src, dst in self.channels
        )
        self._faults = tuple(
            plan.for_channel(src, dst) if plan is not None else None
            for src, dst in self.channels
        )
        self._fault_seeds = tuple(
            plan.channel_seed(src, dst) if plan is not None else 0
            for src, dst in self.channels
        )

    # -- State values --------------------------------------------------------

    def initial(self) -> NetState:
        """The empty transport: zero sends, nothing in flight."""
        return tuple((0, ()) for _ in self.channels)

    # -- Pure transitions ----------------------------------------------------

    def send(
        self, net: NetState, src: int, dst: int, message: Hashable, now: int
    ) -> NetState:
        """Enqueue ``message`` on ``src -> dst`` at tick ``now``.

        The send's fate (dropped / delivered after a drawn delay /
        additionally duplicated) is a pure function of the network seed,
        the fault plan, and the channel's send index.
        """
        k = self._channel_index[(src, dst)]
        sends, flight = net[k]
        index = sends
        queued = list(flight)
        if not self._dropped(k, index):
            delay = self.delay.delay_of(self._delay_seeds[k], index, now)
            queued.append((now + delay, index, message))
            if self._duplicated(k, index):
                dup_delay = self.delay.delay_of(
                    derive_seed(self._delay_seeds[k], "dup"), index, now
                )
                queued.append((now + dup_delay, index, message))
            queued.sort()
        channel: ChannelState = (sends + 1, tuple(queued))
        return net[:k] + (channel,) + net[k + 1 :]

    def deliver(
        self, net: NetState, now: int
    ) -> Tuple[NetState, List[Tuple[int, int, Hashable]]]:
        """Extract every message whose arrival tick has been reached.

        Returns ``(new state, deliveries)`` with deliveries as
        ``(dst, src, message)`` triples in canonical channel order (and
        arrival order within a channel) — fully deterministic.
        """
        out: List[Tuple[int, int, Hashable]] = []
        new_channels: List[ChannelState] = []
        changed = False
        for k, (sends, flight) in enumerate(net):
            if flight and flight[0][0] <= now:
                src, dst = self.channels[k]
                kept = []
                for arrival, seq, message in flight:
                    if arrival <= now:
                        out.append((dst, src, message))
                    else:
                        kept.append((arrival, seq, message))
                new_channels.append((sends, tuple(kept)))
                changed = True
            else:
                new_channels.append((sends, flight))
        if not changed:
            return net, out
        return tuple(new_channels), out

    # -- Queries -------------------------------------------------------------

    def total_sends(self, net: NetState) -> int:
        """How many sends the transport has seen (dropped ones included)."""
        return sum(sends for sends, _flight in net)

    def in_flight(self, net: NetState) -> int:
        """How many messages are still queued for delivery."""
        return sum(len(flight) for _sends, flight in net)

    # -- Fault draws (the ChaosChannel decision streams) ---------------------

    def _dropped(self, k: int, index: int) -> bool:
        faults = self._faults[k]
        if faults is None:
            return False
        if index in faults.drop_sends:
            return True
        if faults.drop_p <= 0.0:
            return False
        if faults.drop_p >= 1.0:
            return True
        draw = derive_seed(self._fault_seeds[k], "drop", index) / _TWO_63
        return draw < faults.drop_p

    def _duplicated(self, k: int, index: int) -> bool:
        faults = self._faults[k]
        if faults is None:
            return False
        if index in faults.duplicate_sends:
            return True
        if faults.duplicate_p <= 0.0:
            return False
        draw = derive_seed(self._fault_seeds[k], "dup", index) / _TWO_63
        return draw < faults.duplicate_p
