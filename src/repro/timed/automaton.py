"""Timed detector implementations as Section-2 I/O automata.

A :class:`TimedDetectorAutomaton` composes N per-location detector
processes, a virtual integer clock, and a :class:`~repro.timed.network.
TimedNetwork` into **one** I/O automaton in the existing Section-2
sense: immutable hashable states, pure ``apply``, input-enabled crash
actions, and a task partition the round-robin scheduler treats exactly
like the zoo detectors' —

* task ``"clock"`` holds the single always-enabled internal ``tick``
  action.  Each tick advances virtual time by one, delivers every
  message whose arrival tick has been reached, and runs every live
  process's step function (consume inbox, update suspicion, emit new
  sends into the network);
* task ``"out[i]"`` holds exactly one action per live location ``i``:
  the fd output computed from i's current process state (suspects,
  leader, ...).  Outputs never change state, mirroring
  :class:`~repro.detectors.base.CrashsetDetectorAutomaton`.

Under the default round-robin policy a "cycle" is therefore one tick
followed by one fd output per live location — every run interleaves
time, delivery, and outputs fairly, and the emitted trace (crash events
+ fd outputs) is directly judged by the PR 4 conformance oracles
against the implementation's *target AFD* (:meth:`afd`).

Because states are plain nested tuples, the automaton is also
compiled-path compatible: :class:`~repro.ioa.scheduler.Scheduler` with
``compiled=True`` lowers it through the generic
:func:`~repro.compiled.tables.compile_automaton` bridge and replays
bit-for-bit.
"""

from __future__ import annotations

from abc import abstractmethod
from typing import (
    Any,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.afd import AFD
from repro.ioa.actions import Action
from repro.ioa.automaton import Automaton, State
from repro.ioa.signature import (
    FiniteActionSet,
    PredicateActionSet,
    Signature,
)
from repro.system.fault_pattern import CRASH, crash_action
from repro.timed.network import TimedNetwork
from repro.timed.params import TimedParams

#: The internal clock action: one per automaton, always enabled (time
#: never stops, even when every process has crashed).
TICK = "timed-tick"

#: Wire messages.  Plain strings: channel identity (src, dst) is carried
#: by the transport, not the payload.
HEARTBEAT = "hb"
PING = "ping"
PONG = "pong"


class TimedDetectorAutomaton(Automaton):
    """Base class of the timed detector implementations.

    Subclasses define the per-process state machine via three hooks —
    :meth:`node_initial`, :meth:`node_step`, :meth:`node_output` — plus
    the class attribute :attr:`output_name` (the fd-output vocabulary,
    e.g. ``"fd-evp"``) and :meth:`afd` (the target AFD specification
    whose oracles judge the emitted traces).

    Parameters
    ----------
    locations:
        The location set Pi.
    params:
        :class:`~repro.timed.params.TimedParams` (or a mapping / None,
        coerced).
    seed:
        Root of the transport's delay-draw streams.
    plan:
        An optional bound :class:`~repro.faults.plan.FaultPlan` whose
        channel drop/duplicate knobs apply to every message.
    """

    #: The fd-output action name; subclasses set this.
    output_name: str = ""

    def __init__(
        self,
        locations: Sequence[int],
        params: Any = None,
        seed: int = 0,
        plan: Optional[Any] = None,
        name: str = "",
    ):
        super().__init__(name or type(self).__name__)
        if not self.output_name:
            raise TypeError(
                f"{type(self).__name__} must define output_name"
            )
        self.locations: Tuple[int, ...] = tuple(locations)
        if len(set(self.locations)) != len(self.locations):
            raise ValueError(
                f"duplicate locations: {list(self.locations)}"
            )
        if len(self.locations) < 2:
            raise ValueError(
                "a timed detector needs >= 2 locations (there is "
                "nothing to monitor otherwise)"
            )
        self.params: TimedParams = TimedParams.coerce(params)
        self.network = TimedNetwork(
            self.locations, self.params.delay, seed, plan
        )
        self._index: Dict[int, int] = {
            loc: k for k, loc in enumerate(self.locations)
        }
        self._others: Dict[int, Tuple[int, ...]] = {
            loc: tuple(j for j in self.locations if j != loc)
            for loc in self.locations
        }
        self._other_index: Dict[int, Dict[int, int]] = {
            loc: {j: k for k, j in enumerate(others)}
            for loc, others in self._others.items()
        }
        self._tick_action = Action(TICK, None, ())
        self._tasks = ("clock",) + tuple(
            f"out[{i}]" for i in self.locations
        )
        output_name = self.output_name
        in_locations = frozenset(self.locations)
        self._signature = Signature(
            inputs=FiniteActionSet(
                tuple(crash_action(i) for i in self.locations)
            ),
            outputs=PredicateActionSet(
                lambda a: a.name == output_name and a.location in in_locations,
                f"{output_name}(*)_i",
            ),
            internals=FiniteActionSet((self._tick_action,)),
        )

    # -- Per-process hooks (subclass API) ------------------------------------

    @abstractmethod
    def node_initial(self, location: int) -> Hashable:
        """Location ``location``'s initial process state."""

    @abstractmethod
    def node_step(
        self,
        location: int,
        node: Hashable,
        now: int,
        inbox: Tuple[Tuple[int, Hashable], ...],
    ) -> Tuple[Hashable, Tuple[Tuple[int, Hashable], ...]]:
        """One tick of location ``location``'s process.

        ``inbox`` is the tick's deliveries as ``(source, message)``
        pairs in canonical channel order.  Returns ``(new process
        state, sends)`` with sends as ``(destination, message)`` pairs.
        Must be a pure function of its arguments.
        """

    @abstractmethod
    def node_output(
        self, location: int, node: Hashable
    ) -> Tuple[Hashable, ...]:
        """The payload of ``location``'s current fd output."""

    @abstractmethod
    def afd(self) -> AFD:
        """The target AFD specification this implementation aims for.

        The conformance question of the timed layer is exactly: are
        this automaton's traces members of ``T_D`` for this AFD, under
        the run's timing assumptions and fault plan?
        """

    # -- Convenience ---------------------------------------------------------

    def others(self, location: int) -> Tuple[int, ...]:
        """Every location except ``location`` (monitoring targets)."""
        return self._others[location]

    def other_index(self, location: int) -> Dict[int, int]:
        """Peer -> index into ``location``'s per-peer state tuples."""
        return self._other_index[location]

    def messages_sent(self, state: State) -> int:
        """Total transport sends in ``state`` (dropped ones included)."""
        return self.network.total_sends(state[3])

    def now(self, state: State) -> int:
        """The virtual time of ``state``, in ticks."""
        return state[0]

    def crashed_locations(self, state: State) -> Tuple[int, ...]:
        """The locations whose crash events have occurred, in order."""
        _now, flags, _nodes, _net = state
        return tuple(
            loc for k, loc in enumerate(self.locations) if flags[k]
        )

    def node_state(self, state: State, location: int) -> Hashable:
        """Location ``location``'s process state within ``state``."""
        return state[2][self._index[location]]

    # -- Automaton interface -------------------------------------------------

    @property
    def signature(self) -> Signature:
        return self._signature

    def initial_state(self) -> State:
        return (
            0,
            (False,) * len(self.locations),
            tuple(self.node_initial(loc) for loc in self.locations),
            self.network.initial(),
        )

    def apply(self, state: State, action: Action) -> State:
        if action.name == CRASH:
            k = self._index.get(action.location)
            if k is None:
                return state  # not our location: inputs are no-ops
            now, flags, nodes, net = state
            if flags[k]:
                return state  # crash events are idempotent
            return (now, flags[:k] + (True,) + flags[k + 1 :], nodes, net)
        if action.name == TICK:
            return self._advance(state)
        return state  # fd outputs never change state

    def _advance(self, state: State) -> State:
        """One tick: time, then delivery, then every live process."""
        now, flags, nodes, net = state
        now += 1
        net, deliveries = self.network.deliver(net, now)
        inboxes: Dict[int, List[Tuple[int, Hashable]]] = {}
        for dst, src, message in deliveries:
            inboxes.setdefault(dst, []).append((src, message))
        new_nodes: List[Hashable] = []
        outgoing: List[Tuple[int, int, Hashable]] = []
        for k, loc in enumerate(self.locations):
            if flags[k]:
                # A crashed process consumes nothing and sends nothing;
                # its queued deliveries evaporate.
                new_nodes.append(nodes[k])
                continue
            node, sends = self.node_step(
                loc, nodes[k], now, tuple(inboxes.get(loc, ()))
            )
            new_nodes.append(node)
            outgoing.extend((loc, dst, message) for dst, message in sends)
        for src, dst, message in outgoing:
            net = self.network.send(net, src, dst, message, now)
        return (now, flags, tuple(new_nodes), net)

    def _output_at(self, location: int, state: State) -> Action:
        return Action(
            self.output_name,
            location,
            self.node_output(location, self.node_state(state, location)),
        )

    def enabled_locally(self, state: State) -> Iterable[Action]:
        yield self._tick_action
        _now, flags, _nodes, _net = state
        for k, loc in enumerate(self.locations):
            if not flags[k]:
                yield self._output_at(loc, state)

    def enabled(self, state: State, action: Action) -> bool:
        if self._signature.is_input(action):
            return True
        if action.name == TICK:
            return action == self._tick_action
        if action.name != self.output_name:
            return False
        k = self._index.get(action.location)
        if k is None or state[1][k]:
            return False
        return action == self._output_at(action.location, state)

    # -- Tasks ----------------------------------------------------------------

    def tasks(self) -> Sequence[str]:
        return self._tasks

    def task_of(self, action: Action) -> Optional[str]:
        if action.name == TICK:
            return "clock"
        if (
            action.name == self.output_name
            and action.location in self._index
        ):
            return f"out[{action.location}]"
        return None

    def enabled_in_task(self, state: State, task: str) -> Tuple[Action, ...]:
        if task == "clock":
            return (self._tick_action,)
        for loc in self.locations:
            if task == f"out[{loc}]":
                if state[1][self._index[loc]]:
                    return ()
                return (self._output_at(loc, state),)
        return ()
