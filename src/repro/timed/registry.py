"""The timed-implementation registry.

Mirrors :mod:`repro.detectors.registry` for the timed layer: canonical
names plus forgiving aliases, a resolver that fails loudly with the
valid spellings, and an iterator the contract linter uses to sweep
every registered implementation.  Unlike the detector zoo — whose
automata *generate* AFD-canonical traces by construction — a timed
implementation merely *aims* for its target AFD; whether a given run's
trace lands in ``T_D`` depends on the timing assumptions and fault
plan, which is exactly what the conformance oracles decide.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Type

from repro.core.afd import AFD
from repro.timed.automaton import TimedDetectorAutomaton
from repro.timed.heartbeat import HeartbeatDetector
from repro.timed.leader_lease import LeaderLeaseDetector
from repro.timed.pingpong import PingPongDetector

#: Canonical name -> implementation class.  Keys are the spellings used
#: in ``ExperimentSpec.meta()`` / cache fingerprints, sweep labels, and
#: the E18 series.
IMPLEMENTATIONS: Dict[str, Type[TimedDetectorAutomaton]] = {
    "heartbeat": HeartbeatDetector,
    "ping-pong": PingPongDetector,
    "leader-lease": LeaderLeaseDetector,
}

#: Forgiving spellings -> canonical names.
ALIASES: Dict[str, str] = {
    "hb": "heartbeat",
    "heart-beat": "heartbeat",
    "pingpong": "ping-pong",
    "ping": "ping-pong",
    "lease": "leader-lease",
    "leader": "leader-lease",
    "omega-lease": "leader-lease",
}


def implementation_names() -> List[str]:
    """The canonical implementation names, sorted."""
    return sorted(IMPLEMENTATIONS)


def resolve_implementation(name: str) -> str:
    """Map ``name`` (canonical or alias, any case) to its canonical name."""
    key = str(name).strip().lower().replace("_", "-")
    key = ALIASES.get(key, key)
    if key not in IMPLEMENTATIONS:
        raise ValueError(
            f"unknown timed implementation {name!r}; known: "
            + ", ".join(implementation_names())
        )
    return key


def build_automaton(
    name: str,
    locations: Sequence[int],
    params: Any = None,
    seed: int = 0,
    plan: Optional[Any] = None,
) -> TimedDetectorAutomaton:
    """Instantiate the implementation ``name`` over ``locations``."""
    cls = IMPLEMENTATIONS[resolve_implementation(name)]
    return cls(locations, params=params, seed=seed, plan=plan)


def target_afd(name: str, locations: Sequence[int]) -> AFD:
    """The AFD specification implementation ``name`` aims for."""
    return build_automaton(name, locations).afd()


def iter_timed_automata(
    locations: Sequence[int] = (0, 1, 2),
) -> Iterator[Tuple[str, TimedDetectorAutomaton]]:
    """Yield ``(canonical name, instance)`` for every implementation.

    The contract linter sweeps these (plus their compiled twins) with
    crash probes, exactly as it does the detector zoo.
    """
    for name in implementation_names():
        yield name, build_automaton(name, locations)
