"""The heartbeat-timeout detector (◇P-style, adaptive timeout).

The classic eventually-perfect implementation from the partial-synchrony
literature (Chandra–Toueg Section 2; Sens et al., arXiv cs/0701015):
every process broadcasts a heartbeat every ``heartbeat_period`` ticks
and suspects any peer it has not heard from for more than that peer's
current timeout.  A suspicion that proves false — a message from the
suspect arrives — is retracted and that peer's timeout grows by
``timeout_bump``, so under *bounded* delay every process eventually
overestimates the real bound and false suspicions stop: the trace
satisfies ◇P (eventual strong accuracy + strong completeness).  Under
unbounded delay (``DelayModel.growth >= 2``) the constant bump loses the
race against geometrically growing delays and accuracy never
stabilizes: ◇P conformance provably fails.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Tuple

from repro.core.afd import AFD
from repro.detectors.base import sorted_tuple
from repro.detectors.eventually_perfect import (
    EVENTUALLY_PERFECT_OUTPUT,
    EventuallyPerfect,
)
from repro.timed.automaton import HEARTBEAT, TimedDetectorAutomaton

#: Per-process state: one entry per peer (``others(location)`` order) —
#: (last arrival tick, current timeout, suspected?).
HeartbeatNode = Tuple[
    Tuple[int, ...], Tuple[int, ...], Tuple[bool, ...]
]


class HeartbeatDetector(TimedDetectorAutomaton):
    """◇P-style heartbeat detector with an adaptive per-peer timeout."""

    output_name = EVENTUALLY_PERFECT_OUTPUT

    def afd(self) -> AFD:
        return EventuallyPerfect(self.locations)

    def node_initial(self, location: int) -> HeartbeatNode:
        n = len(self.others(location))
        return ((0,) * n, (self.params.timeout,) * n, (False,) * n)

    def _leader_hint(
        self, location: int, susp: List[bool]
    ) -> Optional[int]:
        """The peer (if any) whose silence tolerance is ``lease``.

        Plain heartbeat monitoring treats every peer alike; the
        leader-lease subclass points this at its current leader.
        """
        return None

    def node_step(
        self,
        location: int,
        node: Hashable,
        now: int,
        inbox: Tuple[Tuple[int, Hashable], ...],
    ) -> Tuple[HeartbeatNode, Tuple[Tuple[int, Hashable], ...]]:
        lasts, touts, susp = node
        lasts, touts, susp = list(lasts), list(touts), list(susp)
        index = self.other_index(location)
        for src, message in inbox:
            if message != HEARTBEAT:
                continue
            k = index[src]
            lasts[k] = now
            if susp[k]:
                # False suspicion: retract it and adapt the timeout.
                susp[k] = False
                touts[k] += self.params.timeout_bump
        leader = self._leader_hint(location, susp)
        for k, peer in enumerate(self.others(location)):
            if susp[k]:
                continue
            threshold = touts[k]
            if leader is not None and peer == leader:
                threshold = max(threshold, self.params.lease)
            if now - lasts[k] > threshold:
                susp[k] = True
        sends: Tuple[Tuple[int, Hashable], ...] = ()
        if now % self.params.heartbeat_period == 0:
            sends = tuple(
                (dst, HEARTBEAT) for dst in self.others(location)
            )
        return (tuple(lasts), tuple(touts), tuple(susp)), sends

    def node_output(
        self, location: int, node: Hashable
    ) -> Tuple[Hashable, ...]:
        _lasts, _touts, susp = node
        return (
            sorted_tuple(
                peer
                for peer, suspected in zip(self.others(location), susp)
                if suspected
            ),
        )
