"""The ping/pong query detector (P-style, round-trip timeout).

The query-response implementation (cf. the Sastry–Widder solvability
comparison, arXiv 1407.3286): every ``query_period`` ticks a process
pings each trusted peer with no outstanding query; a peer answers every
ping with a pong in the same tick it arrives.  A query outstanding for
more than ``timeout`` ticks makes the peer suspected **permanently** —
P's strong accuracy forbids retraction, so the suspicion must simply
never be wrong.  It never is exactly when the timeout covers the
worst-case round trip: one delivery each way, i.e. ``timeout >=
2 * delay.max_total - 1`` (the pong of a ping sent at tick ``s``
arrives by ``s + 2 * max_total`` and is consumed *before* that tick's
suspicion check).  Below that bound a slow-but-live peer is suspected
at a computable first index and the P conformance oracle localizes the
premature-suspicion output exactly.
"""

from __future__ import annotations

from typing import Hashable, List, Tuple

from repro.core.afd import AFD
from repro.detectors.base import sorted_tuple
from repro.detectors.perfect import PERFECT_OUTPUT, Perfect
from repro.timed.automaton import PING, PONG, TimedDetectorAutomaton

#: Per-process state: one entry per peer (``others(location)`` order) —
#: (tick the outstanding ping was sent, or -1; suspected?).
PingPongNode = Tuple[Tuple[int, ...], Tuple[bool, ...]]


class PingPongDetector(TimedDetectorAutomaton):
    """P-style ping/pong detector; suspicion is irrevocable."""

    output_name = PERFECT_OUTPUT

    def afd(self) -> AFD:
        return Perfect(self.locations)

    @property
    def safe_timeout(self) -> int:
        """The smallest timeout with no false suspicion (bounded delay).

        One delivery out plus one delivery back, minus one tick because
        the returning pong is consumed before the same tick's suspicion
        check.  Only meaningful for bounded delay models.
        """
        return 2 * self.params.delay.max_total - 1

    def node_initial(self, location: int) -> PingPongNode:
        n = len(self.others(location))
        return ((-1,) * n, (False,) * n)

    def node_step(
        self,
        location: int,
        node: Hashable,
        now: int,
        inbox: Tuple[Tuple[int, Hashable], ...],
    ) -> Tuple[PingPongNode, Tuple[Tuple[int, Hashable], ...]]:
        pending, susp = node
        pending, susp = list(pending), list(susp)
        index = self.other_index(location)
        sends: List[Tuple[int, Hashable]] = []
        for src, message in inbox:
            if message == PING:
                sends.append((src, PONG))
            elif message == PONG:
                pending[index[src]] = -1
        for k in range(len(pending)):
            if (
                not susp[k]
                and pending[k] >= 0
                and now - pending[k] > self.params.timeout
            ):
                susp[k] = True  # permanent: P never retracts
                pending[k] = -1
        if now % self.params.query_period == 0:
            for k, dst in enumerate(self.others(location)):
                if not susp[k] and pending[k] < 0:
                    sends.append((dst, PING))
                    pending[k] = now
        return (tuple(pending), tuple(susp)), tuple(sends)

    def node_output(
        self, location: int, node: Hashable
    ) -> Tuple[Hashable, ...]:
        _pending, susp = node
        return (
            sorted_tuple(
                peer
                for peer, suspected in zip(self.others(location), susp)
                if suspected
            ),
        )
