"""The leader-lease detector (Ω-style, built on the heartbeat core).

A standard Ω construction layered on an eventually-perfect heartbeat
monitor: each process elects the minimum location it currently trusts
(itself included) and grants the *incumbent leader* a longer silence
budget — the ``lease`` — than ordinary peers get from their adaptive
timeouts, damping leadership changes while the heartbeat layer is still
converging.  Under bounded delay the heartbeat layer eventually
suspects exactly the crashed set at every live process, all trusted
sets agree on the live set, and every process elects the same live
minimum forever: the trace satisfies Ω.  Severing a live minimum
location's outbound channels (``drop_p=1.0``, an unannounced
partition) splits the brain instead — it keeps electing itself while
everyone else elects the next survivor — and the Ω conformance oracle
rejects the trace.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Tuple

from repro.core.afd import AFD
from repro.detectors.omega import OMEGA_OUTPUT, Omega
from repro.timed.heartbeat import HeartbeatDetector


class LeaderLeaseDetector(HeartbeatDetector):
    """Ω-style detector: leader = min trusted location, lease-damped."""

    output_name = OMEGA_OUTPUT

    def afd(self) -> AFD:
        return Omega(self.locations)

    def _elect(self, location: int, susp: List[bool]) -> int:
        """The minimum location ``location`` currently trusts."""
        trusted = [location] + [
            peer
            for peer, suspected in zip(self.others(location), susp)
            if not suspected
        ]
        return min(trusted)

    def _leader_hint(
        self, location: int, susp: List[bool]
    ) -> Optional[int]:
        return self._elect(location, susp)

    def node_output(
        self, location: int, node: Hashable
    ) -> Tuple[Hashable, ...]:
        _lasts, _touts, susp = node
        return (self._elect(location, list(susp)),)
