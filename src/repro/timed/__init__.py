"""The timed front-end: detector *implementations* on virtual time.

Everything upstream of this package treats failure detectors
axiomatically — an AFD is a set of valid traces, and the zoo automata
generate members of that set by construction.  This package closes the
loop from the other side: concrete timeout-based implementations from
the literature (heartbeat, ping/pong, leader-lease) run on a
discrete-virtual-time network with seed-deterministic delays and
PR 4 fault plans, and the traces they *actually emit* are judged for
AFD membership by the same conformance oracles.  Which timing
assumption realizes which AFD class becomes an executable question:
see ``docs/TIMED.md`` for the catalog and ``BENCH_E18`` for the
measured conformance-rate surface.
"""

from repro.timed.automaton import (
    HEARTBEAT,
    PING,
    PONG,
    TICK,
    TimedDetectorAutomaton,
)
from repro.timed.heartbeat import HeartbeatDetector
from repro.timed.leader_lease import LeaderLeaseDetector
from repro.timed.network import TimedNetwork
from repro.timed.params import DelayModel, TimedParams
from repro.timed.pingpong import PingPongDetector
from repro.timed.registry import (
    ALIASES,
    IMPLEMENTATIONS,
    build_automaton,
    implementation_names,
    iter_timed_automata,
    resolve_implementation,
    target_afd,
)

__all__ = [
    "ALIASES",
    "HEARTBEAT",
    "IMPLEMENTATIONS",
    "PING",
    "PONG",
    "TICK",
    "DelayModel",
    "HeartbeatDetector",
    "LeaderLeaseDetector",
    "PingPongDetector",
    "TimedDetectorAutomaton",
    "TimedNetwork",
    "TimedParams",
    "build_automaton",
    "implementation_names",
    "iter_timed_automata",
    "resolve_implementation",
    "target_afd",
]
